//! Oracle tests for the fused spectral convolution (DESIGN.md §13):
//! the fused `r2c → multiply-merge → c2r` pipeline against the direct
//! `O(n²)` circular convolution, the impulse identity, and a seeded
//! case pushed through the retry supervisor with an injected mid-stage
//! fault — recovery must preserve the convolution exactly.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use bwfft::core::exec_real::ExecConfig;
use bwfft::core::{Dims, RetryPolicy, Supervisor};
use bwfft::num::signal::SplitMix64;
use bwfft::num::Complex64;
use bwfft::pipeline::{fault, FaultPlan, IntegrityConfig, Role};
use bwfft::real::{conv_direct, RealFftPlan, SpectralConv1d, SpectralConvPlan};
use std::time::Duration;

fn random_real(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect()
}

/// Direct 2D circular convolution — the quadratic oracle.
fn conv_direct_2d(x: &[f64], g: &[f64], n: usize, m: usize) -> Vec<f64> {
    let mut out = vec![0.0; n * m];
    for a in 0..n {
        for b in 0..m {
            let mut acc = 0.0;
            for i in 0..n {
                for j in 0..m {
                    acc += x[i * m + j] * g[((n + a - i) % n) * m + (m + b - j) % m];
                }
            }
            out[a * m + b] = acc;
        }
    }
    out
}

#[test]
fn fused_conv_matches_direct_oracle_1d_small_sizes() {
    for n in [2usize, 4, 8, 16, 32, 64] {
        let x = random_real(n, 9000 + n as u64);
        let g = random_real(n, 9100 + n as u64);
        let want = conv_direct(&x, &g);
        let mut plan = SpectralConv1d::new(&g);
        let mut got = x.clone();
        plan.run(&mut got);
        let scale = want.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (a, b) in got.iter().zip(&want) {
            assert!(
                (a - b).abs() <= 1e-12 * scale * n as f64,
                "fused conv diverged from direct oracle at n={n}"
            );
        }
    }
}

#[test]
fn fused_conv_matches_direct_oracle_2d() {
    let (n, m) = (8usize, 16);
    let x = random_real(n * m, 9200);
    let g = random_real(n * m, 9201);
    let want = conv_direct_2d(&x, &g, n, m);
    let plan = RealFftPlan::builder(Dims::d2(n, m))
        .threads(2, 2)
        .build()
        .unwrap();
    let conv = SpectralConvPlan::new(plan, &g).unwrap();
    let mut got = x.clone();
    let mut work = vec![Complex64::ZERO; conv.plan().packed_elems()];
    conv.convolve(&mut got, &mut work).unwrap();
    let scale = want.iter().map(|v| v.abs()).fold(1.0, f64::max);
    for (a, b) in got.iter().zip(&want) {
        assert!(
            (a - b).abs() <= 1e-10 * scale,
            "fused 2D conv diverged from direct oracle"
        );
    }
}

#[test]
fn impulse_is_the_convolution_identity() {
    for n in [1usize, 2, 8, 64] {
        let mut delta = vec![0.0; n];
        delta[0] = 1.0;
        let x = random_real(n, 9300 + n as u64);
        if n >= 2 {
            let mut plan = SpectralConv1d::new(&delta);
            let mut got = x.clone();
            plan.run(&mut got);
            for (a, b) in got.iter().zip(&x) {
                assert!((a - b).abs() < 1e-12, "conv(x, δ) != x at n={n}");
            }
        }
        // The quadratic oracle agrees that δ is the identity.
        let direct = conv_direct(&x, &delta);
        for (a, b) in direct.iter().zip(&x) {
            assert!((a - b).abs() < 1e-15);
        }
    }
}

#[test]
fn supervised_conv_with_injected_fault_preserves_the_result() {
    // Same seeded problem twice: once clean, once with a compute
    // worker panicking mid-stage under full integrity guards. The
    // supervisor must recover (retry or escalate tiers) and the
    // convolution it returns must match the clean run to round-off.
    fault::silence_injected_panic_reports();
    let (n, m) = (8usize, 16);
    let x = random_real(n * m, 9400);
    let g = random_real(n * m, 9401);

    let build = || {
        RealFftPlan::builder(Dims::d2(n, m))
            .threads(2, 2)
            .build()
            .unwrap()
    };
    let clean_conv = SpectralConvPlan::new(build(), &g).unwrap();
    let mut clean = x.clone();
    let mut work = vec![Complex64::ZERO; clean_conv.plan().packed_elems()];
    clean_conv.convolve(&mut clean, &mut work).unwrap();

    let conv = SpectralConvPlan::new(build(), &g).unwrap();
    let cfg = ExecConfig {
        fault: Some(FaultPlan::panic_at(Role::Compute, 0, 1)),
        integrity: IntegrityConfig::full(),
        verify_energy: true,
        iter_timeout: Some(Duration::from_secs(5)),
        ..ExecConfig::default()
    };
    let sup = Supervisor::new(RetryPolicy::default());
    let mut got = x.clone();
    let report = conv
        .convolve_supervised(&sup, &mut got, &mut work, &cfg)
        .expect("supervised convolution must recover");
    assert!(
        report.recovered(),
        "the injected fault should have forced at least one recovery step"
    );
    let scale = clean.iter().map(|v| v.abs()).fold(1.0, f64::max);
    for (a, b) in got.iter().zip(&clean) {
        assert!(
            (a - b).abs() <= 1e-10 * scale,
            "recovery changed the convolution result"
        );
    }
}
