//! The executable system must agree with its algebraic specification:
//! the real double-buffered executor is checked against the SPL
//! formulas of §III-A applied by the interpreter.

use bwfft::core::{exec_real, Dims, FftPlan};
use bwfft::num::compare::assert_fft_close;
use bwfft::num::signal::random_complex;
use bwfft::num::Complex64;
use bwfft::spl::rewrite::{fft2d_blocked, fft3d_blocked, fft3d_blocked_stage};
use bwfft::spl::Formula;

#[test]
fn executor_implements_the_blocked_3d_formula() {
    let (k, n, m, mu) = (4usize, 4, 8, 4);
    let x = random_complex(k * n * m, 950);
    let by_formula = fft3d_blocked(k, n, m, mu).apply_vec(&x);
    let plan = FftPlan::builder(Dims::d3(k, n, m))
        .buffer_elems(32)
        .threads(1, 1)
        .build()
        .unwrap();
    let mut data = x.clone();
    let mut work = vec![Complex64::ZERO; x.len()];
    exec_real::execute(&plan, &mut data, &mut work).unwrap();
    assert_fft_close(&data, &by_formula);
}

#[test]
fn executor_implements_the_blocked_2d_formula() {
    let (n, m, mu) = (8usize, 8, 4);
    let x = random_complex(n * m, 951);
    let by_formula = fft2d_blocked(n, m, mu).apply_vec(&x);
    let plan = FftPlan::builder(Dims::d2(n, m))
        .buffer_elems(32)
        .threads(1, 1)
        .build()
        .unwrap();
    let mut data = x.clone();
    let mut work = vec![Complex64::ZERO; x.len()];
    exec_real::execute(&plan, &mut data, &mut work).unwrap();
    assert_fft_close(&data, &by_formula);
}

#[test]
fn single_stage_of_executor_matches_stage_formula() {
    // Drive only stage 0 by comparing the executor's first-stage
    // output against the stage formula: run a plan whose later stages
    // are identity-sized (k = n = 1 is invalid, so instead compare the
    // composition order: formula stage0 then stages 1–2 equals the full
    // formula — an associativity check tying core's stage order to the
    // SPL factorization).
    let (k, n, m, mu) = (2usize, 4, 8, 4);
    let x = random_complex(k * n * m, 952);
    let s0 = fft3d_blocked_stage(k, n, m, mu, 0).apply_vec(&x);
    let s1 = fft3d_blocked_stage(k, n, m, mu, 1).apply_vec(&s0);
    let s2 = fft3d_blocked_stage(k, n, m, mu, 2).apply_vec(&s1);
    let full = fft3d_blocked(k, n, m, mu).apply_vec(&x);
    assert_fft_close(&s2, &full);
}

#[test]
fn blocked_formula_equals_plain_tensor_dft() {
    // The full chain: executor == blocked formula == pure tensor DFT.
    let (k, n, m, mu) = (2usize, 4, 8, 2);
    let x = random_complex(k * n * m, 953);
    let blocked = fft3d_blocked(k, n, m, mu).apply_vec(&x);
    let tensor = Formula::tensor(
        Formula::dft(k),
        Formula::tensor(Formula::dft(n), Formula::dft(m)),
    )
    .apply_vec(&x);
    assert_fft_close(&blocked, &tensor);
}

#[test]
fn write_matrices_in_executor_and_spl_agree_on_numa_plans() {
    // The dual-socket executor output must equal the single-socket
    // one (already tested) *and* the SPL 3D DFT — closing the loop on
    // Table III.
    let (k, n, m) = (4usize, 4, 8);
    let x = random_complex(k * n * m, 954);
    let plan = FftPlan::builder(Dims::d3(k, n, m))
        .buffer_elems(32)
        .threads(2, 2)
        .sockets(2)
        .build()
        .unwrap();
    let mut data = x.clone();
    let mut work = vec![Complex64::ZERO; x.len()];
    exec_real::execute(&plan, &mut data, &mut work).unwrap();
    let tensor = Formula::tensor(
        Formula::dft(k),
        Formula::tensor(Formula::dft(n), Formula::dft(m)),
    )
    .apply_vec(&x);
    assert_fft_close(&data, &tensor);
}

#[test]
fn mu_choices_change_nothing_numerically() {
    let (k, n, m) = (4usize, 8, 8);
    let x = random_complex(k * n * m, 955);
    let mut outputs = Vec::new();
    for mu in [1usize, 2, 4] {
        let plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(64)
            .threads(1, 1)
            .mu(mu)
            .build()
            .unwrap();
        let mut data = x.clone();
        let mut work = vec![Complex64::ZERO; x.len()];
        exec_real::execute(&plan, &mut data, &mut work).unwrap();
        outputs.push(data);
    }
    // μ alters the reshape granularity and the lane width of later
    // stages, so arithmetic orders differ — compare to tolerance.
    assert_fft_close(&outputs[1], &outputs[0]);
    assert_fft_close(&outputs[2], &outputs[0]);
}
