//! End-to-end integration tests: plan → real threaded execution →
//! verification against independent implementations, across
//! dimensions, thread splits, buffer sizes and socket decompositions.

use bwfft::baselines::reference_impl::{pencil_fft_2d, pencil_fft_3d, slab_pencil_fft_3d};
use bwfft::core::{exec_real, Dims, FftPlan};
use bwfft::kernels::reference::{dft2_naive, dft3_naive};
use bwfft::kernels::Direction;
use bwfft::num::compare::{assert_fft_close, rel_l2_error};
use bwfft::num::signal::random_complex;
use bwfft::num::Complex64;

#[allow(clippy::unwrap_used)] // test helper; only #[test] fns get the blanket allowance
fn run_plan(plan: &FftPlan, x: &[Complex64]) -> Vec<Complex64> {
    let mut data = x.to_vec();
    let mut work = vec![Complex64::ZERO; x.len()];
    exec_real::execute(plan, &mut data, &mut work).unwrap();
    data
}

#[test]
fn full_stack_3d_against_naive_oracle() {
    let (k, n, m) = (8usize, 16, 8);
    let x = random_complex(k * n * m, 900);
    let plan = FftPlan::builder(Dims::d3(k, n, m))
        .buffer_elems(128)
        .threads(2, 2)
        .build()
        .unwrap();
    assert_fft_close(&run_plan(&plan, &x), &dft3_naive(&x, k, n, m, Direction::Forward));
}

#[test]
fn full_stack_2d_against_naive_oracle() {
    let (n, m) = (32usize, 16);
    let x = random_complex(n * m, 901);
    let plan = FftPlan::builder(Dims::d2(n, m))
        .buffer_elems(128)
        .threads(2, 2)
        .build()
        .unwrap();
    assert_fft_close(&run_plan(&plan, &x), &dft2_naive(&x, n, m, Direction::Forward));
}

#[test]
fn medium_3d_against_pencil_and_slab() {
    // Three independent algorithms agree at a size where the naive
    // oracle is too slow.
    let (k, n, m) = (32usize, 64, 32);
    let x = random_complex(k * n * m, 902);
    let plan = FftPlan::builder(Dims::d3(k, n, m))
        .buffer_elems(8192)
        .threads(2, 2)
        .build()
        .unwrap();
    let ours = run_plan(&plan, &x);
    let mut pencil = x.clone();
    pencil_fft_3d(&mut pencil, k, n, m, Direction::Forward);
    let mut slab = x.clone();
    slab_pencil_fft_3d(&mut slab, k, n, m, Direction::Forward);
    assert_fft_close(&ours, &pencil);
    assert_fft_close(&ours, &slab);
}

#[test]
fn medium_2d_against_pencil() {
    let (n, m) = (128usize, 64);
    let x = random_complex(n * m, 903);
    let plan = FftPlan::builder(Dims::d2(n, m))
        .buffer_elems(1024)
        .threads(3, 2)
        .build()
        .unwrap();
    let ours = run_plan(&plan, &x);
    let mut pencil = x.clone();
    pencil_fft_2d(&mut pencil, n, m, Direction::Forward);
    assert_fft_close(&ours, &pencil);
}

#[test]
fn result_is_independent_of_execution_configuration() {
    // Thread counts, buffer sizes and socket splits must not change a
    // single bit of the output (same pencil kernels, same order).
    let (k, n, m) = (16usize, 16, 16);
    let x = random_complex(k * n * m, 904);
    let reference = run_plan(
        &FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(256)
            .threads(1, 1)
            .build()
            .unwrap(),
        &x,
    );
    for (b, p_d, p_c, sk) in [
        (256usize, 2usize, 2usize, 1usize),
        (512, 4, 4, 1),
        (1024, 1, 3, 1),
        (256, 2, 2, 2),
        (512, 2, 4, 2),
    ] {
        let plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(b)
            .threads(p_d, p_c)
            .sockets(sk)
            .build()
            .unwrap();
        let got = run_plan(&plan, &x);
        assert_eq!(got, reference, "b={b} p_d={p_d} p_c={p_c} sk={sk}");
    }
}

#[test]
fn inverse_of_forward_is_identity_across_shapes() {
    for (k, n, m) in [(8usize, 8usize, 8usize), (4, 16, 8), (16, 4, 8)] {
        let x = random_complex(k * n * m, 905);
        let fwd = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(128)
            .threads(2, 2)
            .build()
            .unwrap();
        let inv = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(128)
            .threads(2, 2)
            .direction(Direction::Inverse)
            .build()
            .unwrap();
        let mut data = run_plan(&fwd, &x);
        let mut work = vec![Complex64::ZERO; x.len()];
        exec_real::execute(&inv, &mut data, &mut work).unwrap();
        exec_real::normalize(&mut data);
        assert_fft_close(&data, &x);
    }
}

#[test]
fn parseval_energy_conservation_3d() {
    let (k, n, m) = (16usize, 8, 16);
    let total = (k * n * m) as f64;
    let x = random_complex(k * n * m, 906);
    let plan = FftPlan::builder(Dims::d3(k, n, m))
        .buffer_elems(256)
        .threads(2, 2)
        .build()
        .unwrap();
    let y = run_plan(&plan, &x);
    let ex: f64 = x.iter().map(|c| c.norm_sqr()).sum();
    let ey: f64 = y.iter().map(|c| c.norm_sqr()).sum();
    assert!((ey - total * ex).abs() / (total * ex) < 1e-12);
}

#[test]
fn shift_theorem_3d() {
    // Circularly shifting the input along x multiplies bin (0,0,f)
    // by ω^{f·shift}.
    let (k, n, m) = (4usize, 4, 32);
    let x = random_complex(k * n * m, 907);
    let mut shifted = x.clone();
    // shift by 1 along the fastest dimension within each row
    for row in shifted.chunks_exact_mut(m) {
        row.rotate_right(1);
    }
    let plan = FftPlan::builder(Dims::d3(k, n, m))
        .buffer_elems(128)
        .threads(1, 1)
        .build()
        .unwrap();
    let fx = run_plan(&plan, &x);
    let fs = run_plan(&plan, &shifted);
    for z in 0..k {
        for y in 0..n {
            for f in 0..m {
                let idx = z * n * m + y * m + f;
                let w = Complex64::root_of_unity(f as i64, m as u64);
                let expect = fx[idx] * w;
                assert!(
                    (fs[idx] - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                    "bin ({z},{y},{f})"
                );
            }
        }
    }
}

#[test]
fn large_host_transform_is_stable() {
    // 64³ (4 MiB working set): error stays at round-off scale.
    let (k, n, m) = (64usize, 64, 64);
    let x = random_complex(k * n * m, 908);
    let plan = FftPlan::builder(Dims::d3(k, n, m))
        .buffer_elems(32 * 1024)
        .threads(2, 2)
        .build()
        .unwrap();
    let ours = run_plan(&plan, &x);
    let mut pencil = x.clone();
    pencil_fft_3d(&mut pencil, k, n, m, Direction::Forward);
    let err = rel_l2_error(&ours, &pencil);
    assert!(err < 1e-13, "err = {err:e}");
}
