//! Property-based tests over the SPL formalism: permutation structure,
//! gather/scatter coverage, and rewrite identities at random shapes.

use bwfft::num::Complex64;
use bwfft::spl::dense::{assert_formulas_equal, to_dense};
use bwfft::spl::gather_scatter::{
    fft3d_numa_stage_perms, fft3d_stage_perms, ReadMatrix, WriteMatrix,
};
use bwfft::spl::rewrite::{cooley_tukey, fft3d_blocked, mdft_tensor_3d};
use bwfft::spl::{Formula, PermOp};
use proptest::prelude::*;

fn small_pow2() -> impl Strategy<Value = usize> {
    prop_oneof![Just(2usize), Just(4), Just(8)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stride_permutation_roundtrips(rows in 1usize..9, cols in 1usize..9) {
        let p = PermOp::L { rows, cols };
        for s in 0..p.size() {
            let d = p.dst_of_src(s);
            prop_assert!(d < p.size());
            prop_assert_eq!(p.src_of_dst(d), s);
        }
    }

    #[test]
    fn blocked_rotation_roundtrips(
        k in 1usize..5,
        n in 1usize..5,
        m in 1usize..5,
        blk in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let p = PermOp::BlockedK { k, n, m, blk };
        let mut seen = vec![false; p.size()];
        for s in 0..p.size() {
            let d = p.dst_of_src(s);
            prop_assert!(!seen[d], "collision at {d}");
            seen[d] = true;
            prop_assert_eq!(p.src_of_dst(d), s);
        }
        prop_assert!(seen.iter().all(|x| *x));
    }

    #[test]
    fn rotations_compose_to_identity(
        k in small_pow2(),
        n in small_pow2(),
        m in prop_oneof![Just(4usize), Just(8)],
    ) {
        let [r1, r2, r3] = fft3d_stage_perms(k, n, m, 2);
        for s in 0..k * n * m {
            prop_assert_eq!(r3.dst_of_src(r2.dst_of_src(r1.dst_of_src(s))), s);
        }
    }

    #[test]
    fn numa_chain_equals_identity(
        k in prop_oneof![Just(4usize), Just(8)],
        n in prop_oneof![Just(4usize), Just(8)],
        m in prop_oneof![Just(4usize), Just(8)],
    ) {
        let [w1, w2, w3] = fft3d_numa_stage_perms(k, n, m, 2, 2);
        for s in 0..k * n * m {
            prop_assert_eq!(w3.dst_of_src(w2.dst_of_src(w1.dst_of_src(s))), s);
        }
    }

    #[test]
    fn read_write_blocks_tile_the_array(
        k in small_pow2(),
        n in small_pow2(),
        m in prop_oneof![Just(8usize), Just(16)],
        b_frac in prop_oneof![Just(2usize), Just(4)],
    ) {
        let total = k * n * m;
        let b = (total / b_frac).max(m);
        prop_assume!(total.is_multiple_of(b));
        let perm = fft3d_stage_perms(k, n, m, 2)[0];
        // Applying all blocks' R then W reconstructs the permuted array.
        let x: Vec<Complex64> =
            (0..total).map(|i| Complex64::new(i as f64, -(i as f64))).collect();
        let mut buf = vec![Complex64::ZERO; b];
        let mut y = vec![Complex64::ZERO; total];
        for i in 0..total / b {
            ReadMatrix::new(total, b, i).load(&x, &mut buf);
            WriteMatrix::new(perm, b, i).store(&buf, &mut y);
        }
        let mut expect = vec![Complex64::ZERO; total];
        match perm {
            bwfft::spl::gather_scatter::StagePerm::Single(p) => p.permute(&x, &mut expect),
            _ => unreachable!(),
        }
        prop_assert_eq!(y, expect);
    }

    #[test]
    fn cooley_tukey_factors_random_splits(m in 2usize..7, n in 2usize..7) {
        assert_formulas_equal(&Formula::dft(m * n), &cooley_tukey(m, n));
    }

    #[test]
    fn blocked_3d_equals_tensor_at_random_shapes(
        k in Just(2usize),
        n in small_pow2(),
        m in prop_oneof![Just(4usize), Just(8)],
        mu in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        prop_assume!(m.is_multiple_of(mu));
        assert_formulas_equal(&mdft_tensor_3d(k, n, m), &fft3d_blocked(k, n, m, mu));
    }

    #[test]
    fn all_stage_perms_are_permutation_matrices(
        k in small_pow2(),
        n in small_pow2(),
        m in prop_oneof![Just(4usize), Just(8)],
    ) {
        for p in fft3d_stage_perms(k, n, m, 2) {
            prop_assert!(to_dense(&p.as_formula()).is_permutation());
        }
    }
}
