//! Property-based tests over transform invariants: random power-of-two
//! shapes, random execution configurations, random data.

use bwfft::baselines::reference_impl::pencil_fft_3d;
use bwfft::core::{exec_real, Dims, FftPlan};
use bwfft::kernels::{Direction, Fft1d};
use bwfft::num::compare::rel_l2_error;
use bwfft::num::signal::random_complex;
use bwfft::num::Complex64;
use proptest::prelude::*;

fn pow2(lo: u32, hi: u32) -> impl Strategy<Value = usize> {
    (lo..=hi).prop_map(|e| 1usize << e)
}

#[allow(clippy::unwrap_used)] // test helper; only #[test] fns get the blanket allowance
fn run3d(plan: &FftPlan, x: &[Complex64]) -> Vec<Complex64> {
    let mut data = x.to_vec();
    let mut work = vec![Complex64::ZERO; x.len()];
    exec_real::execute(plan, &mut data, &mut work).unwrap();
    data
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn forward_inverse_roundtrip_3d(
        k in pow2(2, 4),
        n in pow2(2, 4),
        m in pow2(2, 5),
        seed in 0u64..1000,
        p_d in 1usize..3,
        p_c in 1usize..3,
    ) {
        let total = k * n * m;
        let b = (total / 4).max(m).max(n * 4).max(k * 4);
        let x = random_complex(total, seed);
        let fwd = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(b).threads(p_d, p_c).build().unwrap();
        let inv = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(b).threads(p_d, p_c)
            .direction(Direction::Inverse).build().unwrap();
        let mut data = run3d(&fwd, &x);
        let mut work = vec![Complex64::ZERO; total];
        exec_real::execute(&inv, &mut data, &mut work).unwrap();
        exec_real::normalize(&mut data);
        prop_assert!(rel_l2_error(&data, &x) < 1e-11);
    }

    #[test]
    fn linearity_3d(
        k in pow2(2, 3),
        n in pow2(2, 3),
        m in pow2(2, 4),
        seed in 0u64..1000,
    ) {
        let total = k * n * m;
        let b = (total / 2).max(m).max(n * 4).max(k * 4);
        let plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(b).threads(1, 1).build().unwrap();
        let x = random_complex(total, seed);
        let y = random_complex(total, seed + 1);
        let alpha = Complex64::new(1.25, -0.5);
        let combo: Vec<Complex64> =
            x.iter().zip(&y).map(|(a, b)| *a * alpha + *b).collect();
        let fx = run3d(&plan, &x);
        let fy = run3d(&plan, &y);
        let fc = run3d(&plan, &combo);
        let expect: Vec<Complex64> =
            fx.iter().zip(&fy).map(|(a, b)| *a * alpha + *b).collect();
        prop_assert!(rel_l2_error(&fc, &expect) < 1e-11);
    }

    #[test]
    fn agrees_with_pencil_reference(
        k in pow2(2, 4),
        n in pow2(2, 4),
        m in pow2(2, 4),
        seed in 0u64..1000,
    ) {
        let total = k * n * m;
        let b = (total / 2).max(m).max(n * 4).max(k * 4);
        let plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(b).threads(2, 2).build().unwrap();
        let x = random_complex(total, seed);
        let ours = run3d(&plan, &x);
        let mut reference = x.clone();
        pencil_fft_3d(&mut reference, k, n, m, Direction::Forward);
        prop_assert!(rel_l2_error(&ours, &reference) < 1e-11);
    }

    #[test]
    fn parseval_1d(
        lg in 1u32..13,
        seed in 0u64..1000,
    ) {
        let n = 1usize << lg;
        let x = random_complex(n, seed);
        let mut data = x.clone();
        Fft1d::new(n, Direction::Forward).run(&mut data);
        let ex: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let ey: f64 = data.iter().map(|c| c.norm_sqr()).sum();
        prop_assert!(((ey - n as f64 * ex) / (n as f64 * ex)).abs() < 1e-11);
    }

    #[test]
    fn conjugate_symmetry_for_real_input_1d(
        lg in 2u32..10,
        seed in 0u64..1000,
    ) {
        // Real input ⇒ X[k] = conj(X[n−k]).
        let n = 1usize << lg;
        let mut data: Vec<Complex64> = random_complex(n, seed)
            .into_iter()
            .map(|c| Complex64::new(c.re, 0.0))
            .collect();
        Fft1d::new(n, Direction::Forward).run(&mut data);
        for k in 1..n {
            let a = data[k];
            let b = data[n - k].conj();
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "k={k}");
        }
    }

    #[test]
    fn socket_split_is_exact(
        k in pow2(2, 3).prop_map(|v| v * 2), // even ≥ 8
        n in pow2(2, 3).prop_map(|v| v * 2),
        m in pow2(2, 4),
        seed in 0u64..1000,
    ) {
        let total = k * n * m;
        let b = (total / 4).max(m).max(n * 4).max(k * 4);
        // b must divide total/2 for the 2-socket plan.
        prop_assume!((total / 2).is_multiple_of(b));
        let x = random_complex(total, seed);
        let one = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(b).threads(2, 2).sockets(1).build().unwrap();
        let two = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(b).threads(2, 2).sockets(2).build().unwrap();
        prop_assert_eq!(run3d(&one, &x), run3d(&two, &x));
    }
}
