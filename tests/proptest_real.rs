//! Property tests of the real-input (r2c/c2r) path — DESIGN.md §13.
//!
//! Five properties over random inputs, sizes, and fault sites:
//!
//! 1. **Hermitian symmetry** — the full spectrum reconstructed from
//!    the packed half (`unpack_half_spectrum`) satisfies
//!    `Y[k] == conj(Y[n−k])`, so the stored bins really determine a
//!    real signal's spectrum.
//! 2. **Round trip** — `c2r(r2c(x)) == n·x` (unnormalized inverse).
//! 3. **Linearity** — `r2c(a·x + b·y) == a·r2c(x) + b·r2c(y)` for
//!    real scalars.
//! 4. **Packed Parseval** — the weighted half-spectrum energy (weight
//!    1 at DC/Nyquist, 2 interior) equals `n·Σx²`.
//! 5. **Fault-tolerant** — under an injected worker fault with every
//!    integrity guard armed, the supervised multidimensional r2c is
//!    panic-free and still produces the reference answer.
//!
//! Degenerate sizes `n = 1` and `n = 2` are pinned panic-free
//! deterministically below the proptest block.

use bwfft::core::exec_real::ExecConfig;
use bwfft::core::{Dims, RetryPolicy, Supervisor};
use bwfft::num::signal::SplitMix64;
use bwfft::num::Complex64;
use bwfft::pipeline::{fault, FaultPlan, IntegrityConfig, Role};
use bwfft::real::{packed_spectrum_energy, unpack_half_spectrum, RealFft1d, RealFftPlan};
use proptest::prelude::*;
use std::time::Duration;

fn random_real(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect()
}

/// `2^(2..=10)` — every power-of-two size a property case can afford.
fn size(exp: usize) -> usize {
    1 << (2 + exp % 9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn reconstructed_spectrum_is_hermitian(exp in 0usize..9, seed in any::<u64>()) {
        let n = size(exp);
        let x = random_real(n, seed);
        let mut plan = RealFft1d::new(n);
        let mut packed = vec![Complex64::ZERO; plan.packed_len()];
        plan.r2c(&x, &mut packed);
        let mut full = vec![Complex64::ZERO; n];
        unpack_half_spectrum(&packed, &mut full);
        let scale = full.iter().map(|c| c.abs()).fold(1.0, f64::max);
        for k in 0..n {
            let mirror = full[(n - k) % n].conj();
            prop_assert!(
                (full[k] - mirror).abs() <= 1e-12 * scale,
                "Y[{k}] != conj(Y[n-{k}]) at n={n}"
            );
        }
        // And the stored bins agree with what unpacking puts back.
        for (kf, p) in packed.iter().enumerate() {
            prop_assert_eq!(full[kf], *p);
        }
    }

    #[test]
    fn c2r_inverts_r2c_times_n(exp in 0usize..9, seed in any::<u64>()) {
        let n = size(exp);
        let x = random_real(n, seed);
        let mut plan = RealFft1d::new(n);
        let mut spec = vec![Complex64::ZERO; plan.packed_len()];
        let mut back = vec![0.0; n];
        plan.r2c(&x, &mut spec);
        plan.c2r(&spec, &mut back);
        for (b, v) in back.iter().zip(&x) {
            prop_assert!(
                (b - v * n as f64).abs() <= 1e-9 * n as f64,
                "round trip broke at n={n}"
            );
        }
    }

    #[test]
    fn r2c_is_linear(
        exp in 0usize..9,
        seed in any::<u64>(),
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let n = size(exp);
        let x = random_real(n, seed);
        let y = random_real(n, seed ^ 0x9e37_79b9_7f4a_7c15);
        let combo: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| a * xi + b * yi).collect();
        let mut plan = RealFft1d::new(n);
        let hp = plan.packed_len();
        let (mut sx, mut sy, mut sc) = (
            vec![Complex64::ZERO; hp],
            vec![Complex64::ZERO; hp],
            vec![Complex64::ZERO; hp],
        );
        plan.r2c(&x, &mut sx);
        plan.r2c(&y, &mut sy);
        plan.r2c(&combo, &mut sc);
        let scale = sc.iter().map(|c| c.abs()).fold(1.0, f64::max);
        for k in 0..hp {
            let expect = sx[k].scale(a) + sy[k].scale(b);
            prop_assert!(
                (sc[k] - expect).abs() <= 1e-11 * scale,
                "linearity broke at bin {k}, n={n}"
            );
        }
    }

    #[test]
    fn packed_parseval_holds(exp in 0usize..9, seed in any::<u64>()) {
        let n = size(exp);
        let x = random_real(n, seed);
        let mut plan = RealFft1d::new(n);
        let mut spec = vec![Complex64::ZERO; plan.packed_len()];
        plan.r2c(&x, &mut spec);
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy = packed_spectrum_energy(&spec, 1);
        let expect = n as f64 * time_energy;
        prop_assert!(
            (freq_energy - expect).abs() <= 1e-9 * expect.abs().max(1.0),
            "packed Parseval broke at n={n}: {freq_energy} vs {expect}"
        );
    }

    #[test]
    fn supervised_r2c_survives_faults_with_guards_armed(
        seed in any::<u64>(),
        role_i in 0usize..2,
        thread in 0usize..2,
        iter in 0usize..3,
    ) {
        // A worker fault mid-pipeline with every guard armed: the
        // supervised run must stay panic-free and land on the
        // reference answer whatever tier it escalates to.
        fault::silence_injected_panic_reports();
        let dims = Dims::d2(16, 32);
        let plan = RealFftPlan::builder(dims)
            .threads(2, 2)
            .build()
            .map_err(|e| TestCaseError::Fail(format!("plan: {e}")))?;
        let role = if role_i == 0 { Role::Data } else { Role::Compute };
        let cfg = ExecConfig {
            fault: Some(FaultPlan::panic_at(role, thread, iter)),
            integrity: IntegrityConfig::full(),
            verify_energy: true,
            iter_timeout: Some(Duration::from_secs(5)),
            ..ExecConfig::default()
        };
        let x = random_real(plan.real_elems(), seed);
        let mut work = vec![Complex64::ZERO; plan.packed_elems()];
        let mut spec = vec![Complex64::ZERO; plan.spectrum_elems()];
        let sup = Supervisor::new(RetryPolicy::default());
        plan.r2c_supervised(&sup, &x, &mut work, &mut spec, &cfg)
            .map_err(|e| TestCaseError::Fail(format!("supervised r2c: {e}")))?;
        let mut want = vec![Complex64::ZERO; plan.spectrum_elems()];
        plan.r2c_reference(&x, &mut want)
            .map_err(|e| TestCaseError::Fail(format!("reference r2c: {e}")))?;
        let scale = want.iter().map(|c| c.abs()).fold(1.0, f64::max);
        for (g, w) in spec.iter().zip(&want) {
            prop_assert!(
                (*g - *w).abs() <= 1e-9 * scale,
                "supervised result diverged from reference under fault"
            );
        }
    }
}

/// `n = 1` and `n = 2` are the degenerate corners of the split-merge
/// recurrence (no inner transform / length-1 inner transform); both
/// must be exact and panic-free, with guards armed on the planned path.
#[test]
fn degenerate_sizes_are_panic_free_and_exact() {
    let mut p1 = RealFft1d::new(1);
    let mut s1 = vec![Complex64::ZERO; p1.packed_len()];
    let mut b1 = vec![0.0; 1];
    p1.r2c(&[2.5], &mut s1);
    assert_eq!(s1[0], Complex64::new(2.5, 0.0));
    p1.c2r(&s1, &mut b1);
    assert!((b1[0] - 2.5).abs() < 1e-15);
    assert!((packed_spectrum_energy(&s1, 1) - 2.5 * 2.5).abs() < 1e-12);

    let mut p2 = RealFft1d::new(2);
    let mut s2 = vec![Complex64::ZERO; p2.packed_len()];
    let mut b2 = vec![0.0; 2];
    p2.r2c(&[3.0, -1.0], &mut s2);
    assert_eq!(s2[0], Complex64::new(2.0, 0.0));
    assert_eq!(s2[1], Complex64::new(4.0, 0.0));
    p2.c2r(&s2, &mut b2);
    assert!((b2[0] - 6.0).abs() < 1e-12 && (b2[1] + 2.0).abs() < 1e-12);
}
