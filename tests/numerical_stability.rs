//! Numerical stability of the transform stack: error growth with
//! size, extreme inputs, and exact special cases.

use bwfft::core::{exec_real, Dims, FftPlan};
use bwfft::kernels::reference::dft_naive;
use bwfft::kernels::{Direction, Fft1d};
use bwfft::num::compare::rel_l2_error;
use bwfft::num::signal::random_complex;
use bwfft::num::Complex64;

#[test]
fn error_growth_is_logarithmic_in_size() {
    // Well-implemented FFTs have rel-ℓ2 error ~ ε·√(log n); check the
    // measured error stays far below a linear-growth bound and grows
    // slowly.
    let mut errors = Vec::new();
    for lg in [4u32, 8, 12] {
        let n = 1usize << lg;
        let x = random_complex(n, 700 + lg as u64);
        let mut got = x.clone();
        Fft1d::new(n, Direction::Forward).run(&mut got);
        let expect = dft_naive(&x, Direction::Forward);
        errors.push(rel_l2_error(&got, &expect));
    }
    for (i, e) in errors.iter().enumerate() {
        assert!(*e < 1e-13, "size index {i}: error {e:e}");
    }
    // Error at 4096 should be within an order of magnitude or so of
    // the error at 16 — not hundreds of times bigger. (The √log model
    // predicts ~2x; radix/twiddle constants push the practical ratio
    // higher without indicating instability.)
    assert!(errors[2] < 20.0 * errors[0].max(1e-16), "{errors:?}");
}

#[test]
fn zeros_map_to_exact_zeros() {
    let n = 1024;
    let mut data = vec![Complex64::ZERO; n];
    Fft1d::new(n, Direction::Forward).run(&mut data);
    assert!(data.iter().all(|c| c.re == 0.0 && c.im == 0.0));
}

#[test]
fn constant_input_gives_exact_dc_bin() {
    // All-ones: bin 0 is exactly n (sums of exact values), the rest
    // cancel to round-off.
    let n = 256;
    let mut data = vec![Complex64::ONE; n];
    Fft1d::new(n, Direction::Forward).run(&mut data);
    assert_eq!(data[0], Complex64::new(n as f64, 0.0));
    for (k, v) in data.iter().enumerate().skip(1) {
        assert!(v.abs() < 1e-11, "bin {k}: {v}");
    }
}

#[test]
fn large_magnitude_inputs_do_not_overflow() {
    let n = 512;
    let x: Vec<Complex64> = random_complex(n, 701)
        .into_iter()
        .map(|c| c * 1e150)
        .collect();
    let mut got = x.clone();
    Fft1d::new(n, Direction::Forward).run(&mut got);
    assert!(got.iter().all(|c| !c.is_nan() && c.re.is_finite() && c.im.is_finite()));
    // Scale invariance: FFT(s·x) = s·FFT(x).
    let small: Vec<Complex64> = x.iter().map(|c| c.scale(1e-150)).collect();
    let mut small_fft = small;
    Fft1d::new(n, Direction::Forward).run(&mut small_fft);
    let rescaled: Vec<Complex64> = got.iter().map(|c| c.scale(1e-150)).collect();
    assert!(rel_l2_error(&rescaled, &small_fft) < 1e-12);
}

#[test]
fn tiny_magnitude_inputs_survive() {
    let n = 256;
    let x: Vec<Complex64> = random_complex(n, 702)
        .into_iter()
        .map(|c| c * 1e-200)
        .collect();
    let mut got = x.clone();
    Fft1d::new(n, Direction::Forward).run(&mut got);
    // Energy preserved (scaled by n) without underflow to zero. The
    // squares of 1e-200 magnitudes underflow f64, so rescale before
    // computing norms — the transform itself ran at 1e-200.
    assert!(got.iter().any(|c| c.re != 0.0 || c.im != 0.0));
    let ex: f64 = x.iter().map(|c| c.scale(1e200).norm_sqr()).sum();
    let ey: f64 = got.iter().map(|c| c.scale(1e200).norm_sqr()).sum();
    assert!(ex > 0.0 && ey > 0.0);
    assert!((ey / ex / n as f64 - 1.0).abs() < 1e-10);
}

#[test]
fn pipeline_3d_error_matches_kernel_error_scale() {
    // The multithreaded pipeline adds no numerical noise beyond the
    // kernels: its error against an independent reference is the same
    // order as the kernels' own.
    let (k, n, m) = (16usize, 16, 16);
    let x = random_complex(k * n * m, 703);
    let plan = FftPlan::builder(Dims::d3(k, n, m))
        .buffer_elems(512)
        .threads(2, 2)
        .build()
        .unwrap();
    let mut ours = x.clone();
    let mut work = vec![Complex64::ZERO; x.len()];
    exec_real::execute(&plan, &mut ours, &mut work).unwrap();
    let mut reference = x.clone();
    bwfft::baselines::reference_impl::pencil_fft_3d(&mut reference, k, n, m, Direction::Forward);
    let err = rel_l2_error(&ours, &reference);
    assert!(err < 5e-15, "pipeline vs pencil: {err:e}");
}

#[test]
fn repeated_roundtrips_accumulate_slowly() {
    // 8 forward/inverse round trips: error grows roughly linearly in
    // trips, staying near round-off — no systematic drift.
    let n = 1024;
    let x = random_complex(n, 704);
    let mut data = x.clone();
    let mut fwd = Fft1d::new(n, Direction::Forward);
    let mut inv = Fft1d::new(n, Direction::Inverse);
    for _ in 0..8 {
        fwd.run(&mut data);
        inv.run(&mut data);
        let s = 1.0 / n as f64;
        for v in data.iter_mut() {
            *v = v.scale(s);
        }
    }
    let err = rel_l2_error(&data, &x);
    assert!(err < 1e-12, "8 roundtrips: {err:e}");
}
