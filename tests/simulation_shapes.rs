//! Guard tests for the reproduction claims: the simulated evaluation
//! must keep producing the paper's qualitative shapes (these are the
//! assertions EXPERIMENTS.md is built on).

use bwfft::baselines::{simulate_baseline, BaselineKind};
use bwfft::core::exec_sim::{simulate, SimOptions};
use bwfft::core::{metrics, Dims, FftPlan};
use bwfft::machine::{presets, MachineSpec};

#[allow(clippy::unwrap_used)] // test helper; only #[test] fns get the blanket allowance
fn ours(dims: Dims, spec: &MachineSpec, sockets: usize) -> bwfft::machine::stats::PerfReport {
    let p = spec.total_threads() * sockets / spec.sockets;
    let plan = FftPlan::builder(dims)
        .buffer_elems(spec.default_buffer_elems())
        .threads(p / 2, p / 2)
        .sockets(sockets)
        .build()
        .unwrap();
    simulate(&plan, spec, &SimOptions::default()).unwrap().report
}

#[test]
fn fig1_shape_kaby_lake() {
    let spec = presets::kaby_lake_7700k();
    let d = Dims::d3(512, 512, 512);
    let us = ours(d, &spec, 1);
    let mkl = simulate_baseline(BaselineKind::MklLike, d, &spec);
    let fftw = simulate_baseline(BaselineKind::FftwLike, d, &spec);
    assert!((78.0..92.0).contains(&us.percent_of_peak()), "{us}");
    assert!(mkl.percent_of_peak() < 50.0, "{mkl}");
    assert!(fftw.percent_of_peak() < mkl.percent_of_peak(), "{fftw}");
    let speedup = fftw.time_ns / us.time_ns;
    assert!((2.0..3.5).contains(&speedup), "vs FFTW {speedup:.2}");
}

#[test]
fn fig9_shape_2d_average_fast() {
    // Cheap subset of `fig9_shape_2d_average_and_tail` for the fast
    // gate: two sizes (the 4096²/8192² simulations dominate the whole
    // suite's runtime), same average window, and 2048² is both the
    // minimum and the last entry so the tail check stays meaningful.
    let spec = presets::kaby_lake_7700k();
    let sizes = [(1024usize, 512usize), (2048, 2048)];
    let pcts: Vec<f64> = sizes
        .iter()
        .map(|&(n, m)| ours(Dims::d2(n, m), &spec, 1).percent_of_peak())
        .collect();
    let avg = pcts.iter().sum::<f64>() / pcts.len() as f64;
    assert!((60.0..85.0).contains(&avg), "2D average {avg:.1}% {pcts:?}");
    let min = pcts.iter().cloned().fold(f64::INFINITY, f64::min);
    assert_eq!(min, *pcts.last().unwrap(), "{pcts:?}");
}

#[test]
#[ignore = "slow (4096² and 8192² simulations); the full verify gate runs it via --include-ignored"]
fn fig9_shape_2d_average_and_tail() {
    let spec = presets::kaby_lake_7700k();
    let sizes = [(1024usize, 512usize), (2048, 2048), (4096, 4096), (8192, 8192)];
    let pcts: Vec<f64> = sizes
        .iter()
        .map(|&(n, m)| ours(Dims::d2(n, m), &spec, 1).percent_of_peak())
        .collect();
    let avg = pcts.iter().sum::<f64>() / pcts.len() as f64;
    assert!((60.0..85.0).contains(&avg), "2D average {avg:.1}% {pcts:?}");
    // The largest size must be the worst (TLB mechanism).
    let min = pcts.iter().cloned().fold(f64::INFINITY, f64::min);
    assert_eq!(min, *pcts.last().unwrap(), "{pcts:?}");
}

#[test]
fn fig10_shape_dual_socket_wins() {
    let spec = presets::haswell_2667v3_2s();
    let d = Dims::d3(1024, 1024, 1024);
    let us = ours(d, &spec, 2);
    let mkl = simulate_baseline(BaselineKind::MklLike, d, &spec);
    assert!(us.gflops() > mkl.gflops(), "{us} vs {mkl}");
    // Paper: within 20–30% of peak when QPI traffic is charged.
    assert!((50.0..80.0).contains(&us.percent_of_peak()), "{us}");
    assert!(us.link_bytes > 0.0);
}

#[test]
fn fig11b_shape_amd_slab_narrows_the_gap() {
    let amd = presets::amd_fx_8350();
    let d = Dims::d3(512, 512, 512);
    let us = ours(d, &amd, 1);
    let slab = simulate_baseline(BaselineKind::SlabPencil, d, &amd);
    let pencil = simulate_baseline(BaselineKind::FftwLike, d, &amd);
    let vs_slab = slab.time_ns / us.time_ns;
    let vs_pencil = pencil.time_ns / us.time_ns;
    assert!(vs_slab < vs_pencil, "slab must narrow the gap");
    assert!((1.2..2.2).contains(&vs_slab), "paper ~1.6x, got {vs_slab:.2}");
}

#[test]
fn fig11cd_shape_socket_scaling() {
    let intel = presets::haswell_2667v3_2s();
    let amd = presets::amd_opteron_6276_2s();
    let d = Dims::d3(1024, 1024, 1024);
    let intel_speedup =
        ours(d, &intel, 1).time_ns / ours(d, &intel, 2).time_ns;
    let amd_speedup = ours(d, &amd, 1).time_ns / ours(d, &amd, 2).time_ns;
    assert!((1.4..1.9).contains(&intel_speedup), "intel {intel_speedup:.2}");
    assert!(amd_speedup > intel_speedup, "amd {amd_speedup:.2}");
    assert!(amd_speedup > 1.85, "amd near-linear, got {amd_speedup:.2}");
}

#[test]
fn our_traffic_is_near_ideal_everywhere() {
    for spec in presets::all() {
        let d = Dims::d3(512, 512, 512);
        let r = ours(d, &spec, spec.sockets);
        let ideal = metrics::ideal_traffic_bytes(d.total(), 3);
        let ratio = r.dram_bytes / ideal;
        assert!(
            (0.99..1.25).contains(&ratio),
            "{}: traffic ratio {ratio:.3}",
            spec.name
        );
    }
}

#[test]
fn achievable_peak_orders_the_machines() {
    // P_io is proportional to STREAM bandwidth: the machine ordering
    // must be 2667v3 > 7700K > {4770K, 6276} > FX-8350.
    let peak = |s: &MachineSpec| {
        metrics::achievable_peak_gflops(1 << 27, 3, s.total_dram_bw_gbs())
    };
    assert!(peak(&presets::haswell_2667v3_2s()) > peak(&presets::kaby_lake_7700k()));
    assert!(peak(&presets::kaby_lake_7700k()) > peak(&presets::haswell_4770k()));
    assert!(peak(&presets::haswell_4770k()) > peak(&presets::amd_fx_8350()));
}

#[test]
fn bigger_problems_do_not_change_percent_of_peak_much_in_3d() {
    // §V: unlike 2D, the 3D pipeline amortizes its reshape costs at
    // every size the paper runs on this machine — percent-of-peak is
    // flat from 256³ to 1024³ (the 64 GB node cannot hold 2048³).
    let spec = presets::kaby_lake_7700k();
    let small = ours(Dims::d3(256, 256, 256), &spec, 1).percent_of_peak();
    let large = ours(Dims::d3(1024, 1024, 1024), &spec, 1).percent_of_peak();
    assert!(
        (small - large).abs() < 6.0,
        "3D percent-of-peak drifted: {small:.1}% vs {large:.1}%"
    );
}
