//! Golden-vector conformance suite: every kernel variant against the
//! naive `O(n²)` reference DFT, on analytically-known inputs plus
//! random vectors, across 1D/2D/3D shapes and both directions.
//!
//! ## Accuracy contract (documented ULP bound)
//!
//! Errors are reported in *ULPs of the largest reference magnitude*:
//! `max_i |got_i − ref_i| / ulp(max_j |ref_j|)`. This normalizes away
//! the unnormalized transform's `O(n)` output growth and makes one
//! bound meaningful across sizes:
//!
//! * power-of-two kernels (radix-2 / radix-4 Stockham, split-radix):
//!   observed worst case stays below ~64 ULP for `n ≤ 4096`; the
//!   contract is [`POW2_ULP_BOUND`] = 512 ULP (≈8× headroom).
//! * Bluestein embeds `DFT_n` in a length-`M ≥ 2n−1` cyclic
//!   convolution — three FFTs deep with chirp twiddles at arbitrary
//!   angles — so its error floor is intrinsically higher; the contract
//!   is [`BLUESTEIN_ULP_BOUND`] = 16384 ULP, which is still ~1e-12
//!   relative at these sizes.
//!
//! The multidimensional checks compare the full plan pipeline (blocked
//! reshapes, double buffer, threaded executor) against `dft2_naive` /
//! `dft3_naive`, under the same power-of-two bound.

use bwfft::core::{exec_real, Dims, FftPlan};
use bwfft::kernels::batch::BatchFft;
use bwfft::kernels::bluestein::{AnyFft, Bluestein};
use bwfft::kernels::reference::{dft2_naive, dft3_naive, dft_naive};
use bwfft::kernels::splitradix::SplitRadixFft;
use bwfft::kernels::{Direction, KernelVariant};
use bwfft::num::signal::{complex_tone, impulse, random_complex};
use bwfft::num::Complex64;

/// Accuracy contract for the power-of-two kernels, in ULPs of the
/// largest reference magnitude.
const POW2_ULP_BOUND: f64 = 512.0;
/// Accuracy contract for Bluestein's algorithm (see module docs).
const BLUESTEIN_ULP_BOUND: f64 = 16384.0;

/// Spacing between `x` and the next representable f64 above it.
fn ulp_of(x: f64) -> f64 {
    assert!(x.is_finite() && x > 0.0, "ulp_of needs a positive scale");
    f64::from_bits(x.to_bits() + 1) - x
}

/// Max elementwise error in ULPs of the largest reference magnitude.
fn ulp_error(got: &[Complex64], reference: &[Complex64]) -> f64 {
    assert_eq!(got.len(), reference.len());
    let scale = reference
        .iter()
        .map(|c| c.abs())
        .fold(f64::MIN_POSITIVE, f64::max);
    let ulp = ulp_of(scale);
    got.iter()
        .zip(reference)
        .map(|(g, r)| (*g - *r).abs() / ulp)
        .fold(0.0, f64::max)
}

fn assert_ulp_close(got: &[Complex64], reference: &[Complex64], bound: f64, what: &str) {
    let err = ulp_error(got, reference);
    assert!(err <= bound, "{what}: {err:.1} ULP exceeds the {bound} ULP contract");
}

/// The golden input set: impulses (DFT is a pure tone), the constant
/// vector (DFT is `n·δ_0`), single-bin tones (DFT is `n·δ_f`), and a
/// seeded random vector.
fn golden_inputs(n: usize, seed: u64) -> Vec<(String, Vec<Complex64>)> {
    let mut inputs = vec![
        ("impulse@0".to_string(), impulse(n, 0)),
        (format!("impulse@{}", n / 3), impulse(n, n / 3)),
        ("constant".to_string(), vec![Complex64::new(1.0, 0.0); n]),
        ("tone@1".to_string(), complex_tone(n, 1)),
        ("random".to_string(), random_complex(n, seed)),
    ];
    if n > 4 {
        inputs.push((format!("tone@{}", n / 2 + 1), complex_tone(n, n / 2 + 1)));
    }
    inputs
}

/// Every 1D kernel in the workspace, applied to a copy of `x`.
fn kernel_outputs(x: &[Complex64], dir: Direction) -> Vec<(String, Vec<Complex64>, f64)> {
    let n = x.len();
    let mut out = Vec::new();
    if n.is_power_of_two() {
        for variant in KernelVariant::all() {
            let mut buf = x.to_vec();
            BatchFft::with_variant(n, 1, dir, variant).run(&mut buf);
            out.push((format!("stockham-{}", variant.token()), buf, POW2_ULP_BOUND));
        }
        let mut buf = x.to_vec();
        SplitRadixFft::new(n, dir).run(&mut buf);
        out.push(("splitradix".to_string(), buf, POW2_ULP_BOUND));
    }
    let mut buf = x.to_vec();
    Bluestein::new(n, dir).run(&mut buf);
    out.push(("bluestein".to_string(), buf, BLUESTEIN_ULP_BOUND));
    let mut buf = x.to_vec();
    AnyFft::new(n, dir).run(&mut buf);
    // AnyFft dispatches to a pow-2 kernel or Bluestein by size.
    let anyfft_bound = if n.is_power_of_two() { POW2_ULP_BOUND } else { BLUESTEIN_ULP_BOUND };
    out.push(("anyfft".to_string(), buf, anyfft_bound));
    out
}

#[test]
fn golden_vectors_1d_every_kernel_both_directions() {
    for n in [4usize, 8, 16, 64, 256] {
        for dir in [Direction::Forward, Direction::Inverse] {
            for (input_name, x) in golden_inputs(n, 7001 + n as u64) {
                let reference = dft_naive(&x, dir);
                for (kernel, got, bound) in kernel_outputs(&x, dir) {
                    assert_ulp_close(
                        &got,
                        &reference,
                        bound,
                        &format!("{kernel} n={n} {dir:?} on {input_name}"),
                    );
                }
            }
        }
    }
}

#[test]
fn golden_vectors_1d_bluestein_non_pow2() {
    // Prime, odd-composite, even-composite and largish sizes, where
    // only Bluestein (and AnyFft's dispatch to it) applies.
    for n in [3usize, 5, 12, 17, 30, 100] {
        for dir in [Direction::Forward, Direction::Inverse] {
            for (input_name, x) in golden_inputs(n, 7100 + n as u64) {
                let reference = dft_naive(&x, dir);
                for (kernel, got, bound) in kernel_outputs(&x, dir) {
                    assert_ulp_close(
                        &got,
                        &reference,
                        bound,
                        &format!("{kernel} n={n} {dir:?} on {input_name}"),
                    );
                }
            }
        }
    }
}

#[test]
fn batched_strided_kernels_match_per_pencil_reference() {
    // The executor's actual workhorse form `I_c ⊗ DFT_m ⊗ I_s`:
    // element (c, j, lane) lives at (c·m + j)·s + lane, and every
    // (c, lane) pencil must independently equal the naive DFT.
    let (m, s, c) = (16usize, 4, 3);
    let x = random_complex(c * m * s, 7200);
    for dir in [Direction::Forward, Direction::Inverse] {
        for variant in KernelVariant::all() {
            let mut buf = x.clone();
            BatchFft::with_variant(m, s, dir, variant).run(&mut buf);
            for ci in 0..c {
                for lane in 0..s {
                    let gather = |src: &[Complex64]| -> Vec<Complex64> {
                        (0..m).map(|j| src[(ci * m + j) * s + lane]).collect()
                    };
                    let reference = dft_naive(&gather(&x), dir);
                    assert_ulp_close(
                        &gather(&buf),
                        &reference,
                        POW2_ULP_BOUND,
                        &format!("batch {}@(c={ci},lane={lane}) {dir:?}", variant.token()),
                    );
                }
            }
        }
    }
}

#[allow(clippy::unwrap_used)] // test helper; only #[test] fns get the blanket allowance
fn run_plan(dims: Dims, variant: KernelVariant, dir: Direction, x: &[Complex64]) -> Vec<Complex64> {
    let plan = FftPlan::builder(dims)
        .buffer_elems(128)
        .threads(2, 2)
        .direction(dir)
        .kernel(variant)
        .build()
        .unwrap();
    let mut data = x.to_vec();
    let mut work = vec![Complex64::ZERO; x.len()];
    exec_real::execute(&plan, &mut data, &mut work).unwrap();
    data
}

#[test]
fn golden_vectors_2d_both_variants_both_directions() {
    let (n, m) = (16usize, 32);
    for dir in [Direction::Forward, Direction::Inverse] {
        for (input_name, x) in golden_inputs(n * m, 7300) {
            let reference = dft2_naive(&x, n, m, dir);
            for variant in KernelVariant::all() {
                let got = run_plan(Dims::d2(n, m), variant, dir, &x);
                assert_ulp_close(
                    &got,
                    &reference,
                    POW2_ULP_BOUND,
                    &format!("2D {}x{m} {} {dir:?} on {input_name}", n, variant.token()),
                );
            }
        }
    }
}

#[test]
fn golden_vectors_3d_both_variants_both_directions() {
    let (k, n, m) = (8usize, 8, 16);
    for dir in [Direction::Forward, Direction::Inverse] {
        for (input_name, x) in golden_inputs(k * n * m, 7400) {
            let reference = dft3_naive(&x, k, n, m, dir);
            for variant in KernelVariant::all() {
                let got = run_plan(Dims::d3(k, n, m), variant, dir, &x);
                assert_ulp_close(
                    &got,
                    &reference,
                    POW2_ULP_BOUND,
                    &format!("3D {k}x{n}x{m} {} {dir:?} on {input_name}", variant.token()),
                );
            }
        }
    }
}

#[test]
fn linearity_invariant_every_kernel() {
    // F(a·x + b·y) = a·F(x) + b·F(y), checked kernel-against-itself
    // (no oracle involved), with complex scalars off the axes.
    let n = 64usize;
    let (a, b) = (Complex64::new(0.7, -1.3), Complex64::new(-0.4, 0.9));
    let x = random_complex(n, 7500);
    let y = random_complex(n, 7501);
    let combo: Vec<Complex64> = x.iter().zip(&y).map(|(xi, yi)| *xi * a + *yi * b).collect();
    for dir in [Direction::Forward, Direction::Inverse] {
        let outputs = kernel_outputs(&combo, dir);
        let fx = kernel_outputs(&x, dir);
        let fy = kernel_outputs(&y, dir);
        for (i, (kernel, got, bound)) in outputs.iter().enumerate() {
            let expect: Vec<Complex64> = fx[i]
                .1
                .iter()
                .zip(&fy[i].1)
                .map(|(fxi, fyi)| *fxi * a + *fyi * b)
                .collect();
            assert_ulp_close(got, &expect, *bound, &format!("linearity {kernel} {dir:?}"));
        }
    }
}

#[test]
fn parseval_invariant_every_kernel() {
    // Unnormalized forward transform: Σ|X|² = n·Σ|x|².
    let n = 128usize;
    let x = random_complex(n, 7600);
    let time_energy: f64 = x.iter().map(|c| c.norm_sqr()).sum();
    for (kernel, spectrum, _) in kernel_outputs(&x, Direction::Forward) {
        let freq_energy: f64 = spectrum.iter().map(|c| c.norm_sqr()).sum();
        let rel = (freq_energy - n as f64 * time_energy).abs() / (n as f64 * time_energy);
        assert!(rel < 1e-12, "Parseval violated by {kernel}: rel err {rel:.2e}");
    }
}

#[test]
fn forward_inverse_roundtrip_every_kernel() {
    // inverse(forward(x)) = n·x for every kernel (both unnormalized).
    let n = 32usize;
    let x = random_complex(n, 7700);
    let forwards = kernel_outputs(&x, Direction::Forward);
    for (kernel, fwd, bound) in forwards {
        for (kernel_inv, roundtrip, bound_inv) in kernel_outputs(&fwd, Direction::Inverse) {
            let expect: Vec<Complex64> = x.iter().map(|c| *c * n as f64).collect();
            assert_ulp_close(
                &roundtrip,
                &expect,
                bound.max(bound_inv),
                &format!("roundtrip {kernel} → {kernel_inv}"),
            );
        }
    }
}

#[test]
fn parseval_invariant_2d_plan() {
    let (n, m) = (32usize, 16);
    let x = random_complex(n * m, 7800);
    let time_energy: f64 = x.iter().map(|c| c.norm_sqr()).sum();
    for variant in KernelVariant::all() {
        let spectrum = run_plan(Dims::d2(n, m), variant, Direction::Forward, &x);
        let freq_energy: f64 = spectrum.iter().map(|c| c.norm_sqr()).sum();
        let total = (n * m) as f64;
        let rel = (freq_energy - total * time_energy).abs() / (total * time_energy);
        assert!(rel < 1e-12, "2D Parseval violated ({}) rel {rel:.2e}", variant.token());
    }
}

// ---------------------------------------------------------------------------
// Real-input (r2c/c2r) differential conformance — DESIGN.md §13.
//
// Contract: for every size in the golden grid, the packed r2c output
// matches the full complex FFT of the same (complexified) real input
// restricted to bins `0..=n/2`, under the same [`POW2_ULP_BOUND`]; the
// unnormalized c2r inverts it (`c2r(r2c(x)) = n·x`). The split-merge
// pass adds one complex multiply-add per bin on top of the half-length
// transform, so it inherits the power-of-two bound with no slack of
// its own.
// ---------------------------------------------------------------------------

use bwfft::num::signal::SplitMix64;
use bwfft::real::{RealFft1d, RealFftPlan};

/// Real-valued golden inputs mirroring [`golden_inputs`]: impulses,
/// the constant field, a cosine tone, and a seeded random field.
fn golden_real_inputs(n: usize, seed: u64) -> Vec<(String, Vec<f64>)> {
    let mut imp = vec![0.0; n];
    imp[0] = 1.0;
    let mut inputs = vec![
        ("impulse@0".to_string(), imp),
        ("constant".to_string(), vec![1.0; n]),
    ];
    if n > 2 {
        let mut shifted = vec![0.0; n];
        shifted[n / 3] = 1.0;
        inputs.push((format!("impulse@{}", n / 3), shifted));
        let tone: Vec<f64> = (0..n)
            .map(|j| (2.0 * std::f64::consts::PI * j as f64 / n as f64).cos())
            .collect();
        inputs.push(("cos-tone@1".to_string(), tone));
    }
    let mut rng = SplitMix64::new(seed);
    inputs.push((
        "random".to_string(),
        (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect(),
    ));
    inputs
}

fn complexify(x: &[f64]) -> Vec<Complex64> {
    x.iter().map(|&v| Complex64::new(v, 0.0)).collect()
}

#[test]
fn r2c_matches_complex_fft_half_spectrum_golden_grid() {
    for n in [2usize, 4, 8, 16, 64, 256, 1024] {
        for (input_name, x) in golden_real_inputs(n, 7900 + n as u64) {
            let full = dft_naive(&complexify(&x), Direction::Forward);
            let reference: Vec<Complex64> = full[..=n / 2].to_vec();
            let mut plan = RealFft1d::new(n);
            let mut got = vec![Complex64::ZERO; plan.packed_len()];
            plan.r2c(&x, &mut got);
            assert_ulp_close(
                &got,
                &reference,
                POW2_ULP_BOUND,
                &format!("r2c n={n} on {input_name}"),
            );
        }
    }
}

#[test]
fn c2r_inverts_r2c_golden_grid() {
    for n in [2usize, 4, 8, 16, 64, 256, 1024] {
        for (input_name, x) in golden_real_inputs(n, 8000 + n as u64) {
            let mut plan = RealFft1d::new(n);
            let mut spec = vec![Complex64::ZERO; plan.packed_len()];
            let mut back = vec![0.0; n];
            plan.r2c(&x, &mut spec);
            plan.c2r(&spec, &mut back);
            let expect: Vec<Complex64> =
                x.iter().map(|&v| Complex64::new(v * n as f64, 0.0)).collect();
            assert_ulp_close(
                &complexify(&back),
                &expect,
                POW2_ULP_BOUND,
                &format!("c2r∘r2c n={n} on {input_name}"),
            );
        }
    }
}

/// The multidimensional packed layout: row `s`, packed column `kf`
/// holds the full complex FFT's bin `(s, kf)` for `kf ∈ 0..=m/2`.
#[test]
fn r2c_plan_matches_complex_fft_2d_both_tiers() {
    let (n, m) = (16usize, 32);
    let hp = m / 2 + 1;
    let plan = RealFftPlan::builder(Dims::d2(n, m))
        .threads(2, 2)
        .build()
        .unwrap();
    for (input_name, x) in golden_real_inputs(n * m, 8100) {
        let full = dft2_naive(&complexify(&x), n, m, Direction::Forward);
        let mut reference = vec![Complex64::ZERO; n * hp];
        for s in 0..n {
            reference[s * hp..(s + 1) * hp].copy_from_slice(&full[s * m..s * m + hp]);
        }
        let mut work = vec![Complex64::ZERO; plan.packed_elems()];
        let mut pipelined = vec![Complex64::ZERO; plan.spectrum_elems()];
        plan.r2c(&x, &mut work, &mut pipelined).unwrap();
        assert_ulp_close(
            &pipelined,
            &reference,
            POW2_ULP_BOUND,
            &format!("2D r2c pipelined on {input_name}"),
        );
        let mut refout = vec![Complex64::ZERO; plan.spectrum_elems()];
        plan.r2c_reference(&x, &mut refout).unwrap();
        assert_ulp_close(
            &refout,
            &reference,
            POW2_ULP_BOUND,
            &format!("2D r2c reference tier on {input_name}"),
        );
        // And the inverse recovers n·m·x through both tiers.
        let expect: Vec<Complex64> = x
            .iter()
            .map(|&v| Complex64::new(v * (n * m) as f64, 0.0))
            .collect();
        let mut back = vec![0.0; n * m];
        plan.c2r(&pipelined, &mut work, &mut back).unwrap();
        assert_ulp_close(
            &complexify(&back),
            &expect,
            POW2_ULP_BOUND,
            &format!("2D c2r pipelined on {input_name}"),
        );
        plan.c2r_reference(&refout, &mut back).unwrap();
        assert_ulp_close(
            &complexify(&back),
            &expect,
            POW2_ULP_BOUND,
            &format!("2D c2r reference tier on {input_name}"),
        );
    }
}

#[test]
fn r2c_plan_matches_complex_fft_3d_both_tiers() {
    let (k, n, m) = (8usize, 8, 16);
    let hp = m / 2 + 1;
    let plan = RealFftPlan::builder(Dims::d3(k, n, m))
        .threads(2, 2)
        .build()
        .unwrap();
    for (input_name, x) in golden_real_inputs(k * n * m, 8200) {
        let full = dft3_naive(&complexify(&x), k, n, m, Direction::Forward);
        let rows = k * n;
        let mut reference = vec![Complex64::ZERO; rows * hp];
        for s in 0..rows {
            reference[s * hp..(s + 1) * hp].copy_from_slice(&full[s * m..s * m + hp]);
        }
        let mut work = vec![Complex64::ZERO; plan.packed_elems()];
        let mut got = vec![Complex64::ZERO; plan.spectrum_elems()];
        plan.r2c(&x, &mut work, &mut got).unwrap();
        assert_ulp_close(
            &got,
            &reference,
            POW2_ULP_BOUND,
            &format!("3D r2c pipelined on {input_name}"),
        );
        let mut refout = vec![Complex64::ZERO; plan.spectrum_elems()];
        plan.r2c_reference(&x, &mut refout).unwrap();
        assert_ulp_close(
            &refout,
            &reference,
            POW2_ULP_BOUND,
            &format!("3D r2c reference tier on {input_name}"),
        );
    }
}
