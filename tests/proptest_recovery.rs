//! Property tests of the recovery subsystem.
//!
//! Two properties the unit tests only spot-check:
//!
//! 1. **Supervisor determinism** — for any conformance shape, fault
//!    kind, fault site, and input seed, two supervised runs take the
//!    same recovery trail (tier, attempts, actions, errors, backoffs)
//!    and produce the same output.
//! 2. **Guards never false-positive** — with every integrity guard
//!    armed (canaries, checksums, Parseval) a fault-free run succeeds
//!    on every conformance shape, thread split, and executor, and the
//!    answer matches the pencil-pencil reference.

use bwfft::baselines::reference_impl;
use bwfft::core::exec_real::ExecConfig;
use bwfft::core::{Dims, ExecutorKind, FftPlan, RetryPolicy, Supervisor};
use bwfft::num::compare::{fft_tolerance, rel_l2_error};
use bwfft::num::signal::random_complex;
use bwfft::num::Complex64;
use bwfft::pipeline::{FaultPhase, FaultPlan, IntegrityConfig, Role};
use proptest::prelude::*;
use std::time::Duration;

/// The conformance shapes the soak harness rotates through: 2D and 3D,
/// two buffer sizes, all small enough to keep a property case cheap.
fn shape(i: usize) -> (Dims, usize) {
    match i % 3 {
        0 => (Dims::d2(16, 32), 128),
        1 => (Dims::d3(8, 8, 16), 128),
        _ => (Dims::d3(8, 16, 16), 256),
    }
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        backoff_base: Duration::from_micros(50),
        backoff_cap: Duration::from_millis(1),
        ..RetryPolicy::default()
    }
}

/// One fault drawn from the (cheap) kinds: worker panic, handoff
/// corruption, or an allocation budget. Stalls are excluded only
/// because their injected sleeps dominate a property run's wall-clock.
fn fault(kind: usize, role_i: usize, thread: usize, iter: usize) -> FaultPlan {
    let role = if role_i == 0 { Role::Data } else { Role::Compute };
    let phase = if role == Role::Compute {
        FaultPhase::Compute
    } else if iter.is_multiple_of(2) {
        FaultPhase::Load
    } else {
        FaultPhase::Store
    };
    match kind % 3 {
        0 => FaultPlan::panic_at(role, thread, iter),
        1 => FaultPlan::corrupt_at(role, thread, iter, phase),
        _ => FaultPlan::none().with_alloc_budget(1024),
    }
}

fn trail(rep: &bwfft::core::SupervisedReport) -> Vec<(String, usize, String, String, Duration)> {
    rep.events
        .iter()
        .map(|e| {
            (
                e.tier.to_string(),
                e.attempt,
                e.action.to_string(),
                e.error.clone(),
                e.backoff,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn supervised_recovery_is_deterministic(
        shape_i in 0usize..3,
        kind in 0usize..3,
        role_i in 0usize..2,
        thread in 0usize..2,
        iter in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        bwfft::pipeline::fault::silence_injected_panic_reports();
        let (dims, b) = shape(shape_i);
        let plan = FftPlan::builder(dims)
            .buffer_elems(b)
            .threads(2, 2)
            .build()
            .unwrap();
        let x = random_complex(dims.total(), seed);
        let cfg = ExecConfig {
            fault: Some(fault(kind, role_i, thread, iter)),
            integrity: IntegrityConfig::full(),
            verify_energy: true,
            ..ExecConfig::default()
        };
        let sup = Supervisor::new(fast_policy());

        let mut outcomes = Vec::new();
        for _ in 0..2 {
            let mut data = x.clone();
            let mut work = vec![Complex64::ZERO; x.len()];
            match sup.run(&plan, &mut data, &mut work, &cfg) {
                Ok(rep) => outcomes.push(Ok((rep.tier, rep.attempts, trail(&rep), data))),
                Err(e) => outcomes.push(Err(e.to_string())),
            }
        }
        prop_assert_eq!(&outcomes[0], &outcomes[1]);
    }

    #[test]
    fn integrity_guards_never_false_positive(
        shape_i in 0usize..3,
        threads_i in 0usize..3,
        fused in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let (dims, b) = shape(shape_i);
        let (p_d, p_c) = [(1, 1), (2, 2), (1, 2)][threads_i];
        let mut plan = FftPlan::builder(dims)
            .buffer_elems(b)
            .threads(p_d, p_c)
            .build()
            .unwrap();
        if fused == 1 {
            plan.executor = ExecutorKind::Fused;
        }
        let cfg = ExecConfig {
            integrity: IntegrityConfig::full(),
            verify_energy: true,
            ..ExecConfig::default()
        };
        let mut data = random_complex(dims.total(), seed);
        let want = {
            let mut r = data.clone();
            match dims {
                Dims::Three { k, n, m } => {
                    reference_impl::pencil_fft_3d(&mut r, k, n, m, plan.dir)
                }
                Dims::Two { n, m } => reference_impl::pencil_fft_2d(&mut r, n, m, plan.dir),
            }
            r
        };
        let mut work = vec![Complex64::ZERO; data.len()];
        let rep = bwfft::core::exec_real::execute_with(&plan, &mut data, &mut work, &cfg);
        prop_assert!(rep.is_ok(), "guard false-positive: {:?}", rep.err());
        let err = rel_l2_error(&data, &want);
        prop_assert!(err <= fft_tolerance(want.len()), "wrong answer: {err:.2e}");
    }
}
