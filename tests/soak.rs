//! Chaos/soak integration tests: randomized fault schedules against the
//! supervisor, plus the end-to-end escalation demonstration.
//!
//! The contract under test (the tentpole of the recovery subsystem):
//! with integrity guards armed and the supervisor in charge, every run
//! either matches the reference transform or returns a typed error —
//! never a wrong answer, never a panic.

use bwfft::core::exec_real::ExecConfig;
use bwfft::core::{
    Dims, FftPlan, RecoveryAction, RecoveryTier, RetryPolicy, Supervisor,
};
use bwfft::num::compare::assert_fft_close;
use bwfft::num::signal::random_complex;
use bwfft::num::Complex64;
use bwfft::pipeline::{FaultPlan, IntegrityConfig, Role};
use bwfft::soak::{run_soak, SoakConfig};
use bwfft::trace::{MarkKind, TraceCollector};
use std::sync::Arc;
use std::time::Duration;

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        backoff_base: Duration::from_micros(100),
        backoff_cap: Duration::from_millis(2),
        ..RetryPolicy::default()
    }
}

/// The acceptance-criterion soak: ≥200 seeded iterations over the full
/// fault matrix (panic / stall / corrupt / alloc-fail / pin-deny),
/// zero panics (any panic unwinds through this test), zero silent
/// corruptions, every fault kind actually drawn.
#[test]
fn soak_200_iterations_never_wrong_never_panics() {
    let cfg = SoakConfig {
        iters: 200,
        seed: 0xB147_F00D,
        ..SoakConfig::default()
    };
    let report = run_soak(&cfg).unwrap();
    assert!(report.holds(), "soak contract violated:\n{}", report.render());
    assert_eq!(report.iterations, 200);
    assert_eq!(report.silent_corruptions, 0);
    // 200 draws over 6 kinds: every kind must have come up, so the run
    // exercised the whole fault matrix, not a lucky subset.
    for (i, &count) in report.fault_counts.iter().enumerate() {
        assert!(count > 0, "fault kind {i} never drawn in 200 iterations");
    }
    // Faults that only bite the pipelined tier must have pushed at
    // least one run to a lower tier.
    assert!(
        report.tier_finishes[1] + report.tier_finishes[2] > 0,
        "no run ever escalated:\n{}",
        report.render()
    );
    assert!(report.recovered > 0, "no run ever recovered:\n{}", report.render());
}

/// Same seed ⇒ same aggregate outcome, across the full fault matrix.
#[test]
fn soak_is_deterministic_per_seed() {
    let cfg = SoakConfig {
        iters: 60,
        seed: 99,
        ..SoakConfig::default()
    };
    let a = run_soak(&cfg).unwrap();
    let b = run_soak(&cfg).unwrap();
    assert_eq!(a, b);
}

/// The acceptance-criterion escalation demo: a deterministic fault that
/// bites both the pipelined and the fused executor forces the full
/// pipelined → fused → reference ladder, the output still matches the
/// unfaulted transform, and the `--profile=json` export carries the
/// `recovery` marks that account for the cost.
#[test]
fn escalation_ladder_is_visible_in_profile_json() {
    bwfft::pipeline::fault::silence_injected_panic_reports();
    let plan = FftPlan::builder(Dims::d3(8, 8, 16))
        .buffer_elems(128)
        .threads(2, 2)
        .build()
        .unwrap();
    let x = random_complex(plan.dims.total(), 4242);

    // Unfaulted oracle.
    let mut want = x.clone();
    let mut work = vec![Complex64::ZERO; x.len()];
    bwfft::core::exec_real::execute(&plan, &mut want, &mut work).unwrap();

    // Compute thread 0 panics at block 1: the pipelined executor loses
    // a worker, and the fused executor (thread 0 of every role) hits
    // the same site — only the reference tier survives.
    let trace = Arc::new(TraceCollector::new());
    let cfg = ExecConfig {
        fault: Some(FaultPlan::panic_at(Role::Compute, 0, 1)),
        integrity: IntegrityConfig::full(),
        trace: Some(trace.clone()),
        ..ExecConfig::default()
    };
    let mut data = x.clone();
    let mut work = vec![Complex64::ZERO; x.len()];
    let sup = Supervisor::new(fast_policy());
    let rep = sup.run(&plan, &mut data, &mut work, &cfg).unwrap();

    assert_eq!(rep.tier, RecoveryTier::Reference);
    let path: Vec<RecoveryTier> = rep
        .events
        .iter()
        .filter(|e| e.action == RecoveryAction::Escalate)
        .map(|e| e.tier)
        .collect();
    assert_eq!(path, [RecoveryTier::Pipelined, RecoveryTier::Fused]);
    assert_fft_close(&data, &want);

    // The recovery trail must survive into the profile JSON export.
    let report = bwfft::core::profile::profile_report(&trace, &plan, "supervised", None);
    let recovery_marks: Vec<_> = report
        .marks
        .iter()
        .filter(|m| m.kind == MarkKind::Recovery)
        .collect();
    assert_eq!(recovery_marks.len(), rep.events.len() + 1); // + final "recovered at"
    let json = bwfft::trace::json::to_json(&report);
    assert!(json.contains("\"recovery\""), "profile JSON lacks recovery marks");
    assert!(json.contains("recovered at reference"));
    // Retry marks carry the backoff cost so `--profile` shows what
    // recovery cost in wall-clock.
    assert!(report
        .marks
        .iter()
        .any(|m| m.kind == MarkKind::Recovery && m.value_ns.unwrap_or(0.0) > 0.0));
}

/// Corruption + integrity guards: the pipelined tier detects (typed,
/// not silent), and the fused tier — which has no handoffs to corrupt —
/// recovers with the right answer.
#[test]
fn corruption_recovers_with_correct_output() {
    bwfft::pipeline::fault::silence_injected_panic_reports();
    let plan = FftPlan::builder(Dims::d2(16, 32))
        .buffer_elems(128)
        .threads(2, 2)
        .build()
        .unwrap();
    let x = random_complex(plan.dims.total(), 555);
    let mut want = x.clone();
    let mut work = vec![Complex64::ZERO; x.len()];
    bwfft::core::exec_real::execute(&plan, &mut want, &mut work).unwrap();

    let cfg = ExecConfig {
        fault: Some(FaultPlan::corrupt_at(
            Role::Data,
            0,
            1,
            bwfft::pipeline::FaultPhase::Load,
        )),
        integrity: IntegrityConfig::full(),
        verify_energy: true,
        ..ExecConfig::default()
    };
    let mut data = x.clone();
    let mut work = vec![Complex64::ZERO; x.len()];
    let sup = Supervisor::new(fast_policy());
    let rep = sup.run(&plan, &mut data, &mut work, &cfg).unwrap();
    assert!(rep.recovered());
    assert_eq!(rep.tier, RecoveryTier::Fused);
    assert!(rep
        .events
        .iter()
        .any(|e| e.error.contains("integrity guard")));
    assert_fft_close(&data, &want);
}
