//! Lock-down for `examples/poisson_solver.rs`: the example and this
//! test share `bwfft::real::solve_poisson_3d`, so the residual bound
//! the example prints is asserted in CI and the example cannot
//! silently rot.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use bwfft::real::solve_poisson_3d;

#[test]
fn poisson_solve_meets_documented_bounds() {
    // Same grid and thread split as the example.
    let report = solve_poisson_3d(32, 2, 2, 2048).expect("poisson solve");
    assert_eq!(report.n, 32);
    assert!(
        report.max_err < 1e-10,
        "manufactured-solution error {:.3e} above the example's bound",
        report.max_err
    );
    assert!(
        report.max_residual < 1e-7,
        "spectral residual {:.3e} above the example's bound",
        report.max_residual
    );
}

#[test]
fn poisson_solve_scales_down_to_small_grids() {
    // A smaller grid with the default buffer: the entry point must not
    // depend on the example's exact knobs.
    let report = solve_poisson_3d(16, 1, 1, 0).expect("small poisson solve");
    assert!(report.max_err < 1e-11, "16³ error {:.3e}", report.max_err);
    assert!(report.max_residual < 1e-8);
}

#[test]
fn poisson_rejects_bad_grids_as_usage_errors() {
    let err = solve_poisson_3d(12, 1, 1, 0).expect_err("non-pow2 grid");
    assert!(err.is_usage(), "plan errors are usage errors: {err}");
}
