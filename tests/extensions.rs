//! Integration tests for the extensions built beyond the paper's
//! scope: the four-step large 1D FFT, arbitrary-size Bluestein
//! transforms, the fused (no-overlap) executor, and the radix-4
//! kernel wired through the public facade.

use bwfft::core::fft1d::{execute as fft1d_execute, Fft1dLargePlan};
use bwfft::core::{exec_real, Dims, FftPlan};
use bwfft::kernels::bluestein::{AnyFft, Bluestein};
use bwfft::kernels::radix4::{stockham_radix4_strided, Radix4Twiddles};
use bwfft::kernels::reference::dft_naive;
use bwfft::kernels::{Direction, Fft1d};
use bwfft::num::compare::{assert_fft_close, rel_l2_error};
use bwfft::num::signal::random_complex;
use bwfft::num::Complex64;

#[test]
fn four_step_1d_equals_monolithic_kernel() {
    let (n1, n2) = (32usize, 64usize);
    let n = n1 * n2;
    let x = random_complex(n, 970);
    let plan = Fft1dLargePlan::new(n1, n2).buffer_elems(n / 4).threads(2, 2);
    let mut data = x.clone();
    let mut work = vec![Complex64::ZERO; n];
    fft1d_execute(&plan, &mut data, &mut work).unwrap();
    let mut expect = x.clone();
    Fft1d::new(n, Direction::Forward).run(&mut expect);
    assert_fft_close(&data, &expect);
}

#[test]
fn bluestein_enables_non_pow2_convolution_sizes() {
    // A 3-point DFT through the facade — impossible for the pow2
    // kernels, trivial for Bluestein.
    let x = vec![
        Complex64::new(1.0, 0.0),
        Complex64::new(2.0, 0.0),
        Complex64::new(3.0, 0.0),
    ];
    let mut got = x.clone();
    Bluestein::new(3, Direction::Forward).run(&mut got);
    assert_fft_close(&got, &dft_naive(&x, Direction::Forward));
}

#[test]
fn any_fft_covers_a_size_sweep() {
    for n in 1..=64usize {
        let x = random_complex(n, 971 + n as u64);
        let mut got = x.clone();
        AnyFft::new(n, Direction::Forward).run(&mut got);
        let expect = dft_naive(&x, Direction::Forward);
        let err = rel_l2_error(&got, &expect);
        assert!(err < 1e-10, "n={n}: err={err:e}");
    }
}

#[test]
fn radix4_through_facade_matches_stockham() {
    let n = 4096;
    let x = random_complex(n, 972);
    let mut a = x.clone();
    Fft1d::new(n, Direction::Forward).run(&mut a);
    let mut b = x.clone();
    let mut scratch = vec![Complex64::ZERO; n];
    let tw = Radix4Twiddles::new(n, Direction::Forward);
    stockham_radix4_strided(&mut b, &mut scratch, n, 1, &tw);
    assert_fft_close(&b, &a);
}

#[test]
fn fused_and_pipelined_executors_agree_at_scale() {
    let (k, n, m) = (16usize, 16, 32);
    let x = random_complex(k * n * m, 973);
    let plan = FftPlan::builder(Dims::d3(k, n, m))
        .buffer_elems(1024)
        .threads(2, 2)
        .build()
        .unwrap();
    let mut a = x.clone();
    let mut wa = vec![Complex64::ZERO; x.len()];
    exec_real::execute(&plan, &mut a, &mut wa).unwrap();
    let mut b = x.clone();
    let mut wb = vec![Complex64::ZERO; x.len()];
    exec_real::execute_fused(&plan, &mut b, &mut wb).unwrap();
    assert_eq!(a, b);
}

#[test]
fn large_1d_roundtrip_through_facade() {
    let (n1, n2) = (64usize, 64usize);
    let n = n1 * n2;
    let x = random_complex(n, 974);
    let fwd = Fft1dLargePlan::new(n1, n2).buffer_elems(n / 8).threads(2, 2);
    let inv = Fft1dLargePlan::new(n1, n2)
        .buffer_elems(n / 8)
        .threads(2, 2)
        .direction(Direction::Inverse);
    let mut data = x.clone();
    let mut work = vec![Complex64::ZERO; n];
    fft1d_execute(&fwd, &mut data, &mut work).unwrap();
    fft1d_execute(&inv, &mut data, &mut work).unwrap();
    let back: Vec<Complex64> = data.iter().map(|c| c.scale(1.0 / n as f64)).collect();
    assert_fft_close(&back, &x);
}

#[test]
fn spl_normalization_is_semantics_preserving_on_plan_formulas() {
    use bwfft::spl::normalize::{node_count, simplify};
    use bwfft::spl::rewrite::fft3d_blocked;
    let f = fft3d_blocked(2, 4, 8, 2);
    let s = simplify(&f);
    bwfft::spl::dense::assert_formulas_equal(&f, &s);
    assert!(node_count(&s) <= node_count(&f));
}
