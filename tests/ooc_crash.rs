//! Real kill → restart drills for the crash-safe out-of-core tier,
//! driven through the actual `bwfft-cli` binary: the child process
//! genuinely dies by SIGABRT mid-stage (`--crash-at`), and a second
//! process resumes from the durable journal.
//!
//! The in-process (Halt-mode) variants of these scenarios live in
//! `crates/ooc/tests/ooc_resume.rs`; this file proves the same
//! contract survives an actual process boundary — nothing cached in
//! RAM, only what was fsynced.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bwfft::soak::{run_ooc_kill_soak, OocKillSoakConfig};
use std::os::unix::process::ExitStatusExt;
use std::path::PathBuf;
use std::process::Command;

const CLI: &str = env!("CARGO_BIN_EXE_bwfft-cli");

/// 4096 points under a 16 KiB budget: 64×64 split, 16 blocks in every
/// one of the 5 stages (mirrors `ooc_resume.rs`).
const N: &str = "4096";
const BUDGET: &str = "16384";
const SEED: &str = "7";
const BLOCKS_PER_STAGE: u64 = 16;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bwfft-ooc-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ooc(dir: &PathBuf, extra: &[&str]) -> std::process::Output {
    Command::new(CLI)
        .args(["ooc", "--n", N, "--budget", BUDGET, "--seed", SEED, "--workspace"])
        .arg(dir)
        .args(extra)
        .output()
        .expect("spawn bwfft-cli")
}

/// Pulls `key=value` off the machine-parseable `resume:` line.
fn resume_counter(stdout: &str, key: &str) -> u64 {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("resume: "))
        .unwrap_or_else(|| panic!("no resume line in:\n{stdout}"));
    line.split_whitespace()
        .find_map(|pair| pair.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key} in: {line}"))
        .parse()
        .unwrap()
}

#[test]
fn sigabrt_mid_stage_then_resume_finishes_with_exact_counters() {
    let dir = test_dir("basic");
    // Kill: abort after block 2 of stage 3 commits its journal record.
    let out = ooc(&dir, &["--crash-at", "3,2"]);
    assert_eq!(
        out.status.signal(),
        Some(libc_sigabrt()),
        "child must die by SIGABRT, got {:?}",
        out.status
    );
    assert!(
        dir.join("journal.bwfft").exists(),
        "killed run must leave its journal"
    );

    // Restart: a brand-new process with nothing but the disk state.
    let out = ooc(&dir, &["--resume", "--resume-verify", "all"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "resume failed:\n{stdout}");
    // Blocks commit in pipeline order, so the abort at (3, 2) left
    // exactly stages 0-2 complete plus blocks 0..=2 of stage 3.
    assert_eq!(resume_counter(&stdout, "skipped_blocks"), 3 * BLOCKS_PER_STAGE + 3);
    assert_eq!(resume_counter(&stdout, "rework_blocks"), BLOCKS_PER_STAGE - 3);
    assert_eq!(resume_counter(&stdout, "reverified_blocks"), 3 * BLOCKS_PER_STAGE + 3);
    assert!(resume_counter(&stdout, "resumed_bytes") > 0);
    assert!(
        stdout.contains("ooc contract holds"),
        "oracle must pass after resume:\n{stdout}"
    );
    assert!(!dir.exists(), "successful resume removes the workspace");
}

#[test]
fn kill_matrix_across_every_stage_holds() {
    // The full drill through the soak harness, pointed at the real
    // binary: one kill per stage, seeded tampers, bounded rework.
    let cfg = OocKillSoakConfig {
        cli: PathBuf::from(CLI),
        iters: 5,
        seed: 0xD1211,
        parent: Some(std::env::temp_dir()),
        ..OocKillSoakConfig::default()
    };
    let report = run_ooc_kill_soak(&cfg).expect("harness ran");
    assert!(report.holds(), "kill soak violated:\n{}", report.render());
    assert_eq!(report.kills, 5, "{}", report.render());
}

#[test]
fn resume_with_wrong_seed_is_a_typed_refusal() {
    let dir = test_dir("wrong-seed");
    let out = ooc(&dir, &["--crash-at", "1,4"]);
    assert!(out.status.signal().is_some());
    let out = Command::new(CLI)
        .args(["ooc", "--n", N, "--budget", BUDGET, "--seed", "8", "--workspace"])
        .arg(&dir)
        .arg("--resume")
        .output()
        .expect("spawn bwfft-cli");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "typed runtime refusal:\n{stderr}");
    assert!(
        stderr.contains("seed"),
        "refusal must name the mismatched field:\n{stderr}"
    );
    assert!(
        stderr.contains("--resume"),
        "failure must print the resume hint:\n{stderr}"
    );
    // The refusal must not have damaged anything: the right seed still
    // resumes to completion.
    let out = ooc(&dir, &["--resume"]);
    assert!(out.status.success());
}

#[test]
fn fresh_run_refuses_to_clobber_a_crashed_workspace() {
    let dir = test_dir("clobber");
    let out = ooc(&dir, &["--crash-at", "2,1"]);
    assert!(out.status.signal().is_some());
    // Re-running *without* --resume must refuse, exit 1, keep the dir.
    let out = ooc(&dir, &[]);
    assert_eq!(out.status.code(), Some(1));
    assert!(dir.join("journal.bwfft").exists());
    let out = ooc(&dir, &["--resume"]);
    assert!(out.status.success());
}

#[test]
fn workspace_gc_sweeps_only_stale_unnamed_workspaces() {
    let parent = test_dir("gc-parent");
    std::fs::create_dir_all(parent.join("bwfft-ooc-stale1")).unwrap();
    std::fs::create_dir_all(parent.join("bwfft-ooc-stale2")).unwrap();
    std::fs::create_dir_all(parent.join("my-checkpoint")).unwrap();
    let out = Command::new(CLI)
        .args(["workspace", "gc", "--older-than-secs", "0", "--dir"])
        .arg(&parent)
        .output()
        .expect("spawn bwfft-cli");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("2 stale workspace(s) removed"), "{stdout}");
    assert!(!parent.join("bwfft-ooc-stale1").exists());
    assert!(!parent.join("bwfft-ooc-stale2").exists());
    assert!(
        parent.join("my-checkpoint").exists(),
        "named checkpoint workspaces are never gc'd"
    );
    let _ = std::fs::remove_dir_all(&parent);
}

/// SIGABRT without pulling in libc: the value is POSIX-fixed.
fn libc_sigabrt() -> i32 {
    6
}
