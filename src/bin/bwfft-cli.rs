//! `bwfft-cli` — run and simulate bandwidth-efficient FFTs from the
//! command line.
//!
//! ```text
//! bwfft-cli machines
//! bwfft-cli run --dims 64x64x64 --threads 2,2 [--buffer 16384] [--inverse] [--verify]
//!               [--adapt] [--integrity] [--recover] [--inject-panic ROLE,T,I]
//!               [--timeout-ms N] [--seed S] [--profile[=json]] [--machine NAME]
//! bwfft-cli simulate --dims 512x512x512 --machine kabylake [--sockets 2] [--baselines]
//! bwfft-cli stream --machine haswell2667
//! bwfft-cli tune --dims 64x64 [--inverse] [--model-only] [--plan-stats] [--wisdom PATH]
//!               [--profile[=json]]
//! bwfft-cli bench [--suite smoke|fast|full] [--reps N] [--warmup N] [--seed S]
//!                 [--machine NAME] [--out PATH] [--derate F]
//!                 [--integrity [--baseline-out PATH]]
//!                 [--compare BASELINE [--current PATH]] [--threshold PCT]
//! bwfft-cli soak [--iters N] [--seed S] [--stall-ms N] [--serve [--serve-iters N]]
//!                [--ooc-kill [--ooc-dir PATH]]
//! bwfft-cli serve --requests N [--dims KxNxM] [--buffer B] [--threads D,C]
//!                 [--workers W] [--queue-depth Q] [--byte-budget BYTES]
//!                 [--deadline-ms N] [--arrival-us N] [--seed S]
//! bwfft-cli ooc --n N [--budget BYTES] [--bins K] [--seed S] [--inverse]
//!               [--threads D,C] [--inject-io-fault KIND,STAGE,ITER]
//!               [--workspace PATH [--resume] [--keep-workspace]
//!                [--resume-verify sample:K|all] [--crash-at STAGE,BLOCK]]
//! bwfft-cli workspace gc --dir PATH [--older-than-secs N]
//! bwfft-cli r2c --dims KxNxM [--threads D,C] [--buffer B] [--seed S] [--verify]
//!               [--integrity] [--recover] [--inject-panic ROLE,T,I] [--timeout-ms N]
//! bwfft-cli conv --dims KxNxM [--threads D,C] [--buffer B] [--seed S] [--impulse]
//!                [--verify] [--integrity] [--recover] [--inject-panic ROLE,T,I]
//!                [--timeout-ms N]
//! ```
//!
//! `--profile` traces the run and prints the per-stage roofline/overlap
//! summary; `--profile=json` emits the versioned JSON trace report as
//! the **last line** of stdout instead. On `run`, `--machine` names the
//! preset whose STREAM bandwidth anchors the %-of-achievable column
//! (default: kabylake).
//!
//! `bench` runs the canonical statistical suite (DESIGN.md §9) and
//! writes a versioned `bwfft-bench/1` record to `BENCH_<gitrev>.json`.
//! With `--compare BASELINE` it then gates against a baseline record:
//! the human diff table goes to stdout, the machine-readable verdict
//! is the **last line** of stdout, and a significant regression makes
//! the exit code nonzero (this is what `scripts/perf_gate.sh` wires
//! into CI). `--current PATH` compares two existing files without
//! running anything; `--derate F` pretends the run was `F`× slower — a
//! self-test proving the gate trips. `--integrity` arms the
//! steady-state guards (canaries + checksums) in the timed reps;
//! adding `--baseline-out PATH` switches to *paired* measurement —
//! every timed iteration runs one plain and one guarded rep, so slow
//! machine drift cancels out of the pair. The plain record goes to
//! PATH, the guarded one to `--out`, and the two are gated against
//! each other automatically (unless an explicit `--compare` overrides
//! the baseline). This is how the integrity-overhead budget in
//! `scripts/verify.sh` is enforced.
//!
//! `run --integrity` arms every integrity guard (buffer canaries,
//! per-block checksums, the whole-run Parseval check); `run --recover`
//! executes under the retry/backoff supervisor, which escalates
//! pipelined → fused → reference on repeated failure and prints the
//! recovery trail (also visible as `recovery` marks under
//! `--profile`). `soak` drives the randomized chaos harness for a
//! seeded number of iterations and fails (exit 1) on any contract
//! violation.
//!
//! `ooc` runs the out-of-core streaming tier (`bwfft-ooc`): a seeded
//! 1D transform staged through file-backed stores under a working
//! memory budget, verified by the sampled spot-check oracle and the
//! streamed Parseval identity. `--inject-io-fault read,1,0` arms a
//! one-shot storage fault (kind, stage index 0–4, block iteration) that
//! the stage-level retry ladder must absorb; the report line counts
//! `faults_hit` and retries so `scripts/verify.sh` can assert the
//! recovery actually happened.
//!
//! `ooc --workspace PATH` switches to the crash-safe lifecycle
//! (DESIGN.md §15): the run works in the named directory and commits a
//! durable `bwfft-ooc-journal/1` checkpoint record per completed block.
//! If the process dies — crash, OOM-kill, power cut, or the test-only
//! `--crash-at STAGE,BLOCK` abort — the workspace is kept and `ooc
//! --workspace PATH --resume` continues from the journal: it validates
//! the journaled plan and input fingerprint, re-verifies stored block
//! checksums per `--resume-verify` (default `sample:4`; `all` for
//! drills), skips completed work, and reruns at most the one in-flight
//! stage. The `resume:` report line carries the machine-parseable
//! skipped/re-verified/rework counters that `soak --ooc-kill`,
//! `tests/ooc_crash.rs` and the CI `ooc-crash` smoke assert. `workspace
//! gc` sweeps abandoned unnamed scratch directories; named checkpoint
//! workspaces are never touched. `soak --ooc-kill` runs the
//! kill/restart drill: child `ooc` processes aborted at seeded
//! (stage, block) points across all five stages, journals torn,
//! scratch blocks bit-flipped, then resumed — never wrong, never a
//! panic, rework bounded by one stage.
//!
//! `r2c` runs a real-input transform through the packed half-spectrum
//! path (DESIGN.md §13): r2c, the unnormalized c2r round-trip, the
//! packed-Parseval identity, and (with `--verify`) a differential
//! check against the reference tier. `conv` runs the planned *fused*
//! spectral convolution (`r2c → multiply fused into the merge stream →
//! c2r`) against a random kernel or — with `--impulse` — the unit
//! impulse, whose convolution must reproduce the input exactly;
//! `--verify` compares against the unfused reference pipeline and, on
//! small sizes, the direct O(n²) oracle. Both take the same
//! fault-tolerance flags as `run` (`--integrity`, `--recover`,
//! `--inject-panic`, `--timeout-ms`) and follow the §6 exit-code
//! discipline.
//!
//! `serve` drives the overload-safe concurrent service
//! (`bwfft-serve`) with an open-loop request schedule and prints the
//! drained report: completions with p50/p99 latency, rejections by
//! reason, deadline misses, degradation-governor transitions. `bench
//! --suite serve` runs the same driver through the statistical harness
//! and writes a `bwfft-bench/1` record whose service row carries
//! requests/sec, p50/p99 and the outcome counts; `--compare` then
//! gates the p99 tail exactly like medians.
//!
//! `serve --metrics` arms the live registry and the flight recorder:
//! Prometheus text (or, with `--metrics=json`, one-line
//! `bwfft-metrics/1` JSON as stdout's **last line**) is emitted at the
//! end of the run, every `--metrics-every-ms` milliseconds while it is
//! running, and any `bwfft-flight/1` dumps the recorder captured
//! (breaker degradations, integrity trips, panics) are printed before
//! the final snapshot. `stat --from A.json --to B.json` diffs two
//! snapshot transcripts into per-second rates and interval
//! percentiles. `bench --suite serve --metrics-overhead --baseline-out
//! PATH` measures the paired metrics-off/metrics-on runs and gates the
//! instrumentation overhead with the ordinary compare threshold — this
//! is how the `< 2%` budget in `scripts/verify.sh` and the CI
//! `metrics-overhead` job is enforced.
//!
//! ## Exit-code discipline
//!
//! | code | class | errors |
//! |------|-------|--------|
//! | 0 | success | — |
//! | 0 | serve drained | graceful drain: every submission got exactly one typed outcome; shed requests (`queue_full`, `byte_budget`, `pool_exhausted`, `breaker_open`, `shutting_down`) and `deadline-exceeded` outcomes are counted and reported, not faults |
//! | 1 | runtime fault | `WorkerPanicked`, `StageTimeout`, `Simulation`, `Integrity`, `Allocation`, failed verification, perf regression, soak contract violation, non-usage `Tuner`, every typed `ooc` failure (infeasible size/budget, exhausted stage ladder, oracle or Parseval mismatch, journal clobber/corruption, resume plan or fingerprint mismatch, scratch corruption) |
//! | 1 | serve fault | `Failed` request outcomes, drain accounting that does not balance, serve-soak contract violation |
//! | 2 | usage | `Plan`, `Config`, `InputLength`, `SocketMismatch`, bad-wisdom `Tuner`, bad flags, serve `InvalidRequest`/`InputLength` (malformed descriptors are the caller's fault, never load shedding) |
//!
//! The mapping is `BwfftError::is_usage()` / `ServeError::is_usage()`;
//! `exit_code_discipline` and `serve_exit_code_discipline` in the test
//! module assert it variant by variant. User errors print a one-line
//! typed message, never a backtrace.

use bwfft::baselines::{reference_impl, simulate_baseline, BaselineKind};
use bwfft::bench::compare::{compare, derate, verdict_json, GateConfig};
use bwfft::bench::measure::MeasureConfig;
use bwfft::bench::record::{bench_filename, read_file, write_file, BenchReport};
use bwfft::bench::serve_bench::{
    run_open_loop, run_serve_suite, run_serve_suite_paired, ServeBenchConfig,
};
use bwfft::bench::stats::StatsConfig;
use bwfft::bench::suite::SuiteKind;
use bwfft::bench::{run_suite, run_suite_paired};
use bwfft::core::exec_sim::{simulate, SimOptions};
use bwfft::core::{exec_real, Dims, FftPlan, RetryPolicy, Supervisor};
use bwfft::kernels::Direction;
use bwfft::machine::stream::stream_triad;
use bwfft::machine::{presets, MachineSpec};
use bwfft::metrics::{FlightRecorder, MetricsSnapshot, Registry};
use bwfft::num::compare::rel_l2_error;
use bwfft::num::{signal, AlignedVec, Complex64};
use bwfft::ooc::{
    gc_stale, run_checkpointed, CheckpointRun, CrashMode, CrashPoint, OocConfig, OocFault,
    OocFaultKind, OracleConfig, ResumeVerify,
};
use bwfft::pipeline::{AdaptiveWatchdog, FaultPlan, IntegrityConfig, Role};
use bwfft::real::{packed_spectrum_energy, RealFftPlan, SpectralConvPlan};
use bwfft::serve::ServeError;
use bwfft::soak::{
    run_ooc_kill_soak, run_serve_soak, run_soak, OocKillSoakConfig, ServeSoakConfig, SoakConfig,
};
use bwfft::trace::TraceCollector;
use bwfft::tuner::{wisdom, HostFingerprint, PlanCache, Tuner, TunerOptions, Wisdom, WisdomLoad};
use bwfft::BwfftError;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

/// CLI failure, split by whose fault it is: usage errors (exit 2,
/// usage text shown) vs runtime faults (exit 1, typed message only).
#[derive(Debug)]
enum CliError {
    Usage(String),
    Runtime(String),
}

impl From<BwfftError> for CliError {
    fn from(e: BwfftError) -> Self {
        if e.is_usage() {
            CliError::Usage(e.to_string())
        } else {
            CliError::Runtime(e.to_string())
        }
    }
}

impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        // Malformed descriptors are the caller's fault (exit 2); load
        // shedding surfaced as an error is a runtime condition (exit 1).
        if e.is_usage() {
            CliError::Usage(e.to_string())
        } else {
            CliError::Runtime(e.to_string())
        }
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  bwfft-cli machines
  bwfft-cli run --dims KxNxM [--threads D,C] [--buffer B] [--inverse] [--verify]
                [--adapt] [--integrity] [--recover] [--inject-panic ROLE,T,I]
                [--timeout-ms N] [--profile[=json]] [--machine NAME]
  bwfft-cli simulate --dims KxNxM --machine NAME [--sockets S] [--baselines]
  bwfft-cli stream --machine NAME
  bwfft-cli tune --dims KxNxM [--inverse] [--model-only] [--plan-stats] [--wisdom PATH]
                [--profile[=json]]
  bwfft-cli bench [--suite smoke|fast|full|serve] [--reps N] [--warmup N] [--seed S]
                  [--machine NAME] [--out PATH] [--derate F]
                  [--integrity [--baseline-out PATH]]
                  [--compare BASELINE [--current PATH]] [--threshold PCT]
                  [--requests N] [--workers W] [--arrival-us N]
                  [--metrics-overhead --baseline-out PATH]
  bwfft-cli soak [--iters N] [--seed S] [--stall-ms N] [--serve [--serve-iters N]]
                 [--ooc-kill [--ooc-dir PATH]]
  bwfft-cli serve --requests N [--dims KxNxM] [--buffer B] [--threads D,C]
                  [--workers W] [--queue-depth Q] [--byte-budget BYTES]
                  [--deadline-ms N] [--arrival-us N] [--seed S]
                  [--metrics[=json|prom]] [--metrics-every-ms N]
  bwfft-cli stat --from A.json --to B.json
  bwfft-cli ooc --n N [--budget BYTES] [--bins K] [--seed S] [--inverse]
                [--threads D,C] [--inject-io-fault KIND,STAGE,ITER]
                [--workspace PATH [--resume] [--keep-workspace]
                 [--resume-verify sample:K|all] [--crash-at STAGE,BLOCK]]
  bwfft-cli workspace gc --dir PATH [--older-than-secs N]
  bwfft-cli r2c --dims KxNxM [--threads D,C] [--buffer B] [--seed S] [--verify]
                [--integrity] [--recover] [--inject-panic ROLE,T,I] [--timeout-ms N]
  bwfft-cli conv --dims KxNxM [--threads D,C] [--buffer B] [--seed S] [--impulse]
                 [--verify] [--integrity] [--recover] [--inject-panic ROLE,T,I]
                 [--timeout-ms N]
machines: kabylake | haswell4770 | amdfx | haswell2667 | opteron6276";

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(cmd) = args.first() else {
        return Err(usage("missing command"));
    };
    // `workspace` takes a positional subaction before its flags.
    if cmd == "workspace" {
        return match args.get(1).map(String::as_str) {
            Some("gc") => {
                let opts = parse_flags(&args[2..]).map_err(usage)?;
                cmd_workspace_gc(&opts)
            }
            _ => Err(usage(
                "workspace takes the `gc` subaction: workspace gc --dir PATH [--older-than-secs N]",
            )),
        };
    }
    let opts = parse_flags(&args[1..]).map_err(usage)?;
    match cmd.as_str() {
        "machines" => {
            for spec in presets::all() {
                println!(
                    "{:<36} {} sockets, {} threads, {} MB LLC, {} GB/s STREAM",
                    spec.name,
                    spec.sockets,
                    spec.total_threads(),
                    spec.llc().size_bytes >> 20,
                    spec.total_dram_bw_gbs()
                );
            }
            Ok(())
        }
        "run" => cmd_run(&opts),
        "simulate" => cmd_simulate(&opts),
        "tune" => cmd_tune(&opts),
        "bench" => cmd_bench(&opts),
        "soak" => cmd_soak(&opts),
        "serve" => cmd_serve(&opts),
        "stat" => cmd_stat(&opts),
        "ooc" => cmd_ooc(&opts),
        "r2c" => cmd_r2c(&opts),
        "conv" => cmd_conv(&opts),
        "stream" => {
            let spec = machine_by_name(opts.get("machine").ok_or_else(|| usage("--machine required"))?)
                .map_err(usage)?;
            let r = stream_triad(&spec, 1 << 24);
            println!(
                "{}: triad {:.1} GB/s ({:.1} per socket)",
                spec.name, r.triad_gbs, r.per_socket_gbs
            );
            Ok(())
        }
        other => Err(usage(format!("unknown command `{other}`"))),
    }
}

/// How `--metrics[=json|prom]` was requested: `None` = off,
/// `Some(false)` = Prometheus text (the bare default), `Some(true)` =
/// one-line `bwfft-metrics/1` JSON.
fn metrics_mode(opts: &HashMap<String, String>) -> Result<Option<bool>, CliError> {
    match opts.get("metrics").map(String::as_str) {
        None => Ok(None),
        Some("" | "prom") => Ok(Some(false)),
        Some("json") => Ok(Some(true)),
        Some(other) => Err(usage(format!(
            "bad --metrics format `{other}` (expected `--metrics`, `--metrics=json` or `--metrics=prom`)"
        ))),
    }
}

/// Renders one metrics snapshot in the requested exposition format.
/// JSON is one line so scripted consumers can take stdout's last line;
/// Prometheus text is the multi-line scrape page.
fn emit_metrics(snap: &MetricsSnapshot, json: bool) {
    if json {
        println!("{}", snap.to_json());
    } else {
        print!("{}", snap.to_prometheus());
    }
}

/// How `--profile[=json]` was requested: `None` = off,
/// `Some(false)` = human report, `Some(true)` = JSON export.
fn profile_mode(opts: &HashMap<String, String>) -> Result<Option<bool>, CliError> {
    match opts.get("profile").map(String::as_str) {
        None => Ok(None),
        Some("") => Ok(Some(false)),
        Some("json") => Ok(Some(true)),
        Some(other) => Err(usage(format!(
            "bad --profile format `{other}` (expected `--profile` or `--profile=json`)"
        ))),
    }
}

/// Renders a finished trace report in the requested format. JSON goes
/// out as a single line so scripted consumers can take stdout's last
/// line.
fn emit_profile(report: &bwfft::trace::TraceReport, json: bool) {
    if json {
        println!("{}", bwfft::trace::json::to_json(report));
    } else {
        println!("{report}");
    }
}

fn cmd_run(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let dims = parse_dims(opts.get("dims").ok_or_else(|| usage("--dims required"))?)
        .map_err(usage)?;
    let (p_d, p_c) = opts
        .get("threads")
        .map(|s| parse_pair(s))
        .transpose()
        .map_err(usage)?
        .unwrap_or((2, 2));
    let mut builder = FftPlan::builder(dims).threads(p_d, p_c);
    if let Some(b) = opts.get("buffer") {
        builder = builder.buffer_elems(b.parse().map_err(|_| usage("bad --buffer"))?);
    }
    if opts.contains_key("inverse") {
        builder = builder.direction(Direction::Inverse);
    }
    if opts.contains_key("adapt") {
        builder = builder.adapt_to_host();
    }
    let plan = builder
        .build()
        .map_err(|e| CliError::from(BwfftError::from(e)))?;
    let mut exec_cfg = bwfft::core::ExecConfig::default();
    if let Some(spec) = opts.get("inject-panic") {
        exec_cfg.fault = Some(parse_fault(spec).map_err(usage)?);
        bwfft::pipeline::fault::silence_injected_panic_reports();
    }
    if opts.contains_key("integrity") {
        // Arm every guard: buffer canaries and per-block checksums in
        // the pipeline, plus the whole-run Parseval check.
        exec_cfg.integrity = IntegrityConfig::full();
        exec_cfg.verify_energy = true;
    }
    if let Some(ms) = opts.get("timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| usage("bad --timeout-ms"))?;
        exec_cfg.iter_timeout = Some(std::time::Duration::from_millis(ms));
    } else {
        // No explicit budget: arm the adaptive watchdog, which sizes
        // stall budgets from measured step times instead of a guess.
        // The raised floor tolerates scheduler hiccups on busy hosts.
        exec_cfg.adaptive_watchdog = Some(AdaptiveWatchdog {
            min: std::time::Duration::from_millis(250),
            ..AdaptiveWatchdog::default()
        });
    }
    let profile = profile_mode(opts)?;
    let collector = profile.map(|_| Arc::new(TraceCollector::new()));
    if let Some(c) = &collector {
        exec_cfg.trace = Some(Arc::clone(c));
    }
    let total = dims.total();
    println!(
        "running {} with {} data + {} compute threads, b = {} elems, {} pipeline iterations/stage",
        dims.label(),
        plan.p_d,
        plan.p_c,
        plan.buffer_elems,
        plan.iters_per_socket()
    );
    for d in &plan.degradations {
        println!("note: degraded to fused executor: {d}");
    }
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse().map_err(|_| usage("bad --seed")))
        .transpose()?
        .unwrap_or(42);
    let mut data = AlignedVec::from_slice(&signal::random_complex(total, seed));
    let original = data.clone();
    let mut work = AlignedVec::<Complex64>::zeroed(total);
    let t0 = std::time::Instant::now();
    let (report, executor_label) = if opts.contains_key("recover") {
        // Supervised execution: bounded retry/backoff per tier, then
        // escalation pipelined → fused → reference. The recovery trail
        // is printed here and (with --profile) exported as `recovery`
        // marks.
        let sup = Supervisor::new(RetryPolicy::default());
        let rep = sup
            .run(&plan, &mut data, &mut work, &exec_cfg)
            .map_err(|e| CliError::from(BwfftError::from(e)))?;
        if rep.recovered() {
            println!(
                "recovered at the {} tier after {} attempt(s):",
                rep.tier, rep.attempts
            );
            for ev in &rep.events {
                println!(
                    "  {} {} attempt {}: {}",
                    ev.action, ev.tier, ev.attempt, ev.error
                );
            }
        }
        let label = rep.tier.to_string();
        (rep.exec.unwrap_or_default(), label)
    } else {
        let rep = exec_real::execute_with(&plan, &mut data, &mut work, &exec_cfg)
            .map_err(|e| CliError::from(BwfftError::from(e)))?;
        let label = format!("{:?}", rep.executor).to_lowercase();
        (rep, label)
    };
    let dt = t0.elapsed();
    let gflops = plan.pseudo_flops() / dt.as_nanos() as f64;
    println!(
        "done in {dt:.2?} — {gflops:.2} pseudo-Gflop/s on this host ({executor_label} executor)"
    );
    if report.pin_failures > 0 {
        println!(
            "warning: {}/{} pin requests not honored ({})",
            report.pin_failures,
            report.pin_status.len(),
            report
                .pin_status
                .iter()
                .map(|s| s.describe())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    if opts.contains_key("verify") {
        let mut reference = original.clone();
        match dims {
            Dims::Three { k, n, m } => reference_impl::pencil_fft_3d(
                &mut reference,
                k,
                n,
                m,
                plan.dir,
            ),
            Dims::Two { n, m } => {
                reference_impl::pencil_fft_2d(&mut reference, n, m, plan.dir)
            }
        }
        let err = rel_l2_error(&data, &reference);
        println!("verification vs pencil-pencil reference: rel L2 error = {err:.2e}");
        if err > 1e-11 {
            return Err(CliError::Runtime("verification FAILED".into()));
        }
        println!("verification passed");
    }
    if let (Some(json), Some(collector)) = (profile, &collector) {
        // The %-of-achievable column needs a bandwidth roofline; use
        // the named preset's STREAM figure, defaulting to Kaby Lake.
        let spec = match opts.get("machine") {
            Some(name) => machine_by_name(name).map_err(usage)?,
            None => presets::kaby_lake_7700k(),
        };
        let bw = spec.total_dram_bw_gbs();
        if !json {
            let noted = if opts.contains_key("machine") { "" } else { " (default; set --machine)" };
            println!("achievable bandwidth reference: {bw:.1} GB/s from {}{noted}", spec.name);
        }
        let rep =
            bwfft::core::profile::profile_report(collector, &plan, &executor_label, Some(bw));
        emit_profile(&rep, json);
    }
    Ok(())
}

/// `soak`: the seeded chaos harness. Every iteration runs a random
/// shape under a random fault (or none) with all integrity guards
/// armed and the supervisor in charge, then checks the output against
/// the pencil-pencil reference. The contract — every run is either
/// correct or a typed error, never a wrong answer, never a panic —
/// failing is exit code 1.
fn cmd_soak(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let mut cfg = SoakConfig::default();
    if let Some(n) = opts.get("iters") {
        cfg.iters = n.parse().map_err(|_| usage("bad --iters"))?;
        if cfg.iters == 0 {
            return Err(usage("--iters must be at least 1"));
        }
    }
    if let Some(s) = opts.get("seed") {
        cfg.seed = s.parse().map_err(|_| usage("bad --seed"))?;
    }
    if let Some(ms) = opts.get("stall-ms") {
        let ms: u64 = ms.parse().map_err(|_| usage("bad --stall-ms"))?;
        cfg.stall = std::time::Duration::from_millis(ms);
    }
    println!(
        "soak: {} iteration(s), seed {:#x}, full fault matrix, integrity guards on",
        cfg.iters, cfg.seed
    );
    let report = run_soak(&cfg).map_err(CliError::from)?;
    println!("{}", report.render());
    if !report.holds() {
        return Err(CliError::Runtime(format!(
            "soak contract violated: {} silent corruption(s) in {} iteration(s)",
            report.silent_corruptions, report.iterations
        )));
    }
    println!("soak contract holds: never wrong, never a panic");
    if opts.contains_key("serve") {
        // The concurrent overload matrix: burst arrivals, oversized
        // requests, injected faults mid-flight, shutdown races.
        let mut scfg = ServeSoakConfig {
            seed: cfg.seed,
            ..ServeSoakConfig::default()
        };
        if let Some(n) = opts.get("serve-iters") {
            scfg.iters = n.parse().map_err(|_| usage("bad --serve-iters"))?;
            if scfg.iters == 0 {
                return Err(usage("--serve-iters must be at least 1"));
            }
        }
        println!(
            "serve soak: {} lifecycle(s), seed {:#x}, overload matrix \
             (burst / oversized / faults / shutdown races)",
            scfg.iters, scfg.seed
        );
        let sreport = run_serve_soak(&scfg).map_err(CliError::from)?;
        println!("{}", sreport.render());
        if !sreport.holds() {
            return Err(CliError::Runtime(format!(
                "serve soak contract violated: {} oracle mismatch(es), \
                 {} unbalanced lifecycle(s)",
                sreport.oracle_mismatches, sreport.unbalanced_lifecycles
            )));
        }
        println!("serve soak contract holds: one typed outcome per request, never wrong");
    }
    if opts.contains_key("ooc-kill") {
        // The kill/restart drill: real child processes aborted
        // mid-stage, journals torn, scratch bit-flipped, then resumed.
        let mut kcfg = OocKillSoakConfig {
            seed: cfg.seed,
            ..OocKillSoakConfig::default()
        };
        if let Some(d) = opts.get("ooc-dir") {
            kcfg.parent = Some(PathBuf::from(d));
        }
        println!(
            "ooc kill soak: {} kill/resume cycle(s), seed {:#x}, n = {}, \
             budget {} B (tamper matrix: torn tail / garbage tail / scratch flip)",
            kcfg.iters, kcfg.seed, kcfg.n, kcfg.budget_bytes
        );
        let kreport = run_ooc_kill_soak(&kcfg).map_err(|e| CliError::Runtime(e.to_string()))?;
        println!("{}", kreport.render());
        if !kreport.holds() {
            return Err(CliError::Runtime(format!(
                "ooc kill soak contract violated: {} wrong answer(s), {} panic(s), \
                 {} unbounded rework, {} unexpected exit(s)",
                kreport.wrong_answers,
                kreport.panics,
                kreport.unbounded_rework,
                kreport.unexpected_child_exits
            )));
        }
        println!("ooc kill soak contract holds: never wrong, never a panic, bounded rework");
    }
    Ok(())
}

/// Builds the open-loop driver config from `serve` / `bench --suite
/// serve` flags.
fn serve_bench_config(opts: &HashMap<String, String>) -> Result<ServeBenchConfig, CliError> {
    let mut cfg = ServeBenchConfig::default();
    if let Some(d) = opts.get("dims") {
        cfg.dims = parse_dims(d).map_err(usage)?;
    }
    if let Some(b) = opts.get("buffer") {
        cfg.buffer_elems = b.parse().map_err(|_| usage("bad --buffer"))?;
    }
    if let Some(t) = opts.get("threads") {
        cfg.threads = parse_pair(t).map_err(usage)?;
    }
    if let Some(n) = opts.get("requests") {
        cfg.requests = n.parse().map_err(|_| usage("bad --requests"))?;
        if cfg.requests == 0 {
            return Err(usage("--requests must be at least 1"));
        }
    }
    if let Some(w) = opts.get("workers") {
        cfg.workers = w.parse().map_err(|_| usage("bad --workers"))?;
        if cfg.workers == 0 {
            return Err(usage("--workers must be at least 1"));
        }
    }
    if let Some(q) = opts.get("queue-depth") {
        cfg.queue_capacity = q.parse().map_err(|_| usage("bad --queue-depth"))?;
        if cfg.queue_capacity == 0 {
            return Err(usage("--queue-depth must be at least 1"));
        }
    }
    if let Some(b) = opts.get("byte-budget") {
        cfg.byte_budget = Some(b.parse().map_err(|_| usage("bad --byte-budget"))?);
    }
    if let Some(ms) = opts.get("deadline-ms") {
        let ms: u64 = ms.parse().map_err(|_| usage("bad --deadline-ms"))?;
        cfg.deadline = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(us) = opts.get("arrival-us") {
        let us: u64 = us.parse().map_err(|_| usage("bad --arrival-us"))?;
        cfg.arrival = std::time::Duration::from_micros(us);
    }
    if let Some(s) = opts.get("seed") {
        cfg.seed = s.parse().map_err(|_| usage("bad --seed"))?;
    }
    Ok(cfg)
}

/// `serve`: throw an open-loop request schedule at the concurrent
/// service and print the drained report. A graceful drain — every
/// submission resolved to exactly one typed outcome — is exit 0 even
/// when requests were shed or timed out (that is the service working
/// as specified); `Failed` outcomes or unbalanced accounting are
/// exit 1.
fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let mut cfg = serve_bench_config(opts)?;
    let metrics_json = metrics_mode(opts)?;
    let every_ms: Option<u64> = opts
        .get("metrics-every-ms")
        .map(|s| s.parse().map_err(|_| usage("bad --metrics-every-ms")))
        .transpose()?;
    if every_ms == Some(0) {
        return Err(usage("--metrics-every-ms must be at least 1"));
    }
    if every_ms.is_some() && metrics_json.is_none() {
        return Err(usage("--metrics-every-ms requires --metrics[=json|prom]"));
    }
    let registry = metrics_json.map(|_| Arc::new(Registry::new()));
    let flight = metrics_json.map(|_| FlightRecorder::new(16));
    cfg.metrics = registry.clone();
    cfg.flight = flight.clone();
    println!(
        "serve: {} open-loop request(s) of {} (b = {}), {} worker(s), queue depth {}{}{}{}",
        cfg.requests,
        cfg.dims.label(),
        cfg.buffer_elems,
        cfg.workers,
        cfg.queue_capacity,
        match cfg.byte_budget {
            Some(b) => format!(", byte budget {b}"),
            None => String::new(),
        },
        match cfg.deadline {
            Some(d) => format!(", deadline {d:?}"),
            None => String::new(),
        },
        if cfg.arrival.is_zero() {
            ", burst arrivals".to_string()
        } else {
            format!(", {:?} inter-arrival", cfg.arrival)
        },
    );
    // Periodic sink: a scraper thread prints live registry snapshots
    // while the open-loop schedule runs. Pool/plan-cache counters sync
    // on the pre-drain scrape; everything else updates live.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sink = match (&registry, every_ms) {
        (Some(reg), Some(ms)) => {
            let reg = Arc::clone(reg);
            let stop = Arc::clone(&stop);
            let json = metrics_json == Some(true);
            Some(std::thread::spawn(move || {
                let tick = std::time::Duration::from_millis(ms);
                loop {
                    std::thread::sleep(tick);
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                    emit_metrics(&reg.snapshot(), json);
                }
            }))
        }
        _ => None,
    };
    let run = run_open_loop(&cfg);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(h) = sink {
        let _ = h.join();
    }
    let run = run.map_err(CliError::from)?;
    let rep = &run.report;
    let m = &run.metrics;
    println!(
        "drained in {:.2?}: {} completed ({} recovered), {} rejected, \
         {} deadline-exceeded, {} failed",
        run.elapsed, m.completed, rep.recovered_runs, m.rejected, m.deadline_exceeded, m.failed
    );
    let rj = &rep.rejected;
    if rj.total() > 0 {
        println!(
            "  shed by reason: queue_full {}, byte_budget {}, pool_exhausted {}, \
             breaker_open {}, shutting_down {}",
            rj.queue_full, rj.byte_budget, rj.pool_exhausted, rj.breaker_open, rj.shutting_down
        );
    }
    println!(
        "tiers: pipelined {}, fused {}, reference {}; breaker ended {:?} \
         ({} transition(s))",
        rep.tier_completed[0],
        rep.tier_completed[1],
        rep.tier_completed[2],
        rep.breaker_level,
        rep.breaker_transitions.len()
    );
    println!(
        "plan cache: hits={} misses={} evictions={}",
        rep.plan_cache.hits, rep.plan_cache.misses, rep.plan_cache.evictions
    );
    for t in &rep.breaker_transitions {
        println!("  {t}");
    }
    if m.completed > 0 {
        println!(
            "throughput {:.0} req/s; latency p50 {:.3} ms, p99 {:.3} ms",
            m.requests_per_sec,
            m.p50_ns / 1e6,
            m.p99_ns / 1e6
        );
    }
    if !rep.holds() {
        return Err(CliError::Runtime(format!(
            "serve accounting violated: {} admitted but {} outcome(s) delivered",
            rep.submitted,
            rep.outcomes()
        )));
    }
    if m.failed > 0 {
        return Err(CliError::Runtime(format!(
            "{} request(s) failed with typed errors",
            m.failed
        )));
    }
    println!("serve contract holds: every submission terminated with one typed outcome");
    if let Some(f) = &flight {
        let dumps = f.take_dumps();
        if !dumps.is_empty() {
            println!("flight recorder: {} dump(s)", dumps.len());
            for d in &dumps {
                if metrics_json == Some(true) {
                    println!("{}", d.to_json());
                } else {
                    println!(
                        "  {} at {} ns: {} request(s) captured",
                        d.trigger,
                        d.at_ns,
                        d.requests.len()
                    );
                }
            }
        }
    }
    // Final snapshot last, so `--metrics=json` consumers can take
    // stdout's last line.
    if let (Some(reg), Some(json)) = (&registry, metrics_json) {
        emit_metrics(&reg.snapshot(), json);
    }
    Ok(())
}

/// `stat`: diffs two `bwfft-metrics/1` snapshots (each file may be a
/// whole `serve --metrics=json` transcript — the last parseable line
/// wins) and pretty-prints the window as rates and interval
/// percentiles.
fn cmd_stat(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let from = load_metrics_snapshot(opts.get("from").ok_or_else(|| usage("--from required"))?)?;
    let to = load_metrics_snapshot(opts.get("to").ok_or_else(|| usage("--to required"))?)?;
    let d = to.diff(&from);
    let secs = d.uptime_ns as f64 / 1e9;
    println!("window: {:.3} s", secs);
    if !d.counters.is_empty() {
        println!("{:<36} {:>12} {:>12}", "counter", "delta", "per-sec");
        for (name, v) in &d.counters {
            let rate = if secs > 0.0 { *v as f64 / secs } else { 0.0 };
            println!("{name:<36} {v:>12} {rate:>12.1}");
        }
    }
    if !d.gauges.is_empty() {
        println!("{:<36} {:>12}", "gauge", "now");
        for (name, v) in &d.gauges {
            println!("{name:<36} {v:>12.1}");
        }
    }
    if !d.histograms.is_empty() {
        println!(
            "{:<36} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "p50", "p99", "max"
        );
        for (name, h) in &d.histograms {
            if h.count == 0 {
                continue;
            }
            println!(
                "{:<36} {:>10} {:>10} {:>10} {:>10}",
                name,
                h.count,
                h.p50().unwrap_or(0),
                h.p99().unwrap_or(0),
                h.max
            );
        }
    }
    Ok(())
}

/// Reads the **last** line of `path` that parses as a
/// `bwfft-metrics/1` snapshot, so redirected `serve --metrics=json`
/// transcripts work unedited.
fn load_metrics_snapshot(path: &str) -> Result<MetricsSnapshot, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))?;
    let mut last_err = None;
    for line in text.lines().rev() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match MetricsSnapshot::from_json(line) {
            Ok(snap) => return Ok(snap),
            Err(e) => last_err = last_err.or(Some(e)),
        }
    }
    Err(CliError::Runtime(match last_err {
        Some(e) => format!("{path}: no bwfft-metrics/1 snapshot line ({e})"),
        None => format!("{path}: empty file"),
    }))
}

/// `ooc`: the out-of-core streaming tier. Plans the four-step split for
/// a size that does not fit the working budget, streams it through
/// file-backed padded stores in a private workspace, and verifies with
/// the sampled spot-check + streamed-Parseval oracle. Typed failures
/// (infeasible budget, exhausted stage ladder, oracle mismatch) are
/// exit 1; malformed flags are exit 2.
fn cmd_ooc(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let n: usize = opts
        .get("n")
        .ok_or_else(|| usage("--n required"))?
        .parse()
        .map_err(|_| usage("bad --n"))?;
    let mut cfg = OocConfig::default();
    if opts.contains_key("inverse") {
        cfg.dir = Direction::Inverse;
    }
    if let Some(b) = opts.get("budget") {
        cfg.budget_bytes = b.parse().map_err(|_| usage("bad --budget"))?;
        if cfg.budget_bytes == 0 {
            return Err(usage("--budget must be at least 1 byte"));
        }
    }
    if let Some(t) = opts.get("threads") {
        let (p_d, p_c) = parse_pair(t).map_err(usage)?;
        if p_d == 0 || p_c == 0 {
            return Err(usage("--threads counts must be at least 1"));
        }
        cfg.p_d = p_d;
        cfg.p_c = p_c;
    }
    if let Some(spec) = opts.get("inject-io-fault") {
        cfg.fault = Some(parse_io_fault(spec).map_err(usage)?);
    }
    let workspace = opts.get("workspace").map(PathBuf::from);
    let resume = opts.contains_key("resume");
    let keep = opts.contains_key("keep-workspace");
    if workspace.is_none()
        && (resume || keep || opts.contains_key("resume-verify") || opts.contains_key("crash-at"))
    {
        return Err(usage(
            "--resume/--keep-workspace/--resume-verify/--crash-at require --workspace PATH",
        ));
    }
    if let Some(v) = opts.get("resume-verify") {
        cfg.checkpoint.resume_verify = parse_resume_verify(v).map_err(usage)?;
    }
    if let Some(spec) = opts.get("crash-at") {
        cfg.checkpoint.crash = Some(parse_crash_point(spec).map_err(usage)?);
    }
    let mut oracle_cfg = OracleConfig::default();
    if let Some(k) = opts.get("bins") {
        oracle_cfg.bins = k.parse().map_err(|_| usage("bad --bins"))?;
        if oracle_cfg.bins == 0 {
            return Err(usage("--bins must be at least 1"));
        }
    }
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse().map_err(|_| usage("bad --seed")))
        .transpose()?
        .unwrap_or(42);
    println!(
        "ooc: n = {n} ({} {:?}), budget {} B, {}+{} threads, oracle {} bin(s), seed {seed}{}",
        fmt_bytes(n as u64 * 16),
        cfg.dir,
        cfg.budget_bytes,
        cfg.p_d,
        cfg.p_c,
        oracle_cfg.bins,
        match &cfg.fault {
            Some(f) => format!(
                ", injected {:?} fault at stage {} iter {}",
                f.kind, f.stage, f.iter
            ),
            None => String::new(),
        }
    );
    let out = match &workspace {
        Some(dir) => {
            println!(
                "checkpoint: workspace {} ({})",
                dir.display(),
                if resume { "resuming journal" } else { "fresh journal" }
            );
            let run = CheckpointRun { dir, resume, keep };
            run_checkpointed(n, seed, &cfg, &oracle_cfg, &run).map_err(|e| {
                eprintln!(
                    "note: workspace kept at {}; rerun with --resume to continue",
                    dir.display()
                );
                CliError::Runtime(e.to_string())
            })?
        }
        None => bwfft::ooc::run_generated(n, seed, &cfg, &oracle_cfg)
            .map_err(|e| CliError::Runtime(e.to_string()))?,
    };
    let p = &out.plan;
    let r = &out.report;
    println!(
        "plan: {} × {} split, {} elems/half buffer ({} of data resident), \
         strides {}/{} cols",
        p.n1,
        p.n2,
        p.half_elems,
        fmt_bytes(p.half_elems as u64 * 16),
        p.stride_cols_n1,
        p.stride_cols_n2
    );
    println!(
        "streamed {} read + {} written in {:.2?} ({:.2} GB/s storage), \
         retries={} serial_fallbacks={} faults_hit={}",
        fmt_bytes(r.bytes_read),
        fmt_bytes(r.bytes_written),
        std::time::Duration::from_nanos(r.wall_ns),
        r.storage_gbs(),
        r.retries,
        r.serial_fallbacks,
        r.faults_hit
    );
    if workspace.is_some() {
        // Machine-parseable for the kill/restart harness and verify.sh.
        println!(
            "resume: resumed={} skipped_blocks={} reverified_blocks={} \
             rework_blocks={} resumed_bytes={}",
            r.resumed, r.skipped_blocks, r.reverified_blocks, r.rework_blocks, r.resumed_bytes
        );
    }
    let o = &out.oracle;
    println!(
        "oracle: {} bin(s), max |Δ| {:.2e} (tol {:.2e}); Parseval rel err {:.2e}",
        o.bins_checked, o.max_abs_err, o.tol, o.parseval_rel_err
    );
    println!("ooc contract holds: sampled spot-check and streamed Parseval agree");
    Ok(())
}

/// Fault-tolerance knobs shared by `r2c` and `conv` (same flags as
/// `run`): `--inject-panic`, `--integrity`, `--timeout-ms` / adaptive
/// watchdog.
fn real_exec_cfg(opts: &HashMap<String, String>) -> Result<bwfft::core::ExecConfig, CliError> {
    let mut exec_cfg = bwfft::core::ExecConfig::default();
    if let Some(spec) = opts.get("inject-panic") {
        exec_cfg.fault = Some(parse_fault(spec).map_err(usage)?);
        bwfft::pipeline::fault::silence_injected_panic_reports();
    }
    if opts.contains_key("integrity") {
        exec_cfg.integrity = IntegrityConfig::full();
        exec_cfg.verify_energy = true;
    }
    if let Some(ms) = opts.get("timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| usage("bad --timeout-ms"))?;
        exec_cfg.iter_timeout = Some(std::time::Duration::from_millis(ms));
    } else {
        exec_cfg.adaptive_watchdog = Some(AdaptiveWatchdog {
            min: std::time::Duration::from_millis(250),
            ..AdaptiveWatchdog::default()
        });
    }
    Ok(exec_cfg)
}

/// Builds the real-transform plan the `r2c`/`conv` subcommands share.
fn real_plan_from_opts(opts: &HashMap<String, String>) -> Result<RealFftPlan, CliError> {
    let dims = parse_dims(opts.get("dims").ok_or_else(|| usage("--dims required"))?)
        .map_err(usage)?;
    let (p_d, p_c) = opts
        .get("threads")
        .map(|s| parse_pair(s))
        .transpose()
        .map_err(usage)?
        .unwrap_or((2, 2));
    let mut builder = RealFftPlan::builder(dims).threads(p_d, p_c);
    if let Some(b) = opts.get("buffer") {
        builder = builder.buffer_elems(b.parse().map_err(|_| usage("bad --buffer"))?);
    }
    if opts.contains_key("adapt") {
        builder = builder.adapt_to_host();
    }
    builder
        .build()
        .map_err(|e| CliError::from(BwfftError::from(e)))
}

fn random_real_field(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = signal::SplitMix64::new(seed);
    (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect()
}

/// Prints the recovery trail of one supervised leg, mirroring `run
/// --recover`'s format.
fn print_recovery(rep: &bwfft::core::SupervisedReport, leg: &str) {
    if rep.recovered() {
        println!(
            "{leg}: recovered at the {} tier after {} attempt(s):",
            rep.tier, rep.attempts
        );
        for ev in &rep.events {
            println!("  {} {} attempt {}: {}", ev.action, ev.tier, ev.attempt, ev.error);
        }
    }
}

/// `r2c`: a real-input transform through the packed half-spectrum path
/// (DESIGN.md §13). Runs r2c on a seeded real field, round-trips it
/// through the unnormalized c2r, checks the packed-Parseval identity,
/// and with `--verify` also matches the spectrum against the reference
/// tier bin by bin. The bytes summary states the real-path win over
/// the complex path for the same logical transform.
fn cmd_r2c(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let plan = real_plan_from_opts(opts)?;
    let exec_cfg = real_exec_cfg(opts)?;
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse().map_err(|_| usage("bad --seed")))
        .transpose()?
        .unwrap_or(42);
    let n = plan.real_elems();
    // Complex path for the same logical transform: N complex in + N
    // complex out. Real path: N doubles in, N/2+rows packed bins out.
    let packed_bytes = 8 * n as u64 + 16 * plan.spectrum_elems() as u64;
    let complex_bytes = 32 * n as u64;
    println!(
        "r2c {} — {} packed bins vs {} complex bins; {} vs {} moved \
         ({:.1} vs 32.0 bytes/elem)",
        plan.dims().label(),
        plan.spectrum_elems(),
        n,
        fmt_bytes(packed_bytes),
        fmt_bytes(complex_bytes),
        packed_bytes as f64 / n as f64
    );
    let x = random_real_field(n, seed);
    let mut work = vec![Complex64::ZERO; plan.packed_elems()];
    let mut spec = vec![Complex64::ZERO; plan.spectrum_elems()];
    let t0 = std::time::Instant::now();
    if opts.contains_key("recover") {
        let sup = Supervisor::new(RetryPolicy::default());
        let rep = sup_err(plan.r2c_supervised(&sup, &x, &mut work, &mut spec, &exec_cfg))?;
        print_recovery(&rep, "r2c");
    } else {
        sup_err(plan.r2c_with(&x, &mut work, &mut spec, &exec_cfg))?;
    }
    let dt = t0.elapsed();
    println!("forward r2c done in {dt:.2?}");

    // Packed Parseval: N·Σx² must equal the weighted spectrum energy.
    let e_x: f64 = x.iter().map(|v| v * v).sum();
    let e_p = packed_spectrum_energy(&spec, plan.rows());
    let parseval_rel = (e_p - n as f64 * e_x).abs() / (n as f64 * e_x);
    println!("packed Parseval rel err = {parseval_rel:.2e}");
    if parseval_rel > 1e-9 {
        return Err(CliError::Runtime("packed Parseval identity FAILED".into()));
    }

    // Round trip: c2r(r2c(x)) must be N·x.
    let mut back = vec![0.0; n];
    sup_err(plan.c2r(&spec, &mut work, &mut back))?;
    bwfft::real::normalize(&mut back);
    let roundtrip_err = back
        .iter()
        .zip(&x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("c2r round-trip max |Δ| = {roundtrip_err:.2e}");
    if roundtrip_err > 1e-10 {
        return Err(CliError::Runtime("c2r round-trip FAILED".into()));
    }

    if opts.contains_key("verify") {
        let mut want = vec![Complex64::ZERO; plan.spectrum_elems()];
        sup_err(plan.r2c_reference(&x, &mut want))?;
        let scale = want.iter().map(|v| v.abs()).fold(1.0, f64::max);
        let max_err = spec
            .iter()
            .zip(&want)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
            / scale;
        println!("verification vs reference tier: rel max err = {max_err:.2e}");
        if max_err > 1e-11 {
            return Err(CliError::Runtime("verification FAILED".into()));
        }
        println!("verification passed");
    }
    println!("r2c contract holds: Parseval and round-trip verified on the packed path");
    Ok(())
}

/// `conv`: the planned fused spectral convolution. The kernel is a
/// seeded random field, or with `--impulse` the unit impulse — whose
/// circular convolution must reproduce the input exactly. `--verify`
/// compares against the unfused reference-tier pipeline (and on sizes
/// ≤ 4096 elements also the direct O(n²) oracle).
fn cmd_conv(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let plan = real_plan_from_opts(opts)?;
    let exec_cfg = real_exec_cfg(opts)?;
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse().map_err(|_| usage("bad --seed")))
        .transpose()?
        .unwrap_or(42);
    let n = plan.real_elems();
    let impulse = opts.contains_key("impulse");
    let kernel: Vec<f64> = if impulse {
        let mut g = vec![0.0; n];
        g[0] = 1.0;
        g
    } else {
        random_real_field(n, seed.wrapping_add(1))
    };
    let dims_label = plan.dims().label();
    // Fused path traffic: fold (8N read), half-width transform, the
    // in-place multiply-merge, and the unfold (8N write) — the packed
    // product spectrum is never materialized. The complex path would
    // run three full-length transforms.
    println!(
        "conv {} with {} kernel — fused spectral path, {} packed bins \
         (product spectrum never materialized)",
        dims_label,
        if impulse { "impulse" } else { "random" },
        plan.spectrum_elems()
    );
    let conv = SpectralConvPlan::new(plan, &kernel)
        .map_err(|e| CliError::from(BwfftError::from(e)))?;
    let x = random_real_field(n, seed);
    let mut got = x.clone();
    let mut work = vec![Complex64::ZERO; conv.plan().packed_elems()];
    let t0 = std::time::Instant::now();
    if opts.contains_key("recover") {
        let sup = Supervisor::new(RetryPolicy::default());
        let rep = sup_err(conv.convolve_supervised(&sup, &mut got, &mut work, &exec_cfg))?;
        print_recovery(&rep.forward, "forward leg");
        print_recovery(&rep.inverse, "inverse leg");
        if rep.recovered() {
            println!(
                "recovered at the {} tier after {} attempt(s)",
                rep.worst_tier(),
                rep.attempts()
            );
        }
    } else {
        sup_err(conv.convolve_with(&mut got, &mut work, &exec_cfg))?;
    }
    let dt = t0.elapsed();
    println!("fused convolution done in {dt:.2?}");

    if impulse {
        // conv(x, δ) == x, exactly (to round-off).
        let max_err = got
            .iter()
            .zip(&x)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        println!("impulse identity max |Δ| = {max_err:.2e}");
        if max_err > 1e-10 {
            return Err(CliError::Runtime("impulse identity FAILED".into()));
        }
    }
    if opts.contains_key("verify") {
        // Unfused reference pipeline: r2c both operands on the
        // reference tier, multiply the packed spectra, c2r, /N.
        let plan = conv.plan();
        let mut xs = vec![Complex64::ZERO; plan.spectrum_elems()];
        let mut gs = vec![Complex64::ZERO; plan.spectrum_elems()];
        sup_err(plan.r2c_reference(&x, &mut xs))?;
        sup_err(plan.r2c_reference(&kernel, &mut gs))?;
        for (a, b) in xs.iter_mut().zip(&gs) {
            *a *= *b;
        }
        let mut want = vec![0.0; n];
        sup_err(plan.c2r_reference(&xs, &mut want))?;
        bwfft::real::normalize(&mut want);
        let scale = want.iter().map(|v| v.abs()).fold(1.0, f64::max);
        let rel_err = got
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
            / scale;
        println!("verification vs unfused reference pipeline: rel max err = {rel_err:.2e}");
        if rel_err > 1e-10 {
            return Err(CliError::Runtime("verification FAILED".into()));
        }
        if n <= 4096 {
            let direct = conv_direct_nd(&x, &kernel, conv.plan().dims());
            let d_err = got
                .iter()
                .zip(&direct)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
                / scale;
            println!("verification vs direct O(n²) oracle: rel max err = {d_err:.2e}");
            if d_err > 1e-9 {
                return Err(CliError::Runtime("direct-oracle verification FAILED".into()));
            }
        }
        println!("verification passed");
    }
    println!("conv contract holds: fused spectral convolution verified");
    Ok(())
}

/// Direct multidimensional circular convolution, the O(n²) oracle for
/// `conv --verify` on small sizes.
fn conv_direct_nd(x: &[f64], g: &[f64], dims: Dims) -> Vec<f64> {
    let shape: Vec<usize> = match dims {
        Dims::Two { n, m } => vec![n, m],
        Dims::Three { k, n, m } => vec![k, n, m],
    };
    let total: usize = shape.iter().product();
    let strides: Vec<usize> = {
        let mut s = vec![1usize; shape.len()];
        for i in (0..shape.len() - 1).rev() {
            s[i] = s[i + 1] * shape[i + 1];
        }
        s
    };
    let coords = |mut idx: usize| -> Vec<usize> {
        shape
            .iter()
            .zip(&strides)
            .map(|(_, &st)| {
                let c = idx / st;
                idx %= st;
                c
            })
            .collect()
    };
    let mut out = vec![0.0; total];
    for (i, o) in out.iter_mut().enumerate() {
        let ci = coords(i);
        for (j, xj) in x.iter().enumerate() {
            let cj = coords(j);
            let gi: usize = ci
                .iter()
                .zip(&cj)
                .zip(shape.iter().zip(&strides))
                .map(|((&a, &b), (&d, &st))| ((d + a - b) % d) * st)
                .sum();
            *o += xj * g[gi];
        }
    }
    out
}

/// Maps a core-layer result into the CLI error discipline.
fn sup_err<T>(r: Result<T, bwfft::core::CoreError>) -> Result<T, CliError> {
    r.map_err(|e| CliError::from(BwfftError::from(e)))
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

/// Parses `KIND,STAGE,ITER` (e.g. `read,1,0`) into a one-shot storage
/// fault for the ooc tier.
fn parse_io_fault(s: &str) -> Result<OocFault, String> {
    let parts: Vec<&str> = s.split(',').collect();
    let [kind, stage, iter] = parts[..] else {
        return Err("--inject-io-fault needs KIND,STAGE,ITER".into());
    };
    let kind = match kind {
        "read" => OocFaultKind::Read,
        "write" => OocFaultKind::Write,
        other => return Err(format!("bad fault kind `{other}` (read|write)")),
    };
    let stage: usize = stage.parse().map_err(|_| "bad fault stage".to_string())?;
    if stage >= bwfft::ooc::STAGE_NAMES.len() {
        return Err(format!(
            "fault stage {stage} out of range (0..{})",
            bwfft::ooc::STAGE_NAMES.len() - 1
        ));
    }
    let iter = iter.parse().map_err(|_| "bad fault iter".to_string())?;
    Ok(OocFault { stage, iter, kind })
}

/// Parses `sample:K` or `all` into a resume re-verification policy.
fn parse_resume_verify(s: &str) -> Result<ResumeVerify, String> {
    if s == "all" {
        return Ok(ResumeVerify::All);
    }
    if let Some(k) = s.strip_prefix("sample:") {
        let k: usize = k
            .parse()
            .map_err(|_| "bad --resume-verify sample count".to_string())?;
        if k == 0 {
            return Err("--resume-verify sample count must be at least 1".into());
        }
        return Ok(ResumeVerify::Sample(k));
    }
    Err(format!("bad --resume-verify `{s}` (sample:K|all)"))
}

/// Parses `STAGE,BLOCK` into an abort-mode crash point: the process
/// genuinely dies mid-stage, which is what the kill/restart drill and
/// the CI crash smoke need.
fn parse_crash_point(s: &str) -> Result<CrashPoint, String> {
    let (stage, block) = s.split_once(',').ok_or("--crash-at needs STAGE,BLOCK")?;
    let stage: usize = stage.parse().map_err(|_| "bad crash stage".to_string())?;
    if stage >= bwfft::ooc::STAGE_NAMES.len() {
        return Err(format!(
            "crash stage {stage} out of range (0..{})",
            bwfft::ooc::STAGE_NAMES.len() - 1
        ));
    }
    let block = block.parse().map_err(|_| "bad crash block".to_string())?;
    Ok(CrashPoint {
        stage,
        block,
        mode: CrashMode::Abort,
    })
}

/// `workspace gc`: sweep abandoned `bwfft-ooc-*` scratch directories
/// under `--dir` whose last write is older than the threshold. Named
/// checkpoint workspaces (kept on crash for resume) are never touched.
fn cmd_workspace_gc(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let dir = PathBuf::from(opts.get("dir").ok_or_else(|| usage("--dir required"))?);
    let secs: u64 = opts
        .get("older-than-secs")
        .map(|s| s.parse().map_err(|_| usage("bad --older-than-secs")))
        .transpose()?
        .unwrap_or(24 * 3600);
    let removed = gc_stale(&dir, std::time::Duration::from_secs(secs))
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    for p in &removed {
        println!("removed {}", p.display());
    }
    println!(
        "workspace gc: {} stale workspace(s) removed under {} (threshold {secs}s)",
        removed.len(),
        dir.display()
    );
    Ok(())
}

/// Parses `ROLE,THREAD,ITER` (e.g. `compute,0,3`) into a fault plan.
fn parse_fault(s: &str) -> Result<FaultPlan, String> {
    let parts: Vec<&str> = s.split(',').collect();
    let [role, thread, iter] = parts[..] else {
        return Err("--inject-panic needs ROLE,THREAD,ITER".into());
    };
    let role = match role {
        "data" => Role::Data,
        "compute" => Role::Compute,
        other => return Err(format!("bad role `{other}` (data|compute)")),
    };
    let thread = thread.parse().map_err(|_| "bad fault thread".to_string())?;
    let iter = iter.parse().map_err(|_| "bad fault iter".to_string())?;
    Ok(FaultPlan::panic_at(role, thread, iter))
}

/// `tune`: search for the best plan for a shape, demonstrate the cache
/// hit on a repeated request, and optionally persist/reuse wisdom.
fn cmd_tune(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let dims = parse_dims(opts.get("dims").ok_or_else(|| usage("--dims required"))?)
        .map_err(usage)?;
    let dir = if opts.contains_key("inverse") {
        Direction::Inverse
    } else {
        Direction::Forward
    };
    let profile = profile_mode(opts)?;
    let collector = profile.map(|_| Arc::new(TraceCollector::new()));
    let fp = HostFingerprint::detect();
    let mut tuner_opts = TunerOptions::for_host(&bwfft::core::HostProfile::detect());
    if opts.contains_key("model-only") {
        tuner_opts.model_only = true;
    }
    if let Some(c) = &collector {
        tuner_opts.trace = Some(Arc::clone(c));
    }
    let cache = PlanCache::new(Tuner::new(tuner_opts), fp.clone());

    let wisdom_path = opts.get("wisdom").map(PathBuf::from);
    if let Some(path) = &wisdom_path {
        // Version/host mismatch and missing files are typed re-tune
        // reasons, not failures; only unreadable/corrupt files warn.
        match wisdom::load(path, &fp) {
            Ok(WisdomLoad::Usable(w)) => {
                let mut seeded = 0usize;
                for rec in &w.records {
                    match cache.seed(rec) {
                        Ok(()) => seeded += 1,
                        Err(e) => println!("warning: wisdom record skipped: {e}"),
                    }
                }
                println!("wisdom: loaded {seeded} tuned plan(s) from {}", path.display());
            }
            Ok(WisdomLoad::Retune(reason)) => {
                println!("wisdom: tuning from scratch ({reason})");
            }
            Err(e) => println!("warning: wisdom unusable, tuning from scratch: {e}"),
        }
    }

    let had_wisdom = cache.contains(dims, dir);
    let t0 = std::time::Instant::now();
    let _plan = cache
        .get_or_tune(dims, dir)
        .map_err(|e| CliError::from(BwfftError::from(e)))?;
    if had_wisdom {
        println!("tuning skipped (wisdom hit) for {} {dir:?}", dims.label());
    } else {
        println!("tuned {} {dir:?} in {:.2?}", dims.label(), t0.elapsed());
    }
    // A second request for the same shape must be served from the
    // cache — this is what `--plan-stats` makes observable.
    let _again = cache
        .get_or_tune(dims, dir)
        .map_err(|e| CliError::from(BwfftError::from(e)))?;
    if let Some(rec) = cache
        .export_records()
        .into_iter()
        .find(|r| r.dims == dims && r.dir == dir)
    {
        println!("best: {}", rec.describe());
    }
    if opts.contains_key("plan-stats") {
        let s = cache.stats();
        println!(
            "plan cache: hits={} misses={} evictions={}",
            s.hits, s.misses, s.evictions
        );
    }
    if let Some(path) = &wisdom_path {
        let mut w = Wisdom::new(fp);
        w.records = cache.export_records();
        wisdom::save(path, &w).map_err(|e| CliError::from(BwfftError::from(e)))?;
        println!("wisdom: saved {} plan(s) to {}", w.records.len(), path.display());
    }
    if let (Some(json), Some(collector)) = (profile, &collector) {
        // Tuning produces telemetry marks (one per timed trial plus
        // the winner), not stage spans; aggregate with empty stage
        // metadata so the report carries just the marks.
        let meta = bwfft::trace::RunMeta {
            label: dims.label(),
            executor: "tuner".to_string(),
            stream_gbs: None,
            stage_io: Vec::new(),
        };
        let rep = bwfft::trace::aggregate(&collector.take_events(), &meta);
        emit_profile(&rep, json);
    }
    Ok(())
}

fn cmd_simulate(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let dims = parse_dims(opts.get("dims").ok_or_else(|| usage("--dims required"))?)
        .map_err(usage)?;
    let spec = machine_by_name(opts.get("machine").ok_or_else(|| usage("--machine required"))?)
        .map_err(usage)?;
    let sockets: usize = opts
        .get("sockets")
        .map(|s| s.parse().map_err(|_| usage("bad --sockets")))
        .transpose()?
        .unwrap_or(spec.sockets);
    let p = spec.total_threads() * sockets / spec.sockets;
    let plan = FftPlan::builder(dims)
        .buffer_elems(spec.default_buffer_elems())
        .threads(p / 2, p - p / 2)
        .sockets(sockets)
        .build()
        .map_err(|e| CliError::from(BwfftError::from(e)))?;
    let r = simulate(&plan, &spec, &SimOptions::default())
        .map_err(|e| CliError::from(BwfftError::from(e)))?;
    println!("{}", r.report);
    for s in &r.stages {
        println!(
            "  stage {}: {:.2} ms, {:.2} GB DRAM, {:.2} GB link",
            s.stage,
            s.time_ns / 1e6,
            s.dram_bytes / 1e9,
            s.link_bytes / 1e9
        );
    }
    if opts.contains_key("baselines") {
        for kind in [BaselineKind::MklLike, BaselineKind::FftwLike, BaselineKind::SlabPencil] {
            let b = simulate_baseline(kind, dims, &spec);
            println!("{b}");
        }
    }
    Ok(())
}

/// `bench`: run the canonical statistical suite, write the versioned
/// `BENCH_*.json` record, and optionally gate against a baseline. With
/// both `--compare` and `--current` nothing is run — the two existing
/// files are compared directly (the CI gate's replay mode).
fn cmd_bench(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let gate = GateConfig {
        threshold_pct: opts
            .get("threshold")
            .map(|s| s.parse().map_err(|_| usage("bad --threshold")))
            .transpose()?
            .unwrap_or_else(|| GateConfig::default().threshold_pct),
        ..GateConfig::default()
    };
    let derate_factor: Option<f64> = opts
        .get("derate")
        .map(|s| s.parse().map_err(|_| usage("bad --derate")))
        .transpose()?;

    // Replay mode: compare two existing BENCH files, run nothing.
    if let Some(cur_path) = opts.get("current") {
        let base_path = opts
            .get("compare")
            .ok_or_else(|| usage("--current requires --compare BASELINE"))?;
        let base = load_bench(base_path)?;
        let mut cur = load_bench(cur_path)?;
        if let Some(f) = derate_factor {
            derate(&mut cur, f);
        }
        return finish_compare(&base, &cur, &gate);
    }

    // The service-latency suite routes through the open-loop driver
    // instead of the executor measurement loop.
    if opts.get("suite").map(String::as_str) == Some("serve") {
        return cmd_bench_serve(opts, &gate, derate_factor);
    }
    let kind = match opts.get("suite") {
        None => SuiteKind::Smoke,
        Some(s) => SuiteKind::parse(s)
            .ok_or_else(|| usage(format!("unknown --suite `{s}` (smoke|fast|full|serve)")))?,
    };
    let mut mcfg = MeasureConfig::default();
    if let Some(r) = opts.get("reps") {
        mcfg.reps = r.parse().map_err(|_| usage("bad --reps"))?;
        if mcfg.reps == 0 {
            return Err(usage("--reps must be at least 1"));
        }
    }
    if let Some(w) = opts.get("warmup") {
        mcfg.warmup = w.parse().map_err(|_| usage("bad --warmup"))?;
    }
    if let Some(s) = opts.get("seed") {
        mcfg.seed = s.parse().map_err(|_| usage("bad --seed"))?;
    }
    mcfg.integrity = opts.contains_key("integrity");
    let baseline_out = opts.get("baseline-out").map(PathBuf::from);
    if baseline_out.is_some() && !mcfg.integrity {
        return Err(usage(
            "--baseline-out requires --integrity (it is the plain side of a paired overhead run)",
        ));
    }
    let anchor = match opts.get("machine") {
        Some(name) => machine_by_name(name).map_err(usage)?,
        None => presets::kaby_lake_7700k(),
    };
    println!(
        "bench: {} suite, {} reps + {} warmup, seed {}, STREAM roofline {:.1} GB/s ({}){}",
        kind.label(),
        mcfg.reps,
        mcfg.warmup,
        mcfg.seed,
        anchor.total_dram_bw_gbs(),
        anchor.name,
        match (mcfg.integrity, baseline_out.is_some()) {
            (true, true) => ", paired plain/guarded reps",
            (true, false) => ", integrity guards on",
            _ => "",
        }
    );
    let (mut report, paired_plain) = if let Some(base_path) = &baseline_out {
        let (plain, guarded) = run_suite_paired(kind, &mcfg, &StatsConfig::default(), &anchor, true)
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        write_file(base_path, &plain).map_err(|e| CliError::Runtime(e.to_string()))?;
        println!(
            "wrote {} (plain half of the pair, {} suites)",
            base_path.display(),
            plain.suites.len()
        );
        (guarded, Some(plain))
    } else {
        let report = run_suite(kind, &mcfg, &StatsConfig::default(), &anchor, true)
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        (report, None)
    };
    if let Some(f) = derate_factor {
        derate(&mut report, f);
        println!("note: record derated {f}x (gate self-test)");
    }
    let out = opts
        .get("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(bench_filename(&report.git_rev)));
    write_file(&out, &report).map_err(|e| CliError::Runtime(e.to_string()))?;
    println!("wrote {} ({} suites, rev {})", out.display(), report.suites.len(), report.git_rev);
    if let Some(base_path) = opts.get("compare") {
        let base = load_bench(base_path)?;
        return finish_compare(&base, &report, &gate);
    }
    if let Some(plain) = paired_plain {
        return finish_compare(&plain, &report, &gate);
    }
    Ok(())
}

/// `bench --suite serve`: the open-loop latency bench. Writes a
/// single-row `bwfft-bench/1` record whose service columns carry
/// requests/sec, p50/p99 and the outcome counts, then gates against a
/// baseline like any other suite (the p99 tail is threshold-gated).
fn cmd_bench_serve(
    opts: &HashMap<String, String>,
    gate: &GateConfig,
    derate_factor: Option<f64>,
) -> Result<(), CliError> {
    let cfg = serve_bench_config(opts)?;
    let overhead_pair = opts.contains_key("metrics-overhead");
    let baseline_out = opts.get("baseline-out").map(PathBuf::from);
    if overhead_pair && baseline_out.is_none() {
        return Err(usage(
            "--metrics-overhead requires --baseline-out PATH (the metrics-off half of the pair)",
        ));
    }
    println!(
        "bench: serve suite, {} open-loop request(s) of {}, {} worker(s), seed {}{}",
        cfg.requests,
        cfg.dims.label(),
        cfg.workers,
        cfg.seed,
        if overhead_pair {
            ", paired metrics-off/metrics-on runs"
        } else {
            ""
        }
    );
    let (mut report, paired_off) = if overhead_pair {
        let (off, on) = run_serve_suite_paired(&cfg, &StatsConfig::default())
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        let base_path = baseline_out.as_deref().unwrap_or(Path::new("BENCH_metrics_off.json"));
        write_file(base_path, &off).map_err(|e| CliError::Runtime(e.to_string()))?;
        println!(
            "wrote {} (metrics-off half of the pair)",
            base_path.display()
        );
        (on, Some(off))
    } else {
        let report = run_serve_suite(&cfg, &StatsConfig::default())
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        (report, None)
    };
    if let Some(f) = derate_factor {
        derate(&mut report, f);
        println!("note: record derated {f}x (gate self-test)");
    }
    let s = &report.suites[0];
    if let Some(m) = &s.serve {
        println!(
            "  {:<34} {:.0} req/s  p50 {:>8.3} ms  p99 {:>8.3} ms  \
             ({} completed, {} rejected, {} deadline-exceeded, {} failed)",
            s.key,
            m.requests_per_sec,
            m.p50_ns / 1e6,
            m.p99_ns / 1e6,
            m.completed,
            m.rejected,
            m.deadline_exceeded,
            m.failed
        );
    }
    let out = opts
        .get("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(bench_filename(&report.git_rev)));
    write_file(&out, &report).map_err(|e| CliError::Runtime(e.to_string()))?;
    println!(
        "wrote {} ({} suites, rev {})",
        out.display(),
        report.suites.len(),
        report.git_rev
    );
    if let Some(base_path) = opts.get("compare") {
        let base = load_bench(base_path)?;
        return finish_compare(&base, &report, gate);
    }
    if let Some(off) = paired_off {
        // The overhead gate: metrics-on median latency vs the
        // metrics-off half of the same pair. Median-only — the claim
        // under test is median overhead, and a single run's p99 is a
        // point estimate that would flake on scheduler outliers.
        let overhead_gate = GateConfig {
            median_only: true,
            ..*gate
        };
        return finish_compare(&off, &report, &overhead_gate);
    }
    Ok(())
}

fn load_bench(path: &str) -> Result<BenchReport, CliError> {
    read_file(Path::new(path)).map_err(|e| CliError::Runtime(e.to_string()))
}

/// Prints the human diff table, then the machine-readable verdict as
/// the last stdout line, and turns a failed gate into a nonzero exit
/// whose message names every regressed suite and stage.
fn finish_compare(
    base: &BenchReport,
    cur: &BenchReport,
    gate: &GateConfig,
) -> Result<(), CliError> {
    let cmp = compare(base, cur, gate);
    println!("{cmp}");
    println!("{}", verdict_json(&cmp));
    if cmp.gate_passes() {
        Ok(())
    } else {
        Err(CliError::Runtime(cmp.failure_summary()))
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}`"));
        };
        // `--profile` stands alone (human report) or takes a glued
        // `=FORMAT` value (`--profile=json`); a separate-word value
        // would be ambiguous with the next flag.
        if name == "profile" || name.starts_with("profile=") {
            let val = name.strip_prefix("profile=").unwrap_or("");
            out.insert("profile".to_string(), val.to_string());
            i += 1;
            continue;
        }
        // `--metrics` follows the same glued-`=` convention:
        // standalone (Prometheus text) or `--metrics=json`.
        if name == "metrics" || name.starts_with("metrics=") {
            let val = name.strip_prefix("metrics=").unwrap_or("");
            out.insert("metrics".to_string(), val.to_string());
            i += 1;
            continue;
        }
        if let Some((key, _)) = name.split_once('=') {
            return Err(format!("--{key} does not take `=VALUE`"));
        }
        // Boolean flags take no value.
        if matches!(
            name,
            "inverse"
                | "verify"
                | "baselines"
                | "adapt"
                | "model-only"
                | "plan-stats"
                | "integrity"
                | "recover"
                | "serve"
                | "impulse"
                | "metrics-overhead"
                | "resume"
                | "keep-workspace"
                | "ooc-kill"
        ) {
            out.insert(name.to_string(), String::new());
            i += 1;
        } else if matches!(
            name,
            "dims"
                | "threads"
                | "buffer"
                | "machine"
                | "sockets"
                | "inject-panic"
                | "timeout-ms"
                | "wisdom"
                | "seed"
                | "suite"
                | "reps"
                | "warmup"
                | "out"
                | "baseline-out"
                | "compare"
                | "current"
                | "threshold"
                | "derate"
                | "iters"
                | "stall-ms"
                | "serve-iters"
                | "requests"
                | "workers"
                | "queue-depth"
                | "byte-budget"
                | "deadline-ms"
                | "arrival-us"
                | "n"
                | "budget"
                | "bins"
                | "inject-io-fault"
                | "metrics-every-ms"
                | "from"
                | "to"
                | "workspace"
                | "resume-verify"
                | "crash-at"
                | "dir"
                | "older-than-secs"
                | "ooc-dir"
        ) {
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("--{name} needs a value"))?;
            out.insert(name.to_string(), v.clone());
            i += 2;
        } else {
            return Err(format!("unknown flag --{name}"));
        }
    }
    Ok(out)
}

fn parse_dims(s: &str) -> Result<Dims, String> {
    let parts: Vec<usize> = s
        .split('x')
        .map(|p| p.parse().map_err(|_| format!("bad dimension `{p}`")))
        .collect::<Result<_, _>>()?;
    match parts[..] {
        [n, m] => Ok(Dims::d2(n, m)),
        [k, n, m] => Ok(Dims::d3(k, n, m)),
        _ => Err("dims must be NxM or KxNxM".into()),
    }
}

fn parse_pair(s: &str) -> Result<(usize, usize), String> {
    let (a, b) = s.split_once(',').ok_or("threads must be D,C")?;
    Ok((
        a.parse().map_err(|_| "bad thread count")?,
        b.parse().map_err(|_| "bad thread count")?,
    ))
}

fn machine_by_name(name: &str) -> Result<MachineSpec, String> {
    match name {
        "kabylake" => Ok(presets::kaby_lake_7700k()),
        "haswell4770" => Ok(presets::haswell_4770k()),
        "amdfx" => Ok(presets::amd_fx_8350()),
        "haswell2667" => Ok(presets::haswell_2667v3_2s()),
        "opteron6276" => Ok(presets::amd_opteron_6276_2s()),
        other => Err(format!("unknown machine `{other}` (see `bwfft-cli machines`)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_parse() {
        assert_eq!(parse_dims("64x32").unwrap(), Dims::d2(64, 32));
        assert_eq!(parse_dims("8x16x32").unwrap(), Dims::d3(8, 16, 32));
        assert!(parse_dims("8").is_err());
        assert!(parse_dims("axb").is_err());
    }

    #[test]
    fn flags_parse() {
        let args: Vec<String> = ["--dims", "8x8x8", "--verify", "--threads", "2,2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f.get("dims").unwrap(), "8x8x8");
        assert!(f.contains_key("verify"));
        assert_eq!(parse_pair(f.get("threads").unwrap()).unwrap(), (2, 2));
    }

    #[test]
    fn machine_lookup() {
        assert!(machine_by_name("kabylake").is_ok());
        assert!(machine_by_name("nonesuch").is_err());
    }

    #[test]
    fn run_command_executes_and_verifies() {
        let args: Vec<String> = ["run", "--dims", "8x8x16", "--threads", "1,1", "--verify"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&args).unwrap();
    }

    #[test]
    fn unknown_command_errors() {
        assert!(matches!(
            run(&["frobnicate".to_string()]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn adapted_run_degrades_instead_of_failing() {
        // On any host (including 1-CPU CI) --adapt must succeed; on a
        // weak host it falls back to the fused executor.
        let args: Vec<String> = ["run", "--dims", "8x8x8", "--threads", "2,2", "--adapt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&args).unwrap();
    }

    #[test]
    fn injected_panic_is_a_runtime_error_not_a_crash() {
        let args: Vec<String> = [
            "run", "--dims", "8x8x16", "--threads", "1,1",
            "--inject-panic", "compute,0,1", "--timeout-ms", "2000",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match run(&args) {
            Err(CliError::Runtime(msg)) => {
                assert!(msg.contains("panicked at block 1"), "{msg}");
            }
            other => panic!("expected runtime error, got {other:?}"),
        }
    }

    #[test]
    fn exit_code_discipline() {
        // The doc-comment table, asserted variant by variant: integrity
        // trips and allocation refusals are runtime faults (exit 1),
        // never usage errors (exit 2).
        use bwfft::core::PlanError;
        use bwfft::num::AllocError;
        use bwfft::pipeline::IntegrityKind;
        let e = CliError::from(BwfftError::Integrity {
            stage: 1,
            block: 3,
            kind: IntegrityKind::Checksum,
        });
        assert!(matches!(e, CliError::Runtime(_)), "{e:?}");
        let e = CliError::from(BwfftError::Allocation(AllocError {
            what: "double buffer",
            bytes: 1 << 40,
        }));
        assert!(matches!(e, CliError::Runtime(_)), "{e:?}");
        let e = CliError::from(BwfftError::Plan(PlanError::NotPow2("n", 12)));
        assert!(matches!(e, CliError::Usage(_)), "{e:?}");
    }

    #[test]
    fn recovering_run_survives_a_fault_that_kills_both_executors() {
        // compute thread 0 at block 1 bites the pipelined AND the fused
        // executor; --recover escalates to the reference tier and
        // --verify proves the answer is still right.
        let args: Vec<String> = [
            "run", "--dims", "8x8x16", "--threads", "2,2",
            "--integrity", "--recover", "--verify",
            "--inject-panic", "compute,0,1", "--timeout-ms", "2000",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
    }

    #[test]
    fn soak_subcommand_smoke() {
        let args: Vec<String> = ["soak", "--iters", "8", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&args).unwrap();
        // Bad iteration counts are usage errors.
        let args: Vec<String> = ["soak", "--iters", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn soak_serve_matrix_smoke() {
        let args: Vec<String> = [
            "soak", "--iters", "4", "--seed", "7", "--serve", "--serve-iters", "4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
        let args: Vec<String> = ["soak", "--iters", "4", "--serve", "--serve-iters", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn serve_exit_code_discipline() {
        // The serve rows of the doc-comment table, variant by variant:
        // every load-shedding rejection is a runtime condition (exit
        // 1) when surfaced as an error; malformed descriptors are
        // usage (exit 2); a graceful drain is exit 0 (asserted by the
        // drain tests below).
        use bwfft::core::PlanError;
        use bwfft::num::AllocError;
        use bwfft::serve::RejectReason;
        let rejections = [
            RejectReason::QueueFull {
                depth: 4,
                capacity: 4,
            },
            RejectReason::ByteBudget(AllocError {
                what: "serve admission",
                bytes: 1 << 20,
            }),
            RejectReason::PoolExhausted(AllocError {
                what: "buffer pool",
                bytes: 1 << 20,
            }),
            RejectReason::BreakerOpen,
            RejectReason::ShuttingDown,
        ];
        for reason in rejections {
            let e = CliError::from(ServeError::Rejected { reason });
            assert!(matches!(e, CliError::Runtime(_)), "{e:?}");
        }
        let e = CliError::from(ServeError::InvalidRequest {
            error: PlanError::NotPow2("n", 12),
        });
        assert!(matches!(e, CliError::Usage(_)), "{e:?}");
        let e = CliError::from(ServeError::InputLength {
            expected: 512,
            got: 8,
        });
        assert!(matches!(e, CliError::Usage(_)), "{e:?}");
    }

    #[test]
    fn serve_subcommand_drains_cleanly() {
        let args: Vec<String> = [
            "serve", "--requests", "8", "--dims", "16x32", "--buffer", "128",
            "--workers", "2", "--seed", "3",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
    }

    #[test]
    fn serve_drains_to_exit_zero_even_when_every_deadline_expires() {
        // Deadline misses are typed outcomes of a working service, not
        // faults: the drained run exits 0.
        let args: Vec<String> = [
            "serve", "--requests", "6", "--dims", "16x32", "--buffer", "128",
            "--deadline-ms", "0",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
    }

    #[test]
    fn serve_drains_to_exit_zero_under_burst_shedding() {
        // A shallow queue under burst arrivals sheds load with typed
        // rejections; the drain still balances and exits 0.
        let args: Vec<String> = [
            "serve", "--requests", "16", "--dims", "16x32", "--buffer", "128",
            "--workers", "1", "--queue-depth", "1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
    }

    #[test]
    fn serve_flag_validation() {
        for bad in [
            vec!["serve", "--requests", "0"],
            vec!["serve", "--requests", "4", "--workers", "0"],
            vec!["serve", "--requests", "4", "--queue-depth", "0"],
            // A non-power-of-two shape is a usage error (InvalidRequest
            // from plan validation), not load shedding.
            vec!["serve", "--requests", "1", "--dims", "12x10"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(matches!(run(&args), Err(CliError::Usage(_))), "{bad:?}");
        }
    }

    #[test]
    fn tune_command_runs_model_only() {
        let args: Vec<String> = ["tune", "--dims", "32x32", "--model-only", "--plan-stats"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&args).unwrap();
    }

    #[test]
    fn tune_wisdom_roundtrip_skips_second_search() {
        let dir = std::env::temp_dir().join("bwfft-cli-tune-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.wisdom");
        let _ = std::fs::remove_file(&path);
        let args: Vec<String> = [
            "tune", "--dims", "32x32", "--model-only",
            "--wisdom", path.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        // First run tunes and writes wisdom; second run must load it
        // and skip the search entirely.
        run(&args).unwrap();
        assert!(path.exists());
        run(&args).unwrap();
        let cache = PlanCache::new(
            Tuner::new(TunerOptions {
                model_only: true,
                ..TunerOptions::for_host(&bwfft::core::HostProfile::detect())
            }),
            HostFingerprint::detect(),
        );
        match wisdom::load(&path, cache.fingerprint()).unwrap() {
            WisdomLoad::Usable(w) => assert_eq!(w.records.len(), 1),
            other => panic!("saved wisdom must be usable on this host: {other:?}"),
        }
    }

    #[test]
    fn corrupt_wisdom_degrades_instead_of_failing() {
        let dir = std::env::temp_dir().join("bwfft-cli-tune-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.wisdom");
        std::fs::write(&path, "not a wisdom file\n").unwrap();
        let args: Vec<String> = [
            "tune", "--dims", "32x32", "--model-only",
            "--wisdom", path.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        // The corrupt file triggers a warning and a fresh tune, then is
        // overwritten with valid wisdom.
        run(&args).unwrap();
        match wisdom::load(&path, &HostFingerprint::detect()).unwrap() {
            WisdomLoad::Usable(w) => assert_eq!(w.records.len(), 1),
            other => panic!("expected rewritten wisdom, got {other:?}"),
        }
    }

    #[test]
    fn profile_flag_parses_both_forms() {
        let args: Vec<String> = ["--profile"].iter().map(|s| s.to_string()).collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(profile_mode(&f).unwrap(), Some(false));

        let args: Vec<String> = ["--profile=json"].iter().map(|s| s.to_string()).collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(profile_mode(&f).unwrap(), Some(true));

        let args: Vec<String> = ["--profile=yaml"].iter().map(|s| s.to_string()).collect();
        let f = parse_flags(&args).unwrap();
        assert!(matches!(profile_mode(&f), Err(CliError::Usage(_))));

        assert_eq!(profile_mode(&HashMap::new()).unwrap(), None);
        // `=` on any other flag is rejected.
        let args: Vec<String> = ["--dims=8x8"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn metrics_flag_parses_both_forms() {
        let args: Vec<String> = ["--metrics"].iter().map(|s| s.to_string()).collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(metrics_mode(&f).unwrap(), Some(false), "bare = prometheus");

        let args: Vec<String> = ["--metrics=prom"].iter().map(|s| s.to_string()).collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(metrics_mode(&f).unwrap(), Some(false));

        let args: Vec<String> = ["--metrics=json"].iter().map(|s| s.to_string()).collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(metrics_mode(&f).unwrap(), Some(true));

        let args: Vec<String> = ["--metrics=xml"].iter().map(|s| s.to_string()).collect();
        let f = parse_flags(&args).unwrap();
        assert!(matches!(metrics_mode(&f), Err(CliError::Usage(_))));

        assert_eq!(metrics_mode(&HashMap::new()).unwrap(), None);
    }

    #[test]
    fn metrics_every_ms_requires_metrics() {
        let args: Vec<String> = ["serve", "--requests", "1", "--metrics-every-ms", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn metrics_overhead_requires_baseline_out() {
        let args: Vec<String> = ["bench", "--suite", "serve", "--metrics-overhead"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn stat_requires_both_files() {
        let args: Vec<String> = ["stat"].iter().map(|s| s.to_string()).collect();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
        // A present flag but unreadable file is a runtime error, not
        // a usage error.
        let args: Vec<String> = ["stat", "--from", "/nonexistent.json", "--to", "/n2.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(run(&args), Err(CliError::Runtime(_))));
    }

    #[test]
    fn served_metrics_run_emits_final_snapshot_semantics() {
        // The registry path end-to-end without stdout capture: arm a
        // registry exactly as cmd_serve does and check the snapshot
        // carries the request lifecycle.
        use bwfft::metrics::Registry;
        use bwfft::serve::{FftRequest, FftServer, ServeConfig};
        let reg = std::sync::Arc::new(Registry::new());
        let mut server = FftServer::start(ServeConfig {
            workers: 1,
            metrics: Some(reg.clone()),
            ..ServeConfig::default()
        });
        let dims = bwfft::core::Dims::d2(8, 16);
        let data = bwfft::num::signal::random_complex(dims.total(), 7);
        let t = server.submit(FftRequest::new(dims, data)).unwrap();
        let _ = t.wait();
        let _ = server.stats();
        server.shutdown();
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("serve.completed"), Some(&1));
        let parsed = bwfft::metrics::MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap, "snapshot JSON round-trips");
    }

    #[test]
    fn profiled_run_succeeds_and_verifies() {
        let args: Vec<String> = [
            "run", "--dims", "16x16", "--threads", "1,1", "--verify", "--profile",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
    }

    #[test]
    fn profiled_json_run_succeeds() {
        let args: Vec<String> = [
            "run", "--dims", "8x8x8", "--threads", "1,1",
            "--profile=json", "--machine", "haswell4770",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
    }

    #[test]
    fn profiled_tune_succeeds() {
        let args: Vec<String> = ["tune", "--dims", "32x32", "--model-only", "--profile"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&args).unwrap();
    }

    fn bench_args(extra: &[&str]) -> Vec<String> {
        ["bench", "--suite", "smoke", "--reps", "2", "--warmup", "1"]
            .iter()
            .chain(extra)
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn bench_writes_versioned_record_and_gates_derated_rerun() {
        let dir = std::env::temp_dir().join("bwfft-cli-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("BENCH_base.json");
        let current = dir.join("BENCH_cur.json");

        run(&bench_args(&["--out", baseline.to_str().unwrap()])).unwrap();
        let rep = read_file(&baseline).unwrap();
        assert_eq!(rep.schema, "bwfft-bench/1");
        assert_eq!(rep.suite_kind, "smoke");
        assert!(!rep.suites.is_empty());
        assert!(rep.suites.iter().all(|s| !s.stages.is_empty()));

        // Same suite derated 3× must trip the gate with a runtime error
        // naming the regressed suite and its worst stage.
        let args = bench_args(&[
            "--out", current.to_str().unwrap(),
            "--derate", "3",
            "--compare", baseline.to_str().unwrap(),
        ]);
        match run(&args) {
            Err(CliError::Runtime(msg)) => {
                assert!(msg.contains("regression"), "{msg}");
                assert!(msg.contains("fig9:64x64"), "{msg}");
                assert!(msg.contains("stage"), "{msg}");
            }
            other => panic!("derated compare must fail the gate, got {other:?}"),
        }

        // Replay mode: the two files compare without re-running, and an
        // un-derated self-compare passes.
        let args: Vec<String> = [
            "bench",
            "--compare", baseline.to_str().unwrap(),
            "--current", baseline.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
    }

    #[test]
    fn bench_serve_suite_records_metrics_and_gates_p99() {
        let dir = std::env::temp_dir().join("bwfft-cli-bench-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("BENCH_serve_base.json");

        let base_args: Vec<String> = [
            "bench", "--suite", "serve", "--requests", "8", "--workers", "2",
            "--seed", "5", "--out", baseline.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&base_args).unwrap();
        let rep = read_file(&baseline).unwrap();
        assert_eq!(rep.schema, "bwfft-bench/1");
        assert_eq!(rep.suite_kind, "serve");
        assert_eq!(rep.suites.len(), 1);
        let m = rep.suites[0].serve.as_ref().expect("serve metrics column");
        assert_eq!(m.submitted, m.completed + m.deadline_exceeded + m.failed);
        assert!(m.p99_ns >= m.p50_ns);

        // A derated rerun inflates the tail; the p99 threshold gate
        // must name it even without CI separation.
        let current = dir.join("BENCH_serve_cur.json");
        let cur_args: Vec<String> = [
            "bench", "--suite", "serve", "--requests", "8", "--workers", "2",
            "--seed", "5", "--derate", "3",
            "--out", current.to_str().unwrap(),
            "--compare", baseline.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match run(&cur_args) {
            Err(CliError::Runtime(msg)) => {
                assert!(msg.contains("regression"), "{msg}");
                assert!(msg.contains("p99"), "{msg}");
            }
            other => panic!("derated serve compare must fail the gate, got {other:?}"),
        }

        // Replay self-compare of the serve record passes the gate.
        let args: Vec<String> = [
            "bench",
            "--compare", baseline.to_str().unwrap(),
            "--current", baseline.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
    }

    #[test]
    fn bench_flag_validation() {
        let args: Vec<String> = ["bench", "--suite", "warp"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
        let args: Vec<String> = ["bench", "--current", "x.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
        let args: Vec<String> = ["bench", "--reps", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn ooc_subcommand_completes_with_injected_fault() {
        // A transform 4× the working budget, one injected read fault:
        // the ladder retries, the oracle passes, exit is clean.
        let args: Vec<String> = [
            "ooc", "--n", "4096", "--budget", "16384", "--bins", "8",
            "--seed", "7", "--inject-io-fault", "read,1,0",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
    }

    #[test]
    fn ooc_exit_code_discipline() {
        // Typed tier failures are runtime faults (exit 1)...
        for bad in [
            vec!["ooc", "--n", "1000"],            // not a power of two
            vec!["ooc", "--n", "2"],               // below the 4-elem floor
            vec!["ooc", "--n", "65536", "--budget", "1"], // infeasible budget
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(matches!(run(&args), Err(CliError::Runtime(_))), "{bad:?}");
        }
        // ...while malformed flags are usage errors (exit 2).
        for bad in [
            vec!["ooc"],                                   // --n required
            vec!["ooc", "--n", "banana"],
            vec!["ooc", "--n", "4096", "--budget", "0"],
            vec!["ooc", "--n", "4096", "--bins", "0"],
            vec!["ooc", "--n", "4096", "--threads", "0,2"],
            vec!["ooc", "--n", "4096", "--inject-io-fault", "read,9,0"],
            vec!["ooc", "--n", "4096", "--inject-io-fault", "rread,1,0"],
            vec!["ooc", "--n", "4096", "--inject-io-fault", "read,1"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(matches!(run(&args), Err(CliError::Usage(_))), "{bad:?}");
        }
    }

    #[test]
    fn io_fault_spec_parses() {
        let f = parse_io_fault("write,3,2").unwrap();
        assert_eq!(f.kind, OocFaultKind::Write);
        assert_eq!(f.stage, 3);
        assert_eq!(f.iter, 2);
        assert!(parse_io_fault("read,5,0").is_err());
        assert!(parse_io_fault("read").is_err());
    }

    #[test]
    fn fault_spec_parses() {
        let f = parse_fault("data,1,4").unwrap();
        assert_eq!(f, FaultPlan::panic_at(Role::Data, 1, 4));
        assert!(parse_fault("gpu,0,0").is_err());
        assert!(parse_fault("data,0").is_err());
    }
}
