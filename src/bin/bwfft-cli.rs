//! `bwfft-cli` — run and simulate bandwidth-efficient FFTs from the
//! command line.
//!
//! ```text
//! bwfft-cli machines
//! bwfft-cli run --dims 64x64x64 --threads 2,2 [--buffer 16384] [--inverse] [--verify]
//! bwfft-cli simulate --dims 512x512x512 --machine kabylake [--sockets 2] [--baselines]
//! bwfft-cli stream --machine haswell2667
//! ```

use bwfft::baselines::{reference_impl, simulate_baseline, BaselineKind};
use bwfft::core::exec_sim::{simulate, SimOptions};
use bwfft::core::{exec_real, Dims, FftPlan};
use bwfft::kernels::Direction;
use bwfft::machine::stream::stream_triad;
use bwfft::machine::{presets, MachineSpec};
use bwfft::num::compare::rel_l2_error;
use bwfft::num::{signal, AlignedVec, Complex64};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  bwfft-cli machines
  bwfft-cli run --dims KxNxM [--threads D,C] [--buffer B] [--inverse] [--verify]
  bwfft-cli simulate --dims KxNxM --machine NAME [--sockets S] [--baselines]
  bwfft-cli stream --machine NAME
machines: kabylake | haswell4770 | amdfx | haswell2667 | opteron6276";

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    let opts = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "machines" => {
            for spec in presets::all() {
                println!(
                    "{:<36} {} sockets, {} threads, {} MB LLC, {} GB/s STREAM",
                    spec.name,
                    spec.sockets,
                    spec.total_threads(),
                    spec.llc().size_bytes >> 20,
                    spec.total_dram_bw_gbs()
                );
            }
            Ok(())
        }
        "run" => cmd_run(&opts),
        "simulate" => cmd_simulate(&opts),
        "stream" => {
            let spec = machine_by_name(opts.get("machine").ok_or("--machine required")?)?;
            let r = stream_triad(&spec, 1 << 24);
            println!(
                "{}: triad {:.1} GB/s ({:.1} per socket)",
                spec.name, r.triad_gbs, r.per_socket_gbs
            );
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn cmd_run(opts: &HashMap<String, String>) -> Result<(), String> {
    let dims = parse_dims(opts.get("dims").ok_or("--dims required")?)?;
    let (p_d, p_c) = opts
        .get("threads")
        .map(|s| parse_pair(s))
        .transpose()?
        .unwrap_or((2, 2));
    let mut builder = FftPlan::builder(dims).threads(p_d, p_c);
    if let Some(b) = opts.get("buffer") {
        builder = builder.buffer_elems(b.parse().map_err(|_| "bad --buffer")?);
    }
    if opts.contains_key("inverse") {
        builder = builder.direction(Direction::Inverse);
    }
    let plan = builder.build().map_err(|e| e.to_string())?;
    let total = dims.total();
    println!(
        "running {} with {} data + {} compute threads, b = {} elems, {} pipeline iterations/stage",
        dims.label(),
        plan.p_d,
        plan.p_c,
        plan.buffer_elems,
        plan.iters_per_socket()
    );
    let mut data = AlignedVec::from_slice(&signal::random_complex(total, 42));
    let original = data.clone();
    let mut work = AlignedVec::<Complex64>::zeroed(total);
    let t0 = std::time::Instant::now();
    exec_real::execute(&plan, &mut data, &mut work);
    let dt = t0.elapsed();
    let gflops = plan.pseudo_flops() / dt.as_nanos() as f64;
    println!("done in {dt:.2?} — {gflops:.2} pseudo-Gflop/s on this host");
    if opts.contains_key("verify") {
        let mut reference = original.clone();
        match dims {
            Dims::Three { k, n, m } => reference_impl::pencil_fft_3d(
                &mut reference,
                k,
                n,
                m,
                plan.dir,
            ),
            Dims::Two { n, m } => {
                reference_impl::pencil_fft_2d(&mut reference, n, m, plan.dir)
            }
        }
        let err = rel_l2_error(&data, &reference);
        println!("verification vs pencil-pencil reference: rel L2 error = {err:.2e}");
        if err > 1e-11 {
            return Err("verification FAILED".into());
        }
        println!("verification passed");
    }
    Ok(())
}

fn cmd_simulate(opts: &HashMap<String, String>) -> Result<(), String> {
    let dims = parse_dims(opts.get("dims").ok_or("--dims required")?)?;
    let spec = machine_by_name(opts.get("machine").ok_or("--machine required")?)?;
    let sockets: usize = opts
        .get("sockets")
        .map(|s| s.parse().map_err(|_| "bad --sockets"))
        .transpose()?
        .unwrap_or(spec.sockets);
    let p = spec.total_threads() * sockets / spec.sockets;
    let plan = FftPlan::builder(dims)
        .buffer_elems(spec.default_buffer_elems())
        .threads(p / 2, p - p / 2)
        .sockets(sockets)
        .build()
        .map_err(|e| e.to_string())?;
    let r = simulate(&plan, &spec, &SimOptions::default());
    println!("{}", r.report);
    for s in &r.stages {
        println!(
            "  stage {}: {:.2} ms, {:.2} GB DRAM, {:.2} GB link",
            s.stage,
            s.time_ns / 1e6,
            s.dram_bytes / 1e9,
            s.link_bytes / 1e9
        );
    }
    if opts.contains_key("baselines") {
        for kind in [BaselineKind::MklLike, BaselineKind::FftwLike, BaselineKind::SlabPencil] {
            let b = simulate_baseline(kind, dims, &spec);
            println!("{b}");
        }
    }
    Ok(())
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}`"));
        };
        // Boolean flags take no value.
        if matches!(name, "inverse" | "verify" | "baselines") {
            out.insert(name.to_string(), String::new());
            i += 1;
        } else {
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("--{name} needs a value"))?;
            out.insert(name.to_string(), v.clone());
            i += 2;
        }
    }
    Ok(out)
}

fn parse_dims(s: &str) -> Result<Dims, String> {
    let parts: Vec<usize> = s
        .split('x')
        .map(|p| p.parse().map_err(|_| format!("bad dimension `{p}`")))
        .collect::<Result<_, _>>()?;
    match parts[..] {
        [n, m] => Ok(Dims::d2(n, m)),
        [k, n, m] => Ok(Dims::d3(k, n, m)),
        _ => Err("dims must be NxM or KxNxM".into()),
    }
}

fn parse_pair(s: &str) -> Result<(usize, usize), String> {
    let (a, b) = s.split_once(',').ok_or("threads must be D,C")?;
    Ok((
        a.parse().map_err(|_| "bad thread count")?,
        b.parse().map_err(|_| "bad thread count")?,
    ))
}

fn machine_by_name(name: &str) -> Result<MachineSpec, String> {
    match name {
        "kabylake" => Ok(presets::kaby_lake_7700k()),
        "haswell4770" => Ok(presets::haswell_4770k()),
        "amdfx" => Ok(presets::amd_fx_8350()),
        "haswell2667" => Ok(presets::haswell_2667v3_2s()),
        "opteron6276" => Ok(presets::amd_opteron_6276_2s()),
        other => Err(format!("unknown machine `{other}` (see `bwfft-cli machines`)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_parse() {
        assert_eq!(parse_dims("64x32").unwrap(), Dims::d2(64, 32));
        assert_eq!(parse_dims("8x16x32").unwrap(), Dims::d3(8, 16, 32));
        assert!(parse_dims("8").is_err());
        assert!(parse_dims("axb").is_err());
    }

    #[test]
    fn flags_parse() {
        let args: Vec<String> = ["--dims", "8x8x8", "--verify", "--threads", "2,2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f.get("dims").unwrap(), "8x8x8");
        assert!(f.contains_key("verify"));
        assert_eq!(parse_pair(f.get("threads").unwrap()).unwrap(), (2, 2));
    }

    #[test]
    fn machine_lookup() {
        assert!(machine_by_name("kabylake").is_ok());
        assert!(machine_by_name("nonesuch").is_err());
    }

    #[test]
    fn run_command_executes_and_verifies() {
        let args: Vec<String> = ["run", "--dims", "8x8x16", "--threads", "1,1", "--verify"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&args).unwrap();
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&["frobnicate".to_string()]).is_err());
    }
}
