//! The facade's flattened error type.
//!
//! Library users match on one enum instead of unwrapping the
//! per-crate taxonomy (`PlanError` → `CoreError` → …). The fault
//! variants (`WorkerPanicked`, `StageTimeout`) are lifted to the top
//! level because they are the ones callers dispatch on when building
//! retry / fallback logic:
//!
//! ```
//! use bwfft::{BwfftError, PlanExecute};
//! use bwfft::core::{Dims, FftPlan};
//! use bwfft::num::Complex64;
//!
//! let plan = FftPlan::builder(Dims::d3(8, 8, 8)).buffer_elems(64).build().unwrap();
//! let mut data = vec![Complex64::ZERO; 512];
//! let mut work = vec![Complex64::ZERO; 512];
//! match plan.execute(&mut data, &mut work) {
//!     Ok(report) => println!("ran on {:?}", report.executor),
//!     Err(BwfftError::WorkerPanicked { role, thread, iter, .. }) => {
//!         eprintln!("{role:?} thread {thread} died at block {iter}; retrying fused");
//!     }
//!     Err(e) => eprintln!("{e}"),
//! }
//! ```

use bwfft_core::{CoreError, ExecReport, FftPlan, PlanError};
use bwfft_machine::EngineError;
use bwfft_num::{AllocError, Complex64};
use bwfft_pipeline::{CancelReason, ConfigError, IntegrityKind, PipelineError, Role};
use bwfft_tuner::TunerError;
use std::time::Duration;

/// Everything that can go wrong in the `bwfft` facade, flattened.
#[derive(Clone, Debug, PartialEq)]
pub enum BwfftError {
    /// Plan construction/validation failed (user input).
    Plan(PlanError),
    /// The executor rejected the pipeline configuration (user input).
    Config(ConfigError),
    /// A worker thread panicked; the panic was contained, all threads
    /// joined, and the process is intact.
    WorkerPanicked {
        role: Role,
        thread: usize,
        iter: usize,
        message: String,
    },
    /// A peer stopped making progress and the per-iteration watchdog
    /// fired.
    StageTimeout {
        role: Role,
        thread: usize,
        iter: usize,
        timeout: Duration,
    },
    /// The discrete-event simulator failed.
    Simulation(EngineError),
    /// A caller-provided array has the wrong length (user input).
    InputLength {
        what: &'static str,
        expected: usize,
        got: usize,
    },
    /// The plan wants more sockets than the simulated machine has
    /// (user input).
    SocketMismatch { plan: usize, machine: usize },
    /// Autotuning, plan caching, or wisdom handling failed. Note that
    /// version/host mismatches of a wisdom file are *not* errors — they
    /// degrade to re-tuning (`bwfft_tuner::RetuneReason`).
    Tuner(TunerError),
    /// An integrity guard (buffer canary, per-block checksum, or the
    /// whole-run Parseval/energy invariant) detected silent data
    /// corruption; the run was aborted rather than returning a wrong
    /// answer. Flattened from both the pipeline-level and core-level
    /// guard variants.
    Integrity {
        /// FFT stage the guard fired in (0 for whole-run guards).
        stage: usize,
        /// Block index at the detection point (0 for whole-run guards).
        block: usize,
        kind: IntegrityKind,
    },
    /// A buffer allocation was refused (OOM or an injected allocation
    /// budget). Recoverable: the supervisor answers it by shrinking the
    /// plan's buffer and retrying.
    Allocation(AllocError),
    /// The run's cancellation token fired — a per-request deadline
    /// passed or the owner drained the executor. The workers exited
    /// cooperatively at the next step boundary; the supervisor never
    /// retries this (retrying a cancelled request keeps burning its
    /// worker past the deadline).
    Cancelled {
        /// Pipeline step (or fused block) at which a worker observed
        /// the token.
        iter: usize,
        reason: CancelReason,
    },
}

impl BwfftError {
    /// True for errors caused by caller input (bad plan, bad lengths,
    /// bad config) rather than a runtime fault. The CLI maps these to
    /// exit code 2 (usage) and everything else to 1.
    pub fn is_usage(&self) -> bool {
        matches!(
            self,
            BwfftError::Plan(_)
                | BwfftError::Config(_)
                | BwfftError::InputLength { .. }
                | BwfftError::SocketMismatch { .. }
                // Bad wisdom files and wisdom-replayed invalid plans are
                // caller input; a failed timing run is not.
                | BwfftError::Tuner(
                    TunerError::Plan(_)
                        | TunerError::WisdomIo { .. }
                        | TunerError::WisdomParse { .. }
                )
        )
    }
}

impl From<PlanError> for BwfftError {
    fn from(e: PlanError) -> Self {
        BwfftError::Plan(e)
    }
}

impl From<PipelineError> for BwfftError {
    fn from(e: PipelineError) -> Self {
        match e {
            PipelineError::Config(c) => BwfftError::Config(c),
            PipelineError::WorkerPanicked {
                role,
                thread,
                iter,
                message,
            } => BwfftError::WorkerPanicked {
                role,
                thread,
                iter,
                message,
            },
            PipelineError::StageTimeout {
                role,
                thread,
                iter,
                timeout,
            } => BwfftError::StageTimeout {
                role,
                thread,
                iter,
                timeout,
            },
            PipelineError::Integrity { stage, block, kind } => {
                BwfftError::Integrity { stage, block, kind }
            }
            PipelineError::Cancelled { iter, reason } => BwfftError::Cancelled { iter, reason },
        }
    }
}

impl From<AllocError> for BwfftError {
    fn from(e: AllocError) -> Self {
        BwfftError::Allocation(e)
    }
}

impl From<EngineError> for BwfftError {
    fn from(e: EngineError) -> Self {
        BwfftError::Simulation(e)
    }
}

impl From<TunerError> for BwfftError {
    fn from(e: TunerError) -> Self {
        BwfftError::Tuner(e)
    }
}

impl From<CoreError> for BwfftError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::Plan(p) => p.into(),
            CoreError::Pipeline(p) => p.into(),
            CoreError::Engine(p) => p.into(),
            CoreError::InputLength {
                what,
                expected,
                got,
            } => BwfftError::InputLength {
                what,
                expected,
                got,
            },
            CoreError::SocketMismatch { plan, machine } => {
                BwfftError::SocketMismatch { plan, machine }
            }
            CoreError::Integrity { stage, block, kind } => {
                BwfftError::Integrity { stage, block, kind }
            }
            CoreError::Allocation(a) => BwfftError::Allocation(a),
        }
    }
}

impl std::fmt::Display for BwfftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BwfftError::Plan(e) => write!(f, "plan: {e}"),
            BwfftError::Config(e) => write!(f, "pipeline config: {e}"),
            BwfftError::WorkerPanicked {
                role,
                thread,
                iter,
                message,
            } => write!(
                f,
                "{role:?} thread {thread} panicked at block {iter}: {message}"
            ),
            BwfftError::StageTimeout {
                role,
                thread,
                iter,
                timeout,
            } => write!(
                f,
                "{role:?} thread {thread} stalled past the {timeout:?} watchdog at step {iter}"
            ),
            BwfftError::Simulation(e) => write!(f, "simulation: {e}"),
            BwfftError::InputLength {
                what,
                expected,
                got,
            } => write!(f, "{what} has {got} elements, plan needs {expected}"),
            BwfftError::SocketMismatch { plan, machine } => {
                write!(f, "plan wants {plan} sockets, machine has {machine}")
            }
            BwfftError::Tuner(e) => write!(f, "tuner: {e}"),
            BwfftError::Integrity { stage, block, kind } => write!(
                f,
                "integrity guard: {kind} at stage {stage}, block {block}"
            ),
            BwfftError::Allocation(e) => write!(f, "allocation: {e}"),
            BwfftError::Cancelled { iter, reason } => {
                write!(f, "run cancelled at step {iter}: {reason}")
            }
        }
    }
}

impl std::error::Error for BwfftError {}

/// Ergonomic execution entry point on [`FftPlan`] returning the
/// flattened [`BwfftError`].
pub trait PlanExecute {
    /// Runs the transform on the host (see
    /// [`bwfft_core::exec_real::execute`]).
    fn execute(
        &self,
        data: &mut [Complex64],
        work: &mut [Complex64],
    ) -> Result<ExecReport, BwfftError>;
}

impl PlanExecute for FftPlan {
    fn execute(
        &self,
        data: &mut [Complex64],
        work: &mut [Complex64],
    ) -> Result<ExecReport, BwfftError> {
        bwfft_core::exec_real::execute(self, data, work).map_err(BwfftError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_nested_pipeline_errors() {
        let nested = CoreError::Pipeline(PipelineError::WorkerPanicked {
            role: Role::Compute,
            thread: 1,
            iter: 3,
            message: "boom".into(),
        });
        let flat: BwfftError = nested.into();
        assert!(matches!(
            flat,
            BwfftError::WorkerPanicked { role: Role::Compute, thread: 1, iter: 3, .. }
        ));
        assert!(!flat.is_usage());
    }

    #[test]
    fn usage_classification() {
        let e: BwfftError = PlanError::NotPow2("n", 12).into();
        assert!(e.is_usage());
        let e: BwfftError = CoreError::InputLength {
            what: "data",
            expected: 8,
            got: 4,
        }
        .into();
        assert!(e.is_usage());
        let e = BwfftError::StageTimeout {
            role: Role::Data,
            thread: 0,
            iter: 2,
            timeout: Duration::from_secs(1),
        };
        assert!(!e.is_usage());
    }

    #[test]
    fn tuner_errors_flatten_and_classify() {
        // Bad wisdom = usage; a failed timing run = runtime fault.
        let e: BwfftError = TunerError::WisdomParse {
            line: 4,
            reason: "bad token".into(),
        }
        .into();
        assert!(e.is_usage());
        assert!(e.to_string().contains("line 4"));
        let e: BwfftError =
            TunerError::Exec(CoreError::SocketMismatch { plan: 2, machine: 1 }).into();
        assert!(!e.is_usage());
    }

    #[test]
    fn plan_execute_trait_runs_and_types_errors() {
        use bwfft_core::Dims;
        let plan = FftPlan::builder(Dims::d3(8, 8, 8))
            .buffer_elems(64)
            .build()
            .unwrap();
        let mut data = vec![Complex64::ZERO; 512];
        let mut work = vec![Complex64::ZERO; 512];
        assert!(plan.execute(&mut data, &mut work).is_ok());
        let mut short = vec![Complex64::ZERO; 8];
        let err = plan.execute(&mut short, &mut work).unwrap_err();
        assert!(matches!(err, BwfftError::InputLength { what: "data", .. }));
    }

    #[test]
    fn integrity_and_allocation_flatten_as_runtime_faults() {
        // Pipeline-level guard trip and core-level (energy) guard trip
        // flatten to the same facade variant; both are runtime faults
        // (exit 1), never usage errors.
        let e: BwfftError = CoreError::Pipeline(PipelineError::Integrity {
            stage: 1,
            block: 4,
            kind: IntegrityKind::Checksum,
        })
        .into();
        assert!(
            matches!(e, BwfftError::Integrity { stage: 1, block: 4, kind: IntegrityKind::Checksum })
        );
        assert!(!e.is_usage());
        let e: BwfftError = CoreError::Integrity {
            stage: 0,
            block: 0,
            kind: IntegrityKind::Energy,
        }
        .into();
        assert!(matches!(e, BwfftError::Integrity { kind: IntegrityKind::Energy, .. }));
        assert!(!e.is_usage());
        assert!(e.to_string().contains("integrity guard"));

        let e: BwfftError = CoreError::Allocation(AllocError {
            what: "double buffer",
            bytes: 1 << 40,
        })
        .into();
        assert!(matches!(e, BwfftError::Allocation(_)));
        assert!(!e.is_usage());
        assert!(e.to_string().contains("allocation"));
    }

    #[test]
    fn cancellation_flattens_as_a_runtime_fault() {
        let e: BwfftError = CoreError::Pipeline(PipelineError::Cancelled {
            iter: 3,
            reason: CancelReason::Deadline,
        })
        .into();
        assert!(matches!(
            e,
            BwfftError::Cancelled { iter: 3, reason: CancelReason::Deadline }
        ));
        assert!(!e.is_usage());
        assert!(e.to_string().contains("deadline"));
        let e: BwfftError = PipelineError::Cancelled {
            iter: 0,
            reason: CancelReason::Shutdown,
        }
        .into();
        assert!(e.to_string().contains("shutdown"));
    }

    #[test]
    fn errors_render() {
        let e = BwfftError::WorkerPanicked {
            role: Role::Data,
            thread: 0,
            iter: 7,
            message: "x".into(),
        };
        assert!(e.to_string().contains("block 7"));
        let e = BwfftError::SocketMismatch { plan: 2, machine: 1 };
        assert!(e.to_string().contains("2 sockets"));
    }
}
