//! # bwfft — large bandwidth-efficient FFTs
//!
//! A Rust reproduction of Popovici, Low & Franchetti, *"Large
//! Bandwidth-Efficient FFTs on Multicore and Multi-Socket Systems"*
//! (IPDPS 2018): multidimensional FFTs that repurpose half the hardware
//! threads as soft DMA engines, double-buffering blocks through the
//! last-level cache while the remaining threads compute, with the
//! inter-stage reshape folded into non-temporal stores.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`num`] | complex scalars, aligned buffers, error norms |
//! | [`spl`] | the SPL/Kronecker formula language and rewrite rules |
//! | [`kernels`] | Stockham/radix-2 kernels, layouts, blocked reshapes |
//! | [`machine`] | simulated multicore/multi-socket machines (§V presets) |
//! | [`pipeline`] | Table II schedules, thread roles, the real executor |
//! | [`core`] | the double-buffered 2D/3D FFT plans and both executors |
//! | [`trace`] | span recorder, overlap accounting, roofline reports |
//! | [`metrics`] | lock-free counters/gauges/histograms, snapshots, flight recorder |
//! | [`tuner`] | autotuner, concurrent plan cache, persistent wisdom |
//! | [`baselines`] | MKL-like / FFTW-like / slab–pencil comparators |
//! | [`bench`] | statistical benchmark harness, `BENCH_*.json` records, regression gate |
//! | [`serve`] | overload-safe concurrent FFT service: admission control, deadlines, degradation, drain |
//! | [`ooc`] | out-of-core streaming tier: file-backed transforms larger than RAM, sampled oracles |
//! | [`real`] | real-input transforms (r2c/c2r), fused spectral convolution, spectral Poisson solve |
//!
//! ## Quickstart
//!
//! ```
//! use bwfft::core::{Dims, FftPlan};
//! use bwfft::num::{signal, AlignedVec, Complex64};
//!
//! let plan = FftPlan::builder(Dims::d3(32, 32, 32))
//!     .buffer_elems(4096)
//!     .threads(2, 2)
//!     .build()
//!     .unwrap();
//! let mut data = AlignedVec::from_slice(&signal::random_complex(32 * 32 * 32, 1));
//! let mut work = AlignedVec::<Complex64>::zeroed(data.len());
//! bwfft::core::exec_real::execute(&plan, &mut data, &mut work).unwrap();
//! ```
//!
//! ## Errors and fault tolerance
//!
//! Every fallible entry point returns a typed error; worker panics
//! inside the executor are contained (no process abort, no deadlock)
//! and surface as [`BwfftError::WorkerPanicked`]:
//!
//! ```
//! use bwfft::{BwfftError, PlanExecute};
//! use bwfft::core::{Dims, FftPlan};
//! use bwfft::num::Complex64;
//!
//! let plan = FftPlan::builder(Dims::d3(8, 8, 8))
//!     .buffer_elems(64)
//!     .adapt_to_host() // degrade gracefully on weak hosts
//!     .build()
//!     .unwrap();
//! let mut data = vec![Complex64::ZERO; 512];
//! let mut work = vec![Complex64::ZERO; 512];
//! match plan.execute(&mut data, &mut work) {
//!     Ok(report) => {
//!         for d in &report.degradations {
//!             eprintln!("note: degraded: {d}");
//!         }
//!     }
//!     Err(BwfftError::WorkerPanicked { role, thread, iter, .. }) => {
//!         eprintln!("{role:?} thread {thread} died at block {iter}");
//!     }
//!     Err(e) => eprintln!("{e}"),
//! }
//! ```

mod error;
pub mod real;
pub mod soak;

pub use bwfft_baselines as baselines;
pub use bwfft_bench as bench;
pub use bwfft_core as core;
pub use bwfft_kernels as kernels;
pub use bwfft_machine as machine;
pub use bwfft_metrics as metrics;
pub use bwfft_num as num;
pub use bwfft_ooc as ooc;
pub use bwfft_pipeline as pipeline;
pub use bwfft_serve as serve;
pub use bwfft_spl as spl;
pub use bwfft_trace as trace;
pub use bwfft_tuner as tuner;
pub use error::{BwfftError, PlanExecute};
pub use soak::{
    run_ooc_kill_soak, run_serve_soak, run_soak, OocKillSoakConfig, OocKillSoakReport, OocTamper,
    ServeScenario, ServeSoakConfig, ServeSoakReport, SoakConfig, SoakReport,
};
