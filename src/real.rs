//! Facade surface for real-input transforms (DESIGN.md §13).
//!
//! Re-exports the r2c/c2r plan layer of `bwfft-core` and the 1D /
//! batched kernels of `bwfft-kernels`, and hosts the spectral Poisson
//! solver the `poisson_solver` example and its lock-down test share:
//! a purely real field should ride the packed half-spectrum path, not
//! round-trip full complex data.

pub use bwfft_core::real::{
    mirror_row, normalize, ConvReport, RealFftPlan, RealFftPlanBuilder, SpectralConvPlan,
};
pub use bwfft_kernels::layout::{
    fold_real, packed_spectrum_len, unfold_real, unpack_half_spectrum,
};
pub use bwfft_kernels::realfft::{
    conv_direct, packed_spectrum_energy, RealFft1d, RealFftMany, RealLayoutError,
    RealManyDescriptor, SpectralConv1d,
};

use crate::error::BwfftError;
use bwfft_core::Dims;
use bwfft_num::{try_vec_zeroed, Complex64};

/// Outcome of [`solve_poisson_3d`]: the manufactured-solution error
/// and the spectral residual, both sup-norm.
#[derive(Clone, Copy, Debug)]
pub struct PoissonReport {
    /// Grid points per axis.
    pub n: usize,
    /// `max |u − u_exact|` against the manufactured solution
    /// (amplitude 1). Pure FFT rounding: comfortably below `1e-10`
    /// for the grids the example uses.
    pub max_err: f64,
    /// `max |f + ∇²u|` with the Laplacian applied spectrally to the
    /// computed `u` — the discretization-free residual of the solve.
    /// `f` has amplitude `14·(2π)² ≈ 550`, so this sits below `1e-7`.
    pub max_residual: f64,
}

/// Solves `−∇²u = f` with periodic boundaries on an `n³` grid through
/// the r2c/c2r path: one real-to-complex transform of `f`, a pointwise
/// division by `(2π)²·|k|²` over the packed half-spectrum (`n²·(n/2+1)`
/// bins instead of `n³` — the real-path byte win), and one
/// complex-to-real transform back. `f` is manufactured from
/// `u = sin(2πx)·cos(4πy)·sin(6πz)` so the report can state the true
/// error, not just the residual.
///
/// `buffer_elems = 0` keeps the inner planner's default buffer.
pub fn solve_poisson_3d(
    n: usize,
    p_d: usize,
    p_c: usize,
    buffer_elems: usize,
) -> Result<PoissonReport, BwfftError> {
    let tau = std::f64::consts::TAU;
    let plan = RealFftPlan::builder(Dims::d3(n, n, n))
        .buffer_elems(buffer_elems)
        .threads(p_d, p_c)
        .build()?;
    let total = plan.real_elems();
    let nf = n as f64;

    // Manufactured solution with wavenumbers (1, 2, 3):
    // −∇²u = (2π)²·(1² + 2² + 3²)·u = 14·(2π)²·u ≕ f.
    let lambda = 14.0 * tau * tau;
    let mut u_exact: Vec<f64> = try_vec_zeroed(total, "poisson exact field")?;
    for a in 0..n {
        let sa = (tau * a as f64 / nf).sin();
        for b in 0..n {
            let cb = (2.0 * tau * b as f64 / nf).cos();
            for c in 0..n {
                let sc = (3.0 * tau * c as f64 / nf).sin();
                u_exact[(a * n + b) * n + c] = sa * cb * sc;
            }
        }
    }
    let f: Vec<f64> = u_exact.iter().map(|&v| lambda * v).collect();

    let mut work: Vec<Complex64> = try_vec_zeroed(plan.packed_elems(), "poisson work")?;
    let mut spec: Vec<Complex64> = try_vec_zeroed(plan.spectrum_elems(), "poisson spectrum")?;
    plan.r2c(&f, &mut work, &mut spec)?;

    // û[k] = f̂[k] / ((2π)²·|k|²), DC pinned to zero (mean-free
    // gauge). Leading dims carry signed frequencies; the packed
    // innermost column index is already the non-negative frequency.
    let hp = plan.half_cols();
    let signed = |i: usize| -> f64 {
        if i <= n / 2 {
            i as f64
        } else {
            i as f64 - nf
        }
    };
    for a in 0..n {
        let fa = signed(a);
        for b in 0..n {
            let fb = signed(b);
            for kf in 0..hp {
                let k2 = fa * fa + fb * fb + (kf * kf) as f64;
                let bin = &mut spec[(a * n + b) * hp + kf];
                *bin = if k2 == 0.0 {
                    Complex64::ZERO
                } else {
                    bin.scale(1.0 / (tau * tau * k2))
                };
            }
        }
    }

    let mut u: Vec<f64> = try_vec_zeroed(total, "poisson solution")?;
    plan.c2r(&spec, &mut work, &mut u)?;
    normalize(&mut u);

    let max_err = u
        .iter()
        .zip(&u_exact)
        .map(|(g, w)| (g - w).abs())
        .fold(0.0, f64::max);

    // Residual check: apply the spectral Laplacian to the *computed*
    // u and compare against f.
    plan.r2c(&u, &mut work, &mut spec)?;
    for a in 0..n {
        let fa = signed(a);
        for b in 0..n {
            let fb = signed(b);
            for kf in 0..hp {
                let k2 = fa * fa + fb * fb + (kf * kf) as f64;
                let bin = &mut spec[(a * n + b) * hp + kf];
                *bin = bin.scale(tau * tau * k2);
            }
        }
    }
    let mut lap_u: Vec<f64> = try_vec_zeroed(total, "poisson residual")?;
    plan.c2r(&spec, &mut work, &mut lap_u)?;
    normalize(&mut lap_u);
    let max_residual = lap_u
        .iter()
        .zip(&f)
        .map(|(g, w)| (g - w).abs())
        .fold(0.0, f64::max);

    Ok(PoissonReport {
        n,
        max_err,
        max_residual,
    })
}
