//! Chaos/soak harness: randomized fault schedules against the
//! supervisor.
//!
//! Each iteration draws a fault plan (or none) from a seeded generator,
//! runs a small transform under [`Supervisor`] with every integrity
//! guard armed, and checks the outcome against an *independent* oracle
//! (`bwfft-baselines`' row-column reference — deliberately not the
//! core-internal reference executor, which is itself an escalation
//! tier). The harness asserts the recovery contract:
//!
//! * **never a wrong answer** — a run that returns `Ok` must match the
//!   oracle to FFT tolerance (a mismatch is counted as a silent
//!   corruption, the one thing the whole subsystem exists to prevent);
//! * **never a panic** — injected worker panics are contained and
//!   either recovered from or surfaced as typed errors;
//! * **deterministic** — the same seed produces the same outcome
//!   counters, attempt counts and tier distribution.
//!
//! The `soak` CLI subcommand and `tests/soak.rs` drive this module; the
//! CI smoke tier runs it with a fixed seed.

use crate::error::BwfftError;
use bwfft_baselines::reference_impl::{pencil_fft_2d, pencil_fft_3d};
use bwfft_core::exec_real::ExecConfig;
use bwfft_core::{Dims, FftPlan, RecoveryTier, RetryPolicy, SupervisedReport, Supervisor};
use bwfft_num::compare::{fft_tolerance, rel_l2_error};
use bwfft_num::signal::random_complex;
use bwfft_num::Complex64;
use bwfft_pipeline::fault::silence_injected_panic_reports;
use bwfft_pipeline::{FaultPhase, FaultPlan, IntegrityConfig, Role};
use std::time::Duration;

/// xorshift64* — tiny, dependency-free, and good enough to scatter
/// fault sites around the schedule. Distinct from `SplitMix64` in
/// `bwfft-num` so signal data and fault schedules are decorrelated
/// even under equal seeds.
#[derive(Clone, Debug)]
pub struct XorShift64Star(u64);

impl XorShift64Star {
    pub fn new(seed: u64) -> Self {
        // State must be nonzero; fold the seed through an odd constant
        // so small seeds (0, 1, 2, …) still diverge immediately.
        XorShift64Star(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish draw in `0..n` (modulo bias is irrelevant here).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// The fault classes the generator draws from, also the index space of
/// [`SoakReport::fault_counts`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SoakFault {
    None = 0,
    Panic = 1,
    Stall = 2,
    Corrupt = 3,
    AllocBudget = 4,
    DenyPinning = 5,
}

const FAULT_KINDS: usize = 6;

/// Soak run parameters.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Fault-injected iterations to run.
    pub iters: usize,
    /// Seed for the fault/signal generator; equal seeds give equal
    /// reports.
    pub seed: u64,
    /// Injected stall length. Kept short: the executor joins stalled
    /// workers, so every stall is paid in wall-clock.
    pub stall: Duration,
    /// Supervisor budget used for every iteration.
    pub policy: RetryPolicy,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            iters: 200,
            seed: 0xB147_F00D,
            stall: Duration::from_millis(10),
            policy: RetryPolicy {
                backoff_base: Duration::from_micros(100),
                backoff_cap: Duration::from_millis(2),
                ..RetryPolicy::default()
            },
        }
    }
}

/// Aggregated soak outcome.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SoakReport {
    /// Iterations executed.
    pub iterations: usize,
    /// Runs that succeeded first-try with no recovery steps.
    pub clean: usize,
    /// Runs that succeeded after at least one recovery step.
    pub recovered: usize,
    /// Runs that ended in a typed error (every tier exhausted). Still a
    /// contract success: typed, not wrong, not a panic.
    pub typed_errors: usize,
    /// Runs that returned `Ok` with output that does NOT match the
    /// oracle. The invariant under test: this must stay zero.
    pub silent_corruptions: usize,
    /// Successful runs by finishing tier `[pipelined, fused, reference]`.
    pub tier_finishes: [usize; 3],
    /// Iterations by injected fault class, indexed by [`SoakFault`].
    pub fault_counts: [usize; FAULT_KINDS],
    /// Total executor attempts across all iterations.
    pub total_attempts: usize,
}

impl SoakReport {
    /// The soak contract: every iteration accounted for, zero silent
    /// corruptions.
    pub fn holds(&self) -> bool {
        self.silent_corruptions == 0
            && self.clean + self.recovered + self.typed_errors + self.silent_corruptions
                == self.iterations
    }

    /// Human-readable one-screen summary.
    pub fn render(&self) -> String {
        format!(
            "soak: {} iterations — {} clean, {} recovered, {} typed errors, \
             {} silent corruptions\n\
             finishes by tier: pipelined {}, fused {}, reference {}\n\
             faults injected: none {}, panic {}, stall {}, corrupt {}, \
             alloc {}, pin-deny {}\n\
             total attempts: {}\n\
             contract: {}",
            self.iterations,
            self.clean,
            self.recovered,
            self.typed_errors,
            self.silent_corruptions,
            self.tier_finishes[0],
            self.tier_finishes[1],
            self.tier_finishes[2],
            self.fault_counts[0],
            self.fault_counts[1],
            self.fault_counts[2],
            self.fault_counts[3],
            self.fault_counts[4],
            self.fault_counts[5],
            self.total_attempts,
            if self.holds() { "HOLDS" } else { "VIOLATED" },
        )
    }
}

/// The small shapes the soak rotates through: one 2D, two 3D, all a few
/// blocks long so every schedule region (prologue / steady state /
/// epilogue) sees faults.
fn shape_for(rng: &mut XorShift64Star) -> (Dims, usize) {
    match rng.below(3) {
        0 => (Dims::d2(16, 32), 128),
        1 => (Dims::d3(8, 8, 16), 128),
        _ => (Dims::d3(8, 16, 16), 256),
    }
}

fn random_phase(rng: &mut XorShift64Star, role: Role) -> FaultPhase {
    match role {
        Role::Compute => FaultPhase::Compute,
        Role::Data => {
            if rng.below(2) == 0 {
                FaultPhase::Load
            } else {
                FaultPhase::Store
            }
        }
    }
}

fn random_site(rng: &mut XorShift64Star, blocks: usize) -> (Role, usize, usize, FaultPhase) {
    let role = if rng.below(2) == 0 {
        Role::Data
    } else {
        Role::Compute
    };
    // Thread indices up to 2: index 1 hits only the pipelined executor
    // (fused runs with thread-0 semantics), index 0 hits both.
    let thread = rng.below(2) as usize;
    let iter = rng.below(blocks as u64) as usize;
    let phase = random_phase(rng, role);
    (role, thread, iter, phase)
}

/// Draws one fault plan (possibly empty) for an iteration.
fn random_fault(
    rng: &mut XorShift64Star,
    blocks: usize,
    stall: Duration,
) -> (SoakFault, FaultPlan) {
    match rng.below(FAULT_KINDS as u64) {
        0 => (SoakFault::None, FaultPlan::none()),
        1 => {
            let (role, thread, iter, phase) = random_site(rng, blocks);
            (
                SoakFault::Panic,
                FaultPlan::panic_at_phase(role, thread, iter, phase),
            )
        }
        2 => {
            let (role, thread, iter, phase) = random_site(rng, blocks);
            (
                SoakFault::Stall,
                FaultPlan::stall_at_phase(role, thread, iter, phase, stall),
            )
        }
        3 => {
            let (role, thread, iter, phase) = random_site(rng, blocks);
            (
                SoakFault::Corrupt,
                FaultPlan::corrupt_at(role, thread, iter, phase),
            )
        }
        4 => {
            // From "one halving recovers" down to "nothing fits, land
            // on the reference tier".
            let budgets = [2048u64, 1024, 256, 16];
            let budget = budgets[rng.below(budgets.len() as u64) as usize];
            (
                SoakFault::AllocBudget,
                FaultPlan::none().with_alloc_budget(budget as usize),
            )
        }
        _ => (SoakFault::DenyPinning, FaultPlan::none().with_denied_pinning()),
    }
}

/// The independent oracle: `bwfft-baselines`' row-column transform.
fn oracle(dims: Dims, x: &[Complex64]) -> Vec<Complex64> {
    let mut want = x.to_vec();
    match dims {
        Dims::Two { n, m } => pencil_fft_2d(&mut want, n, m, bwfft_kernels::Direction::Forward),
        Dims::Three { k, n, m } => {
            pencil_fft_3d(&mut want, k, n, m, bwfft_kernels::Direction::Forward)
        }
    }
    want
}

/// Runs the soak: `cfg.iters` randomized fault-injected supervised
/// transforms. Returns `Err` only if an iteration's *plan construction*
/// fails (a harness bug, not a recovery outcome) — every executor
/// outcome, including typed failures, is folded into the report.
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, BwfftError> {
    silence_injected_panic_reports();
    let mut rng = XorShift64Star::new(cfg.seed);
    let supervisor = Supervisor::new(cfg.policy.clone());
    let mut report = SoakReport::default();

    for _ in 0..cfg.iters {
        let (dims, b) = shape_for(&mut rng);
        let plan = FftPlan::builder(dims)
            .buffer_elems(b)
            .threads(2, 2)
            .build()?;
        let blocks = plan.iters_per_socket();
        let (kind, fault) = random_fault(&mut rng, blocks, cfg.stall);
        report.fault_counts[kind as usize] += 1;

        let x = random_complex(dims.total(), rng.next_u64());
        let want = oracle(dims, &x);

        let mut data = x;
        let mut work = vec![Complex64::ZERO; dims.total()];
        let exec_cfg = ExecConfig {
            fault: Some(fault),
            integrity: IntegrityConfig::full(),
            verify_energy: true,
            ..ExecConfig::default()
        };

        report.iterations += 1;
        match supervisor.run(&plan, &mut data, &mut work, &exec_cfg) {
            Ok(rep) => {
                report.total_attempts += rep.attempts;
                if rel_l2_error(&data, &want) <= fft_tolerance(want.len()) {
                    record_success(&mut report, &rep);
                } else {
                    report.silent_corruptions += 1;
                }
            }
            Err(_) => {
                // Typed failure: acceptable under the contract. (Any
                // panic would have unwound through this call instead.)
                report.typed_errors += 1;
            }
        }
    }
    Ok(report)
}

fn record_success(report: &mut SoakReport, rep: &SupervisedReport) {
    if rep.recovered() {
        report.recovered += 1;
    } else {
        report.clean += 1;
    }
    let t = match rep.tier {
        RecoveryTier::Pipelined => 0,
        RecoveryTier::Fused => 1,
        RecoveryTier::Reference => 2,
    };
    report.tier_finishes[t] += 1;
}

// ---------------------------------------------------------------------------
// Serve overload matrix
// ---------------------------------------------------------------------------

/// The overload scenarios the serve soak rotates through, also the
/// index space of [`ServeSoakReport::scenario_counts`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeScenario {
    /// Burst arrivals into a shallow queue: shedding expected.
    Burst = 0,
    /// Requests larger than the byte budget mixed with ones that fit.
    Oversized = 1,
    /// Injected faults mid-flight: the supervisor must recover or fail
    /// typed, never corrupt.
    Faults = 2,
    /// Shutdown racing submissions, with some already-expired
    /// deadlines in the queue.
    ShutdownRace = 3,
}

const SERVE_SCENARIOS: usize = 4;

/// Serve soak parameters. Each iteration is one full server lifecycle
/// (start → submissions → drain → per-ticket verification).
#[derive(Clone, Debug)]
pub struct ServeSoakConfig {
    /// Server lifecycles to run (scenarios rotate).
    pub iters: usize,
    /// Seed for scenario draws and signal data.
    pub seed: u64,
}

impl Default for ServeSoakConfig {
    fn default() -> Self {
        ServeSoakConfig {
            iters: 12,
            seed: 0x5E7E_F00D,
        }
    }
}

/// Aggregated serve-soak outcome. Worker scheduling makes the exact
/// split between counters run-dependent; the *contract* columns
/// (`oracle_mismatches`, `unbalanced_lifecycles`) must stay zero on
/// every run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeSoakReport {
    /// Server lifecycles executed.
    pub lifecycles: usize,
    /// Iterations by scenario, indexed by [`ServeScenario`].
    pub scenario_counts: [usize; SERVE_SCENARIOS],
    /// Submission attempts across all lifecycles.
    pub attempts: u64,
    /// Admitted past every admission check.
    pub submitted: u64,
    pub completed: u64,
    pub rejected: u64,
    pub deadline_exceeded: u64,
    pub failed: u64,
    /// Completions that needed supervisor recovery.
    pub recovered: u64,
    /// Completions whose output did NOT match the pencil oracle. The
    /// invariant under test: must stay zero.
    pub oracle_mismatches: u64,
    /// Lifecycles whose drained report failed its own accounting, or
    /// whose per-ticket outcome tally disagreed with it. Must stay
    /// zero: every submission terminates with exactly one typed
    /// outcome.
    pub unbalanced_lifecycles: u64,
    /// Breaker degradations observed across the Faults lifecycles
    /// (downward transitions in the drained report).
    pub breaker_trips: u64,
    /// `breaker:*`-triggered flight-recorder dumps captured across the
    /// Faults lifecycles. The observability contract: one dump per
    /// degradation, so this must equal `breaker_trips`.
    pub flight_dumps: u64,
    /// Flight dumps that failed reconciliation — a request id the
    /// lifecycle never issued, an outcome disagreeing with the ticket's
    /// own, or a `bwfft-flight/1` round trip that was not
    /// byte-identical. Must stay zero.
    pub unreconciled_dumps: u64,
}

impl ServeSoakReport {
    /// The serve contract: every attempt accounted for (admitted or
    /// shed), every admitted request terminated exactly once, no
    /// completed output diverged from the oracle.
    pub fn holds(&self) -> bool {
        self.oracle_mismatches == 0
            && self.unbalanced_lifecycles == 0
            && self.attempts == self.submitted + self.rejected
            && self.submitted == self.completed + self.deadline_exceeded + self.failed
            && self.flight_dumps == self.breaker_trips
            && self.unreconciled_dumps == 0
    }

    /// Human-readable one-screen summary.
    pub fn render(&self) -> String {
        format!(
            "serve soak: {} lifecycles — {} attempts: {} completed, \
             {} rejected, {} deadline-exceeded, {} failed ({} recovered)\n\
             scenarios: burst {}, oversized {}, faults {}, shutdown-race {}\n\
             oracle mismatches: {}, unbalanced lifecycles: {}\n\
             breaker trips: {}, flight dumps: {}, unreconciled dumps: {}\n\
             contract: {}",
            self.lifecycles,
            self.attempts,
            self.completed,
            self.rejected,
            self.deadline_exceeded,
            self.failed,
            self.recovered,
            self.scenario_counts[0],
            self.scenario_counts[1],
            self.scenario_counts[2],
            self.scenario_counts[3],
            self.oracle_mismatches,
            self.unbalanced_lifecycles,
            self.breaker_trips,
            self.flight_dumps,
            self.unreconciled_dumps,
            if self.holds() { "HOLDS" } else { "VIOLATED" },
        )
    }
}

/// One lifecycle's submissions: inputs kept for oracle checks.
struct ServeProbe {
    dims: Dims,
    input: Vec<Complex64>,
    ticket: bwfft_serve::Ticket,
}

/// Runs the concurrent overload matrix against `bwfft-serve`. Each
/// iteration builds a fresh server under one [`ServeScenario`], throws
/// a randomized batch at it, drains, and verifies every ticket:
/// completed outputs against the pencil oracle, and the per-ticket
/// outcome tally against the drained [`bwfft_serve::ServeReport`].
pub fn run_serve_soak(cfg: &ServeSoakConfig) -> Result<ServeSoakReport, BwfftError> {
    use bwfft_serve::{FftRequest, FftServer, RequestOutcome, ServeConfig, ServeError};

    silence_injected_panic_reports();
    let mut rng = XorShift64Star::new(cfg.seed);
    let mut report = ServeSoakReport::default();

    for i in 0..cfg.iters {
        let scenario = match i % SERVE_SCENARIOS {
            0 => ServeScenario::Burst,
            1 => ServeScenario::Oversized,
            2 => ServeScenario::Faults,
            _ => ServeScenario::ShutdownRace,
        };
        report.lifecycles += 1;
        report.scenario_counts[scenario as usize] += 1;

        // The smallest shape's working set prices the byte budget so
        // the Oversized scenario always has requests that cannot fit.
        let small_bytes = 2 * Dims::d2(16, 32).total() * std::mem::size_of::<Complex64>();
        let flight = (scenario == ServeScenario::Faults)
            .then(|| bwfft_metrics::FlightRecorder::new(16));
        let server_cfg = match scenario {
            ServeScenario::Burst => ServeConfig {
                workers: 2,
                queue_capacity: 2,
                ..ServeConfig::default()
            },
            ServeScenario::Oversized => ServeConfig {
                workers: 1,
                queue_capacity: 8,
                byte_budget: Some(small_bytes + small_bytes / 2),
                ..ServeConfig::default()
            },
            ServeScenario::Faults => ServeConfig {
                workers: 2,
                queue_capacity: 8,
                // Same guard set as the supervisor soak: injected
                // corruption must fail typed, never complete wrong.
                integrity: IntegrityConfig::full(),
                verify_energy: true,
                // Hair-trigger breaker: the guaranteed expired-deadline
                // request in every Faults batch trips it, and the
                // flight recorder must produce a reconcilable dump for
                // every degradation (checked after the drain).
                breaker: bwfft_serve::BreakerConfig {
                    failure_threshold: 1,
                    success_threshold: 2,
                    probe_interval: 4,
                },
                metrics: Some(std::sync::Arc::new(bwfft_metrics::Registry::new())),
                flight: flight.clone(),
                ..ServeConfig::default()
            },
            ServeScenario::ShutdownRace => ServeConfig {
                workers: 2,
                queue_capacity: 8,
                ..ServeConfig::default()
            },
        };
        let mut server = FftServer::start(server_cfg);

        let batch = 4 + rng.below(5) as usize;
        let mut probes = Vec::with_capacity(batch);
        let mut rejected = 0u64;
        for j in 0..batch {
            let (dims, b) = match scenario {
                // Keep every request admissible-by-size except in the
                // Oversized scenario, where the larger 3D shapes bust
                // the byte budget by construction.
                ServeScenario::Oversized => shape_for(&mut rng),
                _ => (Dims::d2(16, 32), 128),
            };
            let input = random_complex(dims.total(), rng.next_u64());
            let mut req = FftRequest::new(dims, input.clone())
                .buffer_elems(b)
                .threads(2, 2);
            if scenario == ServeScenario::Faults {
                if j == 0 {
                    // Guaranteed breaker failure: an already-expired
                    // deadline terminates `DeadlineExceeded`, which the
                    // hair-trigger breaker answers with a degradation —
                    // and the flight recorder must dump it.
                    req = req.deadline(Duration::ZERO);
                } else {
                    let (role, thread, iter, phase) = random_site(&mut rng, 4);
                    req = match rng.below(2) {
                        0 => req.fault(FaultPlan::panic_at_phase(role, thread, iter, phase)),
                        _ => req.fault(FaultPlan::corrupt_at(role, thread, iter, phase)),
                    };
                }
            }
            if scenario == ServeScenario::ShutdownRace && rng.below(3) == 0 {
                // Already expired: must still terminate exactly once.
                req = req.deadline(Duration::ZERO);
            }
            report.attempts += 1;
            match server.submit(req) {
                Ok(ticket) => probes.push(ServeProbe { dims, input, ticket }),
                Err(ServeError::Rejected { .. }) => rejected += 1,
                // A usage error here is a harness bug, not an outcome.
                Err(ServeError::InvalidRequest { error }) => return Err(error.into()),
                Err(ServeError::InputLength { expected, got }) => {
                    return Err(BwfftError::InputLength {
                        what: "serve soak request",
                        expected,
                        got,
                    })
                }
            }
        }

        // ShutdownRace drains immediately with work still queued and
        // in flight; the other scenarios drain after the batch too —
        // the report is only meaningful once drained.
        let drained = server.shutdown();

        let mut completed = 0u64;
        let mut deadline_exceeded = 0u64;
        let mut failed = 0u64;
        let mut outcome_tokens: std::collections::HashMap<u64, &'static str> =
            std::collections::HashMap::new();
        for probe in probes {
            let id = probe.ticket.id();
            let outcome = probe.ticket.wait();
            outcome_tokens.insert(id, outcome.token());
            match outcome {
                RequestOutcome::Completed { output, .. } => {
                    completed += 1;
                    let want = oracle(probe.dims, &probe.input);
                    if rel_l2_error(&output, &want) > fft_tolerance(want.len()) {
                        report.oracle_mismatches += 1;
                    }
                }
                RequestOutcome::DeadlineExceeded { .. } => deadline_exceeded += 1,
                RequestOutcome::Failed { .. } => failed += 1,
            }
        }

        if let Some(flight) = &flight {
            // One dump per breaker degradation, and every dump's span
            // trees must reconcile with the per-ticket tally: known
            // request ids, agreeing outcomes, byte-stable JSON.
            report.breaker_trips += drained
                .breaker_transitions
                .iter()
                .filter(|t| t.to > t.from)
                .count() as u64;
            for dump in flight.take_dumps() {
                if dump.trigger.starts_with("breaker:") {
                    report.flight_dumps += 1;
                }
                let reconciles = dump.requests.iter().all(|r| {
                    outcome_tokens.get(&r.request_id) == Some(&r.outcome.as_str())
                }) && bwfft_metrics::FlightDump::from_json(&dump.to_json())
                    .map(|back| back.to_json() == dump.to_json())
                    .unwrap_or(false);
                if !reconciles {
                    report.unreconciled_dumps += 1;
                }
            }
        }

        // Exactly-one-outcome accounting: the drained report must
        // balance on its own *and* agree with what the tickets said.
        let balanced = drained.holds()
            && drained.completed == completed
            && drained.deadline_exceeded == deadline_exceeded
            && drained.failed == failed
            && drained.rejected.total() == rejected;
        if !balanced {
            report.unbalanced_lifecycles += 1;
        }
        report.submitted += drained.submitted;
        report.completed += completed;
        report.rejected += rejected;
        report.deadline_exceeded += deadline_exceeded;
        report.failed += failed;
        report.recovered += drained.recovered_runs;
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Out-of-core kill/restart drill
// ---------------------------------------------------------------------------

/// What the drill does to the kept workspace between the kill and the
/// resume, also the index space of
/// [`OocKillSoakReport::tamper_counts`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OocTamper {
    /// Resume the workspace exactly as the dead process left it.
    None = 0,
    /// Tear bytes off the journal tail — the on-disk state after a
    /// power cut mid-append.
    TornTail = 1,
    /// Append raw garbage after the last clean frame — a torn append
    /// that made it partway to disk.
    GarbageTail = 2,
    /// Flip one payload bit inside a journal-credited scratch block —
    /// storage corruption the resume re-verification must refuse.
    ScratchFlip = 3,
}

const OOC_TAMPERS: usize = 4;

/// Kill/restart drill parameters. Every iteration spawns a real
/// `bwfft-cli ooc` child, aborts it at a seeded (stage, block) point,
/// optionally tampers with the kept workspace, and resumes.
#[derive(Clone, Debug)]
pub struct OocKillSoakConfig {
    /// Path to the `bwfft-cli` binary to spawn. Defaults to the
    /// running executable (the CLI drills itself); integration tests
    /// point this at `CARGO_BIN_EXE_bwfft-cli`.
    pub cli: std::path::PathBuf,
    /// Kill → (tamper) → resume cycles. The crash stage rotates so any
    /// `iters >= 5` covers every stage.
    pub iters: usize,
    /// Seed for crash blocks and tamper draws.
    pub seed: u64,
    /// Transform length for every cycle.
    pub n: usize,
    /// Working-memory budget — small, so every stage has many blocks
    /// and a mid-stage kill leaves real work on both sides.
    pub budget_bytes: usize,
    /// Parent directory for the per-cycle workspaces (default: the
    /// system temp dir).
    pub parent: Option<std::path::PathBuf>,
}

impl Default for OocKillSoakConfig {
    fn default() -> Self {
        OocKillSoakConfig {
            cli: std::env::current_exe().unwrap_or_default(),
            iters: 10,
            seed: 0x0CC1_4B17,
            n: 1 << 12,
            budget_bytes: 16 * 1024,
            parent: None,
        }
    }
}

/// Aggregated kill/restart outcome. The contract columns
/// (`wrong_answers`, `panics`, `unbounded_rework`,
/// `unexpected_child_exits`) must stay zero on every run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OocKillSoakReport {
    /// Kill → resume cycles executed.
    pub iterations: usize,
    /// Children that really died at the armed crash point (SIGABRT).
    pub kills: usize,
    /// Resumes that completed with a passing oracle.
    pub resumed_ok: usize,
    /// Resumes the checkpoint layer *refused* with a typed error —
    /// the correct outcome for [`OocTamper::ScratchFlip`].
    pub detected_corruptions: usize,
    /// Cycles by tamper mode, indexed by [`OocTamper`].
    pub tamper_counts: [usize; OOC_TAMPERS],
    /// Resumes whose child printed a failing oracle line or silently
    /// accepted corrupted scratch. Must stay zero.
    pub wrong_answers: usize,
    /// Resume children that died by signal or printed a panic instead
    /// of a typed error. Must stay zero.
    pub panics: usize,
    /// Resumes whose rework exceeded one stage's blocks. Must stay
    /// zero: the bound is the whole point of the journal.
    pub unbounded_rework: usize,
    /// Children that neither aborted at the crash point (kill leg) nor
    /// produced the expected typed/clean outcome (resume leg). Must
    /// stay zero.
    pub unexpected_child_exits: usize,
    /// Blocks the resumes skipped as journal-credited.
    pub total_skipped_blocks: u64,
    /// Blocks the resumes re-executed.
    pub total_rework_blocks: u64,
}

impl OocKillSoakReport {
    /// The crash-safety contract: every kill really killed, every
    /// resume either finished right or refused typed, rework bounded.
    pub fn holds(&self) -> bool {
        self.wrong_answers == 0
            && self.panics == 0
            && self.unbounded_rework == 0
            && self.unexpected_child_exits == 0
            && self.kills == self.iterations
            && self.resumed_ok + self.detected_corruptions == self.iterations
    }

    /// Human-readable one-screen summary.
    pub fn render(&self) -> String {
        format!(
            "ooc kill soak: {} cycles — {} killed, {} resumed clean, \
             {} corruptions refused typed\n\
             tampers: none {}, torn-tail {}, garbage-tail {}, scratch-flip {}\n\
             skipped {} block(s), reworked {} block(s)\n\
             wrong answers: {}, panics: {}, unbounded rework: {}, \
             unexpected exits: {}\n\
             contract: {}",
            self.iterations,
            self.kills,
            self.resumed_ok,
            self.detected_corruptions,
            self.tamper_counts[0],
            self.tamper_counts[1],
            self.tamper_counts[2],
            self.tamper_counts[3],
            self.total_skipped_blocks,
            self.total_rework_blocks,
            self.wrong_answers,
            self.panics,
            self.unbounded_rework,
            self.unexpected_child_exits,
            if self.holds() { "HOLDS" } else { "VIOLATED" },
        )
    }
}

/// Blocks streamed by `stage`, mirroring the executor's geometry: the
/// stage reads its source matrix in `br`-row bands.
fn ooc_stage_blocks(p: &bwfft_ooc::OocPlan, stage: usize) -> usize {
    let (r, c) = match stage {
        1 | 2 => (p.n2, p.n1),
        _ => (p.n1, p.n2),
    };
    let br = (p.half_elems / c).min(r).max(1);
    r / br
}

/// The store each stage writes — the one whose journal-credited blocks
/// a scratch-flip tamper corrupts.
fn ooc_stage_dst(stage: usize) -> &'static str {
    ["t1.bin", "s1.bin", "t2.bin", "s2.bin", "output.bin"][stage]
}

/// Parses the CLI's machine-parseable `resume:` line into
/// (resumed, skipped_blocks, reverified_blocks, rework_blocks).
fn parse_resume_line(stdout: &str) -> Option<(bool, u64, u64, u64)> {
    let line = stdout.lines().find(|l| l.starts_with("resume: "))?;
    let mut resumed = None;
    let mut skipped = None;
    let mut reverified = None;
    let mut rework = None;
    for pair in line.trim_start_matches("resume: ").split_whitespace() {
        let (k, v) = pair.split_once('=')?;
        match k {
            "resumed" => resumed = v.parse().ok(),
            "skipped_blocks" => skipped = v.parse().ok(),
            "reverified_blocks" => reverified = v.parse().ok(),
            "rework_blocks" => rework = v.parse().ok(),
            _ => {}
        }
    }
    Some((resumed?, skipped?, reverified?, rework?))
}

/// Runs one `bwfft-cli ooc` child and captures its output.
fn spawn_ooc_child(
    cfg: &OocKillSoakConfig,
    dir: &std::path::Path,
    extra: &[&str],
) -> Result<std::process::Output, bwfft_ooc::OocError> {
    let n = cfg.n.to_string();
    let budget = cfg.budget_bytes.to_string();
    let seed = cfg.seed.to_string();
    std::process::Command::new(&cfg.cli)
        .arg("ooc")
        .args(["--n", &n, "--budget", &budget, "--seed", &seed])
        .args(["--workspace"])
        .arg(dir)
        .args(extra)
        .output()
        .map_err(|e| bwfft_ooc::OocError::io("spawn ooc child", e))
}

/// Runs the kill/restart drill: real child processes aborted at seeded
/// (stage, block) points across every stage, workspaces torn and
/// bit-flipped between kill and resume, then resumed and verified.
/// Returns `Err` only on harness failures (the CLI binary cannot be
/// spawned, a workspace cannot be prepared) — every child outcome,
/// including refusals, is folded into the report.
pub fn run_ooc_kill_soak(cfg: &OocKillSoakConfig) -> Result<OocKillSoakReport, bwfft_ooc::OocError> {
    use std::os::unix::process::ExitStatusExt;

    let plan = bwfft_ooc::plan(
        cfg.n,
        &bwfft_ooc::OocConfig {
            budget_bytes: cfg.budget_bytes,
            ..bwfft_ooc::OocConfig::default()
        },
    )?;
    let parent = cfg
        .parent
        .clone()
        .unwrap_or_else(std::env::temp_dir);
    let mut rng = XorShift64Star::new(cfg.seed);
    let mut report = OocKillSoakReport::default();

    for i in 0..cfg.iters {
        report.iterations += 1;
        let stage = i % bwfft_ooc::STAGE_NAMES.len();
        let blocks = ooc_stage_blocks(&plan, stage);
        let block = rng.below(blocks as u64) as usize;
        let tamper = match rng.below(OOC_TAMPERS as u64) {
            0 => OocTamper::None,
            1 => OocTamper::TornTail,
            2 => OocTamper::GarbageTail,
            _ => OocTamper::ScratchFlip,
        };
        report.tamper_counts[tamper as usize] += 1;

        let dir = parent.join(format!("ooc-kill-{}-{i}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Kill leg: the child must die by SIGABRT at the armed point,
        // leaving a journal behind.
        let crash = format!("{stage},{block}");
        let out = spawn_ooc_child(cfg, &dir, &["--crash-at", &crash])?;
        let aborted = out.status.signal().is_some();
        let journal = dir.join(bwfft_ooc::JOURNAL_FILE);
        if aborted && journal.exists() {
            report.kills += 1;
        } else {
            report.unexpected_child_exits += 1;
            let _ = std::fs::remove_dir_all(&dir);
            continue;
        }

        // Tamper leg: damage the workspace the way real crashes do.
        match tamper {
            OocTamper::None => {}
            OocTamper::TornTail => {
                // Tear up to ~a third of a frame off the tail: at most
                // the last committed record is lost.
                let len = std::fs::metadata(&journal)
                    .map_err(|e| bwfft_ooc::OocError::io("stat journal", e))?
                    .len();
                let torn = len.saturating_sub(1 + rng.below(16));
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(&journal)
                    .map_err(|e| bwfft_ooc::OocError::io("open journal", e))?;
                f.set_len(torn)
                    .map_err(|e| bwfft_ooc::OocError::io("tear journal", e))?;
            }
            OocTamper::GarbageTail => {
                use std::io::Write;
                let mut f = std::fs::OpenOptions::new()
                    .append(true)
                    .open(&journal)
                    .map_err(|e| bwfft_ooc::OocError::io("open journal", e))?;
                f.write_all(b"57 deadbeef {\"kind\":\"blo")
                    .map_err(|e| bwfft_ooc::OocError::io("garbage append", e))?;
            }
            OocTamper::ScratchFlip => {
                use std::os::unix::fs::FileExt;
                // Byte 0 of the crashed stage's destination sits in
                // block 0, which the journal credits (blocks 0..=B
                // committed before the abort) and `--resume-verify
                // all` must therefore re-check.
                let victim = dir.join(ooc_stage_dst(stage));
                let f = std::fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&victim)
                    .map_err(|e| bwfft_ooc::OocError::io("open scratch", e))?;
                let mut b = [0u8; 1];
                f.read_exact_at(&mut b, 0)
                    .map_err(|e| bwfft_ooc::OocError::io("read scratch", e))?;
                b[0] ^= 0x10;
                f.write_all_at(&b, 0)
                    .map_err(|e| bwfft_ooc::OocError::io("flip scratch", e))?;
            }
        }

        // Resume leg: full re-verification, then judge the outcome.
        let out = spawn_ooc_child(cfg, &dir, &["--resume", "--resume-verify", "all"])?;
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        if out.status.signal().is_some() || stderr.contains("panicked") {
            report.panics += 1;
        } else if tamper == OocTamper::ScratchFlip {
            // The one tamper a resume must *refuse*: typed exit 1
            // naming the corrupt block, nothing resumed, no output.
            if out.status.code() == Some(1) && stderr.contains("scratch") {
                report.detected_corruptions += 1;
            } else if out.status.success() {
                report.wrong_answers += 1;
            } else {
                report.unexpected_child_exits += 1;
            }
        } else if out.status.success() {
            match parse_resume_line(&stdout) {
                Some((true, skipped, _reverified, rework))
                    if stdout.contains("ooc contract holds") =>
                {
                    report.resumed_ok += 1;
                    report.total_skipped_blocks += skipped;
                    report.total_rework_blocks += rework;
                    if rework > blocks as u64 {
                        report.unbounded_rework += 1;
                    }
                }
                _ => report.wrong_answers += 1,
            }
        } else {
            report.unexpected_child_exits += 1;
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_soak_holds_and_is_deterministic() {
        let cfg = SoakConfig {
            iters: 24,
            seed: 7,
            ..SoakConfig::default()
        };
        let a = run_soak(&cfg).unwrap();
        let b = run_soak(&cfg).unwrap();
        assert!(a.holds(), "contract violated:\n{}", a.render());
        assert_eq!(a, b, "same seed must give the same soak report");
        assert_eq!(a.iterations, 24);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let a = run_soak(&SoakConfig {
            iters: 16,
            seed: 1,
            ..SoakConfig::default()
        })
        .unwrap();
        let b = run_soak(&SoakConfig {
            iters: 16,
            seed: 2,
            ..SoakConfig::default()
        })
        .unwrap();
        // Fault draws differ with overwhelming probability.
        assert_ne!(a.fault_counts, b.fault_counts);
    }

    #[test]
    fn serve_soak_contract_holds_across_the_matrix() {
        let cfg = ServeSoakConfig { iters: 8, seed: 11 };
        let r = run_serve_soak(&cfg).unwrap();
        assert!(r.holds(), "contract violated:\n{}", r.render());
        assert_eq!(r.lifecycles, 8);
        // The rotation covers every scenario within 8 lifecycles.
        assert!(r.scenario_counts.iter().all(|&c| c == 2));
        assert!(r.completed > 0, "{}", r.render());
        // Oversized requests bust the byte budget regardless of worker
        // timing, so the matrix always exercises load shedding.
        assert!(r.rejected > 0, "{}", r.render());
        // Every Faults lifecycle trips its hair-trigger breaker at
        // least once, and holds() already pinned dumps == trips with
        // zero unreconciled.
        assert!(
            r.breaker_trips as usize >= r.scenario_counts[ServeScenario::Faults as usize],
            "{}",
            r.render()
        );
    }

    #[test]
    fn serve_soak_fault_lifecycles_recover_or_fail_typed() {
        // Scenario index 2 (Faults) only: every completion matched the
        // oracle (holds() checked it) even with panics and corruption
        // injected mid-flight.
        let r = run_serve_soak(&ServeSoakConfig { iters: 4, seed: 99 }).unwrap();
        assert!(r.holds(), "contract violated:\n{}", r.render());
        assert_eq!(r.scenario_counts[ServeScenario::Faults as usize], 1);
        // The injected breaker trip produced its parseable, reconciled
        // flight dump (equality is part of holds()).
        assert!(r.breaker_trips >= 1, "{}", r.render());
        assert_eq!(r.unreconciled_dumps, 0);
    }

    #[test]
    fn rng_is_stable() {
        // Pin the generator: wisdom files and CI logs reference seeds,
        // so silently changing the stream would invalidate them.
        let mut r = XorShift64Star::new(42);
        let first = r.next_u64();
        let mut r2 = XorShift64Star::new(42);
        assert_eq!(first, r2.next_u64());
        assert_ne!(r.next_u64(), first);
    }
}
