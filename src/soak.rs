//! Chaos/soak harness: randomized fault schedules against the
//! supervisor.
//!
//! Each iteration draws a fault plan (or none) from a seeded generator,
//! runs a small transform under [`Supervisor`] with every integrity
//! guard armed, and checks the outcome against an *independent* oracle
//! (`bwfft-baselines`' row-column reference — deliberately not the
//! core-internal reference executor, which is itself an escalation
//! tier). The harness asserts the recovery contract:
//!
//! * **never a wrong answer** — a run that returns `Ok` must match the
//!   oracle to FFT tolerance (a mismatch is counted as a silent
//!   corruption, the one thing the whole subsystem exists to prevent);
//! * **never a panic** — injected worker panics are contained and
//!   either recovered from or surfaced as typed errors;
//! * **deterministic** — the same seed produces the same outcome
//!   counters, attempt counts and tier distribution.
//!
//! The `soak` CLI subcommand and `tests/soak.rs` drive this module; the
//! CI smoke tier runs it with a fixed seed.

use crate::error::BwfftError;
use bwfft_baselines::reference_impl::{pencil_fft_2d, pencil_fft_3d};
use bwfft_core::exec_real::ExecConfig;
use bwfft_core::{Dims, FftPlan, RecoveryTier, RetryPolicy, SupervisedReport, Supervisor};
use bwfft_num::compare::{fft_tolerance, rel_l2_error};
use bwfft_num::signal::random_complex;
use bwfft_num::Complex64;
use bwfft_pipeline::fault::silence_injected_panic_reports;
use bwfft_pipeline::{FaultPhase, FaultPlan, IntegrityConfig, Role};
use std::time::Duration;

/// xorshift64* — tiny, dependency-free, and good enough to scatter
/// fault sites around the schedule. Distinct from `SplitMix64` in
/// `bwfft-num` so signal data and fault schedules are decorrelated
/// even under equal seeds.
#[derive(Clone, Debug)]
pub struct XorShift64Star(u64);

impl XorShift64Star {
    pub fn new(seed: u64) -> Self {
        // State must be nonzero; fold the seed through an odd constant
        // so small seeds (0, 1, 2, …) still diverge immediately.
        XorShift64Star(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish draw in `0..n` (modulo bias is irrelevant here).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// The fault classes the generator draws from, also the index space of
/// [`SoakReport::fault_counts`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SoakFault {
    None = 0,
    Panic = 1,
    Stall = 2,
    Corrupt = 3,
    AllocBudget = 4,
    DenyPinning = 5,
}

const FAULT_KINDS: usize = 6;

/// Soak run parameters.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Fault-injected iterations to run.
    pub iters: usize,
    /// Seed for the fault/signal generator; equal seeds give equal
    /// reports.
    pub seed: u64,
    /// Injected stall length. Kept short: the executor joins stalled
    /// workers, so every stall is paid in wall-clock.
    pub stall: Duration,
    /// Supervisor budget used for every iteration.
    pub policy: RetryPolicy,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            iters: 200,
            seed: 0xB147_F00D,
            stall: Duration::from_millis(10),
            policy: RetryPolicy {
                backoff_base: Duration::from_micros(100),
                backoff_cap: Duration::from_millis(2),
                ..RetryPolicy::default()
            },
        }
    }
}

/// Aggregated soak outcome.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SoakReport {
    /// Iterations executed.
    pub iterations: usize,
    /// Runs that succeeded first-try with no recovery steps.
    pub clean: usize,
    /// Runs that succeeded after at least one recovery step.
    pub recovered: usize,
    /// Runs that ended in a typed error (every tier exhausted). Still a
    /// contract success: typed, not wrong, not a panic.
    pub typed_errors: usize,
    /// Runs that returned `Ok` with output that does NOT match the
    /// oracle. The invariant under test: this must stay zero.
    pub silent_corruptions: usize,
    /// Successful runs by finishing tier `[pipelined, fused, reference]`.
    pub tier_finishes: [usize; 3],
    /// Iterations by injected fault class, indexed by [`SoakFault`].
    pub fault_counts: [usize; FAULT_KINDS],
    /// Total executor attempts across all iterations.
    pub total_attempts: usize,
}

impl SoakReport {
    /// The soak contract: every iteration accounted for, zero silent
    /// corruptions.
    pub fn holds(&self) -> bool {
        self.silent_corruptions == 0
            && self.clean + self.recovered + self.typed_errors + self.silent_corruptions
                == self.iterations
    }

    /// Human-readable one-screen summary.
    pub fn render(&self) -> String {
        format!(
            "soak: {} iterations — {} clean, {} recovered, {} typed errors, \
             {} silent corruptions\n\
             finishes by tier: pipelined {}, fused {}, reference {}\n\
             faults injected: none {}, panic {}, stall {}, corrupt {}, \
             alloc {}, pin-deny {}\n\
             total attempts: {}\n\
             contract: {}",
            self.iterations,
            self.clean,
            self.recovered,
            self.typed_errors,
            self.silent_corruptions,
            self.tier_finishes[0],
            self.tier_finishes[1],
            self.tier_finishes[2],
            self.fault_counts[0],
            self.fault_counts[1],
            self.fault_counts[2],
            self.fault_counts[3],
            self.fault_counts[4],
            self.fault_counts[5],
            self.total_attempts,
            if self.holds() { "HOLDS" } else { "VIOLATED" },
        )
    }
}

/// The small shapes the soak rotates through: one 2D, two 3D, all a few
/// blocks long so every schedule region (prologue / steady state /
/// epilogue) sees faults.
fn shape_for(rng: &mut XorShift64Star) -> (Dims, usize) {
    match rng.below(3) {
        0 => (Dims::d2(16, 32), 128),
        1 => (Dims::d3(8, 8, 16), 128),
        _ => (Dims::d3(8, 16, 16), 256),
    }
}

fn random_phase(rng: &mut XorShift64Star, role: Role) -> FaultPhase {
    match role {
        Role::Compute => FaultPhase::Compute,
        Role::Data => {
            if rng.below(2) == 0 {
                FaultPhase::Load
            } else {
                FaultPhase::Store
            }
        }
    }
}

fn random_site(rng: &mut XorShift64Star, blocks: usize) -> (Role, usize, usize, FaultPhase) {
    let role = if rng.below(2) == 0 {
        Role::Data
    } else {
        Role::Compute
    };
    // Thread indices up to 2: index 1 hits only the pipelined executor
    // (fused runs with thread-0 semantics), index 0 hits both.
    let thread = rng.below(2) as usize;
    let iter = rng.below(blocks as u64) as usize;
    let phase = random_phase(rng, role);
    (role, thread, iter, phase)
}

/// Draws one fault plan (possibly empty) for an iteration.
fn random_fault(
    rng: &mut XorShift64Star,
    blocks: usize,
    stall: Duration,
) -> (SoakFault, FaultPlan) {
    match rng.below(FAULT_KINDS as u64) {
        0 => (SoakFault::None, FaultPlan::none()),
        1 => {
            let (role, thread, iter, phase) = random_site(rng, blocks);
            (
                SoakFault::Panic,
                FaultPlan::panic_at_phase(role, thread, iter, phase),
            )
        }
        2 => {
            let (role, thread, iter, phase) = random_site(rng, blocks);
            (
                SoakFault::Stall,
                FaultPlan::stall_at_phase(role, thread, iter, phase, stall),
            )
        }
        3 => {
            let (role, thread, iter, phase) = random_site(rng, blocks);
            (
                SoakFault::Corrupt,
                FaultPlan::corrupt_at(role, thread, iter, phase),
            )
        }
        4 => {
            // From "one halving recovers" down to "nothing fits, land
            // on the reference tier".
            let budgets = [2048u64, 1024, 256, 16];
            let budget = budgets[rng.below(budgets.len() as u64) as usize];
            (
                SoakFault::AllocBudget,
                FaultPlan::none().with_alloc_budget(budget as usize),
            )
        }
        _ => (SoakFault::DenyPinning, FaultPlan::none().with_denied_pinning()),
    }
}

/// The independent oracle: `bwfft-baselines`' row-column transform.
fn oracle(dims: Dims, x: &[Complex64]) -> Vec<Complex64> {
    let mut want = x.to_vec();
    match dims {
        Dims::Two { n, m } => pencil_fft_2d(&mut want, n, m, bwfft_kernels::Direction::Forward),
        Dims::Three { k, n, m } => {
            pencil_fft_3d(&mut want, k, n, m, bwfft_kernels::Direction::Forward)
        }
    }
    want
}

/// Runs the soak: `cfg.iters` randomized fault-injected supervised
/// transforms. Returns `Err` only if an iteration's *plan construction*
/// fails (a harness bug, not a recovery outcome) — every executor
/// outcome, including typed failures, is folded into the report.
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, BwfftError> {
    silence_injected_panic_reports();
    let mut rng = XorShift64Star::new(cfg.seed);
    let supervisor = Supervisor::new(cfg.policy.clone());
    let mut report = SoakReport::default();

    for _ in 0..cfg.iters {
        let (dims, b) = shape_for(&mut rng);
        let plan = FftPlan::builder(dims)
            .buffer_elems(b)
            .threads(2, 2)
            .build()?;
        let blocks = plan.iters_per_socket();
        let (kind, fault) = random_fault(&mut rng, blocks, cfg.stall);
        report.fault_counts[kind as usize] += 1;

        let x = random_complex(dims.total(), rng.next_u64());
        let want = oracle(dims, &x);

        let mut data = x;
        let mut work = vec![Complex64::ZERO; dims.total()];
        let exec_cfg = ExecConfig {
            fault: Some(fault),
            integrity: IntegrityConfig::full(),
            verify_energy: true,
            ..ExecConfig::default()
        };

        report.iterations += 1;
        match supervisor.run(&plan, &mut data, &mut work, &exec_cfg) {
            Ok(rep) => {
                report.total_attempts += rep.attempts;
                if rel_l2_error(&data, &want) <= fft_tolerance(want.len()) {
                    record_success(&mut report, &rep);
                } else {
                    report.silent_corruptions += 1;
                }
            }
            Err(_) => {
                // Typed failure: acceptable under the contract. (Any
                // panic would have unwound through this call instead.)
                report.typed_errors += 1;
            }
        }
    }
    Ok(report)
}

fn record_success(report: &mut SoakReport, rep: &SupervisedReport) {
    if rep.recovered() {
        report.recovered += 1;
    } else {
        report.clean += 1;
    }
    let t = match rep.tier {
        RecoveryTier::Pipelined => 0,
        RecoveryTier::Fused => 1,
        RecoveryTier::Reference => 2,
    };
    report.tier_finishes[t] += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_soak_holds_and_is_deterministic() {
        let cfg = SoakConfig {
            iters: 24,
            seed: 7,
            ..SoakConfig::default()
        };
        let a = run_soak(&cfg).unwrap();
        let b = run_soak(&cfg).unwrap();
        assert!(a.holds(), "contract violated:\n{}", a.render());
        assert_eq!(a, b, "same seed must give the same soak report");
        assert_eq!(a.iterations, 24);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let a = run_soak(&SoakConfig {
            iters: 16,
            seed: 1,
            ..SoakConfig::default()
        })
        .unwrap();
        let b = run_soak(&SoakConfig {
            iters: 16,
            seed: 2,
            ..SoakConfig::default()
        })
        .unwrap();
        // Fault draws differ with overwhelming probability.
        assert_ne!(a.fault_counts, b.fault_counts);
    }

    #[test]
    fn rng_is_stable() {
        // Pin the generator: wisdom files and CI logs reference seeds,
        // so silently changing the stream would invalidate them.
        let mut r = XorShift64Star::new(42);
        let first = r.next_u64();
        let mut r2 = XorShift64Star::new(42);
        assert_eq!(first, r2.next_u64());
        assert_ne!(r.next_u64(), first);
    }
}
