//! Property tests for the wisdom store (ISSUE 2 satellite c):
//!
//! 1. serialize → parse is the identity for arbitrary valid records;
//! 2. corrupted or truncated files yield a typed [`TunerError`] or a
//!    clean parse — never a panic. (A panic anywhere in `parse` would
//!    fail these tests; the harness does not catch unwinds.)

use bwfft_core::{Dims, ExecutorKind};
use bwfft_kernels::{Direction, KernelVariant};
use bwfft_tuner::{TunerError, TuningRecord, Wisdom, HostFingerprint, WISDOM_VERSION};
use proptest::prelude::*;
use proptest::strategy::Strategy;

/// An arbitrary record — not necessarily a *buildable* plan (the
/// format layer is agnostic to plan validity; `build_plan` re-validates
/// on replay).
fn arb_record() -> impl Strategy<Value = TuningRecord> {
    (
        (
            prop_oneof![
                (1usize..9, 1usize..9).prop_map(|(a, b)| Dims::d2(1 << a, 1 << b)),
                (1usize..7, 1usize..7, 1usize..7)
                    .prop_map(|(a, b, c)| Dims::d3(1 << a, 1 << b, 1 << c)),
            ],
            any::<bool>(),
            prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
            1usize..22,
        ),
        (1usize..64, 1usize..64, any::<bool>(), any::<bool>()),
        (any::<bool>(), any::<bool>(), 0.0f64..1e12),
    )
        .prop_map(
            |(
                (dims, fwd, mu, b_log2),
                (p_d, p_c, non_temporal, fused),
                (r4, measured, score_ns),
            )| {
                TuningRecord {
                    dims,
                    dir: if fwd { Direction::Forward } else { Direction::Inverse },
                    mu,
                    buffer_elems: 1 << b_log2,
                    p_d,
                    p_c,
                    non_temporal,
                    executor: if fused { ExecutorKind::Fused } else { ExecutorKind::Pipelined },
                    kernel: if r4 { KernelVariant::StockhamRadix4 } else { KernelVariant::Stockham },
                    score_ns,
                    measured,
                }
            },
        )
}

fn arb_fingerprint() -> impl Strategy<Value = HostFingerprint> {
    (1usize..256, any::<bool>(), 0usize..(1 << 28)).prop_map(|(cpus, pin_works, llc_bytes)| {
        HostFingerprint {
            cpus,
            pin_works,
            llc_bytes,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serialize_parse_is_identity(
        fp in arb_fingerprint(),
        records in prop::collection::vec(arb_record(), 0..8),
    ) {
        let wisdom = Wisdom { fingerprint: fp, records };
        let text = wisdom.serialize();
        let (version, parsed) = Wisdom::parse(&text)
            .unwrap_or_else(|e| panic!("own output must parse: {e}\n{text}"));
        prop_assert_eq!(version, WISDOM_VERSION);
        // Field-exact, including score_ns: f64 Display is
        // shortest-roundtrip, so no tolerance is needed.
        prop_assert_eq!(parsed, wisdom);
    }

    #[test]
    fn truncated_files_never_panic(
        fp in arb_fingerprint(),
        records in prop::collection::vec(arb_record(), 1..5),
        cut_frac in 0.0f64..1.0,
    ) {
        let wisdom = Wisdom { fingerprint: fp, records };
        let text = wisdom.serialize();
        // All-ASCII format, so any byte offset is a char boundary.
        let cut = (text.len() as f64 * cut_frac) as usize;
        match Wisdom::parse(&text[..cut.min(text.len())]) {
            Ok(_) => {} // cut fell on a line boundary: fewer records, still valid
            Err(TunerError::WisdomParse { line, .. }) => prop_assert!(line >= 1),
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    #[test]
    fn corrupted_bytes_never_panic(
        fp in arb_fingerprint(),
        records in prop::collection::vec(arb_record(), 1..4),
        edits in prop::collection::vec((0.0f64..1.0, 0u8..96), 1..16),
    ) {
        let wisdom = Wisdom { fingerprint: fp, records };
        let mut bytes = wisdom.serialize().into_bytes();
        for (pos_frac, printable) in edits {
            let pos = (bytes.len() as f64 * pos_frac) as usize % bytes.len();
            bytes[pos] = b' ' + printable; // printable ASCII keeps it valid UTF-8
        }
        let text = String::from_utf8(bytes).unwrap();
        match Wisdom::parse(&text) {
            Ok(_) => {} // the edits may have hit digits only — still well-formed
            Err(TunerError::WisdomParse { line, .. }) => prop_assert!(line >= 1),
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    #[test]
    fn garbage_lines_never_panic(
        noise in prop::collection::vec((0u8..96, 0usize..40), 0..12),
    ) {
        // Whole-cloth garbage: lines of repeated printable characters.
        let text = noise
            .iter()
            .map(|&(c, n)| String::from_utf8(vec![b' ' + c; n]).unwrap())
            .collect::<Vec<_>>()
            .join("\n");
        prop_assert!(matches!(
            Wisdom::parse(&text),
            Ok(_) | Err(TunerError::WisdomParse { .. })
        ));
    }
}
