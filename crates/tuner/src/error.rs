//! The tuner's error taxonomy.
//!
//! Follows the workspace convention: every failure is a value, wisdom
//! corruption is reported with the offending line, and nothing panics.
//! The `bwfft` facade folds [`TunerError`] into `BwfftError::Tuner`.

use bwfft_core::{CoreError, Dims, PlanError};

/// Why tuning, caching, or wisdom handling failed.
#[derive(Clone, Debug, PartialEq)]
pub enum TunerError {
    /// A plan assembled from tuned/wisdom parameters failed validation
    /// (e.g. a hand-edited wisdom record with an impossible buffer).
    Plan(PlanError),
    /// Timing a shortlisted candidate on the real executor failed.
    Exec(CoreError),
    /// No candidate in the search space produced a buildable plan that
    /// the cost model accepted.
    EmptySearchSpace { dims: Dims },
    /// Reading or writing the wisdom file failed at the OS level.
    WisdomIo { path: String, detail: String },
    /// The wisdom file exists but its contents do not parse; `line` is
    /// 1-based. Version and host mismatches are *not* errors — they are
    /// typed re-tune reasons (`RetuneReason`).
    WisdomParse { line: usize, reason: String },
}

impl From<PlanError> for TunerError {
    fn from(e: PlanError) -> Self {
        TunerError::Plan(e)
    }
}

impl From<CoreError> for TunerError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::Plan(p) => TunerError::Plan(p),
            other => TunerError::Exec(other),
        }
    }
}

impl core::fmt::Display for TunerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TunerError::Plan(e) => write!(f, "tuned plan rejected: {e}"),
            TunerError::Exec(e) => write!(f, "timing run failed: {e}"),
            TunerError::EmptySearchSpace { dims } => {
                write!(f, "no viable plan candidate for {}", dims.label())
            }
            TunerError::WisdomIo { path, detail } => {
                write!(f, "wisdom file {path}: {detail}")
            }
            TunerError::WisdomParse { line, reason } => {
                write!(f, "wisdom line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TunerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TunerError::Plan(e) => Some(e),
            TunerError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_each_variant() {
        let e: TunerError = PlanError::NotPow2("mu", 3).into();
        assert!(e.to_string().contains("rejected"));
        let e: TunerError = CoreError::SocketMismatch { plan: 2, machine: 1 }.into();
        assert!(matches!(e, TunerError::Exec(_)));
        let e = TunerError::EmptySearchSpace {
            dims: Dims::d2(8, 8),
        };
        assert!(e.to_string().contains("2D 8x8"));
        let e = TunerError::WisdomParse {
            line: 3,
            reason: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = TunerError::WisdomIo {
            path: "/nope".into(),
            detail: "denied".into(),
        };
        assert!(e.to_string().contains("/nope"));
    }

    #[test]
    fn core_plan_errors_flatten_to_plan() {
        let e: TunerError = CoreError::Plan(PlanError::NotPow2("b", 3)).into();
        assert!(matches!(e, TunerError::Plan(_)));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: TunerError = PlanError::NotPow2("mu", 3).into();
        assert!(e.source().is_some());
        let e = TunerError::WisdomParse {
            line: 1,
            reason: "x".into(),
        };
        assert!(e.source().is_none());
    }
}
