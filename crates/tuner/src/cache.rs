//! The concurrent plan cache: repeated shape requests return an
//! `Arc<FftPlan>` without re-searching.
//!
//! The ROADMAP serving path ("heavy traffic, repeated shapes") needs
//! plan lookup to be cheap and contention-free: the map is split into
//! shards, each behind its own mutex, selected by the key's hash.
//! A miss runs the autotuner *while holding the shard lock*, which is
//! exactly the single-search guarantee: concurrent requests for the
//! same `(Dims, Direction)` serialize, the first performs the one
//! search, the rest observe the inserted entry as hits. Tuning a new
//! shape blocks only the 1-in-[`SHARDS`] keys that share its shard.
//!
//! Keys carry the [`HostFingerprint`] so wisdom imported from another
//! machine can never alias a locally tuned entry.

use crate::error::TunerError;
use crate::fingerprint::HostFingerprint;
use crate::search::{Tuner, TuningRecord};
use bwfft_core::{Dims, FftPlan};
use bwfft_kernels::Direction;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Default shard count (power of two so the hash folds evenly).
pub const SHARDS: usize = 8;

/// Default capacity per shard before eviction kicks in.
pub const CAPACITY_PER_SHARD: usize = 64;

/// Pinned plan knobs for an explicitly-configured request. A serving
/// path that names its buffer size and thread split caches under the
/// variant instead of the tuned entry, so tuned and pinned plans for
/// the same shape never alias.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanVariant {
    /// Buffer half size in elements (0 = planner default).
    pub buffer_elems: usize,
    pub p_d: usize,
    pub p_c: usize,
}

/// Cache key: what plan, which way, on which machine shape — and, for
/// explicitly-pinned plans, which knob variant.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    pub dims: Dims,
    pub dir: Direction,
    pub fingerprint: HostFingerprint,
    /// `None` for tuned entries; `Some` for pinned variants inserted
    /// through [`PlanCache::get_or_build`].
    pub variant: Option<PlanVariant>,
}

/// Counter snapshot from [`PlanCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// Mirrors this snapshot into a metrics registry as the
    /// `tuner.plan_cache.*` counters. The cache's own atomics stay the
    /// source of truth; scrapers call this to sync before a snapshot.
    pub fn record_into(&self, reg: &bwfft_metrics::Registry) {
        reg.set_counter("tuner.plan_cache.hits", self.hits);
        reg.set_counter("tuner.plan_cache.misses", self.misses);
        reg.set_counter("tuner.plan_cache.evictions", self.evictions);
    }
}

struct Entry {
    plan: Arc<FftPlan>,
    /// `None` for pinned variants — they carry no search result and are
    /// excluded from wisdom export.
    record: Option<TuningRecord>,
    /// Monotonic use stamp for least-recently-used eviction.
    last_used: u64,
}

type Shard = Mutex<HashMap<PlanKey, Entry>>;

/// Sharded, lock-protected map from `(Dims, Direction, fingerprint)`
/// to tuned plans, with hit/miss/eviction counters and an embedded
/// [`Tuner`] to fill misses.
pub struct PlanCache {
    shards: Vec<Shard>,
    capacity_per_shard: usize,
    tuner: Tuner,
    fingerprint: HostFingerprint,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    clock: AtomicU64,
}

impl PlanCache {
    /// A cache with the default geometry ([`SHARDS`] ×
    /// [`CAPACITY_PER_SHARD`]).
    pub fn new(tuner: Tuner, fingerprint: HostFingerprint) -> Self {
        Self::with_geometry(tuner, fingerprint, SHARDS, CAPACITY_PER_SHARD)
    }

    /// Explicit shard count and per-shard capacity (both clamped to at
    /// least 1).
    pub fn with_geometry(
        tuner: Tuner,
        fingerprint: HostFingerprint,
        shards: usize,
        capacity_per_shard: usize,
    ) -> Self {
        let shards = shards.max(1);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity_per_shard: capacity_per_shard.max(1),
            tuner,
            fingerprint,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            clock: AtomicU64::new(0),
        }
    }

    /// The fingerprint this cache keys new entries under.
    pub fn fingerprint(&self) -> &HostFingerprint {
        &self.fingerprint
    }

    /// The embedded tuner.
    pub fn tuner(&self) -> &Tuner {
        &self.tuner
    }

    fn key(&self, dims: Dims, dir: Direction) -> PlanKey {
        PlanKey {
            dims,
            dir,
            fingerprint: self.fingerprint.clone(),
            variant: None,
        }
    }

    fn shard(&self, key: &PlanKey) -> MutexGuard<'_, HashMap<PlanKey, Entry>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let idx = (h.finish() as usize) % self.shards.len();
        // A poisoned shard only means another thread panicked while
        // holding the lock; the map itself is still usable.
        self.shards[idx].lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the cached plan for `(dims, dir)` on this host, or
    /// tunes, inserts, and returns it. Exactly one search runs per
    /// distinct key: the shard lock is held across the tune, so a
    /// concurrent second request blocks and then scores a hit.
    pub fn get_or_tune(&self, dims: Dims, dir: Direction) -> Result<Arc<FftPlan>, TunerError> {
        let key = self.key(dims, dir);
        let mut map = self.shard(&key);
        let stamp = self.tick();
        if let Some(entry) = map.get_mut(&key) {
            entry.last_used = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&entry.plan));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let record = self.tuner.tune(dims, dir)?;
        let plan = Arc::new(record.build_plan()?);
        Self::evict_if_full(&mut map, self.capacity_per_shard, &self.evictions);
        map.insert(
            key,
            Entry {
                plan: Arc::clone(&plan),
                record: Some(record),
                last_used: stamp,
            },
        );
        Ok(plan)
    }

    /// Returns the cached plan for an explicitly-pinned `variant` of
    /// `(dims, dir)`, building and inserting it on first request via
    /// `build`. Same single-build guarantee as [`Self::get_or_tune`]:
    /// the shard lock is held across the build, so concurrent requests
    /// for the same variant serialize into one build plus hits. Pinned
    /// entries never alias tuned ones and are excluded from wisdom
    /// export.
    pub fn get_or_build<E>(
        &self,
        dims: Dims,
        dir: Direction,
        variant: PlanVariant,
        build: impl FnOnce() -> Result<FftPlan, E>,
    ) -> Result<Arc<FftPlan>, E> {
        let key = PlanKey {
            variant: Some(variant),
            ..self.key(dims, dir)
        };
        let mut map = self.shard(&key);
        let stamp = self.tick();
        if let Some(entry) = map.get_mut(&key) {
            entry.last_used = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&entry.plan));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build()?);
        Self::evict_if_full(&mut map, self.capacity_per_shard, &self.evictions);
        map.insert(
            key,
            Entry {
                plan: Arc::clone(&plan),
                record: None,
                last_used: stamp,
            },
        );
        Ok(plan)
    }

    /// Non-tuning lookup: `Some` counts a hit, `None` counts a miss.
    pub fn get(&self, dims: Dims, dir: Direction) -> Option<Arc<FftPlan>> {
        let key = self.key(dims, dir);
        let mut map = self.shard(&key);
        let stamp = self.tick();
        match map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.plan))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Peek without touching counters or recency — used by callers
    /// that only want to report whether tuning would be skipped.
    pub fn contains(&self, dims: Dims, dir: Direction) -> bool {
        let key = self.key(dims, dir);
        self.shard(&key).contains_key(&key)
    }

    /// Inserts a pre-tuned record (e.g. from a wisdom file) under this
    /// cache's fingerprint. Counts neither hit nor miss. Fails (typed)
    /// if the record no longer builds a valid plan.
    pub fn seed(&self, record: &TuningRecord) -> Result<(), TunerError> {
        let plan = Arc::new(record.build_plan()?);
        let key = self.key(record.dims, record.dir);
        let mut map = self.shard(&key);
        let stamp = self.tick();
        Self::evict_if_full(&mut map, self.capacity_per_shard, &self.evictions);
        map.insert(
            key,
            Entry {
                plan,
                record: Some(record.clone()),
                last_used: stamp,
            },
        );
        Ok(())
    }

    /// Every cached tuning record (for wisdom export). Pinned variant
    /// entries carry no record and are skipped. Order is
    /// deterministic: sorted by the record's dims label and direction.
    pub fn export_records(&self) -> Vec<TuningRecord> {
        let mut out: Vec<TuningRecord> = Vec::new();
        for shard in &self.shards {
            let map = shard.lock().unwrap_or_else(PoisonError::into_inner);
            out.extend(map.values().filter_map(|e| e.record.clone()));
        }
        out.sort_by(|a, b| {
            (a.dims.label(), format!("{:?}", a.dir))
                .cmp(&(b.dims.label(), format!("{:?}", b.dir)))
        });
        out
    }

    /// Cached entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn evict_if_full(
        map: &mut HashMap<PlanKey, Entry>,
        capacity: usize,
        evictions: &AtomicU64,
    ) {
        if map.len() < capacity {
            return;
        }
        // Evict the least recently used entry of this shard.
        if let Some(victim) = map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
        {
            map.remove(&victim);
            evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::TunerOptions;
    use bwfft_machine::presets;

    fn fp() -> HostFingerprint {
        HostFingerprint {
            cpus: 8,
            pin_works: true,
            llc_bytes: 8 << 20,
        }
    }

    fn model_cache() -> PlanCache {
        let tuner = Tuner::new(TunerOptions {
            model_only: true,
            ..TunerOptions::for_model(presets::kaby_lake_7700k())
        });
        PlanCache::new(tuner, fp())
    }

    #[test]
    fn second_request_is_a_hit_with_one_search() {
        let cache = model_cache();
        let dims = Dims::d2(64, 64);
        let a = cache.get_or_tune(dims, Direction::Forward).unwrap();
        let b = cache.get_or_tune(dims, Direction::Forward).unwrap();
        // Same Arc: no re-search, no re-build.
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1), "{s:?}");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn direction_is_part_of_the_key() {
        let cache = model_cache();
        let dims = Dims::d2(64, 64);
        cache.get_or_tune(dims, Direction::Forward).unwrap();
        cache.get_or_tune(dims, Direction::Inverse).unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_same_key_requests_search_once() {
        let cache = Arc::new(model_cache());
        let dims = Dims::d3(32, 32, 32);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                c.get_or_tune(dims, Direction::Forward).unwrap()
            }));
        }
        let plans: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for p in &plans[1..] {
            assert!(Arc::ptr_eq(&plans[0], p));
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1, "exactly one search: {s:?}");
        assert_eq!(s.hits, 3, "{s:?}");
    }

    #[test]
    fn eviction_is_counted_and_bounded() {
        let tuner = Tuner::new(TunerOptions {
            model_only: true,
            ..TunerOptions::for_model(presets::kaby_lake_7700k())
        });
        // One shard, one slot: the second insert evicts the first.
        let cache = PlanCache::with_geometry(tuner, fp(), 1, 1);
        cache.get_or_tune(Dims::d2(64, 64), Direction::Forward).unwrap();
        cache.get_or_tune(Dims::d2(32, 32), Direction::Forward).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
        // The evicted key re-tunes (miss #3).
        cache.get_or_tune(Dims::d2(64, 64), Direction::Forward).unwrap();
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn seed_skips_search_and_counters() {
        let cache = model_cache();
        let dims = Dims::d2(64, 64);
        let record = cache.tuner().tune(dims, Direction::Forward).unwrap();
        cache.seed(&record).unwrap();
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(cache.contains(dims, Direction::Forward));
        // Now the first get_or_tune is already a hit: tuning skipped.
        cache.get_or_tune(dims, Direction::Forward).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 0), "{s:?}");
    }

    #[test]
    fn export_returns_sorted_records() {
        let cache = model_cache();
        cache.get_or_tune(Dims::d2(64, 64), Direction::Forward).unwrap();
        cache.get_or_tune(Dims::d2(32, 32), Direction::Forward).unwrap();
        let recs = cache.export_records();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].dims.label() <= recs[1].dims.label());
    }

    fn build_variant(dims: Dims, v: PlanVariant) -> Result<FftPlan, bwfft_core::PlanError> {
        FftPlan::builder(dims)
            .direction(Direction::Forward)
            .buffer_elems(v.buffer_elems)
            .threads(v.p_d, v.p_c)
            .build()
    }

    #[test]
    fn pinned_variant_hits_on_repeat_and_builds_once() {
        let cache = model_cache();
        let dims = Dims::d2(64, 64);
        let v = PlanVariant {
            buffer_elems: 256,
            p_d: 1,
            p_c: 1,
        };
        let a = cache
            .get_or_build(dims, Direction::Forward, v, || build_variant(dims, v))
            .unwrap();
        let b = cache
            .get_or_build(dims, Direction::Forward, v, || -> Result<_, bwfft_core::PlanError> {
                panic!("second request must not rebuild")
            })
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1), "{s:?}");
    }

    #[test]
    fn distinct_variants_do_not_alias() {
        let cache = model_cache();
        let dims = Dims::d2(64, 64);
        let small = PlanVariant {
            buffer_elems: 256,
            p_d: 1,
            p_c: 1,
        };
        let wide = PlanVariant {
            buffer_elems: 512,
            p_d: 2,
            p_c: 1,
        };
        let a = cache
            .get_or_build(dims, Direction::Forward, small, || {
                build_variant(dims, small)
            })
            .unwrap();
        let b = cache
            .get_or_build(dims, Direction::Forward, wide, || build_variant(dims, wide))
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn pinned_variants_never_alias_tuned_entries_or_export() {
        let cache = model_cache();
        let dims = Dims::d2(64, 64);
        cache.get_or_tune(dims, Direction::Forward).unwrap();
        let v = PlanVariant {
            buffer_elems: 256,
            p_d: 1,
            p_c: 1,
        };
        cache
            .get_or_build(dims, Direction::Forward, v, || build_variant(dims, v))
            .unwrap();
        // Two distinct entries for the same shape...
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
        // ...but only the tuned one carries wisdom.
        assert_eq!(cache.export_records().len(), 1);
    }

    #[test]
    fn get_or_build_propagates_the_builder_error() {
        let cache = model_cache();
        // A 2D shape whose row is not a power of two fails to plan.
        let dims = Dims::d2(3, 64);
        let v = PlanVariant {
            buffer_elems: 0,
            p_d: 1,
            p_c: 1,
        };
        let err = cache.get_or_build(dims, Direction::Forward, v, || build_variant(dims, v));
        assert!(err.is_err());
        // The failure is not cached: nothing was inserted.
        assert!(cache.is_empty());
    }

    #[test]
    fn get_counts_misses_for_absent_keys() {
        let cache = model_cache();
        assert!(cache.get(Dims::d2(8, 8), Direction::Forward).is_none());
        assert_eq!(cache.stats().misses, 1);
        assert!(cache.is_empty());
    }
}
