//! The autotuner: enumerate → model-prune → measure.
//!
//! The search space is the cross product of the plan knobs the paper
//! identifies as machine-dependent (§IV–V): the cacheline block μ, the
//! double-buffer half size `b`, the data/compute thread split
//! `(p_d, p_c)`, non-temporal stores on/off, the executor kind
//! (pipelined soft-DMA vs. fused), and the 1D pencil kernel variant.
//! Enumerating it blindly on the real executor would take minutes per
//! shape, so tuning runs in two phases:
//!
//! 1. **Model pruning** — every candidate is scored with the
//!    `bwfft-machine` discrete-event `Engine` via
//!    [`bwfft_core::exec_sim::simulate`] (a few steady-state iterations,
//!    then extrapolation; milliseconds per candidate). Only the best
//!    [`TunerOptions::shortlist`] survive. The model does not
//!    distinguish kernel variants (same flop count), so that axis is
//!    deferred to phase 2.
//! 2. **Measurement** — each survivor × kernel variant is built into a
//!    real [`FftPlan`] and timed with the real executor for
//!    [`TunerOptions::reps`] repetitions; best wall-clock wins.
//!
//! `model_only` mode stops after phase 1 (deterministic, no threads, no
//! big allocations) — that is what the simulator-driven harnesses and
//! CI smoke runs use.

use crate::error::TunerError;
use bwfft_core::exec_real::{execute_with, ExecConfig};
use bwfft_core::exec_sim::{simulate, simulate_no_overlap, SimOptions};
use bwfft_core::{Dims, ExecutorKind, FftPlan, HostProfile};
use bwfft_kernels::{Direction, KernelVariant};
use bwfft_machine::{presets, MachineSpec};
use bwfft_num::{try_vec_zeroed, Complex64};
use bwfft_trace::{MarkKind, TraceCollector};
use std::sync::Arc;
use std::time::Instant;

/// One point of the search space, plus its score. This is also the
/// unit the wisdom store persists and the plan cache replays.
#[derive(Clone, Debug, PartialEq)]
pub struct TuningRecord {
    pub dims: Dims,
    pub dir: Direction,
    pub mu: usize,
    pub buffer_elems: usize,
    pub p_d: usize,
    pub p_c: usize,
    pub non_temporal: bool,
    pub executor: ExecutorKind,
    pub kernel: KernelVariant,
    /// Best observed cost: wall-clock ns when `measured`, model ns
    /// otherwise.
    pub score_ns: f64,
    /// Whether `score_ns` came from the real executor (phase 2) or the
    /// cost model only (phase 1).
    pub measured: bool,
}

impl TuningRecord {
    /// Rebuilds the tuned plan. Validation still applies — a record
    /// whose parameters no longer build (e.g. hand-edited wisdom)
    /// surfaces a typed [`TunerError::Plan`].
    pub fn build_plan(&self) -> Result<FftPlan, TunerError> {
        let mut plan = FftPlan::builder(self.dims)
            .direction(self.dir)
            .mu(self.mu)
            .buffer_elems(self.buffer_elems)
            .threads(self.p_d, self.p_c)
            .non_temporal(self.non_temporal)
            .kernel(self.kernel)
            .build()?;
        plan.executor = self.executor;
        Ok(plan)
    }

    /// One-line human summary of the chosen knobs.
    pub fn describe(&self) -> String {
        format!(
            "{} {:?}: mu={} b={} threads={}+{} nt={} exec={:?} kernel={} ({:.0} ns {})",
            self.dims.label(),
            self.dir,
            self.mu,
            self.buffer_elems,
            self.p_d,
            self.p_c,
            u8::from(self.non_temporal),
            self.executor,
            self.kernel.token(),
            self.score_ns,
            if self.measured { "measured" } else { "model" },
        )
    }
}

/// Tuning configuration.
#[derive(Clone, Debug)]
pub struct TunerOptions {
    /// Machine model the cost-model pruning phase simulates against.
    pub model: MachineSpec,
    /// Hardware threads available to split between data and compute
    /// roles during the search.
    pub threads: usize,
    /// Candidates surviving model pruning into the measurement phase.
    pub shortlist: usize,
    /// Timed repetitions per shortlisted candidate (best-of wins).
    pub reps: usize,
    /// Steady-state iterations the pruning simulation runs exactly
    /// before extrapolating; smaller = cheaper, coarser.
    pub sim_iters: usize,
    /// Stop after the model phase: deterministic, thread-free, no
    /// data-array allocation. Kernel-variant selection needs real
    /// timing, so model-only records always pick the default kernel.
    pub model_only: bool,
    /// Telemetry sink: when set, every measured shortlist trial is
    /// recorded as a [`MarkKind::TunerTrial`] (best-of-reps wall ns in
    /// `value_ns`) and the chosen plan as a [`MarkKind::TunerWinner`],
    /// so `tune --profile` can show where the search spent its time.
    pub trace: Option<Arc<TraceCollector>>,
}

impl TunerOptions {
    /// Options for tuning against a machine preset (model pruning uses
    /// the preset itself; timing runs on whatever host executes).
    pub fn for_model(model: MachineSpec) -> Self {
        let threads = model.total_threads();
        TunerOptions {
            model,
            threads,
            shortlist: 6,
            reps: 3,
            sim_iters: 4,
            model_only: false,
            trace: None,
        }
    }

    /// Options for tuning the current host: a generic machine model
    /// scaled to the detected CPU count and LLC size.
    pub fn for_host(profile: &HostProfile) -> Self {
        let threads = profile.cpus.clamp(2, 16);
        TunerOptions {
            threads,
            ..Self::for_model(host_model(profile))
        }
    }
}

/// A generic machine model for hosts without a curated preset: Kaby
/// Lake per-core numbers with the detected core count and LLC size
/// substituted in. Only used for *relative* pruning, so absolute
/// bandwidth accuracy is not required.
pub fn host_model(profile: &HostProfile) -> MachineSpec {
    let mut spec = presets::kaby_lake_7700k();
    spec.name = "host (generic model)";
    // Assume 2-way SMT when more than one CPU is visible; the split
    // search only needs the right total thread count.
    let cpus = profile.cpus.clamp(2, 16);
    spec.cores_per_socket = (cpus / 2).max(1);
    spec.threads_per_core = if cpus >= 2 { 2 } else { 1 };
    if let Some(llc) = profile.llc_bytes {
        if let Some(last) = spec.caches.last_mut() {
            last.size_bytes = llc;
        }
    }
    spec
}

/// The autotuner. Cheap to construct; holds only configuration, so it
/// is `Send + Sync` and can live inside a shared [`crate::PlanCache`].
#[derive(Clone, Debug)]
pub struct Tuner {
    opts: TunerOptions,
}

impl Tuner {
    pub fn new(opts: TunerOptions) -> Self {
        Tuner { opts }
    }

    /// Tuner for the detected host.
    pub fn for_this_host() -> Self {
        Tuner::new(TunerOptions::for_host(&HostProfile::detect()))
    }

    pub fn options(&self) -> &TunerOptions {
        &self.opts
    }

    /// Runs the two-phase search for one `(dims, dir)` problem.
    pub fn tune(&self, dims: Dims, dir: Direction) -> Result<TuningRecord, TunerError> {
        let scored = self.model_phase(dims, dir)?;
        let rec = if self.opts.model_only {
            // scored is non-empty (model_phase errors otherwise).
            scored
                .into_iter()
                .next()
                .ok_or(TunerError::EmptySearchSpace { dims })?
        } else {
            self.measure_phase(dims, scored)?
        };
        if let Some(t) = &self.opts.trace {
            t.mark(MarkKind::TunerWinner, rec.describe(), Some(rec.score_ns));
        }
        Ok(rec)
    }

    /// Phase 1: enumerate and score with the engine cost model.
    /// Returns buildable candidates sorted best-first.
    fn model_phase(&self, dims: Dims, dir: Direction) -> Result<Vec<TuningRecord>, TunerError> {
        let mut scored: Vec<TuningRecord> = Vec::new();
        for mut cand in self.enumerate(dims, dir) {
            let Ok(plan) = cand.build_plan() else {
                continue; // invalid knob combination — pruned by validation
            };
            let opts = SimOptions {
                non_temporal: cand.non_temporal,
                max_sim_iters: self.opts.sim_iters.max(2),
                ..SimOptions::default()
            };
            let sim = match cand.executor {
                ExecutorKind::Pipelined => simulate(&plan, &self.opts.model, &opts),
                ExecutorKind::Fused => simulate_no_overlap(&plan, &self.opts.model, &opts),
            };
            let Ok(result) = sim else {
                continue; // model rejects (e.g. socket mismatch)
            };
            cand.score_ns = result.report.time_ns;
            scored.push(cand);
        }
        if scored.is_empty() {
            return Err(TunerError::EmptySearchSpace { dims });
        }
        scored.sort_by(|a, b| a.score_ns.total_cmp(&b.score_ns));
        Ok(scored)
    }

    /// Phase 2: time the shortlist (× kernel variants) on the real
    /// executor; best wall-clock wins.
    fn measure_phase(
        &self,
        dims: Dims,
        scored: Vec<TuningRecord>,
    ) -> Result<TuningRecord, TunerError> {
        let total = dims.total();
        let input = bwfft_num::signal::random_complex(total, 7);
        // Timing arrays are the tuner's biggest allocations; an honest
        // refusal surfaces as a typed error instead of an abort.
        let mut data = try_vec_zeroed::<Complex64>(total, "tuner timing data")
            .map_err(|e| TunerError::from(bwfft_core::CoreError::Allocation(e)))?;
        let mut work = try_vec_zeroed::<Complex64>(total, "tuner timing work")
            .map_err(|e| TunerError::from(bwfft_core::CoreError::Allocation(e)))?;
        let cfg = ExecConfig::default();

        let mut best: Option<TuningRecord> = None;
        let mut last_err: Option<TunerError> = None;
        for cand in scored.into_iter().take(self.opts.shortlist.max(1)) {
            for kernel in KernelVariant::all() {
                let mut rec = cand.clone();
                rec.kernel = kernel;
                let Ok(plan) = rec.build_plan() else {
                    continue;
                };
                let mut best_ns = f64::INFINITY;
                let mut failed = false;
                for _ in 0..self.opts.reps.max(1) {
                    // Fresh input each rep: the transform is
                    // unnormalized, so reusing output would grow the
                    // values by N per pass.
                    data.copy_from_slice(&input);
                    let t0 = Instant::now();
                    match execute_with(&plan, &mut data, &mut work, &cfg) {
                        Ok(_) => best_ns = best_ns.min(t0.elapsed().as_nanos() as f64),
                        Err(e) => {
                            last_err = Some(TunerError::from(e));
                            failed = true;
                            break;
                        }
                    }
                }
                if failed {
                    continue;
                }
                rec.score_ns = best_ns;
                rec.measured = true;
                if let Some(t) = &self.opts.trace {
                    t.mark(MarkKind::TunerTrial, rec.describe(), Some(best_ns));
                }
                let better = best
                    .as_ref()
                    .is_none_or(|b| best_ns < b.score_ns);
                if better {
                    best = Some(rec);
                }
            }
        }
        match (best, last_err) {
            (Some(rec), _) => Ok(rec),
            (None, Some(err)) => Err(err),
            (None, None) => Err(TunerError::EmptySearchSpace { dims }),
        }
    }

    /// The raw candidate list (pre-validation, kernel axis fixed to the
    /// default): μ × b × thread split × non-temporal × executor.
    fn enumerate(&self, dims: Dims, dir: Direction) -> Vec<TuningRecord> {
        let total = dims.total();
        let m_inner = match dims {
            Dims::Two { m, .. } | Dims::Three { m, .. } => m,
        };
        let mut out = Vec::new();
        for mu in [1usize, 2, 4, 8] {
            if m_inner % mu != 0 {
                continue;
            }
            for b in buffer_candidates(dims, mu) {
                for (p_d, p_c) in thread_splits(self.opts.threads) {
                    for non_temporal in [true, false] {
                        for executor in [ExecutorKind::Pipelined, ExecutorKind::Fused] {
                            out.push(TuningRecord {
                                dims,
                                dir,
                                mu,
                                buffer_elems: b,
                                p_d,
                                p_c,
                                non_temporal,
                                executor,
                                kernel: KernelVariant::default(),
                                score_ns: f64::INFINITY,
                                measured: false,
                            });
                        }
                    }
                }
            }
        }
        let _ = total;
        out
    }
}

/// Power-of-two buffer sizes worth trying for `dims` at block size
/// `mu`: a few doublings up from the smallest legal buffer, plus the
/// planner's `total/16` default — all dividing the problem.
fn buffer_candidates(dims: Dims, mu: usize) -> Vec<usize> {
    let total = dims.total();
    let max_pencil = match dims {
        Dims::Two { n, m } => m.max(n * mu),
        Dims::Three { k, n, m } => m.max(n * mu).max(k * mu),
    };
    let floor = max_pencil.next_power_of_two();
    let default_b = (total / 16).max(floor).next_power_of_two();
    let mut out = Vec::new();
    for b in [
        floor,
        floor * 2,
        floor * 4,
        default_b,
        default_b * 2,
        default_b * 4,
    ] {
        if b <= total && total.is_multiple_of(b) && !out.contains(&b) {
            out.push(b);
        }
    }
    out.sort_unstable();
    out
}

/// Representative data/compute splits of up to `threads` hardware
/// threads: the paper's half-and-half, two skewed ratios, the extreme
/// splits, and the minimal 1+1.
fn thread_splits(threads: usize) -> Vec<(usize, usize)> {
    let t = threads.max(2);
    let quarter = (t / 4).max(1);
    let mut out = Vec::new();
    for (p_d, p_c) in [
        (t / 2, t - t / 2),
        (quarter, t - quarter),
        (t - quarter, quarter),
        (1, t - 1),
        (t - 1, 1),
        (1, 1),
    ] {
        if p_d >= 1 && p_c >= 1 && !out.contains(&(p_d, p_c)) {
            out.push((p_d, p_c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_kernels::reference::dft2_naive;
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::random_complex;

    fn model_tuner() -> Tuner {
        Tuner::new(TunerOptions {
            model_only: true,
            ..TunerOptions::for_model(presets::kaby_lake_7700k())
        })
    }

    #[test]
    fn buffer_candidates_divide_the_problem() {
        for dims in [Dims::d2(64, 64), Dims::d3(32, 32, 32)] {
            for mu in [1, 4] {
                let bs = buffer_candidates(dims, mu);
                assert!(!bs.is_empty());
                for b in bs {
                    assert!(b.is_power_of_two());
                    assert_eq!(dims.total() % b, 0);
                }
            }
        }
    }

    #[test]
    fn thread_splits_cover_the_paper_shape() {
        let splits = thread_splits(8);
        assert!(splits.contains(&(4, 4)), "{splits:?}");
        assert!(splits.contains(&(1, 1)));
        for (d, c) in thread_splits(2) {
            assert!(d >= 1 && c >= 1);
        }
    }

    #[test]
    fn model_only_tuning_finds_a_buildable_plan() {
        let rec = model_tuner()
            .tune(Dims::d2(64, 64), Direction::Forward)
            .unwrap();
        assert!(!rec.measured);
        assert!(rec.score_ns.is_finite());
        let plan = rec.build_plan().unwrap();
        assert_eq!(plan.dims, Dims::d2(64, 64));
    }

    #[test]
    fn model_only_prefers_nontemporal_pipelined_on_kaby_lake() {
        // The paper's headline claims, rediscovered by search: on the
        // Kaby Lake model the winner streams non-temporally through the
        // pipelined executor.
        let rec = model_tuner()
            .tune(Dims::d3(64, 64, 64), Direction::Forward)
            .unwrap();
        assert!(rec.non_temporal, "{rec:?}");
        assert_eq!(rec.executor, ExecutorKind::Pipelined, "{rec:?}");
        assert!(rec.p_d > 1, "dedicated data threads expected: {rec:?}");
    }

    #[test]
    fn measured_tuning_produces_a_correct_plan() {
        // Small shape, one rep: the tuned plan must still compute the
        // right transform regardless of which candidate won.
        let tuner = Tuner::new(TunerOptions {
            threads: 4,
            shortlist: 2,
            reps: 1,
            ..TunerOptions::for_model(presets::kaby_lake_7700k())
        });
        let (n, m) = (16usize, 16);
        let rec = tuner.tune(Dims::d2(n, m), Direction::Forward).unwrap();
        assert!(rec.measured);
        let plan = rec.build_plan().unwrap();
        let x = random_complex(n * m, 90);
        let mut data = x.clone();
        let mut work = vec![Complex64::ZERO; n * m];
        execute_with(&plan, &mut data, &mut work, &ExecConfig::default()).unwrap();
        assert_fft_close(&data, &dft2_naive(&x, n, m, Direction::Forward));
    }

    #[test]
    fn measured_tuning_records_trial_and_winner_telemetry() {
        let collector = Arc::new(TraceCollector::new());
        let tuner = Tuner::new(TunerOptions {
            threads: 4,
            shortlist: 2,
            reps: 1,
            trace: Some(Arc::clone(&collector)),
            ..TunerOptions::for_model(presets::kaby_lake_7700k())
        });
        let rec = tuner.tune(Dims::d2(16, 16), Direction::Forward).unwrap();
        let marks: Vec<_> = collector
            .take_events()
            .into_iter()
            .filter_map(|e| match e {
                bwfft_trace::TraceEvent::Mark(m) => Some(m),
                bwfft_trace::TraceEvent::Span(_) => None,
            })
            .collect();
        let trials = marks.iter().filter(|m| m.kind == MarkKind::TunerTrial).count();
        assert!(trials >= 2, "expected trials for shortlist × kernels, got {trials}");
        let winner = marks
            .iter()
            .find(|m| m.kind == MarkKind::TunerWinner)
            .expect("winner mark");
        assert_eq!(winner.value_ns, Some(rec.score_ns));
        assert_eq!(winner.label, rec.describe());
        // Every trial carries its measured wall time.
        for m in marks.iter().filter(|m| m.kind == MarkKind::TunerTrial) {
            assert!(m.value_ns.is_some_and(|v| v.is_finite() && v > 0.0));
        }
    }

    #[test]
    fn model_only_tuning_still_records_the_winner() {
        let collector = Arc::new(TraceCollector::new());
        let tuner = Tuner::new(TunerOptions {
            model_only: true,
            trace: Some(Arc::clone(&collector)),
            ..TunerOptions::for_model(presets::kaby_lake_7700k())
        });
        tuner.tune(Dims::d2(64, 64), Direction::Forward).unwrap();
        let events = collector.take_events();
        assert!(events.iter().any(|e| matches!(
            e,
            bwfft_trace::TraceEvent::Mark(m) if m.kind == MarkKind::TunerWinner
        )));
    }

    #[test]
    fn record_describe_mentions_the_knobs() {
        let rec = model_tuner()
            .tune(Dims::d2(64, 64), Direction::Forward)
            .unwrap();
        let s = rec.describe();
        assert!(s.contains("mu=") && s.contains("b=") && s.contains("kernel="));
    }
}
