//! Host fingerprinting: the identity under which tuned plans are
//! cached and persisted.
//!
//! A tuning result is only meaningful on the machine shape it was
//! measured on, so both the [`PlanCache`](crate::PlanCache) key and the
//! wisdom file carry a fingerprint of the host: CPU count, whether
//! pinning works, and the LLC size. A wisdom file whose fingerprint
//! differs from the running host is not an error — it triggers a typed
//! re-tune (`RetuneReason::HostMismatch`).

use crate::error::TunerError;
use bwfft_core::HostProfile;

/// The parts of a [`HostProfile`] that affect tuning outcomes, in a
/// hashable, serializable form (`llc_bytes == 0` encodes "unknown").
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct HostFingerprint {
    pub cpus: usize,
    pub pin_works: bool,
    pub llc_bytes: usize,
}

impl HostFingerprint {
    pub fn of(profile: &HostProfile) -> Self {
        HostFingerprint {
            cpus: profile.cpus,
            pin_works: profile.pin_works,
            llc_bytes: profile.llc_bytes.unwrap_or(0),
        }
    }

    /// Fingerprint of the current machine.
    pub fn detect() -> Self {
        Self::of(&HostProfile::detect())
    }

    /// The wisdom-format token: `cpus=8 pin=1 llc=8388608`.
    pub fn token(&self) -> String {
        format!(
            "cpus={} pin={} llc={}",
            self.cpus,
            u8::from(self.pin_works),
            self.llc_bytes
        )
    }

    /// Parses [`token`](Self::token) output. `line` is only used to
    /// construct the typed parse error.
    pub fn parse(s: &str, line: usize) -> Result<Self, TunerError> {
        let mut cpus = None;
        let mut pin = None;
        let mut llc = None;
        for field in s.split_whitespace() {
            let (key, value) = field.split_once('=').ok_or_else(|| TunerError::WisdomParse {
                line,
                reason: format!("fingerprint field `{field}` is not key=value"),
            })?;
            let parsed: usize = value.parse().map_err(|_| TunerError::WisdomParse {
                line,
                reason: format!("fingerprint field `{key}` has non-numeric value `{value}`"),
            })?;
            match key {
                "cpus" => cpus = Some(parsed),
                "pin" => pin = Some(parsed != 0),
                "llc" => llc = Some(parsed),
                other => {
                    return Err(TunerError::WisdomParse {
                        line,
                        reason: format!("unknown fingerprint field `{other}`"),
                    })
                }
            }
        }
        match (cpus, pin, llc) {
            (Some(cpus), Some(pin_works), Some(llc_bytes)) => Ok(HostFingerprint {
                cpus,
                pin_works,
                llc_bytes,
            }),
            _ => Err(TunerError::WisdomParse {
                line,
                reason: "fingerprint needs cpus=, pin= and llc= fields".into(),
            }),
        }
    }
}

impl core::fmt::Display for HostFingerprint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrips() {
        let fp = HostFingerprint {
            cpus: 8,
            pin_works: true,
            llc_bytes: 8 << 20,
        };
        assert_eq!(HostFingerprint::parse(&fp.token(), 2), Ok(fp));
    }

    #[test]
    fn unknown_llc_encodes_as_zero() {
        let fp = HostFingerprint::of(&HostProfile {
            cpus: 4,
            pin_works: false,
            llc_bytes: None,
        });
        assert_eq!(fp.token(), "cpus=4 pin=0 llc=0");
    }

    #[test]
    fn parse_errors_are_typed() {
        assert!(matches!(
            HostFingerprint::parse("cpus=8 pin=1", 2),
            Err(TunerError::WisdomParse { line: 2, .. })
        ));
        assert!(matches!(
            HostFingerprint::parse("cpus=eight pin=1 llc=0", 5),
            Err(TunerError::WisdomParse { line: 5, .. })
        ));
        assert!(matches!(
            HostFingerprint::parse("cpus=8 pin=1 llc=0 color=red", 1),
            Err(TunerError::WisdomParse { .. })
        ));
    }

    #[test]
    fn detect_does_not_panic() {
        let fp = HostFingerprint::detect();
        assert!(fp.cpus >= 1);
    }
}
