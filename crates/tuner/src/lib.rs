//! bwfft-tuner: autotuning, concurrent plan caching, and persistent
//! wisdom for bandwidth-efficient FFT plans.
//!
//! The paper's plans have machine-dependent knobs — the cacheline block
//! μ, the double-buffer half `b = LLC/2`, the data/compute thread split
//! `(p_d, p_c)`, non-temporal stores, the executor kind, and the 1D
//! pencil kernel. This crate closes the loop from "model of the right
//! plan" to "measured best plan on this machine", in three layers:
//!
//! * [`Tuner`] — enumerates the knob space, prunes it with the
//!   `bwfft-machine` cost model, then times the shortlist on the real
//!   executor ([`search`]).
//! * [`PlanCache`] — a sharded concurrent map keyed by
//!   `(Dims, Direction, HostFingerprint)` returning `Arc<FftPlan>`,
//!   with hit/miss/eviction counters; a miss runs exactly one search
//!   ([`cache`]).
//! * [`wisdom`] — a versioned on-disk text format so tuning results
//!   survive the process; version or host mismatch degrades to a typed
//!   re-tune, never an error exit.
//!
//! ```no_run
//! use bwfft_core::{Dims, FftPlan};
//! use bwfft_kernels::Direction;
//! use bwfft_tuner::{HostFingerprint, PlanCache, TunedBuild, Tuner};
//!
//! let cache = PlanCache::new(Tuner::for_this_host(), HostFingerprint::detect());
//! let plan = FftPlan::builder(Dims::d3(64, 64, 64))
//!     .direction(Direction::Forward)
//!     .tuned(&cache)?;          // first call tunes; later calls hit
//! # Ok::<(), bwfft_tuner::TunerError>(())
//! ```

pub mod cache;
pub mod error;
pub mod fingerprint;
pub mod search;
pub mod wisdom;

pub use cache::{CacheStats, PlanCache, PlanKey, PlanVariant};
pub use error::TunerError;
pub use fingerprint::HostFingerprint;
pub use search::{host_model, Tuner, TunerOptions, TuningRecord};
pub use wisdom::{RetuneReason, Wisdom, WisdomLoad, WISDOM_VERSION};

use bwfft_core::{FftPlan, FftPlanBuilder};
use std::sync::Arc;

/// Builder-side entry point: route a plan request through a
/// [`PlanCache`] instead of building with default knobs.
///
/// Only the problem statement (`dims`, `direction`) is taken from the
/// builder — the tuner owns every other knob, that being the point.
pub trait TunedBuild {
    /// Returns the cached tuned plan for this builder's problem, tuning
    /// it first if the cache has never seen the shape.
    fn tuned(self, cache: &PlanCache) -> Result<Arc<FftPlan>, TunerError>;
}

impl TunedBuild for FftPlanBuilder {
    fn tuned(self, cache: &PlanCache) -> Result<Arc<FftPlan>, TunerError> {
        cache.get_or_tune(self.dims(), self.dir())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_core::Dims;
    use bwfft_kernels::Direction;
    use bwfft_machine::presets;

    fn model_cache() -> PlanCache {
        let tuner = Tuner::new(TunerOptions {
            model_only: true,
            ..TunerOptions::for_model(presets::kaby_lake_7700k())
        });
        PlanCache::new(
            tuner,
            HostFingerprint {
                cpus: 8,
                pin_works: true,
                llc_bytes: 8 << 20,
            },
        )
    }

    #[test]
    fn builder_tuned_goes_through_the_cache() {
        let cache = model_cache();
        let a = FftPlan::builder(Dims::d2(64, 64))
            .direction(Direction::Forward)
            .tuned(&cache)
            .unwrap();
        let b = FftPlan::builder(Dims::d2(64, 64))
            .direction(Direction::Forward)
            .tuned(&cache)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1), "{s:?}");
    }

    #[test]
    fn wisdom_seeded_cache_skips_tuning() {
        // Tune in one cache, export wisdom, import into a fresh cache:
        // the fresh cache's first request is already a hit.
        let first = model_cache();
        first
            .get_or_tune(Dims::d3(32, 32, 32), Direction::Forward)
            .unwrap();
        let mut w = Wisdom::new(first.fingerprint().clone());
        w.records = first.export_records();

        let (version, parsed) = Wisdom::parse(&w.serialize()).unwrap();
        assert_eq!(version, WISDOM_VERSION);

        let second = model_cache();
        for rec in &parsed.records {
            second.seed(rec).unwrap();
        }
        second
            .get_or_tune(Dims::d3(32, 32, 32), Direction::Forward)
            .unwrap();
        let s = second.stats();
        assert_eq!((s.hits, s.misses), (1, 0), "tuning should be skipped: {s:?}");
    }
}
