//! Persistent wisdom: tuned plans that survive the process.
//!
//! The on-disk format is a deliberately tiny hand-rolled text format
//! (no serde in the dependency tree):
//!
//! ```text
//! bwfft-wisdom v1
//! host cpus=8 pin=1 llc=8388608
//! plan dims=3d:64x64x64 dir=fwd mu=4 b=65536 pd=2 pc=2 nt=1 exec=pipe kernel=r2 meas=1 score_ns=123456.5
//! ```
//!
//! Line 1 is the versioned magic, line 2 the host fingerprint the
//! records were tuned under, each further non-comment line one tuned
//! plan. `#`-prefixed lines and blank lines are ignored.
//!
//! Failure philosophy (mirrors the fault-tolerant executor): a file
//! that *cannot be parsed* is a typed [`TunerError::WisdomParse`] —
//! never a panic — while a file that parses but was produced by a
//! different format version or a different machine is **not an error**:
//! [`load`] reports it as a [`RetuneReason`] and the caller falls back
//! to tuning from scratch.

use crate::error::TunerError;
use crate::fingerprint::HostFingerprint;
use crate::search::TuningRecord;
use bwfft_core::{Dims, ExecutorKind};
use bwfft_kernels::{Direction, KernelVariant};
use std::path::Path;

/// Current wisdom format version. Bump on any incompatible change to
/// the line grammar; old files then degrade to re-tuning, not errors.
pub const WISDOM_VERSION: u32 = 1;

/// A parsed wisdom file: the fingerprint it was tuned under plus its
/// records.
#[derive(Clone, Debug, PartialEq)]
pub struct Wisdom {
    pub fingerprint: HostFingerprint,
    pub records: Vec<TuningRecord>,
}

/// Why a wisdom file was set aside in favour of re-tuning. These are
/// expected conditions, not failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RetuneReason {
    /// No file at the given path (first run).
    NoWisdomFile,
    /// The file's format version differs from [`WISDOM_VERSION`].
    VersionMismatch { found: u32 },
    /// The file was tuned on a different machine shape.
    HostMismatch { found: HostFingerprint },
}

impl core::fmt::Display for RetuneReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RetuneReason::NoWisdomFile => write!(f, "no wisdom file"),
            RetuneReason::VersionMismatch { found } => {
                write!(f, "wisdom version v{found} != supported v{WISDOM_VERSION}")
            }
            RetuneReason::HostMismatch { found } => {
                write!(f, "wisdom tuned on a different host ({found})")
            }
        }
    }
}

/// Outcome of [`load`]: either usable records or a typed reason to tune
/// from scratch.
#[derive(Clone, Debug, PartialEq)]
pub enum WisdomLoad {
    Usable(Wisdom),
    Retune(RetuneReason),
}

impl Wisdom {
    pub fn new(fingerprint: HostFingerprint) -> Self {
        Wisdom {
            fingerprint,
            records: Vec::new(),
        }
    }

    /// Renders the full file, ready to write.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("bwfft-wisdom v{WISDOM_VERSION}\n"));
        out.push_str(&format!("host {}\n", self.fingerprint.token()));
        for rec in &self.records {
            out.push_str(&record_line(rec));
            out.push('\n');
        }
        out
    }

    /// Parses [`serialize`](Self::serialize) output. Version/host
    /// checking is the caller's job ([`load`] does it); this only
    /// rejects text that does not follow the v1 grammar.
    pub fn parse(text: &str) -> Result<(u32, Self), TunerError> {
        let mut lines = text.lines().enumerate();
        let (_, magic) = lines.next().ok_or(TunerError::WisdomParse {
            line: 1,
            reason: "empty wisdom file".into(),
        })?;
        let version = parse_magic(magic)?;
        let (host_idx, host_line) = lines.next().ok_or(TunerError::WisdomParse {
            line: 2,
            reason: "missing host fingerprint line".into(),
        })?;
        let rest = host_line.strip_prefix("host ").ok_or_else(|| TunerError::WisdomParse {
            line: host_idx + 1,
            reason: "expected `host cpus=.. pin=.. llc=..`".into(),
        })?;
        let fingerprint = HostFingerprint::parse(rest, host_idx + 1)?;
        let mut records = Vec::new();
        for (idx, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            records.push(parse_record_line(line, idx + 1)?);
        }
        Ok((
            version,
            Wisdom {
                fingerprint,
                records,
            },
        ))
    }
}

/// Loads wisdom from `path` for a host with fingerprint `fp`.
///
/// - Missing file, other version, other host → `Ok(Retune(reason))`.
/// - Unreadable or unparseable file → `Err` (typed, never a panic).
/// - Otherwise → `Ok(Usable(wisdom))`.
pub fn load(path: &Path, fp: &HostFingerprint) -> Result<WisdomLoad, TunerError> {
    if !path.exists() {
        return Ok(WisdomLoad::Retune(RetuneReason::NoWisdomFile));
    }
    let text = std::fs::read_to_string(path).map_err(|e| TunerError::WisdomIo {
        path: path.display().to_string(),
        detail: e.to_string(),
    })?;
    let (version, wisdom) = Wisdom::parse(&text)?;
    if version != WISDOM_VERSION {
        return Ok(WisdomLoad::Retune(RetuneReason::VersionMismatch {
            found: version,
        }));
    }
    if wisdom.fingerprint != *fp {
        return Ok(WisdomLoad::Retune(RetuneReason::HostMismatch {
            found: wisdom.fingerprint,
        }));
    }
    Ok(WisdomLoad::Usable(wisdom))
}

/// Writes `wisdom` to `path`, creating parent directories as needed.
pub fn save(path: &Path, wisdom: &Wisdom) -> Result<(), TunerError> {
    let io_err = |e: std::io::Error| TunerError::WisdomIo {
        path: path.display().to_string(),
        detail: e.to_string(),
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(io_err)?;
        }
    }
    std::fs::write(path, wisdom.serialize()).map_err(io_err)
}

fn parse_magic(line: &str) -> Result<u32, TunerError> {
    let err = |reason: String| TunerError::WisdomParse { line: 1, reason };
    let rest = line
        .strip_prefix("bwfft-wisdom v")
        .ok_or_else(|| err(format!("expected `bwfft-wisdom v<N>`, found `{line}`")))?;
    rest.parse()
        .map_err(|_| err(format!("non-numeric wisdom version `{rest}`")))
}

fn dims_token(dims: &Dims) -> String {
    match *dims {
        Dims::Two { n, m } => format!("2d:{n}x{m}"),
        Dims::Three { k, n, m } => format!("3d:{k}x{n}x{m}"),
    }
}

fn parse_dims(token: &str, line: usize) -> Result<Dims, TunerError> {
    let err = |reason: String| TunerError::WisdomParse { line, reason };
    let (kind, sizes) = token
        .split_once(':')
        .ok_or_else(|| err(format!("dims token `{token}` is not <kind>:<sizes>")))?;
    let parts: Vec<usize> = sizes
        .split('x')
        .map(|p| {
            p.parse()
                .map_err(|_| err(format!("non-numeric dimension `{p}` in `{token}`")))
        })
        .collect::<Result<_, _>>()?;
    match (kind, parts.as_slice()) {
        ("2d", &[n, m]) => Ok(Dims::d2(n, m)),
        ("3d", &[k, n, m]) => Ok(Dims::d3(k, n, m)),
        _ => Err(err(format!("dims token `{token}` has the wrong arity"))),
    }
}

fn record_line(rec: &TuningRecord) -> String {
    format!(
        "plan dims={} dir={} mu={} b={} pd={} pc={} nt={} exec={} kernel={} meas={} score_ns={}",
        dims_token(&rec.dims),
        match rec.dir {
            Direction::Forward => "fwd",
            Direction::Inverse => "inv",
        },
        rec.mu,
        rec.buffer_elems,
        rec.p_d,
        rec.p_c,
        u8::from(rec.non_temporal),
        match rec.executor {
            ExecutorKind::Pipelined => "pipe",
            ExecutorKind::Fused => "fused",
        },
        rec.kernel.token(),
        u8::from(rec.measured),
        // f64 Display is shortest-roundtrip in Rust, so parse() gets
        // the identical value back.
        rec.score_ns,
    )
}

fn parse_record_line(line: &str, line_no: usize) -> Result<TuningRecord, TunerError> {
    let err = |reason: String| TunerError::WisdomParse {
        line: line_no,
        reason,
    };
    let rest = line
        .strip_prefix("plan ")
        .ok_or_else(|| err(format!("expected a `plan ...` record, found `{line}`")))?;

    let mut dims = None;
    let mut dir = None;
    let mut mu = None;
    let mut b = None;
    let mut pd = None;
    let mut pc = None;
    let mut nt = None;
    let mut exec = None;
    let mut kernel = None;
    let mut meas = None;
    let mut score = None;

    for field in rest.split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| err(format!("field `{field}` is not key=value")))?;
        let num = |v: &str| -> Result<usize, TunerError> {
            v.parse()
                .map_err(|_| err(format!("field `{key}` has non-numeric value `{v}`")))
        };
        match key {
            "dims" => dims = Some(parse_dims(value, line_no)?),
            "dir" => {
                dir = Some(match value {
                    "fwd" => Direction::Forward,
                    "inv" => Direction::Inverse,
                    other => return Err(err(format!("unknown direction `{other}`"))),
                })
            }
            "mu" => mu = Some(num(value)?),
            "b" => b = Some(num(value)?),
            "pd" => pd = Some(num(value)?),
            "pc" => pc = Some(num(value)?),
            "nt" => nt = Some(num(value)? != 0),
            "exec" => {
                exec = Some(match value {
                    "pipe" => ExecutorKind::Pipelined,
                    "fused" => ExecutorKind::Fused,
                    other => return Err(err(format!("unknown executor `{other}`"))),
                })
            }
            "kernel" => {
                kernel = Some(KernelVariant::from_token(value).ok_or_else(|| {
                    err(format!("unknown kernel variant `{value}`"))
                })?)
            }
            "meas" => meas = Some(num(value)? != 0),
            "score_ns" => {
                let v: f64 = value
                    .parse()
                    .map_err(|_| err(format!("non-numeric score_ns `{value}`")))?;
                if !v.is_finite() {
                    return Err(err(format!("non-finite score_ns `{value}`")));
                }
                score = Some(v);
            }
            other => return Err(err(format!("unknown plan field `{other}`"))),
        }
    }

    match (dims, dir, mu, b, pd, pc, nt, exec, kernel, meas, score) {
        (
            Some(dims),
            Some(dir),
            Some(mu),
            Some(buffer_elems),
            Some(p_d),
            Some(p_c),
            Some(non_temporal),
            Some(executor),
            Some(kernel),
            Some(measured),
            Some(score_ns),
        ) => Ok(TuningRecord {
            dims,
            dir,
            mu,
            buffer_elems,
            p_d,
            p_c,
            non_temporal,
            executor,
            kernel,
            score_ns,
            measured,
        }),
        _ => Err(err("plan record is missing required fields".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> HostFingerprint {
        HostFingerprint {
            cpus: 8,
            pin_works: true,
            llc_bytes: 8 << 20,
        }
    }

    fn sample_record() -> TuningRecord {
        TuningRecord {
            dims: Dims::d3(64, 32, 16),
            dir: Direction::Inverse,
            mu: 4,
            buffer_elems: 4096,
            p_d: 2,
            p_c: 6,
            non_temporal: true,
            executor: ExecutorKind::Fused,
            kernel: KernelVariant::StockhamRadix4,
            score_ns: 123456.75,
            measured: true,
        }
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let mut w = Wisdom::new(fp());
        w.records.push(sample_record());
        w.records.push(TuningRecord {
            dims: Dims::d2(64, 64),
            dir: Direction::Forward,
            kernel: KernelVariant::Stockham,
            executor: ExecutorKind::Pipelined,
            non_temporal: false,
            measured: false,
            score_ns: 0.125,
            mu: 1,
            buffer_elems: 512,
            p_d: 1,
            p_c: 1,
        });
        let (version, parsed) = Wisdom::parse(&w.serialize()).unwrap();
        assert_eq!(version, WISDOM_VERSION);
        assert_eq!(parsed, w);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!(
            "bwfft-wisdom v1\nhost {}\n\n# a comment\n{}\n",
            fp().token(),
            super::record_line(&sample_record())
        );
        let (_, parsed) = Wisdom::parse(&text).unwrap();
        assert_eq!(parsed.records.len(), 1);
    }

    #[test]
    fn load_reports_missing_file_as_retune() {
        let got = load(Path::new("/nonexistent/wisdom.txt"), &fp()).unwrap();
        assert_eq!(got, WisdomLoad::Retune(RetuneReason::NoWisdomFile));
    }

    #[test]
    fn load_degrades_on_version_and_host_mismatch() {
        let dir = std::env::temp_dir().join("bwfft-wisdom-test-mismatch");
        std::fs::create_dir_all(&dir).unwrap();

        let v2 = dir.join("v2.wisdom");
        std::fs::write(&v2, format!("bwfft-wisdom v2\nhost {}\n", fp().token())).unwrap();
        assert_eq!(
            load(&v2, &fp()).unwrap(),
            WisdomLoad::Retune(RetuneReason::VersionMismatch { found: 2 })
        );

        let other = dir.join("other-host.wisdom");
        let other_fp = HostFingerprint {
            cpus: 128,
            ..fp()
        };
        std::fs::write(
            &other,
            format!("bwfft-wisdom v1\nhost {}\n", other_fp.token()),
        )
        .unwrap();
        assert_eq!(
            load(&other, &fp()).unwrap(),
            WisdomLoad::Retune(RetuneReason::HostMismatch { found: other_fp })
        );
    }

    #[test]
    fn save_then_load_is_usable() {
        let dir = std::env::temp_dir().join("bwfft-wisdom-test-roundtrip");
        let path = dir.join("nested").join("w.wisdom");
        let mut w = Wisdom::new(fp());
        w.records.push(sample_record());
        save(&path, &w).unwrap();
        assert_eq!(load(&path, &fp()).unwrap(), WisdomLoad::Usable(w));
    }

    #[test]
    fn corrupted_lines_are_typed_errors() {
        let cases = [
            ("", 1),                                        // empty
            ("garbage", 1),                                 // bad magic
            ("bwfft-wisdom vX\nhost cpus=1 pin=0 llc=0", 1), // bad version
            ("bwfft-wisdom v1", 2),                         // truncated
            ("bwfft-wisdom v1\nnope", 2),                   // bad host line
            ("bwfft-wisdom v1\nhost cpus=1 pin=0 llc=0\nplan dims=9d:1", 3),
            ("bwfft-wisdom v1\nhost cpus=1 pin=0 llc=0\nplan mu=4", 3),
        ];
        for (text, want_line) in cases {
            match Wisdom::parse(text) {
                Err(TunerError::WisdomParse { line, .. }) => {
                    assert_eq!(line, want_line, "for {text:?}")
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn nonfinite_scores_rejected() {
        let text = format!(
            "bwfft-wisdom v1\nhost {}\nplan dims=2d:8x8 dir=fwd mu=1 b=64 pd=1 pc=1 nt=0 exec=pipe kernel=r2 meas=0 score_ns=NaN",
            fp().token()
        );
        assert!(matches!(
            Wisdom::parse(&text),
            Err(TunerError::WisdomParse { line: 3, .. })
        ));
    }
}
