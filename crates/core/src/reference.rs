//! The last-resort reference executor.
//!
//! A plain row-column pencil FFT with none of the machinery the other
//! executors depend on: no shared double buffer, no threads, no
//! barriers, no write-matrix stores — just strided pencil gathers and
//! the 1D kernel. It is the supervisor's final escalation tier: when
//! both the pipelined and the fused executors keep failing, this one
//! still produces the transform (and deliberately ignores every
//! injected fault, the way a cold-standby implementation would not
//! share the primary's failure modes).
//!
//! `bwfft-baselines` hosts an equivalent implementation for benchmark
//! comparisons, but that crate depends on this one, so the escalation
//! path needs its own copy here (the dependency arrow cannot be
//! reversed).

use crate::error::CoreError;
use crate::plan::{Dims, FftPlan};
use bwfft_kernels::Fft1d;
use bwfft_num::{try_vec_zeroed, Complex64};

/// Transforms `data` in place per the plan's dims and direction using
/// the row-column reference algorithm. Only the plan's *transform*
/// fields (dims, direction) matter; buffer size, thread counts and
/// executor choice are ignored.
///
/// Scratch pencils go through the fallible allocation path, so even
/// this tier reports OOM as a typed error rather than aborting — but
/// its scratch is one pencil, orders of magnitude smaller than the
/// buffers the other executors need.
pub fn execute_reference(plan: &FftPlan, data: &mut [Complex64]) -> Result<(), CoreError> {
    let total = plan.dims.total();
    if data.len() != total {
        return Err(CoreError::InputLength {
            what: "data",
            expected: total,
            got: data.len(),
        });
    }
    match plan.dims {
        Dims::Two { n, m } => reference_2d(data, n, m, plan)?,
        Dims::Three { k, n, m } => reference_3d(data, k, n, m, plan)?,
    }
    Ok(())
}

fn reference_2d(
    data: &mut [Complex64],
    n: usize,
    m: usize,
    plan: &FftPlan,
) -> Result<(), CoreError> {
    let dir = plan.dir;
    let mut row_fft = Fft1d::new(m, dir);
    for row in data.chunks_exact_mut(m) {
        row_fft.run(row);
    }
    let mut col_fft = Fft1d::new(n, dir);
    let mut pencil = try_vec_zeroed::<Complex64>(n, "reference pencil")?;
    for c in 0..m {
        for r in 0..n {
            pencil[r] = data[r * m + c];
        }
        col_fft.run(&mut pencil);
        for r in 0..n {
            data[r * m + c] = pencil[r];
        }
    }
    Ok(())
}

fn reference_3d(
    data: &mut [Complex64],
    k: usize,
    n: usize,
    m: usize,
    plan: &FftPlan,
) -> Result<(), CoreError> {
    let dir = plan.dir;
    // Stage 1: x-pencils (contiguous rows).
    let mut x_fft = Fft1d::new(m, dir);
    for row in data.chunks_exact_mut(m) {
        x_fft.run(row);
    }
    // Stage 2: y-pencils (stride m within each slab).
    let mut y_fft = Fft1d::new(n, dir);
    let mut pencil = try_vec_zeroed::<Complex64>(n, "reference pencil")?;
    for z in 0..k {
        let slab = &mut data[z * n * m..(z + 1) * n * m];
        for x in 0..m {
            for y in 0..n {
                pencil[y] = slab[y * m + x];
            }
            y_fft.run(&mut pencil);
            for y in 0..n {
                slab[y * m + x] = pencil[y];
            }
        }
    }
    // Stage 3: z-pencils (stride n·m).
    let mut z_fft = Fft1d::new(k, dir);
    let mut zpencil = try_vec_zeroed::<Complex64>(k, "reference pencil")?;
    for y in 0..n {
        for x in 0..m {
            for z in 0..k {
                zpencil[z] = data[z * n * m + y * m + x];
            }
            z_fft.run(&mut zpencil);
            for z in 0..k {
                data[z * n * m + y * m + x] = zpencil[z];
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec_real::{execute, normalize};
    use bwfft_kernels::Direction;
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::random_complex;

    #[test]
    fn reference_matches_pipelined_3d() {
        let (k, n, m) = (8usize, 8, 16);
        let x = random_complex(k * n * m, 120);
        let plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(128)
            .threads(2, 2)
            .build()
            .unwrap();
        let mut a = x.clone();
        let mut wa = vec![Complex64::ZERO; x.len()];
        execute(&plan, &mut a, &mut wa).unwrap();
        let mut b = x.clone();
        execute_reference(&plan, &mut b).unwrap();
        assert_fft_close(&b, &a);
    }

    #[test]
    fn reference_matches_pipelined_2d() {
        let (n, m) = (16usize, 32);
        let x = random_complex(n * m, 121);
        let plan = FftPlan::builder(Dims::d2(n, m))
            .buffer_elems(128)
            .threads(2, 2)
            .build()
            .unwrap();
        let mut a = x.clone();
        let mut wa = vec![Complex64::ZERO; x.len()];
        execute(&plan, &mut a, &mut wa).unwrap();
        let mut b = x.clone();
        execute_reference(&plan, &mut b).unwrap();
        assert_fft_close(&b, &a);
    }

    #[test]
    fn reference_roundtrip() {
        let (k, n, m) = (4usize, 8, 8);
        let x = random_complex(k * n * m, 122);
        let fwd = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(64)
            .build()
            .unwrap();
        let inv = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(64)
            .direction(Direction::Inverse)
            .build()
            .unwrap();
        let mut data = x.clone();
        execute_reference(&fwd, &mut data).unwrap();
        execute_reference(&inv, &mut data).unwrap();
        normalize(&mut data);
        assert_fft_close(&data, &x);
    }

    #[test]
    fn length_mismatch_is_typed() {
        let plan = FftPlan::builder(Dims::d3(8, 8, 8))
            .buffer_elems(64)
            .build()
            .unwrap();
        let mut short = vec![Complex64::ZERO; 100];
        let err = execute_reference(&plan, &mut short).unwrap_err();
        assert!(matches!(err, CoreError::InputLength { .. }));
    }
}
