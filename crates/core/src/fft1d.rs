//! Large 1D FFTs via the four-step (Bailey) decomposition — the
//! natural extension of the paper's machinery to one dimension, where
//! its predecessor work (paper ref [20]) operated.
//!
//! For `N = n1·n2`, the Cooley–Tukey factorization
//!
//! ```text
//! DFT_N = (DFT_{n1} ⊗ I_{n2}) · D_{n1,n2} · (I_{n1} ⊗ DFT_{n2}) · L^N_{n1}
//! ```
//!
//! maps onto the double-buffered stage architecture as
//!
//! * **stage D** (decimation): pure data movement implementing the
//!   input permutation `L` — element-granular writes, the honest cost
//!   of 1D's extra reshuffle (skippable if the caller provides
//!   decimated input);
//! * **stage 1**: contiguous rows of `n2`, batched `DFT_{n2}`, the
//!   twiddle diagonal `D` folded into the compute task, blocked
//!   transpose on the store;
//! * **stage 2**: `DFT_{n1} ⊗ I_μ` lane pencils, blocked transpose
//!   back to natural order.
//!
//! Three round trips for a natural-order 1D FFT versus two for a 2D of
//! the same volume — the known bandwidth premium of large 1D
//! transforms.

use crate::error::CoreError;
use crate::exec_sim::{simulate_generic_stage, GenericStage, SimOptions, StageCost};
use crate::metrics;
use crate::plan::PlanError;
use bwfft_kernels::batch::BatchFft;
use bwfft_kernels::transpose::{store_through_write_matrix, write_matrix_packets};
use bwfft_kernels::Direction;
use bwfft_machine::spec::MachineSpec;
use bwfft_machine::stats::PerfReport;
use bwfft_num::{Complex64, MU};
use bwfft_pipeline::buffer::partition;
use bwfft_pipeline::exec::{ComputeFn, LoadFn, PipelineCallbacks, PipelineConfig, StoreFn};
use bwfft_pipeline::{run_pipeline, DoubleBuffer};
use bwfft_spl::gather_scatter::{StagePerm, WriteMatrix};
use bwfft_spl::PermOp;

/// Plan for a large 1D FFT of `n1 · n2` points.
#[derive(Clone, Debug)]
pub struct Fft1dLargePlan {
    pub n1: usize,
    pub n2: usize,
    pub mu: usize,
    pub b: usize,
    pub p_d: usize,
    pub p_c: usize,
    pub dir: Direction,
    /// Include the decimation stage (natural-order input). With
    /// `false`, input must already be `L`-decimated: element `x[i·n1+j]`
    /// at position `j·n2 + i`.
    pub decimate_input: bool,
}

impl Fft1dLargePlan {
    pub fn new(n1: usize, n2: usize) -> Self {
        Self {
            n1,
            n2,
            mu: MU,
            b: 0,
            p_d: 1,
            p_c: 1,
            dir: Direction::Forward,
            decimate_input: true,
        }
    }

    pub fn buffer_elems(mut self, b: usize) -> Self {
        self.b = b;
        self
    }

    pub fn threads(mut self, p_d: usize, p_c: usize) -> Self {
        self.p_d = p_d;
        self.p_c = p_c;
        self
    }

    pub fn direction(mut self, dir: Direction) -> Self {
        self.dir = dir;
        self
    }

    pub fn decimated_input(mut self) -> Self {
        self.decimate_input = false;
        self
    }

    pub fn total(&self) -> usize {
        self.n1 * self.n2
    }

    fn validated_b(&self) -> Result<usize, PlanError> {
        let total = self.total();
        let min = self.n2.max(self.n1 * self.mu);
        let b = if self.b == 0 {
            (total / 8).max(min)
        } else {
            self.b
        };
        if !bwfft_num::is_pow2(self.n1) {
            return Err(PlanError::NotPow2("n1", self.n1));
        }
        if !bwfft_num::is_pow2(self.n2) {
            return Err(PlanError::NotPow2("n2", self.n2));
        }
        if !self.n2.is_multiple_of(self.mu) {
            return Err(PlanError::BufferNotDividing {
                b: self.n2,
                constraint: "mu divides n2",
                value: self.mu,
            });
        }
        if b < min {
            return Err(PlanError::BufferTooSmall { needed: min, got: b });
        }
        if !total.is_multiple_of(b) {
            return Err(PlanError::BufferNotDividing {
                b,
                constraint: "b divides N",
                value: total,
            });
        }
        if b % self.n2 != 0 {
            return Err(PlanError::BufferNotDividing {
                b,
                constraint: "n2 divides b",
                value: self.n2,
            });
        }
        if b % (self.n1 * self.mu) != 0 {
            return Err(PlanError::BufferNotDividing {
                b,
                constraint: "n1*mu divides b",
                value: self.n1 * self.mu,
            });
        }
        Ok(b)
    }

    /// The three (or two) stage permutations.
    pub fn stage_perms(&self) -> Vec<StagePerm> {
        let (n1, n2, mu) = (self.n1, self.n2, self.mu);
        let mut perms = Vec::new();
        if self.decimate_input {
            perms.push(StagePerm::Single(PermOp::L { rows: n2, cols: n1 }));
        }
        perms.push(StagePerm::Single(PermOp::BlockedL {
            rows: n1,
            cols: n2 / mu,
            blk: mu,
        }));
        perms.push(StagePerm::Single(PermOp::BlockedL {
            rows: n2 / mu,
            cols: n1,
            blk: mu,
        }));
        perms
    }
}

/// The twiddle value applied to global element `g` (in the `n1 × n2`
/// row-major layout of stage 1): `ω_N^{i·j}` with `i = g / n2`,
/// `j = g mod n2`, conjugated for inverse transforms.
#[inline]
fn twiddle_at(g: usize, n1: usize, n2: usize, dir: Direction) -> Complex64 {
    let i = g / n2;
    let j = g % n2;
    let w = Complex64::root_of_unity((i as u64 * j as u64) as i64, (n1 * n2) as u64);
    match dir {
        Direction::Forward => w,
        Direction::Inverse => w.conj(),
    }
}

/// Executes the plan: `data` is transformed in place; `work` is a
/// same-sized scratch array.
pub fn execute(
    plan: &Fft1dLargePlan,
    data: &mut [Complex64],
    work: &mut [Complex64],
) -> Result<(), CoreError> {
    let total = plan.total();
    if data.len() != total {
        return Err(CoreError::InputLength {
            what: "data",
            expected: total,
            got: data.len(),
        });
    }
    if work.len() != total {
        return Err(CoreError::InputLength {
            what: "work",
            expected: total,
            got: work.len(),
        });
    }
    let b = plan.validated_b()?;
    let perms = plan.stage_perms();
    let n_stages = perms.len();
    let buffer = DoubleBuffer::new(b);

    for (s, perm) in perms.iter().enumerate() {
        let stage_kind = if plan.decimate_input { s } else { s + 1 };
        let (src, dst): (&[Complex64], &mut [Complex64]) = if s % 2 == 0 {
            (&*data, &mut *work)
        } else {
            (&*work, &mut *data)
        };
        run_1d_stage(plan, stage_kind, *perm, b, &buffer, src, dst)?;
        // Rust borrow rules force the copy-back pattern below instead
        // of slice swapping; the arrays alternate by stage parity.
        let _ = dst;
    }
    if n_stages % 2 == 1 {
        data.copy_from_slice(work);
    }
    Ok(())
}

struct SharedDst {
    ptr: *mut Complex64,
    len: usize,
}
unsafe impl Send for SharedDst {}
unsafe impl Sync for SharedDst {}
impl SharedDst {
    /// # Safety
    /// Disjoint concurrent writes only (write-matrix injectivity).
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self) -> &mut [Complex64] {
        core::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

fn run_1d_stage(
    plan: &Fft1dLargePlan,
    stage_kind: usize, // 0 = decimate, 1 = rows+twiddle, 2 = lanes
    perm: StagePerm,
    b: usize,
    buffer: &DoubleBuffer,
    src: &[Complex64],
    dst: &mut [Complex64],
) -> Result<(), CoreError> {
    let total = plan.total();
    let iters = total / b;
    let (n1, n2) = (plan.n1, plan.n2);
    let dir = plan.dir;
    let shared = SharedDst {
        ptr: dst.as_mut_ptr(),
        len: dst.len(),
    };
    let shared_ref = &shared;

    let n_packets = write_matrix_packets(&WriteMatrix::new(perm, b, 0));
    let packet_parts = partition(n_packets, plan.p_d);

    let loaders: Vec<LoadFn> = (0..plan.p_d)
        .map(|_| {
            Box::new(move |blk: usize, off: usize, share: &mut [Complex64]| {
                let start = blk * b + off;
                share.copy_from_slice(&src[start..start + share.len()]);
            }) as LoadFn
        })
        .collect();
    let storers: Vec<StoreFn> = (0..plan.p_d)
        .map(|j| {
            let range = packet_parts[j].clone();
            Box::new(move |blk: usize, half: &[Complex64]| {
                let w = WriteMatrix::new(perm, b, blk);
                // Safety: disjoint packet ranges, injective perm.
                let dst_all = unsafe { shared_ref.slice_mut() };
                store_through_write_matrix(half, dst_all, &w, range.clone(), true);
            }) as StoreFn
        })
        .collect();
    let computes: Vec<ComputeFn> = (0..plan.p_c)
        .map(|_| match stage_kind {
            0 => Box::new(move |_blk: usize, _off: usize, _share: &mut [Complex64]| {
                // Decimation stage: pure data movement.
            }) as ComputeFn,
            1 => {
                let mut kernel = BatchFft::new(n2, 1, dir);
                Box::new(move |blk: usize, off: usize, share: &mut [Complex64]| {
                    kernel.run(share);
                    // Fold in the Cooley–Tukey twiddle diagonal.
                    let base = blk * b + off;
                    for (t, v) in share.iter_mut().enumerate() {
                        *v *= twiddle_at(base + t, n1, n2, dir);
                    }
                }) as ComputeFn
            }
            _ => {
                let mut kernel = BatchFft::new(n1, plan.mu, dir);
                Box::new(move |_blk: usize, _off: usize, share: &mut [Complex64]| {
                    kernel.run(share);
                }) as ComputeFn
            }
        })
        .collect();

    let compute_unit = match stage_kind {
        0 => plan.mu,
        1 => n2,
        _ => n1 * plan.mu,
    };
    run_pipeline(
        buffer,
        &PipelineConfig {
            iters,
            load_unit: plan.mu.min(b),
            compute_unit,
            ..PipelineConfig::default()
        },
        PipelineCallbacks {
            loaders,
            storers,
            computes,
        },
    )?;
    Ok(())
}

/// Simulates the four-step 1D FFT on a machine preset.
pub fn simulate_fft1d(
    plan: &Fft1dLargePlan,
    spec: &MachineSpec,
    opts: &SimOptions,
) -> Result<(PerfReport, Vec<StageCost>), CoreError> {
    let total = plan.total();
    let b = plan.validated_b()?;
    let mut stage_costs = Vec::new();
    let mut total_ns = 0.0;
    let mut dram = 0.0;
    for (s, perm) in plan.stage_perms().iter().enumerate() {
        let stage_kind = if plan.decimate_input { s } else { s + 1 };
        let flops = match stage_kind {
            0 => 0.0,
            // Row FFTs plus ~6 flops per element for the twiddle.
            1 => 5.0 * b as f64 * (plan.n2.max(2) as f64).log2() + 6.0 * b as f64,
            _ => 5.0 * b as f64 * (plan.n1.max(2) as f64).log2(),
        };
        let g = GenericStage {
            perm: *perm,
            b,
            iters_per_socket: total / b,
            sockets: 1,
            total,
            p_d: plan.p_d,
            p_c: plan.p_c,
            flops_per_block: flops,
        };
        let c = simulate_generic_stage(&g, spec, opts, s)?;
        total_ns += c.time_ns;
        dram += c.dram_bytes;
        stage_costs.push(c);
    }
    let stages = plan.stage_perms().len();
    let report = PerfReport {
        machine: spec.name.to_string(),
        problem: format!("1D {} (four-step {}x{})", total, plan.n1, plan.n2),
        time_ns: total_ns,
        pseudo_flops: metrics::pseudo_flops(total),
        dram_bytes: dram,
        link_bytes: 0.0,
        achievable_peak_gflops: metrics::achievable_peak_gflops(
            total,
            stages,
            spec.total_dram_bw_gbs(),
        ),
    };
    Ok((report, stage_costs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_kernels::reference::dft_naive;
    use bwfft_kernels::Fft1d;
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::random_complex;
    use bwfft_spl::Formula;

    fn run(plan: &Fft1dLargePlan, x: &[Complex64]) -> Vec<Complex64> {
        let mut data = x.to_vec();
        let mut work = vec![Complex64::ZERO; x.len()];
        execute(plan, &mut data, &mut work).unwrap();
        data
    }

    #[test]
    fn four_step_formula_is_the_dft() {
        // Algebraic check of the whole construction:
        // T2·(I⊗DFT_{n1}⊗I_μ)·T1·D·(I⊗DFT_{n2})·L = DFT_N.
        let (n1, n2, mu) = (4usize, 8usize, 2usize);
        let n = n1 * n2;
        let f = Formula::compose(vec![
            Formula::tensor(Formula::stride_l(n2 / mu, n1), Formula::identity(mu)),
            Formula::tensor(
                Formula::identity(n2 / mu),
                Formula::tensor(Formula::dft(n1), Formula::identity(mu)),
            ),
            Formula::tensor(Formula::stride_l(n1, n2 / mu), Formula::identity(mu)),
            Formula::twiddle(n1, n2),
            Formula::tensor(Formula::identity(n1), Formula::dft(n2)),
            Formula::stride_l(n2, n1),
        ]);
        bwfft_spl::dense::assert_formulas_equal(&Formula::dft(n), &f);
    }

    #[test]
    fn matches_naive_dft_small() {
        let plan = Fft1dLargePlan::new(8, 16).buffer_elems(32).threads(1, 1);
        let x = random_complex(128, 400);
        assert_fft_close(&run(&plan, &x), &dft_naive(&x, Direction::Forward));
    }

    #[test]
    fn matches_direct_kernel_at_larger_sizes() {
        for (n1, n2) in [(16usize, 64usize), (32, 32), (64, 16)] {
            let n = n1 * n2;
            let x = random_complex(n, 401);
            let plan = Fft1dLargePlan::new(n1, n2)
                .buffer_elems(n / 4)
                .threads(2, 2);
            let got = run(&plan, &x);
            let mut expect = x.clone();
            Fft1d::new(n, Direction::Forward).run(&mut expect);
            assert_fft_close(&got, &expect);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let (n1, n2) = (16usize, 16usize);
        let n = n1 * n2;
        let x = random_complex(n, 402);
        let fwd = Fft1dLargePlan::new(n1, n2).buffer_elems(64).threads(2, 2);
        let inv = Fft1dLargePlan::new(n1, n2)
            .buffer_elems(64)
            .threads(2, 2)
            .direction(Direction::Inverse);
        let mut data = run(&fwd, &x);
        let mut work = vec![Complex64::ZERO; n];
        execute(&inv, &mut data, &mut work).unwrap();
        let scale = 1.0 / n as f64;
        let back: Vec<Complex64> = data.iter().map(|c| c.scale(scale)).collect();
        assert_fft_close(&back, &x);
    }

    #[test]
    fn decimated_input_mode_skips_the_reshuffle() {
        let (n1, n2) = (8usize, 32usize);
        let n = n1 * n2;
        let x = random_complex(n, 403);
        // Manually decimate: x'[j·n2 + i] = x[i·n1 + j].
        let mut xp = vec![Complex64::ZERO; n];
        PermOp::L { rows: n2, cols: n1 }.permute(&x, &mut xp);
        let plan = Fft1dLargePlan::new(n1, n2)
            .buffer_elems(n / 2)
            .threads(1, 2)
            .decimated_input();
        assert_eq!(plan.stage_perms().len(), 2);
        let got = run(&plan, &xp);
        let mut expect = x.clone();
        Fft1d::new(n, Direction::Forward).run(&mut expect);
        assert_fft_close(&got, &expect);
    }

    #[test]
    fn thread_configuration_does_not_change_results() {
        let (n1, n2) = (16usize, 32usize);
        let x = random_complex(n1 * n2, 404);
        let a = run(&Fft1dLargePlan::new(n1, n2).buffer_elems(128).threads(1, 1), &x);
        let b = run(&Fft1dLargePlan::new(n1, n2).buffer_elems(256).threads(3, 2), &x);
        assert_fft_close(&a, &b);
    }

    #[test]
    fn simulated_1d_pays_the_extra_round_trip() {
        // 1D (3 stages incl. decimation) must be slower per point than
        // 2D (2 stages) at equal volume, but the decimated-input mode
        // (2 stages) should roughly match 2D.
        let spec = bwfft_machine::presets::kaby_lake_7700k();
        let opts = SimOptions::default();
        let n1 = 4096usize;
        let n2 = 4096usize;
        let full = Fft1dLargePlan::new(n1, n2)
            .buffer_elems(spec.default_buffer_elems())
            .threads(4, 4);
        let (rep_full, stages) = simulate_fft1d(&full, &spec, &opts).unwrap();
        assert_eq!(stages.len(), 3);
        let dec = Fft1dLargePlan::new(n1, n2)
            .buffer_elems(spec.default_buffer_elems())
            .threads(4, 4)
            .decimated_input();
        let (rep_dec, _) = simulate_fft1d(&dec, &spec, &opts).unwrap();
        assert!(rep_full.time_ns > rep_dec.time_ns * 1.3);
        // The element-granular decimation stage dominates stage 0.
        assert!(stages[0].time_ns > stages[1].time_ns);
    }
}
