//! FFT plans: dimensions, buffer sizing, thread split, and the derived
//! per-stage structure (§III).

use crate::host::{DegradationReason, ExecutorKind, HostProfile};
use bwfft_kernels::{Direction, KernelVariant};
use bwfft_num::MU;
use bwfft_spl::gather_scatter::{fft2d_stage_perms, fft3d_numa_stage_perms, StagePerm};

/// Transform dimensions (row-major, last dimension fastest).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dims {
    Two { n: usize, m: usize },
    Three { k: usize, n: usize, m: usize },
}

impl Dims {
    pub fn d2(n: usize, m: usize) -> Self {
        Dims::Two { n, m }
    }

    pub fn d3(k: usize, n: usize, m: usize) -> Self {
        Dims::Three { k, n, m }
    }

    pub fn total(&self) -> usize {
        match *self {
            Dims::Two { n, m } => n * m,
            Dims::Three { k, n, m } => k * n * m,
        }
    }

    pub fn stages(&self) -> usize {
        match self {
            Dims::Two { .. } => 2,
            Dims::Three { .. } => 3,
        }
    }

    pub fn label(&self) -> String {
        match *self {
            Dims::Two { n, m } => format!("2D {n}x{m}"),
            Dims::Three { k, n, m } => format!("3D {k}x{n}x{m}"),
        }
    }
}

/// What one pipeline stage computes and how it writes back.
#[derive(Clone, Copy, Debug)]
pub struct StageSpec {
    /// 1D FFT size of this stage's pencils.
    pub fft_size: usize,
    /// Vector lanes per pencil (1 for the first stage, μ afterwards).
    pub lanes: usize,
    /// The write-back reshape.
    pub perm: StagePerm,
}

impl StageSpec {
    /// Elements per pencil (`fft_size · lanes`), the indivisible
    /// compute unit.
    pub fn pencil_elems(&self) -> usize {
        self.fft_size * self.lanes
    }
}

/// Plan construction errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    NotPow2(&'static str, usize),
    BufferTooSmall { needed: usize, got: usize },
    BufferNotDividing { b: usize, constraint: &'static str, value: usize },
    /// A stage's pencil (`fft_size · lanes` elements) does not divide
    /// the buffer half `b`, so blocks would split pencils. Derived
    /// uniformly from the built stage list — the same constraint the
    /// pipeline executor would otherwise reject at run time as a
    /// `ConfigError::UnitMismatch`.
    StagePencilIndivisible {
        stage: usize,
        fft_size: usize,
        lanes: usize,
        buffer_elems: usize,
    },
    ThreadCount(&'static str),
    SocketSplit(&'static str),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NotPow2(what, v) => write!(f, "{what} = {v} must be a power of two"),
            PlanError::BufferTooSmall { needed, got } => {
                write!(f, "buffer of {got} elements is smaller than one pencil batch ({needed})")
            }
            PlanError::BufferNotDividing { b, constraint, value } => {
                write!(f, "buffer size {b} violates `{constraint}` (= {value})")
            }
            PlanError::StagePencilIndivisible {
                stage,
                fft_size,
                lanes,
                buffer_elems,
            } => {
                write!(
                    f,
                    "stage {stage}: pencil of {fft_size}x{lanes} = {} elems does not divide \
                     the buffer half ({buffer_elems})",
                    fft_size * lanes
                )
            }
            PlanError::ThreadCount(msg) => write!(f, "thread configuration: {msg}"),
            PlanError::SocketSplit(msg) => write!(f, "socket split: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A validated FFT plan.
#[derive(Clone, Debug)]
pub struct FftPlan {
    pub dims: Dims,
    pub dir: Direction,
    /// Cacheline block in elements (4 for complex doubles).
    pub mu: usize,
    /// Shared-buffer half size `b`, elements.
    pub buffer_elems: usize,
    /// Data threads (per machine, split across sockets).
    pub p_d: usize,
    /// Compute threads.
    pub p_c: usize,
    /// NUMA sockets for the slab–pencil decomposition (1 = single).
    pub sockets: usize,
    /// Use non-temporal loads/stores for the memory-facing movement
    /// (§IV). Turning this off is the `ablation_design` knob.
    pub non_temporal: bool,
    /// Optional CPU pinning for the real executor: one logical CPU per
    /// thread, data threads first (the paper's `kmp_affinity` /
    /// `sched_setaffinity` discipline, §III-D).
    pub pin_cpus: Option<Vec<usize>>,
    /// Which executor `exec_real::execute` dispatches to. `Fused` when
    /// the degradation policy fired (see `degradations`).
    pub executor: ExecutorKind,
    /// Why the plan degraded to the fused executor (empty when
    /// pipelined). Populated by [`FftPlanBuilder::host`] /
    /// [`FftPlanBuilder::adapt_to_host`].
    pub degradations: Vec<DegradationReason>,
    /// Which 1D pencil kernel the compute threads run. One of the
    /// autotuner's search axes; defaults to radix-2 Stockham.
    pub kernel: KernelVariant,
    stages: Vec<StageSpec>,
}

impl FftPlan {
    pub fn builder(dims: Dims) -> FftPlanBuilder {
        FftPlanBuilder {
            dims,
            dir: Direction::Forward,
            mu: MU,
            buffer_elems: 0,
            p_d: 1,
            p_c: 1,
            sockets: 1,
            non_temporal: true,
            pin_cpus: None,
            host: None,
            kernel: KernelVariant::Stockham,
        }
    }

    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// Blocks per stage per socket (`knm / (b·sk)` — the paper's
    /// `iter`).
    pub fn iters_per_socket(&self) -> usize {
        self.dims.total() / self.buffer_elems / self.sockets
    }

    /// Total pseudo-flops of the transform.
    pub fn pseudo_flops(&self) -> f64 {
        crate::metrics::pseudo_flops(self.dims.total())
    }
}

/// Builder for [`FftPlan`].
#[derive(Clone, Debug)]
pub struct FftPlanBuilder {
    dims: Dims,
    dir: Direction,
    mu: usize,
    buffer_elems: usize,
    p_d: usize,
    p_c: usize,
    sockets: usize,
    non_temporal: bool,
    pin_cpus: Option<Vec<usize>>,
    host: Option<HostProfile>,
    kernel: KernelVariant,
}

impl FftPlanBuilder {
    pub fn direction(mut self, dir: Direction) -> Self {
        self.dir = dir;
        self
    }

    /// The dimensions this builder was created for. Read-only accessor
    /// for downstream planners (the tuner keys its cache on this).
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// The currently configured transform direction.
    pub fn dir(&self) -> Direction {
        self.dir
    }

    /// The currently configured socket count.
    pub fn socket_count(&self) -> usize {
        self.sockets
    }

    /// Selects the 1D pencil kernel variant (default: radix-2
    /// Stockham). Radix-4 agrees to FFT tolerance, not bitwise.
    pub fn kernel(mut self, variant: KernelVariant) -> Self {
        self.kernel = variant;
        self
    }

    pub fn mu(mut self, mu: usize) -> Self {
        self.mu = mu;
        self
    }

    /// Buffer half size `b` in elements. Defaults (0) to
    /// `total/16` clamped to at least one pencil batch — callers
    /// targeting a machine preset should pass
    /// `spec.default_buffer_elems()` (the `LLC/2` rule).
    pub fn buffer_elems(mut self, b: usize) -> Self {
        self.buffer_elems = b;
        self
    }

    pub fn threads(mut self, p_d: usize, p_c: usize) -> Self {
        self.p_d = p_d;
        self.p_c = p_c;
        self
    }

    pub fn sockets(mut self, sk: usize) -> Self {
        self.sockets = sk;
        self
    }

    pub fn non_temporal(mut self, nt: bool) -> Self {
        self.non_temporal = nt;
        self
    }

    /// Derives the thread split *and* CPU pinning from a paired role
    /// assignment: data and compute threads land on sibling hardware
    /// threads of the same cores (§IV-A).
    pub fn pinned(mut self, roles: &bwfft_pipeline::RoleAssignment) -> Self {
        self.p_d = roles.data_per_socket() * roles.sockets;
        self.p_c = roles.compute_per_socket() * roles.sockets;
        self.sockets = self.sockets.max(1);
        let mut cpus: Vec<usize> = roles.data_slots().map(|s| s.thread).collect();
        cpus.extend(roles.compute_slots().map(|s| s.thread));
        self.pin_cpus = Some(cpus);
        self
    }

    /// Supplies a host profile for the graceful-degradation policy:
    /// when the host cannot sustain the pipeline (single CPU, pinning
    /// broken, buffer larger than the LLC), the plan records the typed
    /// [`DegradationReason`]s and dispatches to the fused executor
    /// instead of failing or thrashing.
    pub fn host(mut self, profile: HostProfile) -> Self {
        self.host = Some(profile);
        self
    }

    /// [`FftPlanBuilder::host`] with the detected profile of the
    /// current machine.
    pub fn adapt_to_host(self) -> Self {
        self.host(HostProfile::detect())
    }

    pub fn build(self) -> Result<FftPlan, PlanError> {
        let dims = self.dims;
        let mu = self.mu;
        let total = dims.total();
        let (dims_list, label): (Vec<usize>, &str) = match dims {
            Dims::Two { n, m } => (vec![n, m], "2D"),
            Dims::Three { k, n, m } => (vec![k, n, m], "3D"),
        };
        let _ = label;
        for (&d, name) in dims_list.iter().zip(["k/n", "n/m", "m"].iter()) {
            if !bwfft_num::is_pow2(d) {
                return Err(PlanError::NotPow2("dimension", d));
            }
            let _ = name;
        }
        if !bwfft_num::is_pow2(mu) {
            return Err(PlanError::NotPow2("mu", mu));
        }

        // Default buffer: a sixteenth of the problem, at least one
        // batch of the largest pencil.
        let max_pencil = match dims {
            Dims::Two { n, m } => m.max(n * mu),
            Dims::Three { k, n, m } => m.max(n * mu).max(k * mu),
        };
        let mut b = self.buffer_elems;
        if b == 0 {
            b = (total / 16).max(max_pencil);
        }
        if b < max_pencil {
            return Err(PlanError::BufferTooSmall {
                needed: max_pencil,
                got: b,
            });
        }
        if !bwfft_num::is_pow2(b) {
            return Err(PlanError::NotPow2("buffer_elems", b));
        }

        let sk = self.sockets;
        if sk == 0 || !total.is_multiple_of(sk) {
            return Err(PlanError::SocketSplit("sockets must divide the problem"));
        }
        if matches!(dims, Dims::Two { .. }) && sk != 1 {
            return Err(PlanError::SocketSplit(
                "the slab–pencil NUMA decomposition is 3D-only (paper §IV-B)",
            ));
        }
        if !(total / sk).is_multiple_of(b) {
            return Err(PlanError::BufferNotDividing {
                b,
                constraint: "b | total/sockets",
                value: total / sk,
            });
        }

        // μ must divide the innermost dimension: the stage-0 write
        // reshape packs μ-wide cacheline lanes out of each length-m row.
        let m_inner = match dims {
            Dims::Two { m, .. } | Dims::Three { m, .. } => m,
        };
        if m_inner % mu != 0 {
            return Err(PlanError::BufferNotDividing {
                b: mu,
                constraint: "mu | m",
                value: m_inner,
            });
        }

        let stages = match dims {
            Dims::Two { n, m } => {
                let perms = fft2d_stage_perms(n, m, mu);
                vec![
                    StageSpec {
                        fft_size: m,
                        lanes: 1,
                        perm: perms[0],
                    },
                    StageSpec {
                        fft_size: n,
                        lanes: mu,
                        perm: perms[1],
                    },
                ]
            }
            Dims::Three { k, n, m } => {
                if sk > 1 && (k % sk != 0 || n % sk != 0) {
                    return Err(PlanError::SocketSplit(
                        "sockets must divide both k and n for the slab split",
                    ));
                }
                let perms = fft3d_numa_stage_perms(k, n, m, mu, sk);
                vec![
                    StageSpec {
                        fft_size: m,
                        lanes: 1,
                        perm: perms[0],
                    },
                    StageSpec {
                        fft_size: n,
                        lanes: mu,
                        perm: perms[1],
                    },
                    StageSpec {
                        fft_size: k,
                        lanes: mu,
                        perm: perms[2],
                    },
                ]
            }
        };

        // Pencils never straddle block boundaries: every stage's
        // compute unit must divide the buffer half. Derived from the
        // stage list itself rather than re-enumerated per dimension, so
        // future stage shapes (e.g. Bluestein-backed non-pow-2 sizes)
        // inherit the check — this mirrors, at build time, exactly what
        // the pipeline executor's `validate()` would reject late as a
        // `UnitMismatch` on `compute_unit`.
        validate_stage_pencils(&stages, b)?;

        if self.p_d == 0 || self.p_c == 0 {
            return Err(PlanError::ThreadCount(
                "need at least one data and one compute thread",
            ));
        }
        if !self.p_d.is_multiple_of(sk) || !self.p_c.is_multiple_of(sk) {
            return Err(PlanError::ThreadCount(
                "thread counts must split evenly across sockets",
            ));
        }

        let degradations = self
            .host
            .map(|h| h.degradations(b, self.pin_cpus.is_some()))
            .unwrap_or_default();
        let executor = if degradations.is_empty() {
            ExecutorKind::Pipelined
        } else {
            ExecutorKind::Fused
        };

        Ok(FftPlan {
            dims,
            dir: self.dir,
            mu,
            buffer_elems: b,
            p_d: self.p_d,
            p_c: self.p_c,
            sockets: sk,
            non_temporal: self.non_temporal,
            pin_cpus: self.pin_cpus,
            executor,
            degradations,
            kernel: self.kernel,
            stages,
        })
    }
}

/// Every stage's pencil (`fft_size · lanes`) must divide the buffer
/// half `b`, the same compute-unit constraint the pipeline executor
/// checks at run time.
fn validate_stage_pencils(stages: &[StageSpec], b: usize) -> Result<(), PlanError> {
    for (i, st) in stages.iter().enumerate() {
        if !b.is_multiple_of(st.pencil_elems()) {
            return Err(PlanError::StagePencilIndivisible {
                stage: i,
                fft_size: st.fft_size,
                lanes: st.lanes,
                buffer_elems: b,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_3d_plan() {
        let p = FftPlan::builder(Dims::d3(16, 16, 16))
            .buffer_elems(1024)
            .threads(2, 2)
            .build()
            .unwrap();
        assert_eq!(p.stages().len(), 3);
        assert_eq!(p.iters_per_socket(), 4);
        assert_eq!(p.stages()[0].fft_size, 16);
        assert_eq!(p.stages()[0].lanes, 1);
        assert_eq!(p.stages()[1].lanes, 4);
    }

    #[test]
    fn default_buffer_is_plausible() {
        let p = FftPlan::builder(Dims::d3(64, 64, 64)).build().unwrap();
        assert!(p.buffer_elems >= 64 * 4);
        assert_eq!((64usize * 64 * 64) % p.buffer_elems, 0);
    }

    #[test]
    fn rejects_non_pow2_dimension() {
        let e = FftPlan::builder(Dims::d3(12, 16, 16)).build().unwrap_err();
        assert!(matches!(e, PlanError::NotPow2(..)));
    }

    #[test]
    fn rejects_buffer_smaller_than_pencil() {
        let e = FftPlan::builder(Dims::d2(64, 256))
            .buffer_elems(128)
            .build()
            .unwrap_err();
        assert!(matches!(e, PlanError::BufferTooSmall { .. }));
    }

    #[test]
    fn rejects_2d_numa() {
        let e = FftPlan::builder(Dims::d2(64, 64))
            .sockets(2)
            .build()
            .unwrap_err();
        assert!(matches!(e, PlanError::SocketSplit(_)));
    }

    #[test]
    fn numa_plan_requires_divisible_dims() {
        let ok = FftPlan::builder(Dims::d3(16, 16, 16))
            .buffer_elems(512)
            .sockets(2)
            .threads(2, 2)
            .build();
        assert!(ok.is_ok());
        // stage perms become TwoLevel.
        let p = ok.unwrap();
        assert!(matches!(
            p.stages()[1].perm,
            bwfft_spl::gather_scatter::StagePerm::TwoLevel { .. }
        ));
    }

    #[test]
    fn rejects_thread_socket_mismatch() {
        let e = FftPlan::builder(Dims::d3(16, 16, 16))
            .buffer_elems(512)
            .sockets(2)
            .threads(3, 2)
            .build()
            .unwrap_err();
        assert!(matches!(e, PlanError::ThreadCount(_)));
    }

    #[test]
    fn error_messages_render() {
        let e = FftPlan::builder(Dims::d3(12, 16, 16)).build().unwrap_err();
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn stage_pencil_check_rejects_indivisible_units() {
        // All-pow-2 builder shapes can't reach this branch (order ⇒
        // divisibility there); exercise the helper directly with the
        // kind of non-pow-2 stage a Bluestein-backed size would emit.
        let perms = fft2d_stage_perms(4, 4, 1);
        let stages = [
            StageSpec {
                fft_size: 3,
                lanes: 1,
                perm: perms[0],
            },
            StageSpec {
                fft_size: 4,
                lanes: 1,
                perm: perms[1],
            },
        ];
        let e = validate_stage_pencils(&stages, 8).unwrap_err();
        assert_eq!(
            e,
            PlanError::StagePencilIndivisible {
                stage: 0,
                fft_size: 3,
                lanes: 1,
                buffer_elems: 8,
            }
        );
        assert!(e.to_string().contains("does not divide"));
        assert!(validate_stage_pencils(&stages, 12).is_ok());
    }

    #[test]
    fn builder_getters_and_kernel_variant() {
        let builder = FftPlan::builder(Dims::d2(8, 16)).direction(Direction::Inverse);
        assert_eq!(builder.dims(), Dims::d2(8, 16));
        assert_eq!(builder.dir(), Direction::Inverse);
        assert_eq!(builder.socket_count(), 1);
        let p = builder.kernel(KernelVariant::StockhamRadix4).build().unwrap();
        assert_eq!(p.kernel, KernelVariant::StockhamRadix4);
        // Default stays radix-2 so existing bitwise tests are untouched.
        let q = FftPlan::builder(Dims::d2(8, 16)).build().unwrap();
        assert_eq!(q.kernel, KernelVariant::Stockham);
    }
}
