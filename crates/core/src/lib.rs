//! `bwfft-core` — large bandwidth-efficient multidimensional FFTs.
//!
//! The paper's contribution, as a library: 2D and 3D complex
//! double-precision FFTs that repurpose half the hardware threads as
//! *soft DMA engines*, streaming blocks between main memory and an
//! LLC-resident double buffer (with the inter-stage reshape folded into
//! non-temporal stores) while the other half computes batched 1D FFT
//! kernels on cached data.
//!
//! Two execution paths share every plan:
//!
//! * [`exec_real`] — actual OS threads on the host; produces correct
//!   transform values, verified against the naive MDFT oracle.
//! * [`exec_sim`] — the same schedule driven through the machine
//!   simulator of `bwfft-machine`, producing the performance figures of
//!   the paper's evaluation on the five §V machine presets.
//!
//! ```
//! use bwfft_core::{FftPlan, Dims};
//! use bwfft_kernels::Direction;
//! use bwfft_num::{signal, AlignedVec, Complex64};
//!
//! // Plan a 32×32×32 forward FFT with 2 data + 2 compute threads.
//! let plan = FftPlan::builder(Dims::d3(32, 32, 32))
//!     .buffer_elems(4096)
//!     .threads(2, 2)
//!     .build()
//!     .unwrap();
//! let mut data = AlignedVec::from_slice(&signal::impulse(32 * 32 * 32, 0));
//! let mut work = AlignedVec::<Complex64>::zeroed(data.len());
//! bwfft_core::exec_real::execute(&plan, &mut data, &mut work).unwrap();
//! // DFT of a unit impulse at 0 is all-ones.
//! assert!((data[12345].re - 1.0).abs() < 1e-9);
//! ```
//!
//! Every fallible operation returns a typed [`CoreError`]; worker
//! panics inside the pipeline are contained and surface as
//! `CoreError::Pipeline(PipelineError::WorkerPanicked { .. })` instead
//! of aborting the process. Plans built with
//! [`plan::FftPlanBuilder::adapt_to_host`] degrade gracefully (see
//! [`host`]) on machines that cannot sustain the soft-DMA pipeline.

pub mod error;
pub mod exec_real;
pub mod fft1d;
pub mod exec_sim;
pub mod host;
pub mod metrics;
pub mod plan;
pub mod profile;
pub mod real;
pub mod reference;
pub mod supervisor;

pub use error::CoreError;
pub use exec_real::{ExecConfig, ExecReport};
pub use host::{DegradationReason, ExecutorKind, HostProfile};
pub use plan::{Dims, FftPlan, FftPlanBuilder, PlanError};
pub use real::{ConvReport, RealFftPlan, RealFftPlanBuilder, SpectralConvPlan};
pub use reference::execute_reference;
pub use supervisor::{
    RecoveryAction, RecoveryEvent, RecoveryTier, RetryPolicy, SupervisedReport, Supervisor,
};
