//! Host capability detection and the graceful-degradation policy.
//!
//! The paper's pipeline assumes a machine that can dedicate half its
//! hardware threads to soft-DMA duty, pin every thread, and hold the
//! double buffer in the LLC. Hosts that fall short (CI containers,
//! 1-vCPU VMs, cgroup-restricted runners) should not crash or silently
//! thrash — planning *degrades*: the plan records a typed
//! [`DegradationReason`] and switches to the fused (no-overlap)
//! executor, which computes bit-identical results on a single thread.

use bwfft_pipeline::affinity;

/// What the degraded plan runs on instead of the pipelined executor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutorKind {
    /// The soft-DMA double-buffered pipeline (the paper's executor).
    #[default]
    Pipelined,
    /// Sequential load → compute → store per block; no role split, no
    /// double buffer. Bit-identical output, no overlap benefit.
    Fused,
}

/// Why a plan fell back to the fused executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradationReason {
    /// Fewer than two usable CPUs: a data/compute role split cannot
    /// overlap anything.
    SingleThreadedHost { cpus: usize },
    /// The plan requests pinning but affinity syscalls do not work
    /// here, so the paired-sibling placement cannot be realized.
    PinningUnavailable,
    /// The double buffer (2·b elements) does not fit the detected LLC,
    /// violating the `b = LLC/2` residency assumption (§IV).
    BufferExceedsLlc {
        buffer_bytes: usize,
        llc_bytes: usize,
    },
}

impl core::fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DegradationReason::SingleThreadedHost { cpus } => {
                write!(f, "host has {cpus} usable CPU(s); pipeline needs >= 2")
            }
            DegradationReason::PinningUnavailable => {
                write!(f, "thread pinning unavailable on this host")
            }
            DegradationReason::BufferExceedsLlc {
                buffer_bytes,
                llc_bytes,
            } => write!(
                f,
                "double buffer ({buffer_bytes} B) exceeds the LLC ({llc_bytes} B)"
            ),
        }
    }
}

/// What the degradation policy needs to know about the host. Construct
/// directly for deterministic tests, or use [`HostProfile::detect`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostProfile {
    /// Usable logical CPUs.
    pub cpus: usize,
    /// Whether affinity syscalls work (probed non-destructively).
    pub pin_works: bool,
    /// Last-level cache size in bytes, when discoverable.
    pub llc_bytes: Option<usize>,
}

impl HostProfile {
    /// Probes the current host.
    pub fn detect() -> Self {
        HostProfile {
            cpus: affinity::num_cpus_online(),
            pin_works: affinity::probe_pinning(),
            llc_bytes: detect_llc_bytes(),
        }
    }

    /// A generous profile that never degrades anything — the implicit
    /// default when no host adaptation is requested.
    pub fn unconstrained() -> Self {
        HostProfile {
            cpus: usize::MAX,
            pin_works: true,
            llc_bytes: None,
        }
    }

    /// Applies the degradation policy to a candidate plan shape.
    /// Returns every reason that applies (empty ⇒ run pipelined).
    pub fn degradations(
        &self,
        buffer_elems: usize,
        wants_pinning: bool,
    ) -> Vec<DegradationReason> {
        let mut out = Vec::new();
        if self.cpus < 2 {
            out.push(DegradationReason::SingleThreadedHost { cpus: self.cpus });
        }
        if wants_pinning && !self.pin_works {
            out.push(DegradationReason::PinningUnavailable);
        }
        if let Some(llc) = self.llc_bytes {
            let buffer_bytes = 2 * buffer_elems * core::mem::size_of::<bwfft_num::Complex64>();
            if buffer_bytes > llc {
                out.push(DegradationReason::BufferExceedsLlc {
                    buffer_bytes,
                    llc_bytes: llc,
                });
            }
        }
        out
    }
}

/// Reads the largest per-CPU cache size from sysfs (Linux); `None`
/// elsewhere or when unreadable.
fn detect_llc_bytes() -> Option<usize> {
    let mut best: Option<usize> = None;
    for idx in 0..8 {
        let dir = format!("/sys/devices/system/cpu/cpu0/cache/index{idx}");
        let Ok(size) = std::fs::read_to_string(format!("{dir}/size")) else {
            continue;
        };
        let size = size.trim();
        let bytes = if let Some(k) = size.strip_suffix('K') {
            k.parse::<usize>().ok().map(|v| v * 1024)
        } else if let Some(m) = size.strip_suffix('M') {
            m.parse::<usize>().ok().map(|v| v * 1024 * 1024)
        } else {
            size.parse::<usize>().ok()
        };
        if let Some(b) = bytes {
            best = Some(best.map_or(b, |prev| prev.max(b)));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_profile_never_degrades() {
        let h = HostProfile::unconstrained();
        assert!(h.degradations(1 << 24, true).is_empty());
    }

    #[test]
    fn single_cpu_host_degrades() {
        let h = HostProfile {
            cpus: 1,
            pin_works: true,
            llc_bytes: None,
        };
        let d = h.degradations(1024, false);
        assert_eq!(d, vec![DegradationReason::SingleThreadedHost { cpus: 1 }]);
    }

    #[test]
    fn pin_failure_degrades_only_pinned_plans() {
        let h = HostProfile {
            cpus: 8,
            pin_works: false,
            llc_bytes: None,
        };
        assert!(h.degradations(1024, false).is_empty());
        assert_eq!(
            h.degradations(1024, true),
            vec![DegradationReason::PinningUnavailable]
        );
    }

    #[test]
    fn oversized_buffer_degrades() {
        let h = HostProfile {
            cpus: 8,
            pin_works: true,
            llc_bytes: Some(1 << 20), // 1 MiB LLC
        };
        // 2 * 65536 * 16 B = 2 MiB > 1 MiB.
        let d = h.degradations(65536, false);
        assert_eq!(d.len(), 1);
        assert!(matches!(d[0], DegradationReason::BufferExceedsLlc { .. }));
        // 2 * 16384 * 16 B = 512 KiB fits.
        assert!(h.degradations(16384, false).is_empty());
    }

    #[test]
    fn reasons_accumulate() {
        let h = HostProfile {
            cpus: 1,
            pin_works: false,
            llc_bytes: Some(1024),
        };
        let d = h.degradations(1 << 20, true);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn detect_does_not_panic_and_is_plausible() {
        let h = HostProfile::detect();
        assert!(h.cpus >= 1);
        if let Some(llc) = h.llc_bytes {
            assert!(llc >= 4 * 1024, "implausible LLC size {llc}");
        }
    }

    #[test]
    fn reasons_render() {
        assert!(DegradationReason::SingleThreadedHost { cpus: 1 }
            .to_string()
            .contains("1 usable"));
        assert!(DegradationReason::PinningUnavailable
            .to_string()
            .contains("pinning"));
    }
}
