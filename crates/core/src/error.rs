//! The core crate's error taxonomy: everything that can go wrong while
//! planning or executing a transform, as values.
//!
//! `bwfft-core` sits between the pipeline executor, the machine
//! simulator and the planner, so [`CoreError`] wraps each layer's typed
//! error and adds the cross-layer conditions (argument lengths, plan ↔
//! machine mismatches) it checks itself. The `bwfft` facade flattens
//! this further into `BwfftError`.

use crate::plan::PlanError;
use bwfft_machine::EngineError;
use bwfft_num::AllocError;
use bwfft_pipeline::{IntegrityKind, PipelineError};

/// Why a core-level operation failed.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreError {
    /// Plan construction/validation failed.
    Plan(PlanError),
    /// The real executor failed (contained worker panic, watchdog
    /// timeout, or a rejected pipeline configuration).
    Pipeline(PipelineError),
    /// The discrete-event engine failed during simulation.
    Engine(EngineError),
    /// A caller-provided array has the wrong length.
    InputLength {
        what: &'static str,
        expected: usize,
        got: usize,
    },
    /// The plan wants more sockets than the simulated machine has.
    SocketMismatch { plan: usize, machine: usize },
    /// A core-level integrity guard fired (currently the opt-in
    /// whole-run Parseval/energy check; pipeline-level canary/checksum
    /// guards arrive wrapped in [`CoreError::Pipeline`] and are
    /// re-keyed to this variant by [`CoreError::integrity_kind`]'s
    /// callers where a flat view is wanted).
    Integrity {
        /// Stage the guard fired in (0 for whole-run guards).
        stage: usize,
        /// Block index at the detection point (0 for whole-run guards).
        block: usize,
        kind: IntegrityKind,
    },
    /// A buffer allocation was refused; the supervisor answers this by
    /// shrinking the plan's buffer and retrying.
    Allocation(AllocError),
}

impl CoreError {
    /// The integrity kind of this error, whether it is a core-level
    /// guard or a wrapped pipeline guard; `None` for everything else.
    pub fn integrity_kind(&self) -> Option<IntegrityKind> {
        match self {
            CoreError::Integrity { kind, .. } => Some(*kind),
            CoreError::Pipeline(PipelineError::Integrity { kind, .. }) => Some(*kind),
            _ => None,
        }
    }
}

impl From<PlanError> for CoreError {
    fn from(e: PlanError) -> Self {
        CoreError::Plan(e)
    }
}

impl From<PipelineError> for CoreError {
    fn from(e: PipelineError) -> Self {
        CoreError::Pipeline(e)
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<AllocError> for CoreError {
    fn from(e: AllocError) -> Self {
        CoreError::Allocation(e)
    }
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::Plan(e) => write!(f, "plan: {e}"),
            CoreError::Pipeline(e) => write!(f, "execution: {e}"),
            CoreError::Engine(e) => write!(f, "simulation: {e}"),
            CoreError::InputLength {
                what,
                expected,
                got,
            } => write!(f, "{what} has {got} elements, plan needs {expected}"),
            CoreError::SocketMismatch { plan, machine } => write!(
                f,
                "plan wants {plan} sockets, machine has {machine}"
            ),
            CoreError::Integrity { stage, block, kind } => write!(
                f,
                "integrity guard: {kind} at stage {stage}, block {block}"
            ),
            CoreError::Allocation(e) => write!(f, "allocation: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Plan(e) => Some(e),
            CoreError::Pipeline(e) => Some(e),
            CoreError::Engine(e) => Some(e),
            CoreError::Allocation(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_renders_each_layer() {
        let e: CoreError = PlanError::NotPow2("dim", 12).into();
        assert!(e.to_string().starts_with("plan:"));
        let e: CoreError = PipelineError::Config(
            bwfft_pipeline::ConfigError::ZeroIters,
        )
        .into();
        assert!(e.to_string().starts_with("execution:"));
        let e: CoreError = EngineError::UndeclaredBarrier { id: 1 }.into();
        assert!(e.to_string().starts_with("simulation:"));
        let e = CoreError::InputLength {
            what: "data",
            expected: 8,
            got: 4,
        };
        assert!(e.to_string().contains("data has 4"));
        let e = CoreError::SocketMismatch { plan: 2, machine: 1 };
        assert!(e.to_string().contains("2 sockets"));
        let e = CoreError::Integrity {
            stage: 0,
            block: 0,
            kind: IntegrityKind::Energy,
        };
        assert!(e.to_string().contains("Parseval"));
        let e: CoreError = AllocError {
            what: "double buffer",
            bytes: 1 << 40,
        }
        .into();
        assert!(e.to_string().starts_with("allocation:"));
    }

    #[test]
    fn integrity_kind_flattens_both_layers() {
        let core_level = CoreError::Integrity {
            stage: 0,
            block: 0,
            kind: IntegrityKind::Energy,
        };
        assert_eq!(core_level.integrity_kind(), Some(IntegrityKind::Energy));
        let wrapped: CoreError = PipelineError::Integrity {
            stage: 1,
            block: 2,
            kind: IntegrityKind::Checksum,
        }
        .into();
        assert_eq!(wrapped.integrity_kind(), Some(IntegrityKind::Checksum));
        let other = CoreError::SocketMismatch { plan: 2, machine: 1 };
        assert_eq!(other.integrity_kind(), None);
    }

    #[test]
    fn source_chains_to_the_layer_error() {
        use std::error::Error;
        let e: CoreError = PlanError::NotPow2("dim", 12).into();
        assert!(e.source().is_some());
        let e = CoreError::SocketMismatch { plan: 2, machine: 1 };
        assert!(e.source().is_none());
    }
}
