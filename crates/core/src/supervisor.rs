//! Recoverable execution: retry, backoff, buffer shrinking, and
//! executor escalation around [`exec_real`](crate::exec_real).
//!
//! The [`Supervisor`] turns a single fallible `execute_with` call into a
//! bounded recovery state machine:
//!
//! ```text
//!   attempt ──ok──────────────────────────▶ done
//!      │
//!      ├─ usage error ─────────────────────▶ fail (no retry)
//!      ├─ allocation error ─▶ halve buffer ─▶ attempt   (floor ⇒ escalate)
//!      └─ runtime error ──▶ backoff, retry ─▶ attempt   (budget ⇒ escalate)
//!
//!   escalate: pipelined → fused → reference → fail
//! ```
//!
//! Every step is recorded twice: as a [`RecoveryEvent`] in the returned
//! [`SupervisedReport`] (machine-readable) and, when a trace collector
//! is attached, as a [`MarkKind::Recovery`] mark so `--profile` output
//! shows what recovery cost. Retries restore the caller's input from a
//! snapshot taken on entry, so every attempt starts from a consistent
//! state regardless of how far the failed one got.
//!
//! Backoff is deterministic (`base · factor^(attempt-1)`, capped): given
//! the same seed/fault plan, a supervised run takes the same attempts,
//! the same escalation path, and reaches the same verdict — a property
//! the soak harness asserts.

use crate::error::CoreError;
use crate::exec_real::{execute_with, ExecConfig, ExecReport};
use crate::host::ExecutorKind;
use crate::plan::{FftPlan, PlanError};
use crate::reference::execute_reference;
use bwfft_num::{try_vec_zeroed, Complex64};
use bwfft_pipeline::{AdaptiveWatchdog, PipelineError};
use bwfft_trace::MarkKind;
use std::time::Duration;

/// The escalation ladder. Deliberately *not* [`ExecutorKind`]: tiers
/// include the reference executor, which is a recovery concept — plans
/// never dispatch to it on their own.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecoveryTier {
    /// The full soft-DMA pipelined executor.
    Pipelined,
    /// The single-threaded fused executor (no handoffs, no barriers).
    Fused,
    /// The row-column reference executor (no shared state at all).
    Reference,
}

impl RecoveryTier {
    /// The next tier down the ladder, `None` at the bottom.
    fn next(self) -> Option<RecoveryTier> {
        match self {
            RecoveryTier::Pipelined => Some(RecoveryTier::Fused),
            RecoveryTier::Fused => Some(RecoveryTier::Reference),
            RecoveryTier::Reference => None,
        }
    }
}

impl core::fmt::Display for RecoveryTier {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            RecoveryTier::Pipelined => "pipelined",
            RecoveryTier::Fused => "fused",
            RecoveryTier::Reference => "reference",
        })
    }
}

/// What the supervisor did at one recovery step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Re-run the same tier after a backoff sleep.
    Retry,
    /// Halve the plan's buffer and re-run (answer to an allocation
    /// refusal).
    ShrinkBuffer,
    /// Give up on this tier and move to the next one.
    Escalate,
}

impl core::fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            RecoveryAction::Retry => "retry",
            RecoveryAction::ShrinkBuffer => "shrink-buffer",
            RecoveryAction::Escalate => "escalate",
        })
    }
}

/// One recorded recovery step.
#[derive(Clone, Debug)]
pub struct RecoveryEvent {
    /// Tier the failed attempt ran on.
    pub tier: RecoveryTier,
    /// 1-based attempt number within that tier.
    pub attempt: usize,
    /// What the supervisor did about it.
    pub action: RecoveryAction,
    /// Rendered error that triggered the step.
    pub error: String,
    /// Backoff slept before the next attempt (zero for shrink and
    /// escalate steps, which act immediately).
    pub backoff: Duration,
}

/// Retry/backoff/escalation budget.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Attempts per tier before escalating (≥ 1).
    pub max_attempts: usize,
    /// First retry's backoff.
    pub backoff_base: Duration,
    /// Multiplier between consecutive backoffs.
    pub backoff_factor: u32,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Buffer halvings per tier before treating allocation failure as
    /// unrecoverable at that tier.
    pub max_shrinks: usize,
    /// Per-attempt watchdog installed when the caller's [`ExecConfig`]
    /// doesn't already carry one, so a stalled attempt costs a bounded
    /// slice of the retry budget instead of hanging the supervisor.
    pub watchdog: Option<AdaptiveWatchdog>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            backoff_factor: 2,
            backoff_cap: Duration::from_millis(250),
            max_shrinks: 8,
            watchdog: Some(AdaptiveWatchdog::default()),
        }
    }
}

impl RetryPolicy {
    /// Deterministic exponential backoff before attempt `attempt + 1`:
    /// `base · factor^(attempt-1)`, capped.
    pub fn backoff_for(&self, attempt: usize) -> Duration {
        let exp = attempt.saturating_sub(1).min(31) as u32;
        let factor = self.backoff_factor.max(1).saturating_pow(exp);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

/// What a supervised run reports: which tier finally produced the
/// answer, the total attempt count, the full recovery trail, and the
/// executor report when a real executor (not the reference) ran.
#[derive(Clone, Debug)]
pub struct SupervisedReport {
    /// Tier that produced the returned transform.
    pub tier: RecoveryTier,
    /// Total attempts across all tiers (1 for a clean first-try run).
    pub attempts: usize,
    /// Every recovery step taken, in order. Empty for a clean run.
    pub events: Vec<RecoveryEvent>,
    /// The executor's own report; `None` when the reference tier
    /// answered.
    pub exec: Option<ExecReport>,
}

impl SupervisedReport {
    /// True when the run needed any recovery step.
    pub fn recovered(&self) -> bool {
        !self.events.is_empty()
    }
}

/// Retry/backoff/escalation wrapper around the core executors.
#[derive(Clone, Debug, Default)]
pub struct Supervisor {
    policy: RetryPolicy,
}

impl Supervisor {
    pub fn new(policy: RetryPolicy) -> Self {
        Supervisor { policy }
    }

    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Runs the plan under supervision. On success `data` holds the
    /// transform (as with [`execute_with`]) no matter which tier
    /// produced it. On failure every tier's budget was exhausted (or
    /// the error was a usage error, returned immediately: retrying a
    /// wrong argument cannot fix it).
    pub fn run(
        &self,
        plan: &FftPlan,
        data: &mut [Complex64],
        work: &mut [Complex64],
        cfg: &ExecConfig,
    ) -> Result<SupervisedReport, CoreError> {
        // Snapshot for retry-from-consistent-state. A failed attempt
        // leaves `data`/`work` unspecified; each retry restores the
        // input first. Allocated fallibly exactly once, up front: a
        // refused snapshot is a typed Allocation error before any
        // attempt runs, and every retry reuses this one buffer, so
        // concurrent supervised callers never re-allocate (and never
        // double-count an allocation budget) on the restore path.
        let mut snapshot: Vec<Complex64> = try_vec_zeroed(data.len(), "supervisor snapshot")?;
        snapshot.copy_from_slice(data);

        let mut cfg = cfg.clone();
        if cfg.adaptive_watchdog.is_none() && cfg.iter_timeout.is_none() {
            cfg.adaptive_watchdog = self.policy.watchdog;
        }

        let mut events: Vec<RecoveryEvent> = Vec::new();
        let mut attempts_total = 0usize;
        // A plan already degraded to the fused executor starts there.
        let mut tier = if plan.executor == ExecutorKind::Fused {
            RecoveryTier::Fused
        } else {
            RecoveryTier::Pipelined
        };
        let mut tier_plan = plan.clone();
        let mut last_err: Option<CoreError> = None;

        loop {
            let mut attempt = 0usize;
            let mut shrinks = 0usize;
            let outcome = loop {
                attempt += 1;
                attempts_total += 1;
                data.copy_from_slice(&snapshot);
                let result: Result<Option<ExecReport>, CoreError> = match tier {
                    RecoveryTier::Reference => {
                        execute_reference(&tier_plan, data).map(|()| None)
                    }
                    _ => execute_with(&tier_plan, data, work, &cfg).map(Some),
                };
                match result {
                    Ok(exec) => break Ok(exec),
                    Err(e) if is_usage(&e) => return Err(e),
                    // Cancellation (deadline or drain) is a verdict,
                    // not a fault: retrying or escalating a cancelled
                    // request would keep burning its worker past the
                    // deadline. Return the typed error immediately.
                    Err(e @ CoreError::Pipeline(PipelineError::Cancelled { .. })) => {
                        return Err(e)
                    }
                    Err(e @ CoreError::Allocation(_)) => {
                        last_err = Some(e.clone());
                        if shrinks >= self.policy.max_shrinks {
                            break Err(e);
                        }
                        let old_b = tier_plan.buffer_elems;
                        match shrink_plan(&tier_plan, old_b / 2) {
                            Ok(smaller) => {
                                shrinks += 1;
                                self.record(
                                    &cfg,
                                    &mut events,
                                    RecoveryEvent {
                                        tier,
                                        attempt,
                                        action: RecoveryAction::ShrinkBuffer,
                                        error: format!(
                                            "{e}; buffer {old_b} -> {}",
                                            smaller.buffer_elems
                                        ),
                                        backoff: Duration::ZERO,
                                    },
                                );
                                tier_plan = smaller;
                            }
                            // Can't shrink further (one-pencil floor or
                            // divisibility): this tier is out of moves.
                            Err(_) => break Err(e),
                        }
                    }
                    Err(e) => {
                        last_err = Some(e.clone());
                        if attempt >= self.policy.max_attempts {
                            break Err(e);
                        }
                        let backoff = self.policy.backoff_for(attempt);
                        self.record(
                            &cfg,
                            &mut events,
                            RecoveryEvent {
                                tier,
                                attempt,
                                action: RecoveryAction::Retry,
                                error: e.to_string(),
                                backoff,
                            },
                        );
                        std::thread::sleep(backoff);
                    }
                }
            };

            match outcome {
                Ok(exec) => {
                    if let (Some(t), true) = (&cfg.trace, !events.is_empty()) {
                        t.mark(
                            MarkKind::Recovery,
                            format!(
                                "recovered at {tier} after {attempts_total} attempts"
                            ),
                            None,
                        );
                    }
                    return Ok(SupervisedReport {
                        tier,
                        attempts: attempts_total,
                        events,
                        exec,
                    });
                }
                Err(e) => match tier.next() {
                    Some(next) => {
                        self.record(
                            &cfg,
                            &mut events,
                            RecoveryEvent {
                                tier,
                                attempt,
                                action: RecoveryAction::Escalate,
                                error: format!("{e}; {tier} -> {next}"),
                                backoff: Duration::ZERO,
                            },
                        );
                        tier = next;
                        // Each tier starts from the caller's plan, not
                        // the shrunken one the failed tier ended with.
                        tier_plan = plan.clone();
                        tier_plan.executor = match tier {
                            RecoveryTier::Fused => ExecutorKind::Fused,
                            _ => tier_plan.executor,
                        };
                    }
                    None => {
                        return Err(last_err.unwrap_or(e));
                    }
                },
            }
        }
    }

    /// Records one recovery step in the event trail and, when tracing,
    /// as a [`MarkKind::Recovery`] mark (value = backoff slept, ns).
    fn record(&self, cfg: &ExecConfig, events: &mut Vec<RecoveryEvent>, ev: RecoveryEvent) {
        if let Some(t) = &cfg.trace {
            let ns = (!ev.backoff.is_zero()).then_some(ev.backoff.as_nanos() as f64);
            t.mark(
                MarkKind::Recovery,
                format!("{} {} attempt {}: {}", ev.action, ev.tier, ev.attempt, ev.error),
                ns,
            );
        }
        if let Some(reg) = &cfg.metrics {
            // Recovery is the cold path by construction, so the
            // rare-path name lookups are fine here.
            reg.add("core.recovery.events", 1);
            reg.add(&format!("core.recovery.{}", ev.action), 1);
            if !ev.backoff.is_zero() {
                reg.observe("core.recovery.backoff_ns", ev.backoff.as_nanos() as u64);
            }
        }
        events.push(ev);
    }
}

/// Usage errors cannot be fixed by retrying, shrinking, or switching
/// executors — return them to the caller untouched.
fn is_usage(e: &CoreError) -> bool {
    matches!(
        e,
        CoreError::Plan(_)
            | CoreError::InputLength { .. }
            | CoreError::SocketMismatch { .. }
            | CoreError::Engine(_)
            | CoreError::Pipeline(PipelineError::Config(_))
    )
}

/// Rebuilds the plan with a smaller buffer, revalidating every buffer
/// constraint through the builder (pow-2, pencil divisibility, socket
/// split). Pinning and executor choice carry over unchanged.
fn shrink_plan(plan: &FftPlan, new_b: usize) -> Result<FftPlan, PlanError> {
    if new_b == 0 {
        return Err(PlanError::BufferTooSmall { needed: 1, got: 0 });
    }
    let mut rebuilt = FftPlan::builder(plan.dims)
        .direction(plan.dir)
        .mu(plan.mu)
        .buffer_elems(new_b)
        .threads(plan.p_d, plan.p_c)
        .sockets(plan.sockets)
        .non_temporal(plan.non_temporal)
        .kernel(plan.kernel)
        .build()?;
    rebuilt.pin_cpus = plan.pin_cpus.clone();
    rebuilt.executor = plan.executor;
    rebuilt.degradations = plan.degradations.clone();
    Ok(rebuilt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec_real::execute;
    use crate::plan::Dims;
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::random_complex;
    use bwfft_pipeline::{FaultPlan, Role};
    use bwfft_trace::{TraceCollector, TraceEvent};
    use std::sync::Arc;

    fn small_plan() -> FftPlan {
        FftPlan::builder(Dims::d3(8, 8, 16))
            .buffer_elems(128)
            .threads(2, 2)
            .build()
            .unwrap()
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_millis(2),
            ..RetryPolicy::default()
        }
    }

    fn oracle(plan: &FftPlan, x: &[bwfft_num::Complex64]) -> Vec<bwfft_num::Complex64> {
        let mut d = x.to_vec();
        let mut w = vec![bwfft_num::Complex64::ZERO; x.len()];
        execute(plan, &mut d, &mut w).unwrap();
        d
    }

    #[test]
    fn clean_run_is_single_attempt_on_pipelined() {
        let plan = small_plan();
        let x = random_complex(plan.dims.total(), 200);
        let mut data = x.clone();
        let mut work = vec![bwfft_num::Complex64::ZERO; x.len()];
        let sup = Supervisor::new(fast_policy());
        let rep = sup
            .run(&plan, &mut data, &mut work, &ExecConfig::default())
            .unwrap();
        assert_eq!(rep.tier, RecoveryTier::Pipelined);
        assert_eq!(rep.attempts, 1);
        assert!(!rep.recovered());
        assert!(rep.exec.is_some());
        assert_fft_close(&data, &oracle(&plan, &x));
    }

    #[test]
    fn persistent_pipelined_panic_escalates_to_fused() {
        let plan = small_plan();
        let x = random_complex(plan.dims.total(), 201);
        let mut data = x.clone();
        let mut work = vec![bwfft_num::Complex64::ZERO; x.len()];
        // Deterministic injected panic in a compute thread: every
        // pipelined retry hits it again, so the supervisor must
        // escalate to the fused executor... which as every role's
        // thread 0 also hits the fault, so it lands on reference.
        let cfg = ExecConfig {
            fault: Some(FaultPlan::panic_at(Role::Compute, 0, 1)),
            ..ExecConfig::default()
        };
        let sup = Supervisor::new(fast_policy());
        let rep = sup.run(&plan, &mut data, &mut work, &cfg).unwrap();
        assert_eq!(rep.tier, RecoveryTier::Reference);
        assert!(rep.recovered());
        // Trail: retry(pipelined), escalate(pipelined→fused),
        // retry(fused), escalate(fused→reference).
        let escalations: Vec<_> = rep
            .events
            .iter()
            .filter(|e| e.action == RecoveryAction::Escalate)
            .collect();
        assert_eq!(escalations.len(), 2);
        assert_eq!(escalations[0].tier, RecoveryTier::Pipelined);
        assert_eq!(escalations[1].tier, RecoveryTier::Fused);
        assert!(rep.exec.is_none());
        assert_fft_close(&data, &oracle(&plan, &x));
    }

    #[test]
    fn data_thread_panic_recovers_on_fused() {
        let plan = small_plan();
        let x = random_complex(plan.dims.total(), 202);
        let mut data = x.clone();
        let mut work = vec![bwfft_num::Complex64::ZERO; x.len()];
        // Data thread 1 exists only in the pipelined executor (fused is
        // thread 0 of every role), so the fused tier recovers.
        let cfg = ExecConfig {
            fault: Some(FaultPlan::panic_at(Role::Data, 1, 0)),
            ..ExecConfig::default()
        };
        let sup = Supervisor::new(fast_policy());
        let rep = sup.run(&plan, &mut data, &mut work, &cfg).unwrap();
        assert_eq!(rep.tier, RecoveryTier::Fused);
        assert!(rep.exec.is_some());
        assert_fft_close(&data, &oracle(&plan, &x));
    }

    #[test]
    fn allocation_refusal_shrinks_buffer_then_succeeds() {
        let plan = small_plan(); // double buffer = 2·128·16 = 4096 bytes
        let x = random_complex(plan.dims.total(), 203);
        let mut data = x.clone();
        let mut work = vec![bwfft_num::Complex64::ZERO; x.len()];
        // Budget admits 2·32·16 = 1024 bytes: two halvings needed.
        let cfg = ExecConfig {
            fault: Some(FaultPlan::none().with_alloc_budget(1024)),
            ..ExecConfig::default()
        };
        let sup = Supervisor::new(fast_policy());
        let rep = sup.run(&plan, &mut data, &mut work, &cfg).unwrap();
        assert_eq!(rep.tier, RecoveryTier::Pipelined);
        let shrinks: Vec<_> = rep
            .events
            .iter()
            .filter(|e| e.action == RecoveryAction::ShrinkBuffer)
            .collect();
        assert_eq!(shrinks.len(), 2);
        assert_fft_close(&data, &oracle(&plan, &x));
    }

    #[test]
    fn impossible_allocation_budget_lands_on_reference() {
        let plan = small_plan();
        let x = random_complex(plan.dims.total(), 204);
        let mut data = x.clone();
        let mut work = vec![bwfft_num::Complex64::ZERO; x.len()];
        // Nothing fits: pipelined shrinks to its floor, fused's scratch
        // is also over budget, reference ignores the budget entirely.
        let cfg = ExecConfig {
            fault: Some(FaultPlan::none().with_alloc_budget(16)),
            ..ExecConfig::default()
        };
        let sup = Supervisor::new(fast_policy());
        let rep = sup.run(&plan, &mut data, &mut work, &cfg).unwrap();
        assert_eq!(rep.tier, RecoveryTier::Reference);
        assert_fft_close(&data, &oracle(&plan, &x));
    }

    #[test]
    fn usage_errors_return_immediately_without_retries() {
        let plan = small_plan();
        let mut short = vec![bwfft_num::Complex64::ZERO; 7];
        let mut work = vec![bwfft_num::Complex64::ZERO; 7];
        let sup = Supervisor::new(fast_policy());
        let err = sup
            .run(&plan, &mut short, &mut work, &ExecConfig::default())
            .unwrap_err();
        assert!(matches!(err, CoreError::InputLength { .. }));
    }

    #[test]
    fn recovery_marks_appear_in_trace() {
        let plan = small_plan();
        let x = random_complex(plan.dims.total(), 205);
        let mut data = x.clone();
        let mut work = vec![bwfft_num::Complex64::ZERO; x.len()];
        let trace = Arc::new(TraceCollector::new());
        let cfg = ExecConfig {
            fault: Some(FaultPlan::panic_at(Role::Compute, 0, 1)),
            trace: Some(trace.clone()),
            ..ExecConfig::default()
        };
        let sup = Supervisor::new(fast_policy());
        let rep = sup.run(&plan, &mut data, &mut work, &cfg).unwrap();
        assert!(rep.recovered());
        let marks: Vec<String> = trace
            .take_events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Mark(m) if m.kind == MarkKind::Recovery => Some(m.label),
                _ => None,
            })
            .collect();
        // One mark per recorded event plus the final "recovered at".
        assert_eq!(marks.len(), rep.events.len() + 1);
        assert!(marks.iter().any(|l| l.contains("escalate pipelined")));
        assert!(marks.iter().any(|l| l.contains("recovered at reference")));
    }

    #[test]
    fn supervised_run_is_deterministic_for_a_fixed_fault_plan() {
        let plan = small_plan();
        let x = random_complex(plan.dims.total(), 206);
        let cfg = ExecConfig {
            fault: Some(FaultPlan::panic_at(Role::Compute, 1, 2)),
            ..ExecConfig::default()
        };
        let sup = Supervisor::new(fast_policy());
        let mut trails = Vec::new();
        for _ in 0..2 {
            let mut data = x.clone();
            let mut work = vec![bwfft_num::Complex64::ZERO; x.len()];
            let rep = sup.run(&plan, &mut data, &mut work, &cfg).unwrap();
            trails.push((
                rep.tier,
                rep.attempts,
                rep.events
                    .iter()
                    .map(|e| (e.tier, e.attempt, e.action))
                    .collect::<Vec<_>>(),
            ));
        }
        assert_eq!(trails[0], trails[1]);
    }

    #[test]
    fn cancelled_run_returns_immediately_without_recovery() {
        use bwfft_pipeline::{CancelReason, CancelToken};
        let plan = small_plan();
        let x = random_complex(plan.dims.total(), 208);
        let mut data = x.clone();
        let mut work = vec![bwfft_num::Complex64::ZERO; x.len()];
        let token = CancelToken::new();
        token.cancel();
        let trace = Arc::new(TraceCollector::new());
        let cfg = ExecConfig {
            cancel: Some(token),
            trace: Some(trace.clone()),
            ..ExecConfig::default()
        };
        let sup = Supervisor::new(fast_policy());
        let err = sup.run(&plan, &mut data, &mut work, &cfg).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Pipeline(PipelineError::Cancelled {
                    reason: CancelReason::Shutdown,
                    ..
                })
            ),
            "expected Cancelled, got {err:?}"
        );
        // No retry, no escalation: a cancelled request must free its
        // worker, not climb the recovery ladder.
        let recovery_marks = trace
            .take_events()
            .into_iter()
            .filter(|e| matches!(e, TraceEvent::Mark(m) if m.kind == MarkKind::Recovery))
            .count();
        assert_eq!(recovery_marks, 0);
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = RetryPolicy {
            backoff_base: Duration::from_millis(3),
            backoff_factor: 2,
            backoff_cap: Duration::from_millis(10),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_for(1), Duration::from_millis(3));
        assert_eq!(p.backoff_for(2), Duration::from_millis(6));
        assert_eq!(p.backoff_for(3), Duration::from_millis(10)); // capped
        assert_eq!(p.backoff_for(40), Duration::from_millis(10));
    }

    #[test]
    fn stall_fault_with_watchdog_times_out_and_recovers() {
        let plan = small_plan();
        let x = random_complex(plan.dims.total(), 207);
        let mut data = x.clone();
        let mut work = vec![bwfft_num::Complex64::ZERO; x.len()];
        // Stall a *non-zero* thread: the fused executor runs with
        // thread-0 semantics, so the fault only bites the pipelined
        // tier. The stall is finite (the executor joins stalled
        // workers before returning) but well past the watchdog budget,
        // so each pipelined attempt ends in a StageTimeout.
        let cfg = ExecConfig {
            fault: Some(FaultPlan::stall_at(
                Role::Compute,
                1,
                1,
                Duration::from_millis(400),
            )),
            adaptive_watchdog: Some(AdaptiveWatchdog {
                multiplier: 4.0,
                min: Duration::from_millis(20),
                warmup: Duration::from_millis(100),
            }),
            ..ExecConfig::default()
        };
        let policy = RetryPolicy {
            max_attempts: 1, // a stalled attempt is expensive: escalate at once
            ..fast_policy()
        };
        let sup = Supervisor::new(policy);
        let rep = sup.run(&plan, &mut data, &mut work, &cfg).unwrap();
        assert_eq!(rep.tier, RecoveryTier::Fused);
        assert!(rep
            .events
            .iter()
            .any(|e| e.action == RecoveryAction::Escalate && e.error.contains("timed")));
        assert_fft_close(&data, &oracle(&plan, &x));
    }
}
