//! Real multithreaded execution of a plan on the host.
//!
//! Each stage runs the Table II pipeline with actual threads: data
//! threads stream blocks between the arrays and the shared buffer
//! (non-temporal stores through the stage's write matrix), compute
//! threads run batched Stockham kernels in place. Stages ping-pong
//! between the caller's `data` and `work` arrays; the final result is
//! copied back into `data` when the stage count is odd.

use crate::error::CoreError;
use crate::host::{DegradationReason, ExecutorKind};
use crate::plan::{FftPlan, StageSpec};
use bwfft_kernels::batch::BatchFft;
use bwfft_kernels::transpose::{
    load_contiguous, store_through_write_matrix, write_matrix_packets,
};
use bwfft_num::{check_alloc_budget, try_vec_zeroed, Complex64};
use bwfft_pipeline::buffer::partition;
use bwfft_pipeline::exec::{
    ComputeFn, LoadFn, PipelineCallbacks, PipelineConfig, PipelineReport, StoreFn,
    INJECTED_FAULT_PREFIX,
};
use bwfft_pipeline::{
    run_pipeline, AdaptiveWatchdog, CancelToken, DoubleBuffer, FaultPlan, IntegrityConfig,
    IntegrityKind, PinStatus, PipelineError,
};
use bwfft_spl::gather_scatter::WriteMatrix;
use bwfft_trace::{MarkKind, Phase, ThreadTracer, TraceCollector, TraceRole};
use std::sync::Arc;
use std::time::Duration;

/// Knobs for a single execution: the fault-tolerance watchdog, the
/// (test-only in spirit, but public) fault-injection plan, and the
/// optional observability collector.
#[derive(Clone, Debug, Default)]
pub struct ExecConfig {
    /// Per-iteration watchdog: if any pipeline barrier waits longer
    /// than this, the run aborts with `PipelineError::StageTimeout`
    /// instead of hanging. Superseded by
    /// [`adaptive_watchdog`](Self::adaptive_watchdog) when that is set.
    pub iter_timeout: Option<Duration>,
    /// Deterministic fault injection (worker panic, stall, denied
    /// pinning) forwarded to the pipeline executor.
    pub fault: Option<FaultPlan>,
    /// Span/mark sink for `--profile` runs. `None` (the default) keeps
    /// the executor's hot path clock-free.
    pub trace: Option<Arc<TraceCollector>>,
    /// Measured-epoch watchdog: stall detection from observed iteration
    /// times rather than an assumed `iter_timeout` constant.
    pub adaptive_watchdog: Option<AdaptiveWatchdog>,
    /// Pipeline integrity guards (buffer canaries, per-block
    /// checksums), forwarded to every stage's pipeline run. Off by
    /// default.
    pub integrity: IntegrityConfig,
    /// Opt-in whole-run Parseval check: after the transform, the output
    /// spectrum's energy must equal `N ×` the input's (both transform
    /// directions are unnormalized). A violation surfaces as
    /// [`CoreError::Integrity`] with [`IntegrityKind::Energy`].
    pub verify_energy: bool,
    /// Cooperative cancellation: forwarded to every stage's pipeline
    /// run (polled at step boundaries) and checked per block by the
    /// fused executor. A fired token surfaces as
    /// [`PipelineError::Cancelled`] wrapped in [`CoreError::Pipeline`].
    pub cancel: Option<CancelToken>,
    /// Metrics registry for recovery accounting (`core.recovery.*`).
    /// `None` (the default) keeps execution metric-free; the supervisor
    /// is the only consumer, so the per-block hot path never sees it.
    pub metrics: Option<Arc<bwfft_metrics::Registry>>,
}

/// What a successful execution reports back: which executor actually
/// ran, why (if degraded), and how thread pinning went.
#[derive(Clone, Debug, Default)]
pub struct ExecReport {
    /// The executor the run dispatched to.
    pub executor: ExecutorKind,
    /// Degradation reasons copied from the plan (empty when pipelined).
    pub degradations: Vec<DegradationReason>,
    /// Per-thread pin outcomes from the last stage (data threads first,
    /// then compute). Empty when unpinned or fused.
    pub pin_status: Vec<PinStatus>,
    /// How many of those pin requests were not honored.
    pub pin_failures: usize,
}

/// A raw shared view of the stage's destination array. Store callbacks
/// on different data threads write disjoint packet ranges; the schedule
/// and the injectivity of the write permutation make that sound.
struct SharedDst {
    ptr: *mut Complex64,
    len: usize,
}

unsafe impl Send for SharedDst {}
unsafe impl Sync for SharedDst {}

impl SharedDst {
    /// # Safety
    /// Callers must write only to element indices no other thread
    /// touches during the lifetime of the returned slice.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self) -> &mut [Complex64] {
        core::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

fn check_lengths(plan: &FftPlan, data: &[Complex64], work: &[Complex64]) -> Result<(), CoreError> {
    let total = plan.dims.total();
    if data.len() != total {
        return Err(CoreError::InputLength {
            what: "data",
            expected: total,
            got: data.len(),
        });
    }
    if work.len() != total {
        return Err(CoreError::InputLength {
            what: "work",
            expected: total,
            got: work.len(),
        });
    }
    Ok(())
}

/// Executes the plan: transforms `data` (row-major input), using `work`
/// as a same-sized workspace. On success `data` holds the transform
/// (unnormalized, like FFTW/MKL) and the report says which executor ran
/// and how pinning went. On failure (contained worker panic, watchdog
/// timeout, bad argument lengths) the typed error names the condition;
/// the arrays' contents are then unspecified but the process is intact.
pub fn execute(
    plan: &FftPlan,
    data: &mut [Complex64],
    work: &mut [Complex64],
) -> Result<ExecReport, CoreError> {
    execute_with(plan, data, work, &ExecConfig::default())
}

/// [`execute`] with explicit fault-tolerance knobs.
pub fn execute_with(
    plan: &FftPlan,
    data: &mut [Complex64],
    work: &mut [Complex64],
    cfg: &ExecConfig,
) -> Result<ExecReport, CoreError> {
    check_lengths(plan, data, work)?;

    // A profiled run records *why* it was degraded alongside the
    // timing, so the report explains itself.
    if let Some(t) = &cfg.trace {
        for d in &plan.degradations {
            t.mark(MarkKind::Degradation, d.to_string(), None);
        }
    }

    let energy_in = cfg.verify_energy.then(|| spectral_energy(data));

    // Graceful degradation: a plan built against a host profile that
    // cannot sustain the pipeline dispatches to the fused executor.
    let report = if plan.executor == ExecutorKind::Fused {
        fused_impl(plan, data, work, cfg)?
    } else {
        pipelined_impl(plan, data, work, cfg)?
    };

    if let Some(e_in) = energy_in {
        verify_parseval(plan, data, e_in)?;
    }
    Ok(report)
}

fn pipelined_impl(
    plan: &FftPlan,
    data: &mut [Complex64],
    work: &mut [Complex64],
    cfg: &ExecConfig,
) -> Result<ExecReport, CoreError> {
    let buffer = alloc_double_buffer(plan, cfg)?;
    let n_stages = plan.stages().len();
    let mut last_report = PipelineReport::default();
    for (s, stage) in plan.stages().iter().enumerate() {
        // Stages alternate data→work→data→…
        let report = if s % 2 == 0 {
            run_stage(plan, stage, s, &buffer, data, work, cfg)
        } else {
            run_stage(plan, stage, s, &buffer, work, data, cfg)
        }?;
        last_report = report;
    }
    if n_stages % 2 == 1 {
        data.copy_from_slice(work);
    }
    Ok(ExecReport {
        executor: ExecutorKind::Pipelined,
        degradations: plan.degradations.clone(),
        pin_failures: last_report.pin_failures,
        pin_status: last_report.pin_status,
    })
}

/// Allocates the shared double buffer through the fallible path,
/// honoring an injected allocation budget ([`FaultPlan::fail_alloc_over`]).
fn alloc_double_buffer(plan: &FftPlan, cfg: &ExecConfig) -> Result<DoubleBuffer, CoreError> {
    let bytes = 2 * plan.buffer_elems * core::mem::size_of::<Complex64>();
    let budget = cfg.fault.as_ref().and_then(|f| f.fail_alloc_over);
    check_alloc_budget("double buffer", bytes, budget)?;
    Ok(DoubleBuffer::try_new(plan.buffer_elems)?)
}

/// Sum of squared magnitudes. Four fixed accumulator lanes break the
/// additive dependency chain so the loop vectorizes; the lane count is
/// constant, so the (re-associated) rounding is still deterministic and
/// sits far inside `verify_parseval`'s 1e-6 relative tolerance.
fn spectral_energy(xs: &[Complex64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut chunks = xs.chunks_exact(4);
    for c in &mut chunks {
        for (lane, v) in lanes.iter_mut().zip(c) {
            *lane += v.re * v.re + v.im * v.im;
        }
    }
    let tail: f64 = chunks
        .remainder()
        .iter()
        .map(|v| v.re * v.re + v.im * v.im)
        .sum();
    lanes.iter().sum::<f64>() + tail
}

/// Parseval/energy-budget invariant: for an unnormalized length-`N`
/// transform (either direction), output energy = `N ×` input energy.
fn verify_parseval(
    plan: &FftPlan,
    out: &[Complex64],
    energy_in: f64,
) -> Result<(), CoreError> {
    let n = plan.dims.total() as f64;
    let expected = n * energy_in;
    let got = spectral_energy(out);
    // Relative tolerance well above FFT rounding (~ε·log N) but far
    // below any real corruption; absolute floor covers all-zero input.
    if (got - expected).abs() > 1e-6 * expected.abs() + 1e-12 {
        return Err(CoreError::Integrity {
            stage: 0,
            block: 0,
            kind: IntegrityKind::Energy,
        });
    }
    Ok(())
}

fn run_stage(
    plan: &FftPlan,
    stage: &StageSpec,
    stage_idx: usize,
    buffer: &DoubleBuffer,
    src: &[Complex64],
    dst: &mut [Complex64],
    cfg: &ExecConfig,
) -> Result<PipelineReport, PipelineError> {
    let b = plan.buffer_elems;
    let total = plan.dims.total();
    let sk = plan.sockets;
    let iters_per_socket = total / b / sk;
    let p_d = plan.p_d;
    let p_c = plan.p_c;
    let nt = plan.non_temporal;

    let shared = SharedDst {
        ptr: dst.as_mut_ptr(),
        len: dst.len(),
    };
    let shared_ref = &shared;

    // Blocks are issued socket-major: block index
    // `socket·iters_per_socket + i` reads the socket's local slab
    // contiguously, matching §IV-B's per-socket parallelism. The real
    // executor runs the sockets' block streams back-to-back on the
    // host's threads; the simulator runs them concurrently.
    let n_packets = write_matrix_packets(&WriteMatrix::new(stage.perm, b, 0));
    let packet_parts = partition(n_packets, p_d);

    let loaders: Vec<LoadFn> = (0..p_d)
        .map(|_| {
            Box::new(move |blk: usize, off: usize, share: &mut [Complex64]| {
                load_contiguous(src, share, blk * b + off, 0..share.len());
            }) as LoadFn
        })
        .collect();
    let storers: Vec<StoreFn> = (0..p_d)
        .map(|j| {
            let range = packet_parts[j].clone();
            let perm = stage.perm;
            Box::new(move |blk: usize, half: &[Complex64]| {
                let w = WriteMatrix::new(perm, b, blk);
                // Safety: packet ranges are disjoint across threads and
                // the write permutation is injective, so destination
                // addresses are disjoint too.
                let dst_all = unsafe { shared_ref.slice_mut() };
                store_through_write_matrix(half, dst_all, &w, range.clone(), nt);
            }) as StoreFn
        })
        .collect();
    let computes: Vec<ComputeFn> = (0..p_c)
        .map(|_| {
            let mut kernel =
                BatchFft::with_variant(stage.fft_size, stage.lanes, plan.dir, plan.kernel);
            Box::new(move |_blk: usize, _off: usize, share: &mut [Complex64]| {
                kernel.run(share);
            }) as ComputeFn
        })
        .collect();

    run_pipeline(
        buffer,
        &PipelineConfig {
            iters: iters_per_socket * sk,
            load_unit: plan.mu.min(b),
            compute_unit: stage.pencil_elems(),
            pin_cpus: plan.pin_cpus.clone(),
            iter_timeout: cfg.iter_timeout,
            fault: cfg.fault.clone(),
            stage: stage_idx,
            trace: cfg.trace.clone(),
            adaptive_watchdog: cfg.adaptive_watchdog,
            integrity: cfg.integrity,
            cancel: cfg.cancel.clone(),
        },
        PipelineCallbacks {
            loaders,
            storers,
            computes,
        },
    )
}

/// Convenience wrapper: forward transform of a 3D cube, allocating the
/// workspace internally.
pub fn fft3d_forward(
    plan: &FftPlan,
    data: &mut [Complex64],
) -> Result<ExecReport, CoreError> {
    let mut work = try_vec_zeroed::<Complex64>(data.len(), "fft3d workspace")?;
    execute(plan, data, &mut work)
}

/// Executes the plan *without* the soft-DMA pipeline: one thread per
/// block does load → compute → store sequentially (no double buffer,
/// no role split). Numerically identical to [`execute`]; this is the
/// host-side counterfactual matched by
/// [`crate::exec_sim::simulate_no_overlap`], used by the host
/// benchmarks to measure what the overlap machinery itself buys — and
/// the fallback target of the graceful-degradation policy.
pub fn execute_fused(
    plan: &FftPlan,
    data: &mut [Complex64],
    work: &mut [Complex64],
) -> Result<ExecReport, CoreError> {
    fused_impl(plan, data, work, &ExecConfig::default())
}

fn fused_impl(
    plan: &FftPlan,
    data: &mut [Complex64],
    work: &mut [Complex64],
    cfg: &ExecConfig,
) -> Result<ExecReport, CoreError> {
    check_lengths(plan, data, work)?;
    let trace = cfg.trace.as_deref();
    let fault = cfg.fault.clone().unwrap_or_default();
    let total = plan.dims.total();
    let b = plan.buffer_elems;
    let bytes = b * core::mem::size_of::<Complex64>();
    check_alloc_budget("fused scratch", bytes, fault.fail_alloc_over)?;
    let mut buf = try_vec_zeroed::<Complex64>(b, "fused scratch")?;
    let n_stages = plan.stages().len();
    for (s, stage) in plan.stages().iter().enumerate() {
        let (src, dst): (&[Complex64], &mut [Complex64]) = if s % 2 == 0 {
            (&*data, &mut *work)
        } else {
            (&*work, &mut *data)
        };
        // Fused is single-threaded: one tracer per role shows the
        // strictly serial load → compute → store cadence (overlap
        // fraction 0 by construction — the counterfactual the
        // pipelined profile is compared against).
        let mut data_tracer = ThreadTracer::new(trace, TraceRole::Data, 0, s);
        let mut compute_tracer = ThreadTracer::new(trace, TraceRole::Compute, 0, s);
        let mut kernel =
            BatchFft::with_variant(stage.fft_size, stage.lanes, plan.dir, plan.kernel);
        for blk in 0..total / b {
            // Same cancellation contract as the pipeline: polled at
            // block granularity, so a fused request under a deadline
            // frees its worker instead of finishing the whole schedule.
            if let Some(reason) = cfg.cancel.as_ref().and_then(CancelToken::fired) {
                return Err(CoreError::Pipeline(PipelineError::Cancelled {
                    iter: blk,
                    reason,
                }));
            }
            // The fused executor honors the fault plan with thread-0
            // semantics (it *is* every role's thread 0): a stall sleeps
            // in place, a panic site becomes a typed error without
            // unwinding. Corruption sites are ignored — they model
            // stray writes between pipeline handoffs, and fused has no
            // handoffs — which is also what makes fused a viable
            // escalation target under a corruption fault.
            if let Some(st) = &fault.stall {
                if st.site.thread == 0 && st.site.iter == blk {
                    if let Some(t) = trace {
                        t.mark(
                            MarkKind::FaultInjected,
                            format!("stall: fused executor at block {blk}"),
                            Some(st.duration.as_nanos() as f64),
                        );
                    }
                    std::thread::sleep(st.duration);
                }
            }
            if let Some(site) = fault.panic_at {
                if site.thread == 0 && site.iter == blk {
                    if let Some(t) = trace {
                        t.mark(
                            MarkKind::FaultInjected,
                            format!("panic: fused executor at block {blk}"),
                            None,
                        );
                    }
                    return Err(CoreError::Pipeline(PipelineError::WorkerPanicked {
                        role: site.role,
                        thread: 0,
                        iter: blk,
                        message: format!(
                            "{INJECTED_FAULT_PREFIX}: fused executor at iteration {blk}"
                        ),
                    }));
                }
            }
            let span = data_tracer.start();
            buf.copy_from_slice(&src[blk * b..(blk + 1) * b]);
            data_tracer.finish(span, Phase::Load, blk);
            let span = compute_tracer.start();
            kernel.run(&mut buf);
            compute_tracer.finish(span, Phase::Compute, blk);
            let span = data_tracer.start();
            let w = WriteMatrix::new(stage.perm, b, blk);
            let packets = write_matrix_packets(&w);
            store_through_write_matrix(&buf, dst, &w, 0..packets, plan.non_temporal);
            data_tracer.finish(span, Phase::Store, blk);
        }
    }
    if n_stages % 2 == 1 {
        data.copy_from_slice(work);
    }
    Ok(ExecReport {
        executor: ExecutorKind::Fused,
        degradations: plan.degradations.clone(),
        pin_status: Vec::new(),
        pin_failures: 0,
    })
}

/// Applies the `1/N` normalization (after an inverse transform).
pub fn normalize(data: &mut [Complex64]) {
    let s = 1.0 / data.len() as f64;
    for v in data.iter_mut() {
        *v = v.scale(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Dims;
    use bwfft_kernels::reference::{dft2_naive, dft3_naive};
    use bwfft_kernels::Direction;
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::random_complex;

    #[allow(clippy::too_many_arguments)]
    fn run_3d(
        k: usize,
        n: usize,
        m: usize,
        b: usize,
        p_d: usize,
        p_c: usize,
        sk: usize,
        x: &[Complex64],
    ) -> Vec<Complex64> {
        let plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(b)
            .threads(p_d, p_c)
            .sockets(sk)
            .build()
            .unwrap();
        let mut data = x.to_vec();
        let mut work = vec![Complex64::ZERO; x.len()];
        execute(&plan, &mut data, &mut work).unwrap();
        data
    }

    #[test]
    fn small_3d_matches_naive() {
        let (k, n, m) = (8usize, 8, 8);
        let x = random_complex(k * n * m, 70);
        let got = run_3d(k, n, m, 128, 1, 1, 1, &x);
        let expect = dft3_naive(&x, k, n, m, Direction::Forward);
        assert_fft_close(&got, &expect);
    }

    #[test]
    fn rectangular_3d_matches_naive() {
        let (k, n, m) = (4usize, 16, 8);
        let x = random_complex(k * n * m, 71);
        let got = run_3d(k, n, m, 64, 2, 2, 1, &x);
        let expect = dft3_naive(&x, k, n, m, Direction::Forward);
        assert_fft_close(&got, &expect);
    }

    #[test]
    fn radix4_kernel_variant_matches_naive() {
        // The tuner's kernel axis must be semantically transparent:
        // a radix-4 plan computes the same transform (to FFT
        // tolerance) through the full pipelined executor.
        let (k, n, m) = (8usize, 8, 8);
        let x = random_complex(k * n * m, 76);
        let plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(128)
            .threads(2, 2)
            .kernel(bwfft_kernels::KernelVariant::StockhamRadix4)
            .build()
            .unwrap();
        let mut data = x.clone();
        let mut work = vec![Complex64::ZERO; x.len()];
        execute(&plan, &mut data, &mut work).unwrap();
        let expect = dft3_naive(&x, k, n, m, Direction::Forward);
        assert_fft_close(&data, &expect);
    }

    #[test]
    fn multithreaded_matches_single_threaded() {
        let (k, n, m) = (8usize, 16, 16);
        let x = random_complex(k * n * m, 72);
        let a = run_3d(k, n, m, 256, 1, 1, 1, &x);
        let b = run_3d(k, n, m, 256, 3, 2, 1, &x);
        // Identical arithmetic order per pencil ⇒ bitwise equality.
        assert_eq!(a, b);
    }

    #[test]
    fn numa_slab_pencil_matches_single_socket() {
        let (k, n, m) = (8usize, 8, 16);
        let x = random_complex(k * n * m, 73);
        let single = run_3d(k, n, m, 128, 2, 2, 1, &x);
        let dual = run_3d(k, n, m, 128, 2, 2, 2, &x);
        assert_eq!(single, dual, "NUMA decomposition must be exact");
    }

    #[test]
    fn small_2d_matches_naive() {
        let (n, m) = (16usize, 32);
        let x = random_complex(n * m, 74);
        let plan = FftPlan::builder(Dims::d2(n, m))
            .buffer_elems(128)
            .threads(2, 2)
            .build()
            .unwrap();
        let mut data = x.clone();
        let mut work = vec![Complex64::ZERO; x.len()];
        execute(&plan, &mut data, &mut work).unwrap();
        let expect = dft2_naive(&x, n, m, Direction::Forward);
        assert_fft_close(&data, &expect);
    }

    #[test]
    fn forward_inverse_roundtrip_3d() {
        let (k, n, m) = (8usize, 8, 8);
        let x = random_complex(k * n * m, 75);
        let mut data = x.clone();
        let mut work = vec![Complex64::ZERO; x.len()];
        let fwd = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(128)
            .threads(2, 2)
            .build()
            .unwrap();
        execute(&fwd, &mut data, &mut work).unwrap();
        let inv = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(128)
            .threads(2, 2)
            .direction(Direction::Inverse)
            .build()
            .unwrap();
        execute(&inv, &mut data, &mut work).unwrap();
        normalize(&mut data);
        assert_fft_close(&data, &x);
    }

    #[test]
    fn temporal_stores_compute_the_same_values() {
        // The ablation knob changes instructions, not semantics.
        let (k, n, m) = (4usize, 8, 8);
        let x = random_complex(k * n * m, 76);
        let nt_plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(64)
            .build()
            .unwrap();
        let t_plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(64)
            .non_temporal(false)
            .build()
            .unwrap();
        let mut a = x.clone();
        let mut wa = vec![Complex64::ZERO; x.len()];
        execute(&nt_plan, &mut a, &mut wa).unwrap();
        let mut b = x.clone();
        let mut wb = vec![Complex64::ZERO; x.len()];
        execute(&t_plan, &mut b, &mut wb).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let (k, n, m) = (8usize, 8, 8);
        let mut data = bwfft_num::signal::impulse(k * n * m, 0);
        let plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(64)
            .build()
            .unwrap();
        fft3d_forward(&plan, &mut data).unwrap();
        for v in &data {
            assert!((v.re - 1.0).abs() < 1e-10 && v.im.abs() < 1e-10);
        }
    }

    #[test]
    fn tone_gives_single_3d_spike() {
        // x[z,y,x] = ω^(−2·z) tone along z → spike at (k−2? ) use SPL
        // oracle instead: separable tone along the fastest dim.
        let (k, n, m) = (4usize, 4, 16);
        let mut data = vec![Complex64::ZERO; k * n * m];
        // Tone along x with frequency 3, constant along y and z.
        for z in 0..k {
            for y in 0..n {
                for xx in 0..m {
                    data[z * n * m + y * m + xx] =
                        Complex64::root_of_unity(-(3 * xx as i64), m as u64);
                }
            }
        }
        let plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(64)
            .build()
            .unwrap();
        fft3d_forward(&plan, &mut data).unwrap();
        // Spike at (0, 0, 3) with magnitude k·n·m.
        let spike = data[3];
        assert!((spike.re - (k * n * m) as f64).abs() < 1e-8, "{spike}");
        let energy_elsewhere: f64 = data
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 3)
            .map(|(_, v)| v.abs())
            .fold(0.0, f64::max);
        assert!(energy_elsewhere < 1e-8);
    }
}

#[cfg(test)]
mod pinning_tests {
    use super::*;
    use crate::plan::Dims;
    use bwfft_num::signal::random_complex;
    use bwfft_pipeline::RoleAssignment;

    #[test]
    fn pinned_plan_matches_unpinned() {
        // A Kaby-Lake-shaped role assignment: 4 cores × 2 HT → 4 data
        // + 4 compute, siblings paired per core. On hosts with fewer
        // CPUs the pins degrade to no-ops; results are unaffected.
        let roles = RoleAssignment::paired(1, 4, 2);
        let (k, n, m) = (8usize, 8, 16);
        let x = random_complex(k * n * m, 77);
        let pinned = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(128)
            .pinned(&roles)
            .build()
            .unwrap();
        assert_eq!(pinned.p_d, 4);
        assert_eq!(pinned.p_c, 4);
        assert_eq!(pinned.pin_cpus.as_ref().unwrap().len(), 8);
        let plain = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(128)
            .threads(4, 4)
            .build()
            .unwrap();
        let mut a = x.clone();
        let mut wa = vec![Complex64::ZERO; x.len()];
        execute(&pinned, &mut a, &mut wa).unwrap();
        let mut b = x.clone();
        let mut wb = vec![Complex64::ZERO; x.len()];
        execute(&plain, &mut b, &mut wb).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pin_list_orders_data_threads_first() {
        let roles = RoleAssignment::paired(1, 2, 2);
        let plan = FftPlan::builder(Dims::d3(8, 8, 8))
            .buffer_elems(64)
            .pinned(&roles)
            .build()
            .unwrap();
        let cpus = plan.pin_cpus.as_ref().unwrap();
        // Intel pairing: HT 1 of each core is a data thread (odd ids),
        // HT 0 computes (even ids).
        assert_eq!(cpus, &vec![1usize, 3, 0, 2]);
    }
}

#[cfg(test)]
mod fused_tests {
    use super::*;
    use crate::plan::Dims;
    use bwfft_num::signal::random_complex;

    #[test]
    fn fused_executor_matches_pipelined() {
        let (k, n, m) = (8usize, 16, 16);
        let x = random_complex(k * n * m, 78);
        let plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(256)
            .threads(2, 2)
            .build()
            .unwrap();
        let mut a = x.clone();
        let mut wa = vec![Complex64::ZERO; x.len()];
        execute(&plan, &mut a, &mut wa).unwrap();
        let mut b = x.clone();
        let mut wb = vec![Complex64::ZERO; x.len()];
        execute_fused(&plan, &mut b, &mut wb).unwrap();
        assert_eq!(a, b, "fused and pipelined must agree bitwise");
    }

    #[test]
    fn fused_executor_2d() {
        let (n, m) = (16usize, 32);
        let x = random_complex(n * m, 79);
        let plan = FftPlan::builder(Dims::d2(n, m))
            .buffer_elems(128)
            .build()
            .unwrap();
        let mut a = x.clone();
        let mut wa = vec![Complex64::ZERO; x.len()];
        execute(&plan, &mut a, &mut wa).unwrap();
        let mut b = x.clone();
        let mut wb = vec![Complex64::ZERO; x.len()];
        execute_fused(&plan, &mut b, &mut wb).unwrap();
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::host::HostProfile;
    use crate::plan::Dims;
    use crate::profile;
    use bwfft_num::signal::random_complex;

    #[test]
    fn traced_pipelined_run_produces_stage_profiles() {
        let (n, m) = (32usize, 32);
        let x = random_complex(n * m, 80);
        let plan = FftPlan::builder(Dims::d2(n, m))
            .buffer_elems(128)
            .threads(2, 2)
            .build()
            .unwrap();
        let collector = Arc::new(TraceCollector::new());
        let mut data = x.clone();
        let mut work = vec![Complex64::ZERO; x.len()];
        let cfg = ExecConfig {
            trace: Some(Arc::clone(&collector)),
            ..Default::default()
        };
        let report = execute_with(&plan, &mut data, &mut work, &cfg).unwrap();
        assert_eq!(report.executor, ExecutorKind::Pipelined);

        let rep = profile::profile_report(&collector, &plan, "pipelined", Some(40.0));
        assert_eq!(rep.stages.len(), 2, "2D plan has two stages");
        for s in &rep.stages {
            assert!(s.wall_ns > 0);
            assert!(
                (0.0..=1.0).contains(&s.overlap_fraction),
                "overlap {}",
                s.overlap_fraction
            );
            assert!(s.load_busy_ns > 0, "stage {} load busy", s.stage);
            assert!(s.compute_busy_ns > 0, "stage {} compute busy", s.stage);
            assert!(s.store_busy_ns > 0, "stage {} store busy", s.stage);
            assert!(s.achieved_gbs.is_some());
            assert!(s.percent_of_achievable.is_some());
        }
        let sum: u64 = rep.stages.iter().map(|s| s.wall_ns).sum();
        assert!(
            sum <= rep.total_wall_ns,
            "stage walls {sum} must not exceed total {}",
            rep.total_wall_ns
        );
        // Tracing must not corrupt the transform.
        let mut expect = x.clone();
        let mut w2 = vec![Complex64::ZERO; x.len()];
        execute(&plan, &mut expect, &mut w2).unwrap();
        assert_eq!(data, expect);
    }

    #[test]
    fn degraded_run_records_degradation_mark_and_serial_profile() {
        // Satellite: a profiled degraded run must show *why* the
        // executor was downgraded, as a trace event.
        let (k, n, m) = (8usize, 8, 8);
        let x = random_complex(k * n * m, 81);
        let host = HostProfile { cpus: 1, pin_works: true, llc_bytes: None };
        let plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(64)
            .threads(2, 2)
            .host(host)
            .build()
            .unwrap();
        assert_eq!(plan.executor, ExecutorKind::Fused);
        let collector = Arc::new(TraceCollector::new());
        let mut data = x.clone();
        let mut work = vec![Complex64::ZERO; x.len()];
        let cfg = ExecConfig {
            trace: Some(Arc::clone(&collector)),
            ..Default::default()
        };
        execute_with(&plan, &mut data, &mut work, &cfg).unwrap();

        let rep = profile::profile_report(&collector, &plan, "fused", None);
        let degradation = rep
            .marks
            .iter()
            .find(|mk| mk.kind == MarkKind::Degradation)
            .expect("degraded run must record a Degradation mark");
        assert!(
            degradation.label.contains("usable CPU"),
            "label: {}",
            degradation.label
        );
        // Fused is strictly serial: spans exist but never overlap.
        assert_eq!(rep.stages.len(), 3);
        for s in &rep.stages {
            assert!(s.compute_busy_ns > 0);
            assert_eq!(s.overlap_fraction, 0.0, "fused must not overlap");
        }
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::host::HostProfile;
    use crate::plan::Dims;
    use bwfft_kernels::Direction;
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::random_complex;
    use bwfft_pipeline::Role;

    #[test]
    fn length_mismatch_is_typed_not_a_panic() {
        let plan = FftPlan::builder(Dims::d3(8, 8, 8))
            .buffer_elems(64)
            .build()
            .unwrap();
        let mut data = vec![Complex64::ZERO; 100];
        let mut work = vec![Complex64::ZERO; 512];
        let err = execute(&plan, &mut data, &mut work).unwrap_err();
        assert!(matches!(
            err,
            CoreError::InputLength { what: "data", expected: 512, got: 100 }
        ));
    }

    #[test]
    fn injected_panic_propagates_as_typed_core_error() {
        bwfft_pipeline::fault::silence_injected_panic_reports();
        let plan = FftPlan::builder(Dims::d3(8, 8, 8))
            .buffer_elems(64)
            .threads(1, 1)
            .build()
            .unwrap();
        let x = random_complex(512, 90);
        let mut data = x.clone();
        let mut work = vec![Complex64::ZERO; 512];
        let cfg = ExecConfig {
            iter_timeout: Some(Duration::from_secs(2)),
            fault: Some(FaultPlan::panic_at(Role::Compute, 0, 1)),
            ..Default::default()
        };
        let err = execute_with(&plan, &mut data, &mut work, &cfg).unwrap_err();
        match err {
            CoreError::Pipeline(PipelineError::WorkerPanicked { role, iter, .. }) => {
                assert_eq!(role, Role::Compute);
                assert_eq!(iter, 1);
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn single_thread_host_degrades_to_fused_with_identical_output() {
        // The acceptance criterion: a plan built for a 1-CPU host must
        // record the degradation, run fused, and still produce output
        // bit-identical to the unconstrained pipelined plan (and
        // correct vs the reference oracle via forward∘inverse).
        let (k, n, m) = (8usize, 8, 16);
        let x = random_complex(k * n * m, 91);
        let host = HostProfile { cpus: 1, pin_works: true, llc_bytes: None };
        let degraded = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(128)
            .threads(2, 2)
            .host(host)
            .build()
            .unwrap();
        assert_eq!(degraded.executor, ExecutorKind::Fused);
        assert_eq!(
            degraded.degradations,
            vec![DegradationReason::SingleThreadedHost { cpus: 1 }]
        );

        let mut a = x.clone();
        let mut wa = vec![Complex64::ZERO; x.len()];
        let report = execute(&degraded, &mut a, &mut wa).unwrap();
        assert_eq!(report.executor, ExecutorKind::Fused);
        assert_eq!(report.degradations, degraded.degradations);

        // Bit-identical to the pipelined plan on the same shape.
        let full = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(128)
            .threads(2, 2)
            .build()
            .unwrap();
        assert_eq!(full.executor, ExecutorKind::Pipelined);
        let mut b = x.clone();
        let mut wb = vec![Complex64::ZERO; x.len()];
        execute(&full, &mut b, &mut wb).unwrap();
        assert_eq!(a, b, "degraded output must be bit-identical");

        // And round-trips through the degraded inverse.
        let inv = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(128)
            .threads(2, 2)
            .direction(Direction::Inverse)
            .host(host)
            .build()
            .unwrap();
        assert_eq!(inv.executor, ExecutorKind::Fused);
        execute(&inv, &mut a, &mut wa).unwrap();
        normalize(&mut a);
        assert_fft_close(&a, &x);
    }

    #[test]
    fn unconstrained_host_stays_pipelined() {
        let plan = FftPlan::builder(Dims::d3(8, 8, 8))
            .buffer_elems(64)
            .host(HostProfile::unconstrained())
            .build()
            .unwrap();
        assert_eq!(plan.executor, ExecutorKind::Pipelined);
        assert!(plan.degradations.is_empty());
    }

    #[test]
    fn alloc_budget_fault_yields_typed_allocation_error() {
        let plan = FftPlan::builder(Dims::d3(8, 8, 8))
            .buffer_elems(64)
            .build()
            .unwrap();
        let mut data = vec![Complex64::ZERO; 512];
        let mut work = vec![Complex64::ZERO; 512];
        // The double buffer needs 2·64·16 = 2048 bytes; budget 1 KiB.
        let cfg = ExecConfig {
            fault: Some(FaultPlan::none().with_alloc_budget(1024)),
            ..Default::default()
        };
        let err = execute_with(&plan, &mut data, &mut work, &cfg).unwrap_err();
        match err {
            CoreError::Allocation(e) => {
                assert_eq!(e.what, "double buffer");
                assert_eq!(e.bytes, 2048);
            }
            other => panic!("expected Allocation, got {other:?}"),
        }
    }

    #[test]
    fn fused_scratch_respects_alloc_budget() {
        let host = HostProfile { cpus: 1, pin_works: true, llc_bytes: None };
        let plan = FftPlan::builder(Dims::d3(8, 8, 8))
            .buffer_elems(64)
            .threads(2, 2)
            .host(host)
            .build()
            .unwrap();
        assert_eq!(plan.executor, ExecutorKind::Fused);
        let mut data = vec![Complex64::ZERO; 512];
        let mut work = vec![Complex64::ZERO; 512];
        let cfg = ExecConfig {
            fault: Some(FaultPlan::none().with_alloc_budget(512)),
            ..Default::default()
        };
        let err = execute_with(&plan, &mut data, &mut work, &cfg).unwrap_err();
        assert!(
            matches!(err, CoreError::Allocation(_)),
            "expected Allocation, got {err:?}"
        );
    }

    #[test]
    fn integrity_guards_and_energy_check_pass_on_clean_runs() {
        let (k, n, m) = (8usize, 8, 8);
        let x = random_complex(k * n * m, 92);
        let plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(128)
            .threads(2, 2)
            .build()
            .unwrap();
        let mut data = x.clone();
        let mut work = vec![Complex64::ZERO; x.len()];
        let cfg = ExecConfig {
            integrity: IntegrityConfig::full(),
            verify_energy: true,
            ..Default::default()
        };
        execute_with(&plan, &mut data, &mut work, &cfg).unwrap();
        // Guards must not perturb the numbers.
        let mut expect = x.clone();
        let mut w2 = vec![Complex64::ZERO; x.len()];
        execute(&plan, &mut expect, &mut w2).unwrap();
        assert_eq!(data, expect);
    }

    #[test]
    fn corruption_is_detected_by_checksum_guard_end_to_end() {
        use bwfft_pipeline::FaultPhase;
        let plan = FftPlan::builder(Dims::d3(8, 8, 8))
            .buffer_elems(64)
            .threads(1, 1)
            .build()
            .unwrap();
        let x = random_complex(512, 93);
        let mut data = x.clone();
        let mut work = vec![Complex64::ZERO; 512];
        let cfg = ExecConfig {
            integrity: IntegrityConfig::full(),
            iter_timeout: Some(Duration::from_secs(5)),
            fault: Some(FaultPlan::corrupt_at(
                bwfft_pipeline::Role::Data,
                0,
                1,
                FaultPhase::Load,
            )),
            ..Default::default()
        };
        let err = execute_with(&plan, &mut data, &mut work, &cfg).unwrap_err();
        assert_eq!(err.integrity_kind(), Some(IntegrityKind::Checksum));
    }

    #[test]
    fn corruption_with_guards_off_fails_energy_check() {
        use bwfft_pipeline::FaultPhase;
        let plan = FftPlan::builder(Dims::d3(8, 8, 8))
            .buffer_elems(64)
            .threads(1, 1)
            .build()
            .unwrap();
        let x = random_complex(512, 94);
        let mut data = x.clone();
        let mut work = vec![Complex64::ZERO; 512];
        let cfg = ExecConfig {
            verify_energy: true,
            fault: Some(FaultPlan::corrupt_at(
                bwfft_pipeline::Role::Data,
                0,
                1,
                FaultPhase::Load,
            )),
            ..Default::default()
        };
        let err = execute_with(&plan, &mut data, &mut work, &cfg).unwrap_err();
        assert_eq!(err.integrity_kind(), Some(IntegrityKind::Energy));
    }

    #[test]
    fn fused_honors_panic_fault_as_typed_error() {
        let host = HostProfile { cpus: 1, pin_works: true, llc_bytes: None };
        let plan = FftPlan::builder(Dims::d3(8, 8, 8))
            .buffer_elems(64)
            .threads(2, 2)
            .host(host)
            .build()
            .unwrap();
        assert_eq!(plan.executor, ExecutorKind::Fused);
        let mut data = vec![Complex64::ZERO; 512];
        let mut work = vec![Complex64::ZERO; 512];
        let cfg = ExecConfig {
            fault: Some(FaultPlan::panic_at(Role::Compute, 0, 1)),
            ..Default::default()
        };
        let err = execute_with(&plan, &mut data, &mut work, &cfg).unwrap_err();
        match err {
            CoreError::Pipeline(PipelineError::WorkerPanicked { iter, message, .. }) => {
                assert_eq!(iter, 1);
                assert!(message.contains("fused"), "message: {message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_token_aborts_both_executors_with_typed_error() {
        use bwfft_pipeline::{CancelReason, CancelToken};
        // Pipelined path.
        let plan = FftPlan::builder(Dims::d3(8, 8, 8))
            .buffer_elems(64)
            .threads(2, 2)
            .build()
            .unwrap();
        let token = CancelToken::new();
        token.cancel();
        let cfg = ExecConfig {
            cancel: Some(token),
            ..Default::default()
        };
        let mut data = vec![Complex64::ZERO; 512];
        let mut work = vec![Complex64::ZERO; 512];
        let err = execute_with(&plan, &mut data, &mut work, &cfg).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Pipeline(PipelineError::Cancelled {
                    reason: CancelReason::Shutdown,
                    ..
                })
            ),
            "pipelined: expected Cancelled, got {err:?}"
        );
        // Fused path: an already-expired deadline cancels at block 0.
        let token = CancelToken::with_deadline(std::time::Instant::now());
        let cfg = ExecConfig {
            cancel: Some(token),
            ..Default::default()
        };
        let err = execute_fused_cfg(&plan, &mut data, &mut work, &cfg).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Pipeline(PipelineError::Cancelled {
                    iter: 0,
                    reason: CancelReason::Deadline,
                })
            ),
            "fused: expected Cancelled, got {err:?}"
        );
    }

    /// Test-only shim: fused executor with an explicit config.
    fn execute_fused_cfg(
        plan: &FftPlan,
        data: &mut [Complex64],
        work: &mut [Complex64],
        cfg: &ExecConfig,
    ) -> Result<ExecReport, CoreError> {
        fused_impl(plan, data, work, cfg)
    }
}
