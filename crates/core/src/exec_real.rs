//! Real multithreaded execution of a plan on the host.
//!
//! Each stage runs the Table II pipeline with actual threads: data
//! threads stream blocks between the arrays and the shared buffer
//! (non-temporal stores through the stage's write matrix), compute
//! threads run batched Stockham kernels in place. Stages ping-pong
//! between the caller's `data` and `work` arrays; the final result is
//! copied back into `data` when the stage count is odd.

use crate::plan::{FftPlan, StageSpec};
use bwfft_kernels::batch::BatchFft;
use bwfft_kernels::transpose::{
    load_contiguous, store_through_write_matrix, write_matrix_packets,
};
use bwfft_num::Complex64;
use bwfft_pipeline::buffer::partition;
use bwfft_pipeline::exec::{ComputeFn, LoadFn, PipelineCallbacks, PipelineConfig, StoreFn};
use bwfft_pipeline::{run_pipeline, DoubleBuffer};
use bwfft_spl::gather_scatter::WriteMatrix;

/// A raw shared view of the stage's destination array. Store callbacks
/// on different data threads write disjoint packet ranges; the schedule
/// and the injectivity of the write permutation make that sound.
struct SharedDst {
    ptr: *mut Complex64,
    len: usize,
}

unsafe impl Send for SharedDst {}
unsafe impl Sync for SharedDst {}

impl SharedDst {
    /// # Safety
    /// Callers must write only to element indices no other thread
    /// touches during the lifetime of the returned slice.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self) -> &mut [Complex64] {
        core::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

/// Executes the plan: transforms `data` (row-major input), using `work`
/// as a same-sized workspace. On return `data` holds the transform
/// (unnormalized, like FFTW/MKL).
pub fn execute(plan: &FftPlan, data: &mut [Complex64], work: &mut [Complex64]) {
    let total = plan.dims.total();
    assert_eq!(data.len(), total, "data length mismatch");
    assert_eq!(work.len(), total, "work length mismatch");

    let buffer = DoubleBuffer::new(plan.buffer_elems);
    let n_stages = plan.stages().len();
    for (s, stage) in plan.stages().iter().enumerate() {
        // Stages alternate data→work→data→…
        if s % 2 == 0 {
            run_stage(plan, stage, &buffer, data, work);
        } else {
            run_stage(plan, stage, &buffer, work, data);
        }
    }
    if n_stages % 2 == 1 {
        data.copy_from_slice(work);
    }
}

fn run_stage(
    plan: &FftPlan,
    stage: &StageSpec,
    buffer: &DoubleBuffer,
    src: &[Complex64],
    dst: &mut [Complex64],
) {
    let b = plan.buffer_elems;
    let total = plan.dims.total();
    let sk = plan.sockets;
    let iters_per_socket = total / b / sk;
    let p_d = plan.p_d;
    let p_c = plan.p_c;
    let nt = plan.non_temporal;

    let shared = SharedDst {
        ptr: dst.as_mut_ptr(),
        len: dst.len(),
    };
    let shared_ref = &shared;

    // Blocks are issued socket-major: block index
    // `socket·iters_per_socket + i` reads the socket's local slab
    // contiguously, matching §IV-B's per-socket parallelism. The real
    // executor runs the sockets' block streams back-to-back on the
    // host's threads; the simulator runs them concurrently.
    let n_packets = write_matrix_packets(&WriteMatrix::new(stage.perm, b, 0));
    let packet_parts = partition(n_packets, p_d);

    let loaders: Vec<LoadFn> = (0..p_d)
        .map(|_| {
            Box::new(move |blk: usize, off: usize, share: &mut [Complex64]| {
                load_contiguous(src, share, blk * b + off, 0..share.len());
            }) as LoadFn
        })
        .collect();
    let storers: Vec<StoreFn> = (0..p_d)
        .map(|j| {
            let range = packet_parts[j].clone();
            let perm = stage.perm;
            Box::new(move |blk: usize, half: &[Complex64]| {
                let w = WriteMatrix::new(perm, b, blk);
                // Safety: packet ranges are disjoint across threads and
                // the write permutation is injective, so destination
                // addresses are disjoint too.
                let dst_all = unsafe { shared_ref.slice_mut() };
                store_through_write_matrix(half, dst_all, &w, range.clone(), nt);
            }) as StoreFn
        })
        .collect();
    let computes: Vec<ComputeFn> = (0..p_c)
        .map(|_| {
            let mut kernel = BatchFft::new(stage.fft_size, stage.lanes, plan.dir);
            Box::new(move |_blk: usize, _off: usize, share: &mut [Complex64]| {
                kernel.run(share);
            }) as ComputeFn
        })
        .collect();

    run_pipeline(
        buffer,
        &PipelineConfig {
            iters: iters_per_socket * sk,
            load_unit: plan.mu.min(b),
            compute_unit: stage.pencil_elems(),
            pin_cpus: plan.pin_cpus.clone(),
        },
        PipelineCallbacks {
            loaders,
            storers,
            computes,
        },
    );
}

/// Convenience wrapper: forward transform of a 3D cube, allocating the
/// workspace internally.
pub fn fft3d_forward(
    plan: &FftPlan,
    data: &mut [Complex64],
) {
    let mut work = vec![Complex64::ZERO; data.len()];
    execute(plan, data, &mut work);
}

/// Executes the plan *without* the soft-DMA pipeline: one thread per
/// block does load → compute → store sequentially (no double buffer,
/// no role split). Numerically identical to [`execute`]; this is the
/// host-side counterfactual matched by
/// [`crate::exec_sim::simulate_no_overlap`], used by the host
/// benchmarks to measure what the overlap machinery itself buys.
pub fn execute_fused(plan: &FftPlan, data: &mut [Complex64], work: &mut [Complex64]) {
    let total = plan.dims.total();
    assert_eq!(data.len(), total);
    assert_eq!(work.len(), total);
    let b = plan.buffer_elems;
    let mut buf = vec![Complex64::ZERO; b];
    let n_stages = plan.stages().len();
    for (s, stage) in plan.stages().iter().enumerate() {
        let (src, dst): (&[Complex64], &mut [Complex64]) = if s % 2 == 0 {
            (&*data, &mut *work)
        } else {
            (&*work, &mut *data)
        };
        let mut kernel = BatchFft::new(stage.fft_size, stage.lanes, plan.dir);
        for blk in 0..total / b {
            buf.copy_from_slice(&src[blk * b..(blk + 1) * b]);
            kernel.run(&mut buf);
            let w = WriteMatrix::new(stage.perm, b, blk);
            let packets = write_matrix_packets(&w);
            store_through_write_matrix(&buf, dst, &w, 0..packets, plan.non_temporal);
        }
    }
    if n_stages % 2 == 1 {
        data.copy_from_slice(work);
    }
}

/// Applies the `1/N` normalization (after an inverse transform).
pub fn normalize(data: &mut [Complex64]) {
    let s = 1.0 / data.len() as f64;
    for v in data.iter_mut() {
        *v = v.scale(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Dims;
    use bwfft_kernels::reference::{dft2_naive, dft3_naive};
    use bwfft_kernels::Direction;
    use bwfft_num::compare::assert_fft_close;
    use bwfft_num::signal::random_complex;

    fn run_3d(
        k: usize,
        n: usize,
        m: usize,
        b: usize,
        p_d: usize,
        p_c: usize,
        sk: usize,
        x: &[Complex64],
    ) -> Vec<Complex64> {
        let plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(b)
            .threads(p_d, p_c)
            .sockets(sk)
            .build()
            .unwrap();
        let mut data = x.to_vec();
        let mut work = vec![Complex64::ZERO; x.len()];
        execute(&plan, &mut data, &mut work);
        data
    }

    #[test]
    fn small_3d_matches_naive() {
        let (k, n, m) = (8usize, 8, 8);
        let x = random_complex(k * n * m, 70);
        let got = run_3d(k, n, m, 128, 1, 1, 1, &x);
        let expect = dft3_naive(&x, k, n, m, Direction::Forward);
        assert_fft_close(&got, &expect);
    }

    #[test]
    fn rectangular_3d_matches_naive() {
        let (k, n, m) = (4usize, 16, 8);
        let x = random_complex(k * n * m, 71);
        let got = run_3d(k, n, m, 64, 2, 2, 1, &x);
        let expect = dft3_naive(&x, k, n, m, Direction::Forward);
        assert_fft_close(&got, &expect);
    }

    #[test]
    fn multithreaded_matches_single_threaded() {
        let (k, n, m) = (8usize, 16, 16);
        let x = random_complex(k * n * m, 72);
        let a = run_3d(k, n, m, 256, 1, 1, 1, &x);
        let b = run_3d(k, n, m, 256, 3, 2, 1, &x);
        // Identical arithmetic order per pencil ⇒ bitwise equality.
        assert_eq!(a, b);
    }

    #[test]
    fn numa_slab_pencil_matches_single_socket() {
        let (k, n, m) = (8usize, 8, 16);
        let x = random_complex(k * n * m, 73);
        let single = run_3d(k, n, m, 128, 2, 2, 1, &x);
        let dual = run_3d(k, n, m, 128, 2, 2, 2, &x);
        assert_eq!(single, dual, "NUMA decomposition must be exact");
    }

    #[test]
    fn small_2d_matches_naive() {
        let (n, m) = (16usize, 32);
        let x = random_complex(n * m, 74);
        let plan = FftPlan::builder(Dims::d2(n, m))
            .buffer_elems(128)
            .threads(2, 2)
            .build()
            .unwrap();
        let mut data = x.clone();
        let mut work = vec![Complex64::ZERO; x.len()];
        execute(&plan, &mut data, &mut work);
        let expect = dft2_naive(&x, n, m, Direction::Forward);
        assert_fft_close(&data, &expect);
    }

    #[test]
    fn forward_inverse_roundtrip_3d() {
        let (k, n, m) = (8usize, 8, 8);
        let x = random_complex(k * n * m, 75);
        let mut data = x.clone();
        let mut work = vec![Complex64::ZERO; x.len()];
        let fwd = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(128)
            .threads(2, 2)
            .build()
            .unwrap();
        execute(&fwd, &mut data, &mut work);
        let inv = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(128)
            .threads(2, 2)
            .direction(Direction::Inverse)
            .build()
            .unwrap();
        execute(&inv, &mut data, &mut work);
        normalize(&mut data);
        assert_fft_close(&data, &x);
    }

    #[test]
    fn temporal_stores_compute_the_same_values() {
        // The ablation knob changes instructions, not semantics.
        let (k, n, m) = (4usize, 8, 8);
        let x = random_complex(k * n * m, 76);
        let nt_plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(64)
            .build()
            .unwrap();
        let t_plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(64)
            .non_temporal(false)
            .build()
            .unwrap();
        let mut a = x.clone();
        let mut wa = vec![Complex64::ZERO; x.len()];
        execute(&nt_plan, &mut a, &mut wa);
        let mut b = x.clone();
        let mut wb = vec![Complex64::ZERO; x.len()];
        execute(&t_plan, &mut b, &mut wb);
        assert_eq!(a, b);
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let (k, n, m) = (8usize, 8, 8);
        let mut data = bwfft_num::signal::impulse(k * n * m, 0);
        let plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(64)
            .build()
            .unwrap();
        fft3d_forward(&plan, &mut data);
        for v in &data {
            assert!((v.re - 1.0).abs() < 1e-10 && v.im.abs() < 1e-10);
        }
    }

    #[test]
    fn tone_gives_single_3d_spike() {
        // x[z,y,x] = ω^(−2·z) tone along z → spike at (k−2? ) use SPL
        // oracle instead: separable tone along the fastest dim.
        let (k, n, m) = (4usize, 4, 16);
        let mut data = vec![Complex64::ZERO; k * n * m];
        // Tone along x with frequency 3, constant along y and z.
        for z in 0..k {
            for y in 0..n {
                for xx in 0..m {
                    data[z * n * m + y * m + xx] =
                        Complex64::root_of_unity(-(3 * xx as i64), m as u64);
                }
            }
        }
        let plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(64)
            .build()
            .unwrap();
        fft3d_forward(&plan, &mut data);
        // Spike at (0, 0, 3) with magnitude k·n·m.
        let spike = data[3];
        assert!((spike.re - (k * n * m) as f64).abs() < 1e-8, "{spike}");
        let energy_elsewhere: f64 = data
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 3)
            .map(|(_, v)| v.abs())
            .fold(0.0, f64::max);
        assert!(energy_elsewhere < 1e-8);
    }
}

#[cfg(test)]
mod pinning_tests {
    use super::*;
    use crate::plan::Dims;
    use bwfft_num::signal::random_complex;
    use bwfft_pipeline::RoleAssignment;

    #[test]
    fn pinned_plan_matches_unpinned() {
        // A Kaby-Lake-shaped role assignment: 4 cores × 2 HT → 4 data
        // + 4 compute, siblings paired per core. On hosts with fewer
        // CPUs the pins degrade to no-ops; results are unaffected.
        let roles = RoleAssignment::paired(1, 4, 2);
        let (k, n, m) = (8usize, 8, 16);
        let x = random_complex(k * n * m, 77);
        let pinned = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(128)
            .pinned(&roles)
            .build()
            .unwrap();
        assert_eq!(pinned.p_d, 4);
        assert_eq!(pinned.p_c, 4);
        assert_eq!(pinned.pin_cpus.as_ref().unwrap().len(), 8);
        let plain = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(128)
            .threads(4, 4)
            .build()
            .unwrap();
        let mut a = x.clone();
        let mut wa = vec![Complex64::ZERO; x.len()];
        execute(&pinned, &mut a, &mut wa);
        let mut b = x.clone();
        let mut wb = vec![Complex64::ZERO; x.len()];
        execute(&plain, &mut b, &mut wb);
        assert_eq!(a, b);
    }

    #[test]
    fn pin_list_orders_data_threads_first() {
        let roles = RoleAssignment::paired(1, 2, 2);
        let plan = FftPlan::builder(Dims::d3(8, 8, 8))
            .buffer_elems(64)
            .pinned(&roles)
            .build()
            .unwrap();
        let cpus = plan.pin_cpus.as_ref().unwrap();
        // Intel pairing: HT 1 of each core is a data thread (odd ids),
        // HT 0 computes (even ids).
        assert_eq!(cpus, &vec![1usize, 3, 0, 2]);
    }
}

#[cfg(test)]
mod fused_tests {
    use super::*;
    use crate::plan::Dims;
    use bwfft_num::signal::random_complex;

    #[test]
    fn fused_executor_matches_pipelined() {
        let (k, n, m) = (8usize, 16, 16);
        let x = random_complex(k * n * m, 78);
        let plan = FftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(256)
            .threads(2, 2)
            .build()
            .unwrap();
        let mut a = x.clone();
        let mut wa = vec![Complex64::ZERO; x.len()];
        execute(&plan, &mut a, &mut wa);
        let mut b = x.clone();
        let mut wb = vec![Complex64::ZERO; x.len()];
        execute_fused(&plan, &mut b, &mut wb);
        assert_eq!(a, b, "fused and pipelined must agree bitwise");
    }

    #[test]
    fn fused_executor_2d() {
        let (n, m) = (16usize, 32);
        let x = random_complex(n * m, 79);
        let plan = FftPlan::builder(Dims::d2(n, m))
            .buffer_elems(128)
            .build()
            .unwrap();
        let mut a = x.clone();
        let mut wa = vec![Complex64::ZERO; x.len()];
        execute(&plan, &mut a, &mut wa);
        let mut b = x.clone();
        let mut wb = vec![Complex64::ZERO; x.len()];
        execute_fused(&plan, &mut b, &mut wb);
        assert_eq!(a, b);
    }
}
