//! Plan-aware glue for the observability layer: builds the
//! [`RunMeta`] a [`bwfft_trace::aggregate`] pass needs (per-stage I/O
//! volumes, the machine's achievable bandwidth) from an [`FftPlan`],
//! and renders a collector into a [`TraceReport`] in one call.
//!
//! Lives in `bwfft-core` rather than `bwfft-trace` because only the
//! planner knows how many bytes each stage moves; the trace crate is
//! deliberately ignorant of FFTs.

use crate::metrics::{self, COMPLEX64_BYTES};
use crate::plan::FftPlan;
use bwfft_trace::{aggregate, RunMeta, StageIo, TraceCollector, TraceReport};

/// Build aggregation metadata for a plan.
///
/// Every out-of-cache stage streams the whole array once in and once
/// out (`2·N·16` bytes), and contributes `5·N·log2(fft_size)` of the
/// `5·N·log2(N)` pseudo-flop convention (stage sizes multiply to `N`
/// along each axis factorization).
pub fn run_meta(plan: &FftPlan, executor: &str, stream_gbs: Option<f64>) -> RunMeta {
    let total = plan.dims.total();
    let stage_bytes = (2.0 * total as f64 * COMPLEX64_BYTES) as u64;
    let stage_io = plan
        .stages()
        .iter()
        .enumerate()
        .map(|(s, stage)| StageIo {
            stage: s,
            bytes_moved: stage_bytes,
            pseudo_flops: 5.0 * total as f64 * (stage.fft_size as f64).log2(),
        })
        .collect();
    RunMeta {
        label: plan.dims.label(),
        executor: executor.to_string(),
        stream_gbs,
        stage_io,
    }
}

/// Drain a collector and aggregate its events against the plan's
/// metadata. `stream_gbs` (the machine's STREAM bandwidth, GB/s)
/// enables the %-of-achievable roofline column; pass `None` when the
/// host's bandwidth is unknown.
pub fn profile_report(
    collector: &TraceCollector,
    plan: &FftPlan,
    executor: &str,
    stream_gbs: Option<f64>,
) -> TraceReport {
    let events = collector.take_events();
    aggregate(&events, &run_meta(plan, executor, stream_gbs))
}

/// The achievable-peak Gflop/s bound for this plan at the given STREAM
/// bandwidth — the roofline the profile compares against (§V).
pub fn achievable_peak_gflops(plan: &FftPlan, stream_gbs: f64) -> f64 {
    metrics::achievable_peak_gflops_for(
        plan.dims.total(),
        plan.dims.stages(),
        stream_gbs,
        COMPLEX64_BYTES,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Dims;

    fn plan_2d() -> FftPlan {
        FftPlan::builder(Dims::d2(16, 32))
            .buffer_elems(128)
            .threads(2, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn run_meta_covers_every_stage() {
        let plan = plan_2d();
        let meta = run_meta(&plan, "pipelined", Some(40.0));
        assert_eq!(meta.stage_io.len(), plan.stages().len());
        assert_eq!(meta.executor, "pipelined");
        assert_eq!(meta.stream_gbs, Some(40.0));
        let total = plan.dims.total();
        for io in &meta.stage_io {
            assert_eq!(io.bytes_moved, (total * 32) as u64);
            assert!(io.pseudo_flops > 0.0);
        }
        // Stage pseudo-flops sum to the 5·N·log2(N) convention.
        let sum: f64 = meta.stage_io.iter().map(|io| io.pseudo_flops).sum();
        assert!((sum - metrics::pseudo_flops(total)).abs() < 1e-6);
    }

    #[test]
    fn achievable_peak_matches_metrics() {
        let plan = plan_2d();
        let direct = metrics::achievable_peak_gflops(plan.dims.total(), 2, 40.0);
        assert_eq!(achievable_peak_gflops(&plan, 40.0), direct);
    }

    #[test]
    fn profile_report_drains_collector() {
        let plan = plan_2d();
        let collector = TraceCollector::new();
        collector.mark(bwfft_trace::MarkKind::TunerTrial, "t", Some(1.0));
        let rep = profile_report(&collector, &plan, "pipelined", None);
        assert_eq!(rep.label, plan.dims.label());
        assert_eq!(rep.marks.len(), 1);
        assert!(collector.is_empty());
    }
}
