//! Simulated execution of a plan on a machine preset.
//!
//! Builds the same Table II schedule the real executor runs, but as
//! thread programs for the discrete-event engine: data threads stream
//! block bytes against their socket's DRAM channel (and the QPI/HT
//! link for the cross-socket writes of stages 2–3), compute threads
//! burn pencil flops on their cores, and the two barriers per step
//! synchronize everything. Per-block costs come from the pattern-tier
//! analysis of the stage's actual burst list.
//!
//! Long runs are simulated with a truncated iteration count and linear
//! extrapolation of the steady state (the schedule is periodic), which
//! keeps 2048³ tractable; `max_sim_iters` controls the cutoff.

use crate::error::CoreError;
use crate::metrics;
use crate::plan::{FftPlan, StageSpec};
use bwfft_machine::patterns::{streaming_cost, write_block_cost, TrafficCost};
use bwfft_machine::spec::MachineSpec;
use bwfft_machine::stats::PerfReport;
use bwfft_machine::{Engine, ThreadProg};
use bwfft_pipeline::{FaultPlan, Role};
use bwfft_spl::dataflow::write_bursts;
use bwfft_spl::gather_scatter::{StagePerm, WriteMatrix};
use bwfft_trace::{Phase, SpanEvent, TraceCollector, TraceEvent, TraceRole};
use std::sync::Arc;

/// Simulation options (the ablation knobs of `ablation_design`).
#[derive(Clone, Debug)]
pub struct SimOptions {
    /// Non-temporal memory movement (paper default: true).
    pub non_temporal: bool,
    /// Data threads interleave NOPs so their compute sibling keeps its
    /// issue slots (§IV-A; paper default: true).
    pub nop_mitigation: bool,
    /// Cost of one barrier round, ns.
    pub sync_ns: f64,
    /// Steady-state iterations to simulate exactly before
    /// extrapolating.
    pub max_sim_iters: usize,
    /// Fault injection: the simulator honours `dram_derate` /
    /// `link_derate` (bandwidth loss, e.g. a failing DIMM or congested
    /// QPI link) and `stall` (a hiccuping thread's delay appears in the
    /// simulated schedule).
    pub fault: Option<FaultPlan>,
    /// Span sink: when set, [`simulate`] synthesizes *modeled* spans
    /// from each stage's cost breakdown (transfer-busy, compute-busy
    /// with a one-block pipeline-fill lead), so `--profile` renders
    /// simulated runs through the same aggregation as real ones.
    pub trace: Option<Arc<TraceCollector>>,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            non_temporal: true,
            nop_mitigation: true,
            sync_ns: 300.0,
            max_sim_iters: 128,
            fault: None,
            trace: None,
        }
    }
}

/// Per-stage cost breakdown (diagnostics for the ablation harnesses).
#[derive(Clone, Debug)]
pub struct StageCost {
    pub stage: usize,
    pub time_ns: f64,
    pub dram_bytes: f64,
    pub link_bytes: f64,
}

/// Full simulation result.
#[derive(Clone, Debug)]
pub struct SimResult {
    pub report: PerfReport,
    pub stages: Vec<StageCost>,
}

/// Simulates the plan with the soft-DMA pipeline *disabled*: every
/// thread loads, computes and stores its own share sequentially, with
/// no dedicated data threads and no double buffering. This is the
/// "what if we did not overlap" counterfactual for the paper's central
/// claim — same non-temporal traffic, same reshape, no pipelining.
pub fn simulate_no_overlap(
    plan: &FftPlan,
    spec: &MachineSpec,
    opts: &SimOptions,
) -> Result<SimResult, CoreError> {
    check_sockets(plan, spec)?;
    let total = plan.dims.total();
    let sk = plan.sockets;
    let p = plan.p_d + plan.p_c; // all threads work
    let p_s = p / sk;
    let b = plan.buffer_elems;
    let mut stage_costs = Vec::new();
    let mut total_ns = 0.0;
    let mut dram_total = 0.0;
    for (s, stage) in plan.stages().iter().enumerate() {
        let w0 = WriteMatrix::new(stage.perm, b, 0);
        let bursts = write_bursts(&w0, opts.non_temporal);
        let store = write_block_cost(&bursts, spec, 16, opts.non_temporal);
        let load = streaming_cost((b * 16) as f64);
        let flops = 5.0 * b as f64 * (stage.fft_size.max(2) as f64).log2();
        let iters = total / b / sk;

        let mut engine = Engine::new();
        let mut dram = Vec::new();
        for sock in 0..sk {
            dram.push(engine.add_resource(format!("dram{sock}"), spec.dram_bytes_per_ns()));
        }
        apply_deratings(&mut engine, &dram, &[], opts)?;
        let mut cores = Vec::new();
        for sock in 0..sk {
            for c in 0..p_s {
                // No data sibling: full kernel rate per core (each
                // thread has its own core in this mode).
                cores.push(engine.add_resource(
                    format!("core{sock}.{c}"),
                    spec.fft_flops_per_core_ns(),
                ));
            }
        }
        let mut progs = Vec::new();
        for sock in 0..sk {
            for c in 0..p_s {
                let mut prog = ThreadProg::new();
                for _ in 0..iters {
                    let cap = spec.per_thread_stream_gbs;
                    prog.use_capped(dram[sock], load.dram_bytes / p_s as f64, cap);
                    prog.use_res(cores[sock * p_s + c], flops / p_s as f64);
                    prog.use_capped(dram[sock], store.dram_bytes / p_s as f64, cap);
                    prog.delay(store.extra_ns / p_s as f64);
                }
                progs.push(prog);
            }
        }
        let stats = engine.try_run(progs)?;
        total_ns += stats.total_ns;
        let stage_dram = (iters * sk) as f64 * (load.dram_bytes + store.dram_bytes);
        dram_total += stage_dram;
        stage_costs.push(StageCost {
            stage: s,
            time_ns: stats.total_ns,
            dram_bytes: stage_dram,
            link_bytes: 0.0,
        });
    }
    let report = PerfReport {
        machine: spec.name.to_string(),
        problem: format!("{} [no overlap]", plan.dims.label()),
        time_ns: total_ns,
        pseudo_flops: plan.pseudo_flops(),
        dram_bytes: dram_total,
        link_bytes: 0.0,
        achievable_peak_gflops: metrics::achievable_peak_gflops(
            total,
            plan.dims.stages(),
            spec.total_dram_bw_gbs() * sk as f64 / spec.sockets as f64,
        ),
    };
    Ok(SimResult {
        report,
        stages: stage_costs,
    })
}

fn check_sockets(plan: &FftPlan, spec: &MachineSpec) -> Result<(), CoreError> {
    if plan.sockets > spec.sockets {
        return Err(CoreError::SocketMismatch {
            plan: plan.sockets,
            machine: spec.sockets,
        });
    }
    Ok(())
}

/// Applies the fault plan's bandwidth deratings to the engine's DRAM
/// and link resources (a failing DIMM, a congested interconnect).
fn apply_deratings(
    engine: &mut Engine,
    dram: &[bwfft_machine::ResourceId],
    link: &[bwfft_machine::ResourceId],
    opts: &SimOptions,
) -> Result<(), CoreError> {
    let Some(fault) = &opts.fault else {
        return Ok(());
    };
    if let Some(factor) = fault.dram_derate {
        for &r in dram {
            engine.derate_resource(r, factor)?;
        }
    }
    if let Some(factor) = fault.link_derate {
        for &r in link {
            engine.derate_resource(r, factor)?;
        }
    }
    Ok(())
}

/// Simulates the plan on `spec` and returns the paper-style report.
pub fn simulate(
    plan: &FftPlan,
    spec: &MachineSpec,
    opts: &SimOptions,
) -> Result<SimResult, CoreError> {
    check_sockets(plan, spec)?;
    let total = plan.dims.total();
    let mut stage_costs = Vec::new();
    let mut total_ns = 0.0;
    let mut dram_total = 0.0;
    let mut link_total = 0.0;
    for (s, stage) in plan.stages().iter().enumerate() {
        let c = simulate_stage(plan, spec, opts, s, stage)?;
        if let Some(t) = &opts.trace {
            synthesize_stage_spans(t, plan, spec, opts, stage, &c, total_ns);
        }
        total_ns += c.time_ns;
        dram_total += c.dram_bytes;
        link_total += c.link_bytes;
        stage_costs.push(c);
    }
    let bw = spec.total_dram_bw_gbs() * plan.sockets as f64 / spec.sockets as f64;
    let report = PerfReport {
        machine: spec.name.to_string(),
        problem: plan.dims.label(),
        time_ns: total_ns,
        pseudo_flops: plan.pseudo_flops(),
        dram_bytes: dram_total,
        link_bytes: link_total,
        achievable_peak_gflops: metrics::achievable_peak_gflops(total, plan.dims.stages(), bw),
    };
    Ok(SimResult {
        report,
        stages: stage_costs,
    })
}

/// Emits *modeled* spans for one simulated stage so the trace
/// aggregation (and `--profile`) treats simulated runs uniformly with
/// real ones.
///
/// The model: transfer keeps the DRAM channels busy for
/// `dram_bytes / BW` within the stage window, split into a load and a
/// store interval in byte proportion; compute is busy for
/// `flops / (rate · p_c)` starting one pipeline-fill block
/// (`wall / (iters+1)`) after the stage opens. Everything is clipped to
/// the stage window, so aggregate invariants (stage wall, overlap in
/// `[0,1]`) hold by construction.
fn synthesize_stage_spans(
    collector: &TraceCollector,
    plan: &FftPlan,
    spec: &MachineSpec,
    opts: &SimOptions,
    stage: &StageSpec,
    cost: &StageCost,
    offset_ns: f64,
) {
    let wall = cost.time_ns.max(0.0);
    if wall <= 0.0 {
        return;
    }
    let start = offset_ns;
    let end = offset_ns + wall;
    let clip = |t: f64| -> u64 { t.clamp(start, end).max(0.0) as u64 };
    let span = |role, phase, s: f64, e: f64| {
        TraceEvent::Span(SpanEvent {
            role,
            thread: 0,
            stage: cost.stage,
            block: 0,
            phase,
            start_ns: clip(s),
            end_ns: clip(e),
        })
    };

    // Transfer-busy window: serialized DRAM time, load before store in
    // byte proportion (loads and stores are symmetric per block: b in,
    // b out, modulo the non-temporal inflation already in dram_bytes).
    let t_io = (cost.dram_bytes / spec.dram_bytes_per_ns()).min(wall);
    let t_load = t_io * 0.5;

    // Compute-busy window, offset by one pipeline-fill block.
    let ht = if opts.nop_mitigation {
        spec.ht_contention_mitigated
    } else {
        spec.ht_contention_raw
    };
    let flops = 5.0 * plan.dims.total() as f64 * (stage.fft_size.max(2) as f64).log2();
    let rate = spec.fft_flops_per_core_ns() * ht * plan.p_c as f64;
    let t_compute = if rate > 0.0 { (flops / rate).min(wall) } else { 0.0 };
    let iters = plan.iters_per_socket().max(1);
    let lead = wall / (iters + 1) as f64;

    collector.absorb(vec![
        span(TraceRole::Data, Phase::Load, start, start + t_load),
        span(TraceRole::Data, Phase::Store, start + t_load, start + t_io),
        span(
            TraceRole::Compute,
            Phase::Compute,
            start + lead,
            start + lead + t_compute,
        ),
    ]);
}

/// Splits a stage's write traffic into the local-socket and
/// remote-socket parts by classifying burst destinations (exact for
/// block 0, representative for all blocks of the stage).
fn remote_write_fraction(perm: &StagePerm, b: usize, total: usize, sockets: usize) -> f64 {
    if sockets <= 1 {
        return 0.0;
    }
    let per_socket = total / sockets;
    let w = WriteMatrix::new(*perm, b, 0);
    let src_socket = 0; // block 0 belongs to socket 0
    let mut remote = 0usize;
    let mut all = 0usize;
    for burst in write_bursts(&w, true) {
        let dst_socket = burst.start / per_socket;
        all += burst.len;
        if dst_socket != src_socket {
            remote += burst.len;
        }
    }
    remote as f64 / all as f64
}

/// A stage described independently of [`FftPlan`] — the entry point
/// for transforms (like the four-step 1D FFT) that assemble custom
/// stage chains.
#[derive(Clone, Debug)]
pub struct GenericStage {
    pub perm: StagePerm,
    /// Block size `b` (elements).
    pub b: usize,
    /// Blocks per socket.
    pub iters_per_socket: usize,
    pub sockets: usize,
    /// Total array elements (for cross-socket classification).
    pub total: usize,
    /// Data / compute threads (whole machine).
    pub p_d: usize,
    pub p_c: usize,
    /// Compute flops per block.
    pub flops_per_block: f64,
}

fn simulate_stage(
    plan: &FftPlan,
    spec: &MachineSpec,
    opts: &SimOptions,
    stage_idx: usize,
    stage: &StageSpec,
) -> Result<StageCost, CoreError> {
    let g = GenericStage {
        perm: stage.perm,
        b: plan.buffer_elems,
        iters_per_socket: plan.iters_per_socket(),
        sockets: plan.sockets,
        total: plan.dims.total(),
        p_d: plan.p_d,
        p_c: plan.p_c,
        // b/(m·lanes) pencils, 5·m·log2(m)·lanes flops each.
        flops_per_block: 5.0
            * plan.buffer_elems as f64
            * (stage.fft_size.max(2) as f64).log2(),
    };
    simulate_generic_stage(&g, spec, opts, stage_idx)
}

/// Simulates one pipeline stage described by [`GenericStage`].
pub fn simulate_generic_stage(
    g: &GenericStage,
    spec: &MachineSpec,
    opts: &SimOptions,
    stage_idx: usize,
) -> Result<StageCost, CoreError> {
    let b = g.b;
    let sk = g.sockets;
    let iters = g.iters_per_socket;
    let elem_bytes = 16usize;

    // Per-block costs from the exact burst pattern of block 0.
    let w0 = WriteMatrix::new(g.perm, b, 0);
    let bursts = write_bursts(&w0, opts.non_temporal);
    let store: TrafficCost = write_block_cost(&bursts, spec, elem_bytes, opts.non_temporal);
    let load: TrafficCost = streaming_cost((b * elem_bytes) as f64);
    let remote_frac = remote_write_fraction(&g.perm, b, g.total, sk);
    // The link carries write payload (16 B/elem), not the DRAM-side
    // inflation.
    let link_bytes_per_block = (b * elem_bytes) as f64 * remote_frac;

    let flops_per_block = g.flops_per_block;

    // Compute rate per core; a compute thread paired with a data
    // sibling loses issue slots (§IV-A).
    let ht_factor = if opts.nop_mitigation {
        spec.ht_contention_mitigated
    } else {
        spec.ht_contention_raw
    };
    let core_rate = spec.fft_flops_per_core_ns() * ht_factor;

    let p_d_s = g.p_d / sk;
    let p_c_s = g.p_c / sk;

    // Simulate `sim_iters` and extrapolate the steady state if needed.
    let cfg = EngineCfg {
        sk,
        p_d_s,
        p_c_s,
        load_bytes: load.dram_bytes,
        store_dram_local: store.dram_bytes * (1.0 - remote_frac),
        store_dram_remote: store.dram_bytes * remote_frac,
        link_bytes: link_bytes_per_block,
        walk_ns: store.extra_ns,
        flops_per_block,
        core_rate,
    };
    let sim_iters = iters.min(opts.max_sim_iters);
    let t_full = run_engine(spec, opts, &cfg, sim_iters)?;
    let time_ns = if sim_iters == iters {
        t_full
    } else {
        // Marginal steady-state cost from a second, shorter run.
        let half = (sim_iters / 2).max(1);
        let t_half = run_engine(spec, opts, &cfg, half)?;
        let per_iter = (t_full - t_half) / (sim_iters - half) as f64;
        t_full + per_iter * (iters - sim_iters) as f64
    };

    let blocks_total = (iters * sk) as f64;
    Ok(StageCost {
        stage: stage_idx,
        time_ns,
        dram_bytes: blocks_total * (load.dram_bytes + store.dram_bytes),
        link_bytes: blocks_total * link_bytes_per_block,
    })
}

/// Per-block engine parameters of one stage.
struct EngineCfg {
    sk: usize,
    p_d_s: usize,
    p_c_s: usize,
    /// Streamed read bytes per block.
    load_bytes: f64,
    /// Store bytes landing in the local socket's DRAM.
    store_dram_local: f64,
    /// Store bytes landing in a remote socket's DRAM (arrive there
    /// asynchronously; modeled by per-socket sink jobs).
    store_dram_remote: f64,
    /// Payload bytes crossing the outgoing link per block.
    link_bytes: f64,
    /// Serialized page-walk latency per block.
    walk_ns: f64,
    flops_per_block: f64,
    core_rate: f64,
}

fn run_engine(
    spec: &MachineSpec,
    opts: &SimOptions,
    cfg: &EngineCfg,
    iters: usize,
) -> Result<f64, CoreError> {
    let (sk, p_d_s, p_c_s) = (cfg.sk, cfg.p_d_s, cfg.p_c_s);
    let has_remote = cfg.store_dram_remote > 0.0;
    let mut engine = Engine::new();
    let mut dram = Vec::new();
    let mut link = Vec::new();
    for s in 0..sk {
        dram.push(engine.add_resource(format!("dram{s}"), spec.dram_bytes_per_ns()));
        if sk > 1 {
            link.push(engine.add_resource(format!("link{s}"), spec.link_bw_gbs));
        }
    }
    apply_deratings(&mut engine, &dram, &link, opts)?;
    // Injected stalls appear in the simulated schedule as extra delay
    // at the faulty thread's matching step.
    let stall_of = |role: Role, global_thread: usize, blk: Option<usize>| -> f64 {
        let Some(fault) = &opts.fault else { return 0.0 };
        let Some(stall) = &fault.stall else { return 0.0 };
        let site = stall.site;
        if site.role == role && site.thread == global_thread && blk == Some(site.iter) {
            stall.duration.as_secs_f64() * 1e9
        } else {
            0.0
        }
    };
    let mut cores = Vec::new();
    for s in 0..sk {
        for c in 0..p_c_s {
            cores.push(engine.add_resource(format!("core{s}.{c}"), cfg.core_rate));
        }
    }
    // Barrier 0: global; barrier 1+s: per-socket data barrier.
    let sinks = if has_remote { sk } else { 0 };
    let p_total = sk * (p_d_s + p_c_s) + sinks;
    engine.set_barrier(0, p_total);
    for s in 0..sk {
        engine.set_barrier(1 + s, p_d_s);
    }

    let schedule = bwfft_pipeline::Schedule::new(iters);
    let mut progs = Vec::new();
    for s in 0..sk {
        // Data threads: store (local DRAM + outgoing link), data
        // barrier, then streamed load.
        let load_share = cfg.load_bytes / p_d_s as f64;
        let store_local_share = cfg.store_dram_local / p_d_s as f64;
        let link_share = cfg.link_bytes / p_d_s as f64;
        let walk_share = cfg.walk_ns / p_d_s as f64;
        // A single thread's streaming rate is line-fill-buffer bound;
        // this is the mechanism that makes p_d ≈ p/2 necessary.
        let stream_cap = spec.per_thread_stream_gbs;
        for j in 0..p_d_s {
            let mut p = ThreadProg::new();
            for step in schedule.steps() {
                if step.store.is_some() {
                    p.use_capped(dram[s], store_local_share, stream_cap);
                    if has_remote {
                        p.use_res(link[s], link_share);
                    }
                    p.delay(walk_share);
                }
                p.barrier(1 + s);
                if step.load.is_some() {
                    p.use_capped(dram[s], load_share, stream_cap);
                    p.delay(stall_of(Role::Data, s * p_d_s + j, step.load));
                }
                p.delay(opts.sync_ns);
                p.barrier(0);
            }
            progs.push(p);
        }
        // Compute threads.
        let flop_share = cfg.flops_per_block / p_c_s as f64;
        for c in 0..p_c_s {
            let mut p = ThreadProg::new();
            for step in schedule.steps() {
                if step.compute.is_some() {
                    p.use_res(cores[s * p_c_s + c], flop_share);
                    p.delay(stall_of(Role::Compute, s * p_c_s + c, step.compute));
                }
                p.delay(opts.sync_ns);
                p.barrier(0);
            }
            progs.push(p);
        }
        // Sink: the writes *arriving* at this socket from the others
        // consume its DRAM bandwidth concurrently with everything else
        // (symmetric traffic ⇒ incoming == outgoing volume).
        if has_remote {
            let mut p = ThreadProg::new();
            for step in schedule.steps() {
                if step.store.is_some() {
                    p.use_res(dram[s], cfg.store_dram_remote);
                }
                p.barrier(0);
            }
            progs.push(p);
        }
    }
    Ok(engine.try_run(progs)?.total_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Dims, FftPlan};
    use bwfft_machine::presets;

    fn kbl_plan(lg: usize) -> FftPlan {
        let spec = presets::kaby_lake_7700k();
        FftPlan::builder(Dims::d3(1 << lg, 1 << lg, 1 << lg))
            .buffer_elems(spec.default_buffer_elems())
            .threads(4, 4)
            .build()
            .unwrap()
    }

    #[test]
    fn kaby_lake_512_hits_the_paper_band() {
        // Fig. 1: the double-buffered 3D FFT reaches 80–90% of the
        // STREAM-bound achievable peak on the 7700K.
        let spec = presets::kaby_lake_7700k();
        let r = simulate(&kbl_plan(9), &spec, &SimOptions::default()).unwrap();
        let pct = r.report.percent_of_peak();
        assert!(
            (75.0..=97.0).contains(&pct),
            "expected ~80-90% of peak, got {pct:.1}% ({})",
            r.report
        );
    }

    #[test]
    fn traffic_is_minimal_with_nt_stores() {
        // NT movement ⇒ DRAM traffic ≈ the 2·N·stages·16 ideal.
        let spec = presets::kaby_lake_7700k();
        let plan = kbl_plan(9);
        let r = simulate(&plan, &spec, &SimOptions::default()).unwrap();
        let ideal = metrics::ideal_traffic_bytes(plan.dims.total(), 3);
        let ratio = r.report.dram_bytes / ideal;
        assert!((0.99..1.2).contains(&ratio), "traffic ratio {ratio}");
    }

    #[test]
    fn temporal_stores_cost_bandwidth() {
        let spec = presets::kaby_lake_7700k();
        let plan = kbl_plan(9);
        let nt = simulate(&plan, &spec, &SimOptions::default()).unwrap();
        let tmp = simulate(
            &plan,
            &spec,
            &SimOptions {
                non_temporal: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            tmp.report.time_ns > 1.2 * nt.report.time_ns,
            "temporal {} vs nt {}",
            tmp.report.time_ns,
            nt.report.time_ns
        );
    }

    #[test]
    fn extrapolated_matches_exact_for_medium_runs() {
        let spec = presets::kaby_lake_7700k();
        let plan = FftPlan::builder(Dims::d3(256, 256, 256))
            .buffer_elems(1 << 18)
            .threads(4, 4)
            .build()
            .unwrap();
        // iters = 64 — both settings exact vs truncated-to-32.
        let exact = simulate(&plan, &spec, &SimOptions::default()).unwrap();
        let truncated = simulate(
            &plan,
            &spec,
            &SimOptions {
                max_sim_iters: 32,
                ..Default::default()
            },
        )
        .unwrap();
        let rel =
            (exact.report.time_ns - truncated.report.time_ns).abs() / exact.report.time_ns;
        assert!(rel < 0.02, "extrapolation error {rel}");
    }

    #[test]
    fn dual_socket_is_faster_but_sublinear() {
        // Fig. 11 bottom-left: ~1.7× from the second socket on Intel
        // (QPI writes limit scaling).
        let spec = presets::haswell_2667v3_2s();
        let b = spec.default_buffer_elems();
        let mk = |sk: usize| {
            FftPlan::builder(Dims::d3(512, 512, 512))
                .buffer_elems(b)
                .threads(4 * sk, 4 * sk)
                .sockets(sk)
                .build()
                .unwrap()
        };
        let one = simulate(&mk(1), &spec, &SimOptions::default()).unwrap();
        let two = simulate(&mk(2), &spec, &SimOptions::default()).unwrap();
        let speedup = one.report.time_ns / two.report.time_ns;
        assert!(
            (1.2..2.0).contains(&speedup),
            "socket speedup {speedup:.2} (1s {} ns, 2s {} ns)",
            one.report.time_ns,
            two.report.time_ns
        );
        assert!(two.report.link_bytes > 0.0);
        assert_eq!(one.report.link_bytes, 0.0);
    }

    #[test]
    fn amd_interconnect_scales_better_relatively() {
        // Fig. 11 bottom-right: HT bandwidth ≈ memory bandwidth ⇒ the
        // link penalty is relatively smaller on AMD.
        let intel = presets::haswell_2667v3_2s();
        let amd = presets::amd_opteron_6276_2s();
        let run = |spec: &bwfft_machine::MachineSpec, sk: usize| {
            let plan = FftPlan::builder(Dims::d3(512, 512, 512))
                .buffer_elems(1 << 18)
                .threads(4 * sk, 4 * sk)
                .sockets(sk)
                .build()
                .unwrap();
            simulate(&plan, spec, &SimOptions::default()).unwrap().report.time_ns
        };
        let intel_speedup = run(&intel, 1) / run(&intel, 2);
        let amd_speedup = run(&amd, 1) / run(&amd, 2);
        // AMD link/DRAM ratio (9/10) > Intel (16/42.5): scaling closer
        // to linear.
        assert!(
            amd_speedup > intel_speedup,
            "amd {amd_speedup:.2} vs intel {intel_speedup:.2}"
        );
    }

    #[test]
    fn stage_costs_sum_to_report() {
        let spec = presets::kaby_lake_7700k();
        let r = simulate(&kbl_plan(8), &spec, &SimOptions::default()).unwrap();
        let sum: f64 = r.stages.iter().map(|s| s.time_ns).sum();
        assert!((sum - r.report.time_ns).abs() < 1e-6);
        assert_eq!(r.stages.len(), 3);
    }

    #[test]
    fn traced_simulation_synthesizes_modeled_spans() {
        let spec = presets::kaby_lake_7700k();
        let collector = Arc::new(TraceCollector::new());
        let plan = kbl_plan(8);
        let r = simulate(
            &plan,
            &spec,
            &SimOptions {
                trace: Some(Arc::clone(&collector)),
                ..Default::default()
            },
        )
        .unwrap();
        let events = collector.take_events();
        // 3 stages × (load + store + compute).
        assert_eq!(events.len(), 9);
        let meta =
            crate::profile::run_meta(&plan, "simulated", Some(spec.total_dram_bw_gbs()));
        let rep = bwfft_trace::aggregate(&events, &meta);
        assert_eq!(rep.stages.len(), 3);
        for s in &rep.stages {
            assert!(
                (0.0..=1.0).contains(&s.overlap_fraction),
                "overlap {}",
                s.overlap_fraction
            );
            assert!(s.wall_ns > 0);
            assert!(s.achieved_gbs.unwrap() > 0.0);
        }
        // The whole point of soft-DMA: the model predicts substantial
        // compute/transfer overlap on the Kaby Lake preset.
        let overall = rep.overall_overlap_fraction().unwrap();
        assert!(overall > 0.5, "modeled overlap {overall}");
        // Modeled span extent stays within the simulated wall.
        assert!(rep.total_wall_ns as f64 <= r.report.time_ns * 1.001);
    }
}

#[cfg(test)]
mod no_overlap_tests {
    use super::*;
    use crate::plan::{Dims, FftPlan};
    use bwfft_machine::presets;

    #[test]
    fn overlap_beats_no_overlap() {
        // The paper's central claim, as a counterfactual: identical
        // traffic and kernels, with and without the soft-DMA pipeline.
        let spec = presets::kaby_lake_7700k();
        let plan = FftPlan::builder(Dims::d3(512, 512, 512))
            .buffer_elems(spec.default_buffer_elems())
            .threads(4, 4)
            .build()
            .unwrap();
        let with = simulate(&plan, &spec, &SimOptions::default()).unwrap().report;
        let without = simulate_no_overlap(&plan, &spec, &SimOptions::default())
            .unwrap()
            .report;
        let speedup = without.time_ns / with.time_ns;
        assert!(
            speedup > 1.1,
            "overlap should win: {:.2}x ({} vs {})",
            speedup,
            with,
            without
        );
        // Same traffic either way.
        let rel = (with.dram_bytes - without.dram_bytes).abs() / with.dram_bytes;
        assert!(rel < 1e-9);
    }
}

#[cfg(test)]
mod fault_sim_tests {
    use super::*;
    use crate::plan::{Dims, FftPlan};
    use bwfft_machine::presets;

    fn small_plan() -> FftPlan {
        FftPlan::builder(Dims::d3(64, 64, 64))
            .buffer_elems(1 << 14)
            .threads(4, 4)
            .build()
            .unwrap()
    }

    #[test]
    fn socket_mismatch_is_typed() {
        let spec = presets::kaby_lake_7700k(); // 1 socket
        let plan = FftPlan::builder(Dims::d3(64, 64, 64))
            .buffer_elems(1 << 14)
            .threads(4, 4)
            .sockets(2)
            .build()
            .unwrap();
        let err = simulate(&plan, &spec, &SimOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            CoreError::SocketMismatch { plan: 2, machine: 1 }
        ));
        let err = simulate_no_overlap(&plan, &spec, &SimOptions::default()).unwrap_err();
        assert!(matches!(err, CoreError::SocketMismatch { .. }));
    }

    #[test]
    fn dram_derating_slows_the_simulated_run() {
        let spec = presets::kaby_lake_7700k();
        let plan = small_plan();
        let healthy = simulate(&plan, &spec, &SimOptions::default()).unwrap();
        let derated = simulate(
            &plan,
            &spec,
            &SimOptions {
                fault: Some(FaultPlan {
                    dram_derate: Some(0.5),
                    ..FaultPlan::default()
                }),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            derated.report.time_ns > 1.3 * healthy.report.time_ns,
            "half DRAM bandwidth should slow a bandwidth-bound FFT: {} vs {}",
            derated.report.time_ns,
            healthy.report.time_ns
        );
    }

    #[test]
    fn invalid_derate_is_typed() {
        let spec = presets::kaby_lake_7700k();
        let plan = small_plan();
        let err = simulate(
            &plan,
            &spec,
            &SimOptions {
                fault: Some(FaultPlan {
                    dram_derate: Some(0.0),
                    ..FaultPlan::default()
                }),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Engine(bwfft_machine::EngineError::InvalidDerate { .. })
        ));
    }

    #[test]
    fn injected_stall_lengthens_the_schedule() {
        let spec = presets::kaby_lake_7700k();
        let plan = small_plan();
        let healthy = simulate(&plan, &spec, &SimOptions::default()).unwrap();
        let stalled = simulate(
            &plan,
            &spec,
            &SimOptions {
                fault: Some(FaultPlan::stall_at(
                    Role::Compute,
                    0,
                    1,
                    core::time::Duration::from_millis(1),
                )),
                ..Default::default()
            },
        )
        .unwrap();
        // 1 ms per stage dwarfs the µs-scale baseline: the stall must
        // show up in every stage's critical path (lockstep barriers).
        let extra = stalled.report.time_ns - healthy.report.time_ns;
        assert!(
            extra > 2.9e6,
            "stall should add ~3 ms across 3 stages, added {extra} ns"
        );
    }
}
