//! Real-input multidimensional transforms (r2c / c2r), DESIGN.md §13.
//!
//! A real row-major array whose innermost dimension is `m` is re-read
//! as a complex array with innermost dimension `m/2` — the
//! conjugate-even packing *is* the first stage's layout change
//! (`bwfft_kernels::layout::fold_real`), so it costs nothing extra.
//! The heavy transform is then an ordinary half-width *complex*
//! [`FftPlan`] running unchanged through every execution path this
//! crate has: the pipelined soft-DMA executor, the fused fallback, the
//! reference tier, the [`Supervisor`] recovery ladder, fault injection
//! and the integrity guards. A final `O(N)` split-merge pass
//! ([`bwfft_kernels::realfft`]) converts between the half-width complex
//! spectrum and the conjugate-even *packed* spectrum of shape
//! `rows × (m/2 + 1)` — rows mirrored per leading dimension
//! ([`mirror_row`]).
//!
//! The payoff is the bandwidth story of the source paper: every
//! memory-bound stage moves half the bytes of the complex path, and the
//! packed spectrum stores `n/2+1` complex bins per row instead of `n`.
//!
//! [`SpectralConvPlan`] builds the workload users actually call FFTs
//! for on top: a planned circular convolution against a fixed real
//! kernel whose pointwise multiply is fused into the spectrum
//! merge/store stream ([`bwfft_kernels::realfft::fused_multiply_merge`])
//! so the product spectrum is never materialized.

use crate::error::CoreError;
use crate::exec_real::{self, ExecConfig, ExecReport};
use crate::exec_sim::{self, SimOptions, SimResult, StageCost};
use crate::plan::{Dims, FftPlan, PlanError};
use crate::reference::execute_reference;
use crate::supervisor::{RecoveryTier, SupervisedReport, Supervisor};
use bwfft_kernels::layout::{fold_real, unfold_real};
use bwfft_kernels::realfft::{
    fused_multiply_merge, half_twiddles, merge_split_inverse, packed_spectrum_energy,
    split_merge_forward,
};
use bwfft_kernels::{Direction, KernelVariant};
use bwfft_machine::spec::MachineSpec;
use bwfft_num::{try_vec_zeroed, Complex64};
use bwfft_pipeline::IntegrityKind;

/// Row mirror of the packed spectrum: negates every *leading* (row)
/// frequency index, `(−s_i) mod d_i` per dimension. Together with the
/// in-row column mirror this realizes the Hermitian symmetry
/// `Y[−s][−k] = conj(Y[s][k])` of a real input's spectrum.
pub fn mirror_row(dims: Dims, s: usize) -> usize {
    match dims {
        Dims::Two { n, .. } => (n - s % n) % n,
        Dims::Three { k, n, .. } => {
            let a = s / n;
            let b = s % n;
            ((k - a % k) % k) * n + (n - b) % n
        }
    }
}

/// A validated real-transform plan: a matched pair of half-width
/// complex plans (forward for r2c, inverse for c2r) plus the
/// split-merge twiddle table. Like every transform in the workspace
/// the inverse is unnormalized: `c2r(r2c(x)) = N·x` for `N` real
/// elements (see [`normalize`]).
#[derive(Clone, Debug)]
pub struct RealFftPlan {
    /// Real-space dimensions (innermost dimension in *real* elements).
    dims: Dims,
    fwd: FftPlan,
    inv: FftPlan,
    tw: Vec<Complex64>,
}

/// Builder for [`RealFftPlan`]; mirrors the knobs of
/// [`FftPlan::builder`] that make sense for the real path.
#[derive(Clone, Debug)]
pub struct RealFftPlanBuilder {
    dims: Dims,
    buffer_elems: usize,
    p_d: usize,
    p_c: usize,
    sockets: usize,
    kernel: KernelVariant,
    adapt_to_host: bool,
}

impl RealFftPlanBuilder {
    /// Buffer half size for the *inner half-width complex* transform,
    /// in complex elements. 0 keeps the inner builder's default.
    pub fn buffer_elems(mut self, b: usize) -> Self {
        self.buffer_elems = b;
        self
    }

    pub fn threads(mut self, p_d: usize, p_c: usize) -> Self {
        self.p_d = p_d;
        self.p_c = p_c;
        self
    }

    pub fn sockets(mut self, sk: usize) -> Self {
        self.sockets = sk;
        self
    }

    pub fn kernel(mut self, variant: KernelVariant) -> Self {
        self.kernel = variant;
        self
    }

    /// Applies the graceful-degradation policy of
    /// [`crate::plan::FftPlanBuilder::adapt_to_host`] to both inner
    /// plans.
    pub fn adapt_to_host(mut self) -> Self {
        self.adapt_to_host = true;
        self
    }

    pub fn build(self) -> Result<RealFftPlan, PlanError> {
        let (inner, m) = match self.dims {
            Dims::Two { n, m } => (Dims::d2(n, m / 2), m),
            Dims::Three { k, n, m } => (Dims::d3(k, n, m / 2), m),
        };
        // The packing needs pairs: the innermost *real* dimension must
        // be an even power of two (the inner builder re-checks m/2 and
        // the μ constraint).
        if !bwfft_num::is_pow2(m) || m < 2 {
            return Err(PlanError::NotPow2("real innermost dimension", m));
        }
        let make = |dir: Direction| {
            let mut b = FftPlan::builder(inner)
                .direction(dir)
                .kernel(self.kernel)
                .threads(self.p_d, self.p_c)
                .sockets(self.sockets);
            if self.buffer_elems != 0 {
                b = b.buffer_elems(self.buffer_elems);
            }
            if self.adapt_to_host {
                b = b.adapt_to_host();
            }
            b.build()
        };
        Ok(RealFftPlan {
            dims: self.dims,
            fwd: make(Direction::Forward)?,
            inv: make(Direction::Inverse)?,
            tw: half_twiddles(m),
        })
    }
}

impl RealFftPlan {
    pub fn builder(dims: Dims) -> RealFftPlanBuilder {
        RealFftPlanBuilder {
            dims,
            buffer_elems: 0,
            p_d: 1,
            p_c: 1,
            sockets: 1,
            kernel: KernelVariant::Stockham,
            adapt_to_host: false,
        }
    }

    /// Real-space dimensions.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// The inner half-width complex plan the forward path executes.
    pub fn inner_forward(&self) -> &FftPlan {
        &self.fwd
    }

    /// The inner half-width complex plan the inverse path executes.
    pub fn inner_inverse(&self) -> &FftPlan {
        &self.inv
    }

    /// Real elements of the transform (`N`).
    pub fn real_elems(&self) -> usize {
        self.dims.total()
    }

    /// Complex elements of the half-width arrays (`N/2`) — the length
    /// the caller's `work` buffer must have.
    pub fn packed_elems(&self) -> usize {
        self.dims.total() / 2
    }

    /// Rows of the packed spectrum (product of the leading dims).
    pub fn rows(&self) -> usize {
        let m = self.inner_m() * 2;
        self.dims.total() / m
    }

    /// Complex bins per packed-spectrum row (`m/2 + 1`).
    pub fn half_cols(&self) -> usize {
        self.inner_m() + 1
    }

    /// Total complex elements of the packed spectrum
    /// (`rows · (m/2 + 1)`).
    pub fn spectrum_elems(&self) -> usize {
        self.rows() * self.half_cols()
    }

    fn inner_m(&self) -> usize {
        match self.fwd.dims {
            Dims::Two { m, .. } | Dims::Three { m, .. } => m,
        }
    }

    fn check_real(&self, x: &[f64], what: &'static str) -> Result<(), CoreError> {
        if x.len() != self.real_elems() {
            return Err(CoreError::InputLength {
                what,
                expected: self.real_elems(),
                got: x.len(),
            });
        }
        Ok(())
    }

    fn check_spectrum(&self, s: &[Complex64], what: &'static str) -> Result<(), CoreError> {
        if s.len() != self.spectrum_elems() {
            return Err(CoreError::InputLength {
                what,
                expected: self.spectrum_elems(),
                got: s.len(),
            });
        }
        Ok(())
    }

    fn r2c_impl<R>(
        &self,
        x: &[f64],
        out: &mut [Complex64],
        verify_energy: bool,
        run: impl FnOnce(&FftPlan, &mut [Complex64]) -> Result<R, CoreError>,
    ) -> Result<R, CoreError> {
        self.check_real(x, "real input")?;
        self.check_spectrum(out, "packed spectrum")?;
        let energy_in = verify_energy.then(|| real_energy(x));
        let mut z: Vec<Complex64> = try_vec_zeroed(self.packed_elems(), "real fold buffer")?;
        fold_real(x, &mut z);
        let report = run(&self.fwd, &mut z)?;
        let rows = self.rows();
        split_merge_forward(&z, &self.tw, rows, |s| mirror_row(self.fwd.dims, s), out);
        if let Some(e_in) = energy_in {
            verify_packed_parseval(self.real_elems(), e_in, packed_spectrum_energy(out, rows))?;
        }
        Ok(report)
    }

    fn c2r_impl<R>(
        &self,
        spec: &[Complex64],
        out: &mut [f64],
        verify_energy: bool,
        run: impl FnOnce(&FftPlan, &mut [Complex64]) -> Result<R, CoreError>,
    ) -> Result<R, CoreError> {
        self.check_spectrum(spec, "packed spectrum")?;
        self.check_real(out, "real output")?;
        let energy_in = verify_energy.then(|| packed_spectrum_energy(spec, self.rows()));
        let mut z: Vec<Complex64> = try_vec_zeroed(self.packed_elems(), "real merge buffer")?;
        let rows = self.rows();
        merge_split_inverse(spec, &self.tw, rows, |s| mirror_row(self.inv.dims, s), &mut z);
        let report = run(&self.inv, &mut z)?;
        unfold_real(&z, 1.0, out);
        if let Some(e_in) = energy_in {
            verify_packed_parseval(self.real_elems(), e_in, real_energy(out))?;
        }
        Ok(report)
    }

    /// Forward real-to-complex transform through the plan's executor:
    /// real `x` → packed conjugate-even spectrum `out`
    /// ([`spectrum_elems`](Self::spectrum_elems) bins). `work` is the
    /// half-width complex workspace
    /// ([`packed_elems`](Self::packed_elems) elements).
    pub fn r2c(
        &self,
        x: &[f64],
        work: &mut [Complex64],
        out: &mut [Complex64],
    ) -> Result<ExecReport, CoreError> {
        self.r2c_with(x, work, out, &ExecConfig::default())
    }

    /// [`r2c`](Self::r2c) with explicit fault-tolerance knobs. With
    /// `cfg.verify_energy` armed, the inner complex transform checks
    /// its own Parseval invariant *and* an outer guard re-checks it
    /// over the packed half-spectrum (interior bins weighted ×2 for
    /// their unstored mirrors).
    pub fn r2c_with(
        &self,
        x: &[f64],
        work: &mut [Complex64],
        out: &mut [Complex64],
        cfg: &ExecConfig,
    ) -> Result<ExecReport, CoreError> {
        self.r2c_impl(x, out, cfg.verify_energy, |plan, z| {
            exec_real::execute_with(plan, z, work, cfg)
        })
    }

    /// [`r2c`](Self::r2c) under the full recovery ladder: the inner
    /// complex transform runs through the [`Supervisor`] (pipelined →
    /// fused → reference escalation, snapshot/retry) unchanged.
    pub fn r2c_supervised(
        &self,
        sup: &Supervisor,
        x: &[f64],
        work: &mut [Complex64],
        out: &mut [Complex64],
        cfg: &ExecConfig,
    ) -> Result<SupervisedReport, CoreError> {
        self.r2c_impl(x, out, cfg.verify_energy, |plan, z| {
            sup.run(plan, z, work, cfg)
        })
    }

    /// [`r2c`](Self::r2c) on the reference tier only (row-column
    /// pencils, no shared state) — the last rung of the ladder, also
    /// usable as an oracle.
    pub fn r2c_reference(&self, x: &[f64], out: &mut [Complex64]) -> Result<(), CoreError> {
        self.r2c_impl(x, out, false, execute_reference)
    }

    /// Inverse complex-to-real transform through the plan's executor,
    /// unnormalized (`c2r(r2c(x)) = N·x`; see [`normalize`]).
    pub fn c2r(
        &self,
        spec: &[Complex64],
        work: &mut [Complex64],
        out: &mut [f64],
    ) -> Result<ExecReport, CoreError> {
        self.c2r_with(spec, work, out, &ExecConfig::default())
    }

    /// [`c2r`](Self::c2r) with explicit fault-tolerance knobs.
    pub fn c2r_with(
        &self,
        spec: &[Complex64],
        work: &mut [Complex64],
        out: &mut [f64],
        cfg: &ExecConfig,
    ) -> Result<ExecReport, CoreError> {
        self.c2r_impl(spec, out, cfg.verify_energy, |plan, z| {
            exec_real::execute_with(plan, z, work, cfg)
        })
    }

    /// [`c2r`](Self::c2r) under the full recovery ladder.
    pub fn c2r_supervised(
        &self,
        sup: &Supervisor,
        spec: &[Complex64],
        work: &mut [Complex64],
        out: &mut [f64],
        cfg: &ExecConfig,
    ) -> Result<SupervisedReport, CoreError> {
        self.c2r_impl(spec, out, cfg.verify_energy, |plan, z| {
            sup.run(plan, z, work, cfg)
        })
    }

    /// [`c2r`](Self::c2r) on the reference tier only.
    pub fn c2r_reference(&self, spec: &[Complex64], out: &mut [f64]) -> Result<(), CoreError> {
        self.c2r_impl(spec, out, false, execute_reference)
    }

    /// Simulates the r2c path on a machine preset: the inner
    /// half-width complex transform through the ordinary simulator,
    /// plus one modeled streaming stage for the split-merge pass
    /// (reads the half-width spectrum, writes the packed bins).
    pub fn simulate_r2c(
        &self,
        spec: &MachineSpec,
        opts: &SimOptions,
    ) -> Result<SimResult, CoreError> {
        self.simulate_impl(&self.fwd, "r2c", spec, opts)
    }

    /// Simulates the c2r path (merge pre-pass + inner inverse).
    pub fn simulate_c2r(
        &self,
        spec: &MachineSpec,
        opts: &SimOptions,
    ) -> Result<SimResult, CoreError> {
        self.simulate_impl(&self.inv, "c2r", spec, opts)
    }

    fn simulate_impl(
        &self,
        inner: &FftPlan,
        label: &str,
        spec: &MachineSpec,
        opts: &SimOptions,
    ) -> Result<SimResult, CoreError> {
        let mut sim = exec_sim::simulate(inner, spec, opts)?;
        // The split-merge pass is a pure stream: read rows·h complex
        // elements, write rows·(h+1) (or the reverse), at DRAM speed.
        let bytes = 16.0 * (self.packed_elems() + self.spectrum_elems()) as f64;
        let time_ns = bytes / spec.total_dram_bw_gbs();
        sim.stages.push(StageCost {
            stage: sim.stages.len(),
            time_ns,
            dram_bytes: bytes,
            link_bytes: 0.0,
        });
        sim.report.time_ns += time_ns;
        sim.report.dram_bytes += bytes;
        sim.report.problem = format!("{label} {}", self.dims.label());
        Ok(sim)
    }
}

/// Scales a c2r output by `1/N`, completing the normalized inverse
/// (the real-side analogue of [`exec_real::normalize`]).
pub fn normalize(out: &mut [f64]) {
    let s = 1.0 / out.len() as f64;
    for v in out.iter_mut() {
        *v *= s;
    }
}

fn real_energy(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// Packed-half-spectrum Parseval guard, same tolerance shape as the
/// complex executors' energy check: `N·E_in` vs the packed spectrum
/// energy (forward) or the packed energy vs the output's (inverse).
fn verify_packed_parseval(n: usize, energy_in: f64, got: f64) -> Result<(), CoreError> {
    let expected = n as f64 * energy_in;
    if (got - expected).abs() > 1e-6 * expected.abs() + 1e-12 {
        return Err(CoreError::Integrity {
            stage: 0,
            block: 0,
            kind: IntegrityKind::Energy,
        });
    }
    Ok(())
}

/// Outcome of a supervised fused convolution: one [`SupervisedReport`]
/// per inner transform direction.
#[derive(Debug)]
pub struct ConvReport {
    pub forward: SupervisedReport,
    pub inverse: SupervisedReport,
}

impl ConvReport {
    /// Whether either leg needed the recovery ladder.
    pub fn recovered(&self) -> bool {
        self.forward.recovered() || self.inverse.recovered()
    }

    /// Total attempts across both legs (2 for a clean run).
    pub fn attempts(&self) -> usize {
        self.forward.attempts + self.inverse.attempts
    }

    /// The deeper of the two tiers that produced the result.
    pub fn worst_tier(&self) -> RecoveryTier {
        fn rank(t: RecoveryTier) -> u8 {
            match t {
                RecoveryTier::Pipelined => 0,
                RecoveryTier::Fused => 1,
                RecoveryTier::Reference => 2,
            }
        }
        if rank(self.inverse.tier) > rank(self.forward.tier) {
            self.inverse.tier
        } else {
            self.forward.tier
        }
    }
}

/// A planned, fused spectral convolution against a fixed real kernel:
/// `r2c → pointwise multiply fused into the spectrum merge → c2r`,
/// with the packed product spectrum never materialized and the `1/N`
/// normalization pre-folded into the kernel spectrum, so
/// [`convolve`](Self::convolve) computes the exact circular
/// convolution in place.
#[derive(Clone, Debug)]
pub struct SpectralConvPlan {
    plan: RealFftPlan,
    hspec: Vec<Complex64>,
}

impl SpectralConvPlan {
    /// Plans the convolution: the kernel's packed spectrum is computed
    /// once (through the reference tier — planning-time work) and
    /// reused by every run.
    pub fn new(plan: RealFftPlan, kernel: &[f64]) -> Result<Self, CoreError> {
        let mut hspec: Vec<Complex64> =
            try_vec_zeroed(plan.spectrum_elems(), "kernel spectrum")?;
        plan.r2c_reference(kernel, &mut hspec)?;
        let s = 1.0 / plan.real_elems() as f64;
        for v in hspec.iter_mut() {
            *v = v.scale(s);
        }
        Ok(Self { plan, hspec })
    }

    pub fn plan(&self) -> &RealFftPlan {
        &self.plan
    }

    /// Circularly convolves `x` with the planned kernel, in place.
    /// `work` is the half-width complex workspace
    /// ([`RealFftPlan::packed_elems`] elements).
    pub fn convolve(&self, x: &mut [f64], work: &mut [Complex64]) -> Result<(), CoreError> {
        self.convolve_with(x, work, &ExecConfig::default()).map(|_| ())
    }

    /// [`convolve`](Self::convolve) with explicit fault-tolerance
    /// knobs; returns the two inner executor reports (forward,
    /// inverse).
    pub fn convolve_with(
        &self,
        x: &mut [f64],
        work: &mut [Complex64],
        cfg: &ExecConfig,
    ) -> Result<(ExecReport, ExecReport), CoreError> {
        self.convolve_impl(x, |plan, z| exec_real::execute_with(plan, z, work, cfg))
    }

    /// [`convolve`](Self::convolve) under the full recovery ladder:
    /// each inner transform runs through the [`Supervisor`], so an
    /// injected mid-stage fault escalates and the convolution result
    /// is still exact.
    pub fn convolve_supervised(
        &self,
        sup: &Supervisor,
        x: &mut [f64],
        work: &mut [Complex64],
        cfg: &ExecConfig,
    ) -> Result<ConvReport, CoreError> {
        let (forward, inverse) =
            self.convolve_impl(x, |plan, z| sup.run(plan, z, work, cfg))?;
        Ok(ConvReport { forward, inverse })
    }

    fn convolve_impl<R>(
        &self,
        x: &mut [f64],
        mut run: impl FnMut(&FftPlan, &mut [Complex64]) -> Result<R, CoreError>,
    ) -> Result<(R, R), CoreError> {
        let plan = &self.plan;
        plan.check_real(x, "real input")?;
        let mut z: Vec<Complex64> = try_vec_zeroed(plan.packed_elems(), "conv fold buffer")?;
        fold_real(x, &mut z);
        let fwd_report = run(&plan.fwd, &mut z)?;
        let rows = plan.rows();
        fused_multiply_merge(&mut z, &self.hspec, &plan.tw, rows, |s| {
            mirror_row(plan.fwd.dims, s)
        });
        let inv_report = run(&plan.inv, &mut z)?;
        unfold_real(&z, 1.0, x);
        Ok((fwd_report, inv_report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_kernels::reference::{dft2_naive, dft3_naive};
    use bwfft_num::signal::SplitMix64;
    use bwfft_pipeline::{FaultPlan, IntegrityConfig, Role};

    fn random_real(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect()
    }

    fn plan_2d(n: usize, m: usize) -> RealFftPlan {
        // Inner complex problem is n × m/2; buffer must divide it and
        // hold the widest pencil (n·μ).
        let b = (n * m / 4).max(n * 4).max(m / 2);
        RealFftPlan::builder(Dims::d2(n, m))
            .buffer_elems(b)
            .threads(2, 2)
            .build()
            .expect("2D real plan")
    }

    /// Packed spectrum of the naive full complex DFT, for comparison.
    fn oracle_2d(x: &[f64], n: usize, m: usize) -> Vec<Complex64> {
        let cx: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        let full = dft2_naive(&cx, n, m, Direction::Forward);
        let mut packed = Vec::with_capacity(n * (m / 2 + 1));
        for s in 0..n {
            packed.extend_from_slice(&full[s * m..s * m + m / 2 + 1]);
        }
        packed
    }

    #[test]
    fn r2c_2d_matches_naive_oracle_all_tiers() {
        let (n, m) = (16usize, 32);
        let x = random_real(n * m, 200);
        let plan = plan_2d(n, m);
        let want = oracle_2d(&x, n, m);

        let mut work = vec![Complex64::ZERO; plan.packed_elems()];
        let mut got = vec![Complex64::ZERO; plan.spectrum_elems()];
        plan.r2c(&x, &mut work, &mut got).expect("pipelined r2c");
        for (k, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((*g - *w).abs() < 1e-9, "pipelined bin {k}");
        }

        let mut got_ref = vec![Complex64::ZERO; plan.spectrum_elems()];
        plan.r2c_reference(&x, &mut got_ref).expect("reference r2c");
        for (g, w) in got_ref.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-9);
        }
    }

    #[test]
    fn r2c_3d_matches_naive_oracle() {
        let (k, n, m) = (4usize, 8, 16);
        let x = random_real(k * n * m, 201);
        let plan = RealFftPlan::builder(Dims::d3(k, n, m))
            .buffer_elems(64)
            .threads(2, 2)
            .build()
            .expect("3D real plan");
        let cx: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        let full = dft3_naive(&cx, k, n, m, Direction::Forward);
        let mut work = vec![Complex64::ZERO; plan.packed_elems()];
        let mut got = vec![Complex64::ZERO; plan.spectrum_elems()];
        plan.r2c(&x, &mut work, &mut got).expect("3D r2c");
        let hp = m / 2 + 1;
        for s in 0..k * n {
            for kf in 0..hp {
                let want = full[s * m + kf];
                let g = got[s * hp + kf];
                assert!((g - want).abs() < 1e-9, "row {s} bin {kf}");
            }
        }
    }

    #[test]
    fn c2r_roundtrips_times_n_and_normalize() {
        let (n, m) = (8usize, 16);
        let x = random_real(n * m, 202);
        let plan = plan_2d(n, m);
        let mut work = vec![Complex64::ZERO; plan.packed_elems()];
        let mut spec = vec![Complex64::ZERO; plan.spectrum_elems()];
        plan.r2c(&x, &mut work, &mut spec).expect("r2c");
        let mut back = vec![0.0; n * m];
        plan.c2r(&spec, &mut work, &mut back).expect("c2r");
        let nn = (n * m) as f64;
        for (b, v) in back.iter().zip(&x) {
            assert!((b - v * nn).abs() < 1e-8 * nn);
        }
        normalize(&mut back);
        for (b, v) in back.iter().zip(&x) {
            assert!((b - v).abs() < 1e-10);
        }
    }

    #[test]
    fn supervised_r2c_recovers_from_injected_fault() {
        let (n, m) = (16usize, 32);
        let x = random_real(n * m, 203);
        let plan = plan_2d(n, m);
        let want = oracle_2d(&x, n, m);
        let cfg = ExecConfig {
            fault: Some(FaultPlan::panic_at(Role::Compute, 0, 1)),
            integrity: IntegrityConfig::full(),
            verify_energy: true,
            ..ExecConfig::default()
        };
        bwfft_pipeline::fault::silence_injected_panic_reports();
        let sup = Supervisor::new(crate::supervisor::RetryPolicy::default());
        let mut work = vec![Complex64::ZERO; plan.packed_elems()];
        let mut got = vec![Complex64::ZERO; plan.spectrum_elems()];
        let report = plan
            .r2c_supervised(&sup, &x, &mut work, &mut got, &cfg)
            .expect("supervised r2c");
        assert!(report.recovered(), "fault should have forced recovery");
        for (g, w) in got.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-9);
        }
    }

    #[test]
    fn packed_parseval_guard_trips_on_corruption() {
        let (n, m) = (8usize, 16);
        let x = random_real(n * m, 204);
        let plan = plan_2d(n, m);
        let mut work = vec![Complex64::ZERO; plan.packed_elems()];
        let mut spec = vec![Complex64::ZERO; plan.spectrum_elems()];
        plan.r2c(&x, &mut work, &mut spec).expect("r2c");
        // A real signal's DC bin is purely real; an imaginary
        // component there is energy the merge pass projects away, so
        // the packed-energy bookkeeping no longer balances and the
        // guard must fire.
        spec[0] += Complex64::new(0.0, 50.0);
        let cfg = ExecConfig {
            verify_energy: true,
            ..ExecConfig::default()
        };
        let mut back = vec![0.0; n * m];
        let err = plan
            .c2r_with(&spec, &mut work, &mut back, &cfg)
            .expect_err("corrupted spectrum must trip the energy guard");
        assert_eq!(err.integrity_kind(), Some(IntegrityKind::Energy));
    }

    #[test]
    fn fused_conv_matches_direct_oracle_2d() {
        let (n, m) = (8usize, 16);
        let nn = n * m;
        let x = random_real(nn, 205);
        let g = random_real(nn, 206);
        let plan = plan_2d(n, m);
        let conv = SpectralConvPlan::new(plan, &g).expect("conv plan");
        let mut got = x.clone();
        let mut work = vec![Complex64::ZERO; conv.plan().packed_elems()];
        conv.convolve(&mut got, &mut work).expect("fused conv");

        // Direct 2D circular convolution.
        let mut want = vec![0.0; nn];
        for r in 0..n {
            for c in 0..m {
                let mut acc = 0.0;
                for a in 0..n {
                    for b in 0..m {
                        acc += x[a * m + b] * g[((n + r - a) % n) * m + (m + c - b) % m];
                    }
                }
                want[r * m + c] = acc;
            }
        }
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn supervised_conv_survives_midstage_fault() {
        let (n, m) = (8usize, 16);
        let nn = n * m;
        let x = random_real(nn, 207);
        let mut delta = vec![0.0; nn];
        delta[0] = 1.0;
        let plan = plan_2d(n, m);
        let conv = SpectralConvPlan::new(plan, &delta).expect("conv plan");
        let cfg = ExecConfig {
            fault: Some(FaultPlan::panic_at(Role::Data, 0, 1)),
            integrity: IntegrityConfig::full(),
            verify_energy: true,
            ..ExecConfig::default()
        };
        bwfft_pipeline::fault::silence_injected_panic_reports();
        let sup = Supervisor::new(crate::supervisor::RetryPolicy::default());
        let mut got = x.clone();
        let mut work = vec![Complex64::ZERO; conv.plan().packed_elems()];
        let report = conv
            .convolve_supervised(&sup, &mut got, &mut work, &cfg)
            .expect("supervised conv");
        assert!(report.recovered());
        assert!(report.attempts() > 2);
        // conv(x, δ) == x even after recovery.
        for (a, b) in got.iter().zip(&x) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn mirror_row_is_an_involution() {
        for dims in [Dims::d2(8, 16), Dims::d3(4, 8, 16)] {
            let rows = dims.total()
                / match dims {
                    Dims::Two { m, .. } | Dims::Three { m, .. } => m,
                };
            for s in 0..rows {
                let ms = mirror_row(dims, s);
                assert!(ms < rows);
                assert_eq!(mirror_row(dims, ms), s, "dims {dims:?} row {s}");
            }
        }
    }

    #[test]
    fn simulated_r2c_moves_fewer_bytes_than_complex() {
        let spec = bwfft_machine::spec::presets::kaby_lake_7700k();
        let plan = RealFftPlan::builder(Dims::d2(64, 128))
            .buffer_elems(512)
            .threads(2, 2)
            .build()
            .expect("real plan");
        let complex_plan = FftPlan::builder(Dims::d2(64, 128))
            .buffer_elems(512)
            .threads(2, 2)
            .build()
            .expect("complex plan");
        let opts = SimOptions::default();
        let real = plan.simulate_r2c(&spec, &opts).expect("r2c sim");
        let full = exec_sim::simulate(&complex_plan, &spec, &opts).expect("complex sim");
        assert!(
            real.report.dram_bytes < full.report.dram_bytes,
            "r2c {} vs complex {}",
            real.report.dram_bytes,
            full.report.dram_bytes
        );
        assert_eq!(real.stages.len(), complex_plan.stages().len() + 1);
    }

    #[test]
    fn length_mismatches_are_typed() {
        let plan = plan_2d(8, 16);
        let mut work = vec![Complex64::ZERO; plan.packed_elems()];
        let mut out = vec![Complex64::ZERO; plan.spectrum_elems()];
        let short = vec![0.0; 17];
        let err = plan.r2c(&short, &mut work, &mut out).expect_err("short input");
        assert!(matches!(err, CoreError::InputLength { .. }));
        let mut short_out = vec![Complex64::ZERO; 3];
        let x = vec![0.0; plan.real_elems()];
        let err = plan.r2c(&x, &mut work, &mut short_out).expect_err("short out");
        assert!(matches!(err, CoreError::InputLength { .. }));
    }

    #[test]
    fn builder_rejects_odd_innermost() {
        let err = RealFftPlan::builder(Dims::d2(8, 12)).build().expect_err("non-pow2 m");
        assert!(matches!(err, PlanError::NotPow2(..)));
    }
}
