//! The paper's performance metrics (§V "Performance metric").

/// Bytes per complex-double element (two `f64`) — the element size the
/// paper's machines stream.
pub const COMPLEX64_BYTES: f64 = 16.0;

/// Bytes per complex-single element (two `f32`), for single-precision
/// plans.
pub const COMPLEX32_BYTES: f64 = 8.0;

/// Pseudo-flop count `5·N·log2 N` — the conventional FFT operation
/// estimate the paper (and MKL/FFTW reporting) uses. Proportional to
/// inverse runtime, so ratios of pseudo-Gflop/s are runtime ratios.
pub fn pseudo_flops(total_elems: usize) -> f64 {
    let n = total_elems as f64;
    5.0 * n * n.log2()
}

/// The achievable-peak bound of §V:
///
/// ```text
/// P_io = 5·N·log2(N)·BW_STREAM / (2 · N · stages · sizeof(element))
/// ```
///
/// i.e. the Gflop/s reached if every stage streamed its full read +
/// write traffic at STREAM bandwidth with infinite compute. `bw_gbs`
/// is the whole-machine STREAM figure, `elem_bytes` the element size
/// (e.g. [`COMPLEX64_BYTES`]); the result is in Gflop/s.
pub fn achievable_peak_gflops_for(
    total_elems: usize,
    stages: usize,
    bw_gbs: f64,
    elem_bytes: f64,
) -> f64 {
    let n = total_elems as f64;
    let flops = 5.0 * n * n.log2();
    let bytes = 2.0 * n * stages as f64 * elem_bytes; // read+write
    flops * bw_gbs / bytes
}

/// [`achievable_peak_gflops_for`] at the complex-double element size
/// the rest of the workspace computes in.
pub fn achievable_peak_gflops(total_elems: usize, stages: usize, bw_gbs: f64) -> f64 {
    achievable_peak_gflops_for(total_elems, stages, bw_gbs, COMPLEX64_BYTES)
}

/// Minimum bytes of DRAM traffic for an `stages`-stage out-of-cache
/// transform of `total_elems` elements of `elem_bytes` each (every
/// stage reads and writes the whole array once).
pub fn ideal_traffic_bytes_for(total_elems: usize, stages: usize, elem_bytes: f64) -> f64 {
    2.0 * total_elems as f64 * stages as f64 * elem_bytes
}

/// [`ideal_traffic_bytes_for`] at the complex-double element size.
pub fn ideal_traffic_bytes(total_elems: usize, stages: usize) -> f64 {
    ideal_traffic_bytes_for(total_elems, stages, COMPLEX64_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudo_flops_of_512_cubed() {
        // N = 2^27, log2 N = 27.
        let n = 1usize << 27;
        assert_eq!(pseudo_flops(n), 5.0 * (n as f64) * 27.0);
    }

    #[test]
    fn kaby_lake_peak_matches_hand_computation() {
        // P_io(512³, 3 stages, 40 GB/s) = 5·27·40/96 = 56.25 Gflop/s.
        let p = achievable_peak_gflops(1 << 27, 3, 40.0);
        assert!((p - 56.25).abs() < 1e-9, "{p}");
    }

    #[test]
    fn peak_scales_linearly_with_bandwidth() {
        let a = achievable_peak_gflops(1 << 24, 3, 20.0);
        let b = achievable_peak_gflops(1 << 24, 3, 40.0);
        assert!((b - 2.0 * a).abs() < 1e-9);
    }

    #[test]
    fn two_stage_2d_has_higher_peak_than_3d() {
        // Fewer round trips ⇒ higher achievable Gflop/s at equal N.
        let p2 = achievable_peak_gflops(1 << 20, 2, 40.0);
        let p3 = achievable_peak_gflops(1 << 20, 3, 40.0);
        assert!(p2 > p3);
        assert!((p2 / p3 - 1.5).abs() < 1e-9);
    }

    #[test]
    fn ideal_traffic_of_one_stage() {
        assert_eq!(ideal_traffic_bytes(1000, 1), 32_000.0);
    }

    #[test]
    fn single_precision_doubles_the_peak() {
        // Half the bytes per element ⇒ twice the achievable Gflop/s and
        // half the ideal traffic, at equal N and stage count.
        let p64 = achievable_peak_gflops_for(1 << 20, 3, 40.0, COMPLEX64_BYTES);
        let p32 = achievable_peak_gflops_for(1 << 20, 3, 40.0, COMPLEX32_BYTES);
        assert!((p32 - 2.0 * p64).abs() < 1e-9);
        let t64 = ideal_traffic_bytes_for(1 << 20, 3, COMPLEX64_BYTES);
        let t32 = ideal_traffic_bytes_for(1 << 20, 3, COMPLEX32_BYTES);
        assert!((t64 - 2.0 * t32).abs() < 1e-9);
    }
}
