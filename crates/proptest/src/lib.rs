//! Offline stand-in for the [`proptest`](https://docs.rs/proptest)
//! crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small slice of the proptest API its test
//! suites actually use: range/`Just`/tuple/`prop_oneof!`/collection
//! strategies, `prop_map`, the `proptest!` macro with an optional
//! `#![proptest_config(..)]` inner attribute, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Values are drawn from a deterministic splitmix64 generator seeded
//! from the test name and case index, so failures reproduce across
//! runs. There is no shrinking: a failing case panics with the full
//! set of generated inputs instead.

pub mod strategy;

pub mod test_runner {
    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required per test.
        pub cases: u32,
        /// Maximum rejected (`prop_assume!`) cases before giving up.
        pub max_global_rejects: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Default::default()
            }
        }
    }

    /// Parses a `PROPTEST_CASES` value; `None` when unset, empty, zero
    /// or unparseable (falling back to the built-in default).
    pub fn parse_cases(raw: Option<&str>) -> Option<u32> {
        raw.and_then(|v| v.trim().parse().ok()).filter(|&c| c > 0)
    }

    impl Default for Config {
        fn default() -> Self {
            // As in upstream proptest, the `PROPTEST_CASES` environment
            // variable caps the per-test case count, so fast CI gates
            // can trade depth for latency without touching the tests.
            let env_cases = parse_cases(std::env::var("PROPTEST_CASES").ok().as_deref());
            Config {
                cases: env_cases.unwrap_or(256),
                max_global_rejects: 65_536,
            }
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// The case was vetoed by `prop_assume!` and should not count.
    Reject,
}

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed derived from a test name and case index (stable across
    /// runs and platforms).
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h.wrapping_add(case.wrapping_mul(0x2545_f491_4f6c_dd1d)))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at test-strategy scale.
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: core::fmt::Debug {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Length bounds for [`vec`]; converted from the range forms the
    /// call sites use.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        /// Exclusive.
        pub hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.hi - self.len.lo).max(1) as u64;
            let n = self.len.lo + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for vectors of `elem` with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }
}

/// Alias module so `prop::collection::vec(..)` works as in upstream.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::BoxedStrategy::new($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while passed < cfg.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    case += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}  "),+),
                        $(&$arg),+
                    );
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < cfg.max_global_rejects,
                                "proptest `{}`: too many prop_assume! rejections",
                                stringify!($name)
                            );
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {}:\n  {}\n  inputs: {}",
                                stringify!($name),
                                case - 1,
                                msg,
                                inputs
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn proptest_cases_env_values_parse() {
        use crate::test_runner::parse_cases;
        assert_eq!(parse_cases(Some("17")), Some(17));
        assert_eq!(parse_cases(Some(" 8 ")), Some(8));
        assert_eq!(parse_cases(Some("0")), None);
        assert_eq!(parse_cases(Some("lots")), None);
        assert_eq!(parse_cases(None), None);
    }

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in 0u64..5, f in 1.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((1.0..2.0).contains(&f));
        }

        #[test]
        fn oneof_and_map_work(
            v in prop_oneof![Just(1usize), Just(2), Just(4)],
            p in (2u32..6).prop_map(|e| 1usize << e),
        ) {
            prop_assert!(matches!(v, 1 | 2 | 4));
            prop_assert!(p.is_power_of_two() && (4..64).contains(&p));
        }

        #[test]
        fn collections_and_tuples_work(
            xs in prop::collection::vec((0u64..100, any::<bool>()), 1..20),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for (v, _) in &xs {
                prop_assert!(*v < 100);
            }
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }
    }
}
