//! The strategy trait and the combinators the workspace tests use.

use crate::TestRng;

/// A generator of test values.
///
/// Unlike upstream proptest there is no shrinking and no value tree:
/// `generate` draws a single value directly.
pub trait Strategy {
    type Value: core::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: core::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erased form (what `prop_oneof!` stores).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: core::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: core::fmt::Debug> BoxedStrategy<T> {
    pub fn new(s: impl Strategy<Value = T> + 'static) -> Self {
        BoxedStrategy(Box::new(s))
    }
}

impl<T: core::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice among alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: core::fmt::Debug> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: core::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
