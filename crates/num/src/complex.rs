//! Double-precision complex arithmetic.
//!
//! The workspace deliberately carries its own complex type instead of
//! pulling in `num-complex`: the layout (`repr(C)`, 16 bytes, re then im)
//! is load-bearing — cacheline blocking, SIMD shuffles and the
//! interleaved ↔ block-interleaved format changes in `bwfft-kernels` all
//! assume it.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number, laid out as `[re, im]` in memory.
#[derive(Copy, Clone, Default, PartialEq)]
#[repr(C)]
pub struct Complex64 {
    pub re: f64,
    pub im: f64,
}

impl Complex64 {
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}` — a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self { re: c, im: s }
    }

    /// The primitive `n`-th root of unity used by the DFT:
    /// `ω_n^k = e^{-2πik/n}`.
    ///
    /// Exact values are returned for the quadrant angles so that twiddle
    /// tables for power-of-two sizes carry no spurious `~1e-17` noise on
    /// the axes.
    pub fn root_of_unity(k: i64, n: u64) -> Self {
        assert!(n > 0);
        let k = k.rem_euclid(n as i64) as u64;
        let (num, den) = reduce(k, n);
        match (num, den) {
            (0, _) => Self::ONE,
            (1, 4) => Self::new(0.0, -1.0),
            (1, 2) => Self::new(-1.0, 0.0),
            (3, 4) => Self::new(0.0, 1.0),
            _ => Self::cis(-2.0 * core::f64::consts::PI * (k as f64) / (n as f64)),
        }
    }

    #[inline(always)]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Multiplication by `i` (a 90° rotation) without any multiplies.
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Self::new(-self.im, self.re)
    }

    /// Multiplication by `-i`.
    #[inline(always)]
    pub fn mul_neg_i(self) -> Self {
        Self::new(self.im, -self.re)
    }

    /// `self * w` expressed with explicit FMA-friendly ordering; the
    /// kernels rely on LLVM contracting these into `vfmadd` sequences.
    #[inline(always)]
    pub fn mul_add_style(self, w: Self) -> Self {
        Self::new(
            self.re * w.re - self.im * w.im,
            self.re * w.im + self.im * w.re,
        )
    }

    /// Multiplicative inverse.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

fn reduce(mut a: u64, mut b: u64) -> (u64, u64) {
    fn gcd(mut x: u64, mut y: u64) -> u64 {
        while y != 0 {
            let t = x % y;
            x = y;
            y = t;
        }
        x
    }
    if a == 0 {
        return (0, 1);
    }
    let g = gcd(a, b);
    a /= g;
    b /= g;
    (a, b)
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        self.mul_add_style(rhs)
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w⁻¹
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.25, 3.0);
        let c = Complex64::new(4.0, 0.5);
        assert!(close(a + b, b + a));
        assert!(close(a * b, b * a));
        assert!(close(a * (b + c), a * b + a * c));
        assert!(close(a * a.recip(), Complex64::ONE));
        assert!(close(a / b * b, a));
    }

    #[test]
    fn roots_of_unity_quadrants_are_exact() {
        assert_eq!(Complex64::root_of_unity(0, 8), Complex64::new(1.0, 0.0));
        assert_eq!(Complex64::root_of_unity(2, 8), Complex64::new(0.0, -1.0));
        assert_eq!(Complex64::root_of_unity(4, 8), Complex64::new(-1.0, 0.0));
        assert_eq!(Complex64::root_of_unity(6, 8), Complex64::new(0.0, 1.0));
    }

    #[test]
    fn roots_of_unity_cycle_and_multiply() {
        let n = 16u64;
        for k in 0..n as i64 {
            let w = Complex64::root_of_unity(k, n);
            assert!((w.abs() - 1.0).abs() < 1e-14);
            // ω^k · ω^(n-k) = 1
            let wk = Complex64::root_of_unity(n as i64 - k, n);
            assert!(close(w * wk, Complex64::ONE));
        }
        // ω_n^k == ω_{2n}^{2k}
        for k in 0..16 {
            assert!(close(
                Complex64::root_of_unity(k, 16),
                Complex64::root_of_unity(2 * k, 32)
            ));
        }
    }

    #[test]
    fn root_of_unity_negative_index_wraps() {
        assert!(close(
            Complex64::root_of_unity(-3, 8),
            Complex64::root_of_unity(5, 8)
        ));
    }

    #[test]
    fn mul_i_matches_multiplication() {
        let a = Complex64::new(3.0, -7.0);
        assert!(close(a.mul_i(), a * Complex64::I));
        assert!(close(a.mul_neg_i(), a * Complex64::new(0.0, -1.0)));
    }

    #[test]
    fn conj_properties() {
        let a = Complex64::new(2.0, 5.0);
        let b = Complex64::new(-1.0, 0.5);
        assert!(close((a * b).conj(), a.conj() * b.conj()));
        assert!((a * a.conj()).im.abs() < 1e-15);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < 1e-12);
    }
}
