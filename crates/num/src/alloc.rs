//! Fallible allocation for the large buffers of the workspace.
//!
//! The transforms this workspace targets are multi-gigabyte; a failed
//! `Vec` growth must surface as a typed error the planner can answer
//! (shrink the buffer, retry) instead of an OOM abort. Every large
//! allocation in the executors and the tuner goes through
//! [`try_vec_zeroed`] / [`AlignedVec::try_zeroed`](crate::AlignedVec::try_zeroed);
//! infallible paths remain only for small, plan-bounded scratch.

/// A denied allocation request, as a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocError {
    /// What the allocation was for (e.g. "double buffer", "work array").
    pub what: &'static str,
    /// Requested size in bytes.
    pub bytes: usize,
}

impl core::fmt::Display for AllocError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "allocation of {} bytes for {} failed", self.bytes, self.what)
    }
}

impl std::error::Error for AllocError {}

/// Allocates a zero-initialized `Vec<T>` of `len` elements, returning a
/// typed [`AllocError`] instead of aborting when the allocator refuses.
///
/// Built on `try_reserve_exact`, so the request is answered by the real
/// allocator — there is no overcommit-probing trickery here; on Linux
/// the OOM killer can still strike later, but an honest refusal (ulimit,
/// cgroup memory ceiling, 32-bit address space) comes back as a value.
pub fn try_vec_zeroed<T: Copy + Default>(
    len: usize,
    what: &'static str,
) -> Result<Vec<T>, AllocError> {
    let mut v: Vec<T> = Vec::new();
    v.try_reserve_exact(len).map_err(|_| AllocError {
        what,
        bytes: len.saturating_mul(core::mem::size_of::<T>()),
    })?;
    v.resize(len, T::default());
    Ok(v)
}

/// Checks a request of `bytes` against an injected allocation budget
/// (`None` ≡ unlimited). Fault-injection plumbing: the executors call
/// this with `FaultPlan::fail_alloc_over` before allocating, so tests
/// can drive the OOM-recovery path deterministically on machines with
/// plenty of memory.
pub fn check_alloc_budget(
    what: &'static str,
    bytes: usize,
    budget: Option<usize>,
) -> Result<(), AllocError> {
    match budget {
        Some(limit) if bytes > limit => Err(AllocError { what, bytes }),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_requests_succeed() {
        let v = try_vec_zeroed::<f64>(1024, "test").unwrap();
        assert_eq!(v.len(), 1024);
        assert!(v.iter().all(|x| *x == 0.0));
    }

    #[test]
    fn impossible_requests_are_typed_errors() {
        // isize::MAX bytes can never be reserved.
        let e = try_vec_zeroed::<f64>(usize::MAX / 16, "huge").unwrap_err();
        assert_eq!(e.what, "huge");
        assert!(e.to_string().contains("huge"));
    }

    #[test]
    fn budget_check_is_exact() {
        assert!(check_alloc_budget("b", 100, None).is_ok());
        assert!(check_alloc_budget("b", 100, Some(100)).is_ok());
        let e = check_alloc_budget("b", 101, Some(100)).unwrap_err();
        assert_eq!(e, AllocError { what: "b", bytes: 101 });
    }
}
