//! Cacheline-aligned heap storage.
//!
//! All buffers that participate in cacheline-granular data movement — the
//! shared double buffer, the input/output arrays of the double-buffered
//! FFTs, SIMD scratch — must start on a 64-byte boundary so that a `μ`
//! block (`4 × Complex64`) never straddles two lines and non-temporal
//! stores can write whole lines.

use core::ops::{Deref, DerefMut};
use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};

use crate::alloc::AllocError;
use crate::CACHELINE_BYTES;

/// A `Vec`-like owned slice whose storage is aligned to 64 bytes.
///
/// The length is fixed at construction; this matches how the FFT code
/// uses buffers (sized once per plan, then reused).
pub struct AlignedVec<T> {
    ptr: core::ptr::NonNull<T>,
    len: usize,
}

// Safety: `AlignedVec<T>` owns its allocation exclusively, so it is Send
// and Sync whenever `T` is.
unsafe impl<T: Send> Send for AlignedVec<T> {}
unsafe impl<T: Sync> Sync for AlignedVec<T> {}

impl<T> AlignedVec<T> {
    /// Allocates `len` zero-initialized elements on a 64-byte boundary.
    ///
    /// `T` must be valid when zero-initialized (true for all the plain
    /// numeric types this workspace stores in aligned buffers).
    pub fn zeroed(len: usize) -> Self
    where
        T: Copy,
    {
        match Self::try_zeroed(len) {
            Ok(v) => v,
            Err(_) => handle_alloc_error(Self::layout(len)),
        }
    }

    /// Fallible [`zeroed`](Self::zeroed): a refused allocation comes
    /// back as a typed [`AllocError`] instead of aborting, so callers
    /// sizing multi-gigabyte buffers can shrink and retry.
    pub fn try_zeroed(len: usize) -> Result<Self, AllocError>
    where
        T: Copy,
    {
        assert!(core::mem::size_of::<T>() > 0, "zero-sized T not supported");
        let layout = Self::layout(len);
        if len == 0 {
            return Ok(Self {
                ptr: core::ptr::NonNull::dangling(),
                len: 0,
            });
        }
        // Safety: layout has nonzero size here.
        let raw = unsafe { alloc_zeroed(layout) };
        match core::ptr::NonNull::new(raw as *mut T) {
            Some(ptr) => Ok(Self { ptr, len }),
            None => Err(AllocError {
                what: "AlignedVec",
                bytes: layout.size(),
            }),
        }
    }

    /// Builds an aligned copy of `src`.
    pub fn from_slice(src: &[T]) -> Self
    where
        T: Copy,
    {
        let mut v = Self::zeroed(src.len());
        v.copy_from_slice(src);
        v
    }

    /// Fills from a generator function.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> T) -> Self
    where
        T: Copy,
    {
        let mut v = Self::zeroed(len);
        for (i, slot) in v.iter_mut().enumerate() {
            *slot = f(i);
        }
        v
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw base pointer of the allocation (dangling when empty).
    ///
    /// For callers that must form *disjoint subrange* slices across
    /// threads without materializing a whole-buffer reference — forming
    /// `&self[..]` while another thread holds `&mut` into a disjoint
    /// subrange is an aliasing violation under the stacked-borrows
    /// model even though the ranges never overlap.
    #[inline]
    pub fn base_ptr(&self) -> *mut T {
        self.ptr.as_ptr()
    }

    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // Safety: ptr is valid for len elements (or dangling with len 0).
        unsafe { core::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // Safety: exclusive ownership.
        unsafe { core::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    fn layout(len: usize) -> Layout {
        let size = core::mem::size_of::<T>() * len.max(1);
        let align = CACHELINE_BYTES.max(core::mem::align_of::<T>());
        let Ok(layout) = Layout::from_size_align(size, align) else {
            // Same contract as Vec's "capacity overflow": a request this
            // large can never be satisfied, so it is a caller bug.
            panic!("AlignedVec allocation of {size} bytes overflows the address space");
        };
        layout
    }
}

impl<T> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.len != 0 {
            // Safety: allocated with the same layout in `zeroed`.
            unsafe { dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.len)) }
        }
    }
}

impl<T> Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self)
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        self.as_slice().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn allocation_is_cacheline_aligned() {
        for len in [1usize, 3, 64, 1000, 4096] {
            let v = AlignedVec::<Complex64>::zeroed(len);
            assert_eq!(v.as_slice().as_ptr() as usize % 64, 0, "len={len}");
            assert_eq!(v.len(), len);
            assert!(v.iter().all(|c| *c == Complex64::ZERO));
        }
    }

    #[test]
    fn empty_vec_is_fine() {
        let v = AlignedVec::<f64>::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[f64]);
    }

    #[test]
    fn try_zeroed_matches_zeroed_on_success() {
        let v = AlignedVec::<Complex64>::try_zeroed(96).unwrap();
        assert_eq!(v.len(), 96);
        assert_eq!(v.as_slice().as_ptr() as usize % 64, 0);
        assert!(AlignedVec::<Complex64>::try_zeroed(0).unwrap().is_empty());
    }

    #[test]
    fn roundtrip_and_clone() {
        let src: Vec<f64> = (0..257).map(|i| i as f64 * 0.5).collect();
        let v = AlignedVec::from_slice(&src);
        assert_eq!(&v[..], &src[..]);
        let w = v.clone();
        assert_eq!(&w[..], &src[..]);
        assert_ne!(w.as_ptr(), v.as_ptr());
    }

    #[test]
    fn from_fn_indices() {
        let v = AlignedVec::from_fn(10, |i| i * i);
        assert_eq!(&v[..], &[0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn mutation_through_deref() {
        let mut v = AlignedVec::<f64>::zeroed(8);
        v[3] = 42.0;
        v.as_mut_slice()[4] = 7.0;
        assert_eq!(v[3], 42.0);
        assert_eq!(v[4], 7.0);
    }
}
