//! Error norms for verifying FFT outputs.
//!
//! FFT error grows like `O(√log n)` in the ℓ2 norm for well-implemented
//! algorithms; the test suites use [`rel_l2_error`] with a tolerance
//! scaled by problem size, and [`max_abs_error`] for small exact cases.

use crate::Complex64;

/// Maximum absolute componentwise error between two complex vectors.
pub fn max_abs_error(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

/// Relative ℓ2 error: `‖a − b‖₂ / ‖b‖₂` (with `b` the reference).
/// Returns the absolute ℓ2 norm of `a − b` if `‖b‖₂ == 0`.
pub fn rel_l2_error(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        num += (*x - *y).norm_sqr();
        den += y.norm_sqr();
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

/// Default verification tolerance for an FFT of `n` total points:
/// machine epsilon scaled by `√(log2 n)` with generous headroom.
pub fn fft_tolerance(n: usize) -> f64 {
    let lg = (n.max(2) as f64).log2();
    1e-13 * lg.sqrt() * 10.0
}

/// Asserts that `a` matches the reference `b` to within the FFT tolerance
/// for its size, with a useful failure message.
#[track_caller]
pub fn assert_fft_close(a: &[Complex64], b: &[Complex64]) {
    let tol = fft_tolerance(a.len());
    let err = rel_l2_error(a, b);
    assert!(
        err <= tol,
        "FFT output mismatch: rel_l2_error = {err:.3e} > tol {tol:.3e} (n = {})",
        a.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_for_identical_vectors() {
        let v: Vec<Complex64> = (0..32).map(|i| Complex64::new(i as f64, 1.0)).collect();
        assert_eq!(max_abs_error(&v, &v), 0.0);
        assert_eq!(rel_l2_error(&v, &v), 0.0);
        assert_fft_close(&v, &v);
    }

    #[test]
    fn relative_error_scales() {
        let b = vec![Complex64::new(100.0, 0.0); 4];
        let a = vec![Complex64::new(101.0, 0.0); 4];
        let e = rel_l2_error(&a, &b);
        assert!((e - 0.01).abs() < 1e-12);
    }

    #[test]
    fn zero_reference_falls_back_to_absolute() {
        let b = vec![Complex64::ZERO; 3];
        let a = vec![Complex64::new(3.0, 4.0), Complex64::ZERO, Complex64::ZERO];
        assert!((rel_l2_error(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "FFT output mismatch")]
    fn assert_close_fires() {
        let b = vec![Complex64::ONE; 8];
        let a = vec![Complex64::new(1.5, 0.0); 8];
        assert_fft_close(&a, &b);
    }

    #[test]
    fn tolerance_grows_slowly() {
        assert!(fft_tolerance(1 << 10) < fft_tolerance(1 << 30));
        assert!(fft_tolerance(1 << 30) < 1e-10);
    }
}
