//! Deterministic test-signal generators.
//!
//! Reproducibility matters more than statistical quality here, so the
//! generator is a tiny splitmix64 — no external RNG needed in the
//! library crates, and every test names its seed.

use crate::Complex64;

/// SplitMix64: tiny, fast, deterministic. Good enough to decorrelate FFT
/// inputs; not for cryptography or statistics.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[-1, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits → [0,1), then affine map.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        2.0 * u - 1.0
    }

    #[inline]
    pub fn next_complex(&mut self) -> Complex64 {
        Complex64::new(self.next_f64(), self.next_f64())
    }
}

/// A vector of `n` reproducible pseudo-random complex samples.
pub fn random_complex(n: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_complex()).collect()
}

/// A pure complex exponential `x[t] = e^{2πi f t / n}`: its DFT is a
/// single spike of magnitude `n` at bin `f`, the sharpest possible
/// correctness probe.
pub fn complex_tone(n: usize, freq: usize) -> Vec<Complex64> {
    (0..n)
        .map(|t| Complex64::cis(2.0 * core::f64::consts::PI * (freq * t % n) as f64 / n as f64))
        .collect()
}

/// Unit impulse at `pos`: its DFT is `ω_n^{pos·k}` for all bins `k`.
pub fn impulse(n: usize, pos: usize) -> Vec<Complex64> {
    let mut v = vec![Complex64::ZERO; n];
    v[pos] = Complex64::ONE;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let a = random_complex(64, 42);
        let b = random_complex(64, 42);
        let c = random_complex(64, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn tone_is_unit_magnitude() {
        let v = complex_tone(128, 5);
        for c in &v {
            assert!((c.abs() - 1.0).abs() < 1e-14);
        }
        assert_eq!(v[0], Complex64::ONE);
    }

    #[test]
    fn impulse_shape() {
        let v = impulse(16, 3);
        assert_eq!(v[3], Complex64::ONE);
        assert_eq!(v.iter().filter(|c| **c != Complex64::ZERO).count(), 1);
    }
}
