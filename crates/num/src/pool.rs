//! Shape-keyed pooling of [`AlignedVec`] buffers.
//!
//! A long-running FFT service executes the same handful of request
//! shapes over and over; allocating (and faulting in) fresh
//! multi-megabyte aligned arrays per request would dominate latency and
//! defeat any admission decision made earlier. [`BufferPool`] keeps
//! returned buffers on shelves keyed by element count, so the steady
//! state is allocation-free: an acquire pops a shelf, a drop of the
//! RAII [`PooledBuf`] handle pushes it back.
//!
//! The pool carries a **total byte cap** covering idle *and*
//! outstanding buffers. A miss that would exceed the cap first evicts
//! idle buffers (other shapes' cold shelves) and, if that is not
//! enough, fails with the same typed [`AllocError`] the rest of the
//! workspace uses — which is exactly what an admission controller needs
//! to shed the request instead of queueing it.

use crate::aligned::AlignedVec;
use crate::alloc::AllocError;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Counters a pool exposes for reports and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires served from a shelf (no allocation).
    pub hits: u64,
    /// Acquires that had to allocate.
    pub misses: u64,
    /// Acquires refused because the byte cap was exhausted.
    pub exhausted: u64,
    /// Buffers currently parked on shelves.
    pub idle_buffers: usize,
    /// Bytes held by checked-out buffers.
    pub outstanding_bytes: usize,
    /// Bytes held by shelved buffers.
    pub idle_bytes: usize,
}

struct PoolState<T> {
    shelves: HashMap<usize, Vec<AlignedVec<T>>>,
    outstanding_bytes: usize,
    idle_bytes: usize,
    hits: u64,
    misses: u64,
    exhausted: u64,
}

struct PoolInner<T> {
    cap_bytes: Option<usize>,
    state: Mutex<PoolState<T>>,
}

/// A thread-safe pool of cacheline-aligned buffers keyed by length.
///
/// Cloning the pool clones a handle to the same shelves.
pub struct BufferPool<T> {
    inner: Arc<PoolInner<T>>,
}

impl<T> Clone for BufferPool<T> {
    fn clone(&self) -> Self {
        BufferPool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for BufferPool<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = self.stats();
        f.debug_struct("BufferPool")
            .field("cap_bytes", &self.inner.cap_bytes)
            .field("stats", &s)
            .finish()
    }
}

fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> BufferPool<T> {
    /// A pool whose idle + outstanding bytes never exceed `cap_bytes`
    /// (`None` = uncapped).
    pub fn new(cap_bytes: Option<usize>) -> Self {
        BufferPool {
            inner: Arc::new(PoolInner {
                cap_bytes,
                state: Mutex::new(PoolState {
                    shelves: HashMap::new(),
                    outstanding_bytes: 0,
                    idle_bytes: 0,
                    hits: 0,
                    misses: 0,
                    exhausted: 0,
                }),
            }),
        }
    }

    /// The configured cap.
    pub fn cap_bytes(&self) -> Option<usize> {
        self.inner.cap_bytes
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        let state = lock_tolerant(&self.inner.state);
        PoolStats {
            hits: state.hits,
            misses: state.misses,
            exhausted: state.exhausted,
            idle_buffers: state.shelves.values().map(Vec::len).sum(),
            outstanding_bytes: state.outstanding_bytes,
            idle_bytes: state.idle_bytes,
        }
    }
}

impl<T: Copy> BufferPool<T> {
    /// Checks out a buffer of exactly `len` elements. Contents are
    /// unspecified (zeroed on first allocation, stale on reuse) — the
    /// caller overwrites them. On a miss the pool allocates, evicting
    /// idle buffers of other shapes first when the cap requires it; if
    /// the cap still cannot fit the request, returns a typed
    /// [`AllocError`] without allocating.
    pub fn acquire(&self, len: usize) -> Result<PooledBuf<T>, AllocError> {
        let bytes = len * core::mem::size_of::<T>();
        let mut state = lock_tolerant(&self.inner.state);
        if let Some(buf) = state.shelves.get_mut(&len).and_then(Vec::pop) {
            state.idle_bytes -= bytes;
            state.outstanding_bytes += bytes;
            state.hits += 1;
            return Ok(PooledBuf {
                buf: Some(buf),
                pool: Arc::clone(&self.inner),
            });
        }
        if let Some(cap) = self.inner.cap_bytes {
            // Evict cold shelves before refusing: idle bytes are ours
            // to reclaim, outstanding bytes are not.
            while state.outstanding_bytes + state.idle_bytes + bytes > cap
                && state.idle_bytes > 0
            {
                evict_one(&mut state);
            }
            if state.outstanding_bytes + state.idle_bytes + bytes > cap {
                state.exhausted += 1;
                return Err(AllocError {
                    what: "buffer pool",
                    bytes,
                });
            }
        }
        state.misses += 1;
        state.outstanding_bytes += bytes;
        // Allocate outside the accounting questions but inside the lock:
        // the cap reservation above must not race with other acquires.
        match AlignedVec::try_zeroed(len) {
            Ok(buf) => Ok(PooledBuf {
                buf: Some(buf),
                pool: Arc::clone(&self.inner),
            }),
            Err(e) => {
                state.outstanding_bytes -= bytes;
                state.misses -= 1;
                Err(e)
            }
        }
    }
}

/// Drops one idle buffer (any shape). Caller holds the lock.
fn evict_one<T>(state: &mut PoolState<T>) {
    let key = state
        .shelves
        .iter()
        .find(|(_, v)| !v.is_empty())
        .map(|(k, _)| *k);
    if let Some(len) = key {
        if let Some(shelf) = state.shelves.get_mut(&len) {
            if shelf.pop().is_some() {
                state.idle_bytes -= len * core::mem::size_of::<T>();
            }
        }
    } else {
        // No idle buffer despite idle_bytes > 0 would be an accounting
        // bug; zero the counter so the eviction loop cannot spin.
        state.idle_bytes = 0;
    }
}

/// RAII handle to a pooled buffer: derefs to the element slice and
/// returns the buffer to its shelf on drop.
pub struct PooledBuf<T> {
    buf: Option<AlignedVec<T>>,
    pool: Arc<PoolInner<T>>,
}

impl<T> core::fmt::Debug for PooledBuf<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.buf.as_ref().map_or(0, AlignedVec::len))
            .finish()
    }
}

impl<T> PooledBuf<T> {
    fn vec(&self) -> &AlignedVec<T> {
        // Invariant: `buf` is only None after drop.
        self.buf.as_ref().unwrap_or_else(|| unreachable!())
    }

    fn vec_mut(&mut self) -> &mut AlignedVec<T> {
        self.buf.as_mut().unwrap_or_else(|| unreachable!())
    }

    pub fn len(&self) -> usize {
        self.vec().len()
    }

    pub fn is_empty(&self) -> bool {
        self.vec().is_empty()
    }

    pub fn as_slice(&self) -> &[T] {
        self.vec().as_slice()
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.vec_mut().as_mut_slice()
    }
}

impl<T> core::ops::Deref for PooledBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> core::ops::DerefMut for PooledBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.vec_mut().as_mut_slice()
    }
}

impl<T> Drop for PooledBuf<T> {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            let bytes = buf.len() * core::mem::size_of::<T>();
            let mut state = lock_tolerant(&self.pool.state);
            state.outstanding_bytes -= bytes;
            state.idle_bytes += bytes;
            state.shelves.entry(buf.len()).or_default().push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn acquire_release_reuses_the_same_allocation() {
        let pool = BufferPool::<Complex64>::new(None);
        let first_ptr = {
            let buf = pool.acquire(128).unwrap();
            buf.as_slice().as_ptr()
        };
        let buf = pool.acquire(128).unwrap();
        assert_eq!(buf.as_slice().as_ptr(), first_ptr);
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn shapes_get_separate_shelves() {
        let pool = BufferPool::<Complex64>::new(None);
        drop(pool.acquire(64).unwrap());
        let b = pool.acquire(128).unwrap();
        assert_eq!(b.len(), 128);
        let s = pool.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 0);
        assert_eq!(s.idle_buffers, 1);
    }

    #[test]
    fn cap_refuses_with_typed_error_and_counts_exhaustion() {
        // Cap fits exactly one 64-element buffer (1024 bytes).
        let pool = BufferPool::<Complex64>::new(Some(1024));
        let held = pool.acquire(64).unwrap();
        let err = pool.acquire(64).unwrap_err();
        assert_eq!(err.what, "buffer pool");
        assert_eq!(err.bytes, 1024);
        assert_eq!(pool.stats().exhausted, 1);
        drop(held);
        // After release the same request is a hit.
        assert!(pool.acquire(64).is_ok());
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn cap_evicts_idle_shelves_before_refusing() {
        let pool = BufferPool::<Complex64>::new(Some(1024));
        drop(pool.acquire(64).unwrap()); // 1024 idle bytes
        // A different shape misses; the idle shelf must be evicted to
        // make room rather than the acquire failing.
        let b = pool.acquire(32).unwrap();
        assert_eq!(b.len(), 32);
        let s = pool.stats();
        assert_eq!(s.idle_buffers, 0);
        assert_eq!(s.outstanding_bytes, 512);
    }

    #[test]
    fn byte_accounting_balances() {
        let pool = BufferPool::<Complex64>::new(Some(1 << 20));
        let a = pool.acquire(100).unwrap();
        let b = pool.acquire(200).unwrap();
        assert_eq!(pool.stats().outstanding_bytes, 300 * 16);
        drop(a);
        let s = pool.stats();
        assert_eq!(s.outstanding_bytes, 200 * 16);
        assert_eq!(s.idle_bytes, 100 * 16);
        drop(b);
        let s = pool.stats();
        assert_eq!(s.outstanding_bytes, 0);
        assert_eq!(s.idle_bytes, 300 * 16);
        assert_eq!(s.idle_buffers, 2);
    }

    #[test]
    fn concurrent_acquires_never_exceed_the_cap() {
        let pool = BufferPool::<Complex64>::new(Some(4 * 1024));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        if let Ok(buf) = pool.acquire(64) {
                            std::hint::black_box(buf.len());
                        }
                        let st = pool.stats();
                        assert!(st.outstanding_bytes + st.idle_bytes <= 4 * 1024);
                    }
                });
            }
        });
    }
}
