//! Block-interleaved ("split") complex storage.
//!
//! The paper's compute kernels do not operate on interleaved `re,im`
//! pairs: following Popovici et al. (HPEC'17, ref [18] in the paper), the
//! first FFT stage changes the data format from *complex interleaved* to
//! *block interleaved*, where blocks of `μ` real parts are followed by
//! blocks of `μ` imaginary parts. In that format a `μ`-wide SIMD vector
//! holds `μ` real components of `μ` distinct complex values, so complex
//! butterflies vectorize without shuffles and computation proceeds at
//! cacheline granularity.
//!
//! This module implements the format changes and a typed view over
//! block-interleaved data.

use crate::{Complex64, MU};

/// In-place-free conversion: interleaved → block-interleaved with block
/// size `mu` (in elements). `src.len()` must be a multiple of `mu`.
///
/// Layout produced: for each block `j`,
/// `dst[2·j·mu .. 2·j·mu+mu]` holds the `mu` real parts and
/// `dst[2·j·mu+mu .. 2·j·mu+2·mu]` the `mu` imaginary parts.
pub fn interleaved_to_block(src: &[Complex64], dst: &mut [f64], mu: usize) {
    assert!(mu > 0 && src.len().is_multiple_of(mu));
    assert_eq!(dst.len(), 2 * src.len());
    for (j, blk) in src.chunks_exact(mu).enumerate() {
        let base = 2 * j * mu;
        for (i, c) in blk.iter().enumerate() {
            dst[base + i] = c.re;
            dst[base + mu + i] = c.im;
        }
    }
}

/// Inverse of [`interleaved_to_block`].
pub fn block_to_interleaved(src: &[f64], dst: &mut [Complex64], mu: usize) {
    assert!(mu > 0 && dst.len().is_multiple_of(mu));
    assert_eq!(src.len(), 2 * dst.len());
    for (j, blk) in dst.chunks_exact_mut(mu).enumerate() {
        let base = 2 * j * mu;
        for (i, c) in blk.iter_mut().enumerate() {
            c.re = src[base + i];
            c.im = src[base + mu + i];
        }
    }
}

/// A mutable view over block-interleaved data with block size [`MU`],
/// addressed by logical complex index.
pub struct SplitViewMut<'a> {
    data: &'a mut [f64],
}

impl<'a> SplitViewMut<'a> {
    /// Wraps a block-interleaved buffer. `data.len()` must be a multiple
    /// of `2·MU`.
    pub fn new(data: &'a mut [f64]) -> Self {
        assert_eq!(data.len() % (2 * MU), 0);
        Self { data }
    }

    /// Number of logical complex elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / 2
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn offsets(i: usize) -> (usize, usize) {
        let blk = i / MU;
        let lane = i % MU;
        let base = 2 * blk * MU + lane;
        (base, base + MU)
    }

    #[inline]
    pub fn get(&self, i: usize) -> Complex64 {
        let (r, im) = Self::offsets(i);
        Complex64::new(self.data[r], self.data[im])
    }

    #[inline]
    pub fn set(&mut self, i: usize, v: Complex64) {
        let (r, im) = Self::offsets(i);
        self.data[r] = v.re;
        self.data[im] = v.im;
    }

    /// Raw underlying storage.
    #[inline]
    pub fn raw(&mut self) -> &mut [f64] {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new(i as f64, -(i as f64) - 0.5))
            .collect()
    }

    #[test]
    fn roundtrip_all_block_sizes() {
        for mu in [1usize, 2, 4, 8] {
            let src = demo(4 * mu);
            let mut blocked = vec![0.0; 2 * src.len()];
            interleaved_to_block(&src, &mut blocked, mu);
            let mut back = vec![Complex64::ZERO; src.len()];
            block_to_interleaved(&blocked, &mut back, mu);
            assert_eq!(src, back, "mu={mu}");
        }
    }

    #[test]
    fn block_layout_is_re_then_im() {
        let src = demo(8);
        let mut blocked = vec![0.0; 16];
        interleaved_to_block(&src, &mut blocked, 4);
        // First block: re0..re3, im0..im3.
        assert_eq!(&blocked[0..4], &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(&blocked[4..8], &[-0.5, -1.5, -2.5, -3.5]);
        // Second block: re4..re7.
        assert_eq!(&blocked[8..12], &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn split_view_addresses_logical_elements() {
        let src = demo(16);
        let mut blocked = vec![0.0; 32];
        interleaved_to_block(&src, &mut blocked, MU);
        let mut view = SplitViewMut::new(&mut blocked);
        assert_eq!(view.len(), 16);
        for (i, expect) in src.iter().enumerate() {
            assert_eq!(view.get(i), *expect);
        }
        view.set(5, Complex64::new(99.0, -99.0));
        assert_eq!(view.get(5), Complex64::new(99.0, -99.0));
        // Other elements untouched.
        assert_eq!(view.get(4), src[4]);
        assert_eq!(view.get(6), src[6]);
    }
}
