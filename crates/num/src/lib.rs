//! Numeric foundation for the `bwfft` workspace.
//!
//! This crate provides the small set of numeric building blocks shared by
//! every other crate in the workspace:
//!
//! * [`Complex64`] — a `repr(C)` double-precision complex number with the
//!   algebraic operations the FFT kernels need, including fused
//!   multiply-by-root helpers.
//! * [`AlignedVec`] — heap storage aligned to a cacheline boundary (64
//!   bytes), the granularity at which the paper moves and reshapes data.
//! * [`split`] — views of complex data in *block-interleaved* (split
//!   real/imaginary) format, the in-cache layout of the paper's compute
//!   kernels (§IV, "cache aware FFT").
//! * [`compare`] — error norms used by the test suites (max relative
//!   error, relative ℓ2 error).
//! * [`signal`] — deterministic test-signal generators.

pub mod aligned;
pub mod alloc;
pub mod compare;
pub mod complex;
pub mod pool;
pub mod signal;
pub mod split;

pub use aligned::AlignedVec;
pub use alloc::{check_alloc_budget, try_vec_zeroed, AllocError};
pub use complex::Complex64;
pub use pool::{BufferPool, PoolStats, PooledBuf};

/// Number of bytes in a cacheline on every machine the paper targets.
pub const CACHELINE_BYTES: usize = 64;

/// Number of `Complex64` elements in one cacheline (the paper's `μ` for
/// double-precision complex data: 64 B / 16 B = 4).
pub const MU: usize = CACHELINE_BYTES / core::mem::size_of::<Complex64>();

/// Returns true if `n` is a power of two (and nonzero).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Integer base-2 logarithm of a power of two.
///
/// # Panics
/// Panics if `n` is not a power of two.
#[inline]
pub fn log2_exact(n: usize) -> u32 {
    assert!(is_pow2(n), "log2_exact: {n} is not a power of two");
    n.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mu_is_four_for_complex_double() {
        assert_eq!(MU, 4);
    }

    #[test]
    fn pow2_predicates() {
        assert!(is_pow2(1));
        assert!(is_pow2(2));
        assert!(is_pow2(1024));
        assert!(!is_pow2(0));
        assert!(!is_pow2(3));
        assert!(!is_pow2(1023));
    }

    #[test]
    fn log2_of_powers() {
        for k in 0..40 {
            assert_eq!(log2_exact(1usize << k), k);
        }
    }

    #[test]
    #[should_panic]
    fn log2_rejects_non_pow2() {
        let _ = log2_exact(12);
    }
}
