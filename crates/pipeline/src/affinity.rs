//! Thread pinning — the paper's `kmp_affinity` / `sched_setaffinity`
//! usage (§III-D).
//!
//! Pinning is what makes the role pairing of [`crate::roles`] physical:
//! a data-thread only shares its compute sibling's functional units if
//! both are pinned to the same core. Behind the `affinity` feature this
//! calls Linux `sched_setaffinity`; without it (or on other platforms)
//! pinning is a recorded no-op so the library stays portable.

/// Outcome of a pin request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinResult {
    /// The OS accepted the CPU set.
    Pinned,
    /// Pinning unavailable (feature off, non-Linux, or the CPU id does
    /// not exist on this host) — execution proceeds unpinned.
    Unavailable,
}

/// Pins the calling thread to logical CPU `cpu` if possible.
pub fn pin_current_thread(cpu: usize) -> PinResult {
    #[cfg(all(feature = "affinity", target_os = "linux"))]
    {
        if cpu >= num_cpus_online() {
            return PinResult::Unavailable;
        }
        // Safety: CPU_* only write into the local cpu_set_t.
        unsafe {
            let mut set: libc::cpu_set_t = core::mem::zeroed();
            libc::CPU_ZERO(&mut set);
            libc::CPU_SET(cpu, &mut set);
            let rc = libc::sched_setaffinity(
                0, // current thread
                core::mem::size_of::<libc::cpu_set_t>(),
                &set,
            );
            if rc == 0 {
                return PinResult::Pinned;
            }
        }
        PinResult::Unavailable
    }
    #[cfg(not(all(feature = "affinity", target_os = "linux")))]
    {
        let _ = cpu;
        PinResult::Unavailable
    }
}

/// Number of logical CPUs available to this process.
pub fn num_cpus_online() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_one_cpu() {
        assert!(num_cpus_online() >= 1);
    }

    #[test]
    fn pinning_to_cpu0_succeeds_or_degrades_gracefully() {
        // CPU 0 exists everywhere; the call must not panic either way.
        let r = pin_current_thread(0);
        assert!(matches!(r, PinResult::Pinned | PinResult::Unavailable));
    }

    #[test]
    fn pinning_to_absurd_cpu_reports_unavailable() {
        assert_eq!(pin_current_thread(100_000), PinResult::Unavailable);
    }
}
