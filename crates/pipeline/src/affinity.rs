//! Thread pinning — the paper's `kmp_affinity` / `sched_setaffinity`
//! usage (§III-D).
//!
//! Pinning is what makes the role pairing of [`crate::roles`] physical:
//! a data-thread only shares its compute sibling's functional units if
//! both are pinned to the same core. Behind the `affinity` feature this
//! calls Linux `sched_setaffinity` directly (a raw extern binding — the
//! workspace builds without the libc crate); without it (or on other
//! platforms) pinning is reported as [`PinStatus::Unsupported`].
//!
//! Pin failures are never silent: every request returns a typed
//! [`PinStatus`], the executor collects them into its run report, and
//! [`warn_on_failures`] emits a once-per-process stderr warning so
//! degraded placement is visible even to callers that ignore the
//! report.

/// Outcome of one pin request — the typed status the run report and
/// the CLI surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinStatus {
    /// The OS accepted the single-CPU set.
    Pinned { cpu: usize },
    /// The OS rejected the request (`errno` from `sched_setaffinity`,
    /// or 0 when the CPU id exceeds the online count and the syscall
    /// was not attempted).
    Failed { cpu: usize, errno: i32 },
    /// Pinning not compiled in (`affinity` feature off) or not
    /// supported on this platform.
    Unsupported,
}

impl PinStatus {
    pub fn is_pinned(&self) -> bool {
        matches!(self, PinStatus::Pinned { .. })
    }

    /// Short human-readable form for reports ("pinned@3", "failed@9
    /// (errno 22)", "unsupported").
    pub fn describe(&self) -> String {
        match self {
            PinStatus::Pinned { cpu } => format!("pinned@{cpu}"),
            PinStatus::Failed { cpu, errno } => format!("failed@{cpu} (errno {errno})"),
            PinStatus::Unsupported => "unsupported".to_string(),
        }
    }
}

#[cfg(all(feature = "affinity", target_os = "linux"))]
mod sys {
    /// 1024-CPU mask, the kernel's default `cpu_set_t` width.
    pub const MASK_WORDS: usize = 16;

    extern "C" {
        /// Provided by the platform libc, which std already links.
        pub fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
        pub fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut u64) -> i32;
    }
}

/// Probes whether affinity syscalls work here *without changing* the
/// caller's affinity: reads the current mask and writes it back
/// unchanged. Used by host-profile detection to decide whether a
/// pinned plan can be honored.
pub fn probe_pinning() -> bool {
    #[cfg(all(feature = "affinity", target_os = "linux"))]
    {
        let mut mask = [0u64; sys::MASK_WORDS];
        // Safety: mask is a valid, writable buffer of the stated size.
        let rc = unsafe {
            sys::sched_getaffinity(0, core::mem::size_of_val(&mask), mask.as_mut_ptr())
        };
        if rc != 0 {
            return false;
        }
        // Safety: same buffer, now read-only; setting the mask we just
        // read is a no-op for scheduling.
        let rc = unsafe {
            sys::sched_setaffinity(0, core::mem::size_of_val(&mask), mask.as_ptr())
        };
        rc == 0
    }
    #[cfg(not(all(feature = "affinity", target_os = "linux")))]
    {
        false
    }
}

/// Pins the calling thread to logical CPU `cpu` if possible.
pub fn pin_current_thread(cpu: usize) -> PinStatus {
    #[cfg(all(feature = "affinity", target_os = "linux"))]
    {
        if cpu >= num_cpus_online() || cpu >= sys::MASK_WORDS * 64 {
            return PinStatus::Failed { cpu, errno: 0 };
        }
        let mut mask = [0u64; sys::MASK_WORDS];
        mask[cpu / 64] = 1u64 << (cpu % 64);
        // Safety: the mask outlives the call and its length matches
        // `cpusetsize`; pid 0 addresses the calling thread.
        let rc = unsafe {
            sys::sched_setaffinity(0, core::mem::size_of_val(&mask), mask.as_ptr())
        };
        if rc == 0 {
            PinStatus::Pinned { cpu }
        } else {
            let errno = std::io::Error::last_os_error().raw_os_error().unwrap_or(-1);
            PinStatus::Failed { cpu, errno }
        }
    }
    #[cfg(not(all(feature = "affinity", target_os = "linux")))]
    {
        let _ = cpu;
        PinStatus::Unsupported
    }
}

/// Number of logical CPUs available to this process.
pub fn num_cpus_online() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Emits a single per-process stderr warning the first time any pin
/// request in `statuses` is not [`PinStatus::Pinned`]. Returns the
/// number of failed/unsupported requests.
pub fn warn_on_failures(statuses: &[PinStatus]) -> usize {
    let failed = statuses.iter().filter(|s| !s.is_pinned()).count();
    if failed > 0 {
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| {
            eprintln!(
                "bwfft-pipeline: warning: {failed}/{} thread pin request(s) not honored \
                 ({}); running with OS placement — expect degraded overlap",
                statuses.len(),
                statuses
                    .iter()
                    .find(|s| !s.is_pinned())
                    .map(|s| s.describe())
                    .unwrap_or_default(),
            );
        });
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_one_cpu() {
        assert!(num_cpus_online() >= 1);
    }

    #[test]
    fn pinning_to_cpu0_succeeds_or_reports_typed_failure() {
        // CPU 0 exists everywhere; the call must not panic either way.
        let r = pin_current_thread(0);
        assert!(matches!(
            r,
            PinStatus::Pinned { cpu: 0 } | PinStatus::Failed { cpu: 0, .. } | PinStatus::Unsupported
        ));
    }

    #[test]
    fn pinning_to_absurd_cpu_reports_failure() {
        let r = pin_current_thread(100_000);
        assert!(!r.is_pinned());
        if cfg!(all(feature = "affinity", target_os = "linux")) {
            assert_eq!(r, PinStatus::Failed { cpu: 100_000, errno: 0 });
        }
    }

    #[test]
    fn probe_is_nondestructive_and_consistent() {
        // Probing twice must agree and must not disturb the thread.
        let a = probe_pinning();
        let b = probe_pinning();
        assert_eq!(a, b);
        if cfg!(all(feature = "affinity", target_os = "linux")) {
            assert!(a, "get+set of the current mask should succeed on Linux");
        }
    }

    #[test]
    fn statuses_describe_themselves() {
        assert_eq!(PinStatus::Pinned { cpu: 3 }.describe(), "pinned@3");
        assert!(PinStatus::Failed { cpu: 9, errno: 22 }.describe().contains("errno 22"));
        assert_eq!(PinStatus::Unsupported.describe(), "unsupported");
    }

    #[test]
    fn warn_counts_failures() {
        let n = warn_on_failures(&[
            PinStatus::Pinned { cpu: 0 },
            PinStatus::Failed { cpu: 7, errno: 22 },
            PinStatus::Unsupported,
        ]);
        assert_eq!(n, 2);
        assert_eq!(warn_on_failures(&[PinStatus::Pinned { cpu: 1 }]), 0);
    }
}
