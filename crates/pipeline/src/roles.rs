//! Thread-role assignment (§III-D, §IV-A).
//!
//! Half the threads become data-threads (soft DMA engines) and half
//! become compute-threads. Pairing matters: a data-thread and a
//! compute-thread are pinned to the *same core* (Intel hyperthread
//! pair) or the same two-core module (AMD), so the pair shares its
//! functional units — data-threads issue only loads/stores, keeping
//! the floating-point pipes free for their compute sibling.

/// The role of one hardware thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Soft DMA engine: runs the `R`/`W` matrices.
    Data,
    /// Runs the batched FFT kernels.
    Compute,
}

/// One thread's placement and role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadSlot {
    /// Global thread id in `0..p`.
    pub thread: usize,
    pub socket: usize,
    /// Core within the socket.
    pub core: usize,
    pub role: Role,
    /// Index among the threads of the same role *on the same socket*
    /// (data-thread 0..p_d/sk, compute-thread 0..p_c/sk).
    pub role_index: usize,
}

/// A complete assignment for a machine shape.
#[derive(Clone, Debug)]
pub struct RoleAssignment {
    pub sockets: usize,
    pub slots: Vec<ThreadSlot>,
}

impl RoleAssignment {
    /// Splits the threads of a `sockets × cores × threads_per_core`
    /// machine half/half into paired data and compute threads.
    ///
    /// * `threads_per_core == 2` (Intel): per core, hyperthread 0
    ///   computes and hyperthread 1 moves data.
    /// * `threads_per_core == 1` (AMD / HT-off Xeon): adjacent cores
    ///   are paired (same module on AMD): even core computes, odd core
    ///   moves data. `cores_per_socket` must then be even.
    pub fn paired(sockets: usize, cores_per_socket: usize, threads_per_core: usize) -> Self {
        assert!(sockets >= 1 && cores_per_socket >= 1);
        assert!(
            threads_per_core == 2 || (threads_per_core == 1 && cores_per_socket.is_multiple_of(2)),
            "pairing requires 2 threads/core or an even core count"
        );
        let mut slots = Vec::new();
        for s in 0..sockets {
            let mut data_idx = 0;
            let mut comp_idx = 0;
            for c in 0..cores_per_socket {
                for t in 0..threads_per_core {
                    let role = if threads_per_core == 2 {
                        if t == 0 {
                            Role::Compute
                        } else {
                            Role::Data
                        }
                    } else if c % 2 == 0 {
                        Role::Compute
                    } else {
                        Role::Data
                    };
                    let role_index = match role {
                        Role::Data => {
                            let i = data_idx;
                            data_idx += 1;
                            i
                        }
                        Role::Compute => {
                            let i = comp_idx;
                            comp_idx += 1;
                            i
                        }
                    };
                    slots.push(ThreadSlot {
                        thread: slots.len(),
                        socket: s,
                        core: c,
                        role,
                        role_index,
                    });
                }
            }
        }
        Self { sockets, slots }
    }

    pub fn total_threads(&self) -> usize {
        self.slots.len()
    }

    /// Data threads per socket.
    pub fn data_per_socket(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.socket == 0 && s.role == Role::Data)
            .count()
    }

    /// Compute threads per socket.
    pub fn compute_per_socket(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.socket == 0 && s.role == Role::Compute)
            .count()
    }

    pub fn data_slots(&self) -> impl Iterator<Item = &ThreadSlot> {
        self.slots.iter().filter(|s| s.role == Role::Data)
    }

    pub fn compute_slots(&self) -> impl Iterator<Item = &ThreadSlot> {
        self.slots.iter().filter(|s| s.role == Role::Compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel_shape_pairs_hyperthreads() {
        // 4C/8T Kaby Lake: 4 data + 4 compute, one of each per core.
        let a = RoleAssignment::paired(1, 4, 2);
        assert_eq!(a.total_threads(), 8);
        assert_eq!(a.data_per_socket(), 4);
        assert_eq!(a.compute_per_socket(), 4);
        for c in 0..4 {
            let on_core: Vec<Role> = a
                .slots
                .iter()
                .filter(|s| s.core == c)
                .map(|s| s.role)
                .collect();
            assert_eq!(on_core.len(), 2);
            assert!(on_core.contains(&Role::Data));
            assert!(on_core.contains(&Role::Compute));
        }
    }

    #[test]
    fn amd_shape_pairs_module_neighbours() {
        // FX-8350: 8 single-thread cores → 4+4, alternating cores.
        let a = RoleAssignment::paired(1, 8, 1);
        assert_eq!(a.data_per_socket(), 4);
        assert_eq!(a.compute_per_socket(), 4);
        // Module (2c, 2c+1) has one of each.
        for module in 0..4 {
            let roles: Vec<Role> = a
                .slots
                .iter()
                .filter(|s| s.core / 2 == module)
                .map(|s| s.role)
                .collect();
            assert!(roles.contains(&Role::Data) && roles.contains(&Role::Compute));
        }
    }

    #[test]
    fn dual_socket_assigns_roles_per_socket() {
        let a = RoleAssignment::paired(2, 8, 1);
        assert_eq!(a.total_threads(), 16);
        for s in 0..2 {
            let data = a
                .slots
                .iter()
                .filter(|t| t.socket == s && t.role == Role::Data)
                .count();
            assert_eq!(data, 4, "socket {s}");
        }
        // role_index restarts per socket.
        let max_idx = a
            .data_slots()
            .map(|s| s.role_index)
            .max()
            .unwrap();
        assert_eq!(max_idx, 3);
    }

    #[test]
    fn thread_ids_are_dense() {
        let a = RoleAssignment::paired(2, 4, 2);
        for (i, s) in a.slots.iter().enumerate() {
            assert_eq!(s.thread, i);
        }
    }

    #[test]
    #[should_panic(expected = "pairing requires")]
    fn odd_single_thread_cores_rejected() {
        let _ = RoleAssignment::paired(1, 5, 1);
    }
}
