//! The soft-DMA double-buffering engine (§III-C, §III-D, Table II).
//!
//! This crate turns the paper's software-pipelining construction into a
//! reusable executor: a [`schedule`] generator that emits the Table II
//! prologue / steady-state / epilogue, a [`roles`] module that splits
//! hardware threads into data-threads (the soft DMA engines) and
//! compute-threads and pairs them onto cores (§IV-A), an LLC-sized
//! [`buffer`], and a real multithreaded [`exec`] that runs the schedule
//! with actual OS threads and barriers.

//!
//! # Fault tolerance
//!
//! The executor never lets a worker panic cross the library boundary:
//! failures come back as typed [`error::PipelineError`] values, a
//! shared abort flag drains surviving threads (no deadlock), and
//! [`fault::FaultPlan`] injects panics/stalls/corruptions/pin-denials
//! for resilience testing. See the `exec` module docs for the model.
//! Opt-in integrity guards ([`exec::IntegrityConfig`]) — buffer
//! canaries and per-block checksums — convert silent corruption into
//! typed [`error::PipelineError::Integrity`] failures.

pub mod affinity;
pub mod buffer;
pub mod cancel;
pub mod error;
pub mod exec;
pub mod fault;
pub mod roles;
pub mod schedule;

pub use affinity::PinStatus;
pub use buffer::{split_disjoint, BufferError, DoubleBuffer};
pub use cancel::{CancelReason, CancelToken};
pub use error::{ConfigError, IntegrityKind, PipelineError};
pub use exec::{
    block_checksum, run_pipeline, AdaptiveWatchdog, IntegrityConfig, PipelineCallbacks,
    PipelineConfig, PipelineReport,
};
pub use fault::{FaultPhase, FaultPlan, FaultSite, StallFault};
pub use roles::{Role, RoleAssignment};
pub use schedule::{PipelineStep, Schedule};
