//! The soft-DMA double-buffering engine (§III-C, §III-D, Table II).
//!
//! This crate turns the paper's software-pipelining construction into a
//! reusable executor: a [`schedule`] generator that emits the Table II
//! prologue / steady-state / epilogue, a [`roles`] module that splits
//! hardware threads into data-threads (the soft DMA engines) and
//! compute-threads and pairs them onto cores (§IV-A), an LLC-sized
//! [`buffer`], and a real multithreaded [`exec`] that runs the schedule
//! with actual OS threads and barriers.

pub mod affinity;
pub mod buffer;
pub mod exec;
pub mod roles;
pub mod schedule;

pub use buffer::DoubleBuffer;
pub use exec::{run_pipeline, PipelineCallbacks};
pub use roles::{Role, RoleAssignment};
pub use schedule::{PipelineStep, Schedule};
