//! Cooperative cancellation for pipeline runs.
//!
//! A [`CancelToken`] is a cheap, cloneable handle a caller keeps while a
//! run is in flight. The worker loops poll it at the top of every
//! pipeline step (the same place they poll the shared abort flag), so a
//! cancelled or deadline-expired run drains at the next barrier instead
//! of hanging its threads: the first worker to observe the token trips
//! the run's failure cell with a typed
//! [`PipelineError::Cancelled`](crate::error::PipelineError::Cancelled)
//! and every peer exits through the normal abort path.
//!
//! Two sources of cancellation exist, and the error records which fired:
//!
//! * an explicit [`cancel`](CancelToken::cancel) call
//!   ([`CancelReason::Shutdown`]) — e.g. a serving front end draining
//!   its workers;
//! * a wall-clock deadline attached at construction
//!   ([`CancelReason::Deadline`]) — e.g. a per-request latency budget.
//!
//! A run with no token configured pays nothing: the worker loops skip
//! the poll entirely.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a run was cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// The token's wall-clock deadline passed before the run finished.
    Deadline,
    /// The owner cancelled explicitly (drain/shutdown).
    Shutdown,
}

impl core::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CancelReason::Deadline => write!(f, "deadline exceeded"),
            CancelReason::Shutdown => write!(f, "shutdown requested"),
        }
    }
}

/// Cloneable cancellation handle shared between a run's owner and its
/// worker threads. See the module docs for the polling contract.
#[derive(Clone, Debug)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; fires only on [`cancel`](Self::cancel).
    pub fn new() -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: None,
        }
    }

    /// A token that additionally fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Requests cancellation. Idempotent; an explicit cancel reports
    /// [`CancelReason::Shutdown`] even when a deadline is also armed.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once the token has fired (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        self.fired().is_some()
    }

    /// The reason the token fired, or `None` while it is still live.
    /// An explicit [`cancel`](Self::cancel) wins over a passed deadline
    /// so drains report as shutdowns, not spurious deadline misses.
    pub fn fired(&self) -> Option<CancelReason> {
        if self.flag.load(Ordering::Acquire) {
            return Some(CancelReason::Shutdown);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Some(CancelReason::Deadline),
            _ => None,
        }
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn explicit_cancel_fires_with_shutdown_reason() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.fired(), None);
        t.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.fired(), Some(CancelReason::Shutdown));
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn passed_deadline_fires_with_deadline_reason() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.fired(), Some(CancelReason::Deadline));
        assert!(t.is_cancelled());
    }

    #[test]
    fn future_deadline_is_live_and_explicit_cancel_wins() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert_eq!(t.fired(), None);
        t.cancel();
        assert_eq!(t.fired(), Some(CancelReason::Shutdown));
    }

    #[test]
    fn reasons_render() {
        assert!(CancelReason::Deadline.to_string().contains("deadline"));
        assert!(CancelReason::Shutdown.to_string().contains("shutdown"));
    }
}
