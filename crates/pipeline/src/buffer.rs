//! The LLC-resident shared double buffer (§IV "cache aware buffer
//! allocation").
//!
//! The buffer holds `2·b` complex elements — two halves of `b` — sized
//! by the paper's rule `b = LLC/2` (leaving room for twiddles and
//! per-thread temporaries). Data threads fill one half while compute
//! threads transform the other; the executor hands out disjoint
//! mutable views across threads through a checked unsafe API.

use bwfft_num::alloc::AllocError;
use bwfft_num::{AlignedVec, Complex64};
use core::cell::UnsafeCell;

/// Elements in each canary region framing the buffer halves (one full
/// cacheline of `Complex64`, so the canaries never share a line with
/// payload data).
pub const CANARY_ELEMS: usize = 4;

/// Bit pattern stamped into every canary element's real part (the
/// imaginary part carries its complement). A quiet-NaN payload nothing
/// in the FFT pipeline could produce by arithmetic.
const CANARY_RE_BITS: u64 = 0x7FF8_DEAD_C0DE_5AFE;

#[inline]
fn canary_value() -> Complex64 {
    Complex64::new(f64::from_bits(CANARY_RE_BITS), f64::from_bits(!CANARY_RE_BITS))
}

#[inline]
fn is_canary(c: Complex64) -> bool {
    c.re.to_bits() == CANARY_RE_BITS && c.im.to_bits() == !CANARY_RE_BITS
}

/// Elements in the *middle* guard region between the two halves: one
/// canary cacheline plus the padding needed to keep the second half on
/// a 64-byte boundary.
#[inline]
fn mid_elems(half_elems: usize) -> usize {
    CANARY_ELEMS + (CANARY_ELEMS - half_elems % CANARY_ELEMS) % CANARY_ELEMS
}

/// A cacheline-aligned double buffer shared between pipeline threads.
///
/// Interior mutability is deliberate: during a pipeline step several
/// threads hold mutable views into *disjoint* regions, a pattern the
/// borrow checker cannot express across the barrier-synchronized
/// executor loop. All aliasing obligations are concentrated in
/// [`DoubleBuffer::half_range_mut`].
///
/// # Guard layout
///
/// The two payload halves are framed by three canary regions:
///
/// ```text
/// [c0: 4][ half 0: b elems ][c1: 4 + pad][ half 1: b elems ][c2: 4]
/// ```
///
/// Each canary holds a fixed NaN-boxed bit pattern no FFT phase can
/// produce. [`check_canaries`](Self::check_canaries) verifies all three
/// regions; the executor calls it at handoff barriers when integrity
/// guards are enabled, so a phase writing outside its slice is caught
/// at the next barrier instead of silently corrupting a neighbor. The
/// middle region is padded so both halves start on a 64-byte boundary.
pub struct DoubleBuffer {
    storage: UnsafeCell<AlignedVec<Complex64>>,
    half_elems: usize,
}

// Safety: all concurrent access goes through the unsafe accessors whose
// contracts require disjointness; the executor upholds them via the
// pipeline schedule (data and compute halves never coincide, shares
// within a half are disjoint ranges). Canary reads touch only the guard
// regions, which no well-formed view overlaps.
unsafe impl Sync for DoubleBuffer {}

impl DoubleBuffer {
    /// Allocates a zeroed double buffer with halves of `half_elems`.
    ///
    /// # Panics
    /// Panics if the allocation is refused; use
    /// [`try_new`](Self::try_new) where failure must be recoverable.
    pub fn new(half_elems: usize) -> Self {
        match Self::try_new(half_elems) {
            Ok(buf) => buf,
            Err(e) => panic!("double buffer allocation failed: {e}"),
        }
    }

    /// Fallible [`new`](Self::new): a refused allocation comes back as
    /// a typed [`AllocError`] so planners can shrink `b` and retry.
    pub fn try_new(half_elems: usize) -> Result<Self, AllocError> {
        assert!(half_elems > 0);
        let mid = mid_elems(half_elems);
        let total = 2 * CANARY_ELEMS + mid + 2 * half_elems;
        let mut storage = AlignedVec::<Complex64>::try_zeroed(total)?;
        let fill = canary_value();
        for slot in &mut storage[..CANARY_ELEMS] {
            *slot = fill;
        }
        let mid_start = CANARY_ELEMS + half_elems;
        for slot in &mut storage[mid_start..mid_start + mid] {
            *slot = fill;
        }
        for slot in &mut storage[total - CANARY_ELEMS..] {
            *slot = fill;
        }
        Ok(Self {
            storage: UnsafeCell::new(storage),
            half_elems,
        })
    }

    /// Elements per half (the paper's `b`).
    #[inline]
    pub fn half_elems(&self) -> usize {
        self.half_elems
    }

    /// Element offset of a half's payload within the guarded storage.
    #[inline]
    fn payload_offset(&self, half: usize) -> usize {
        debug_assert!(half < 2);
        CANARY_ELEMS + half * (self.half_elems + mid_elems(self.half_elems))
    }

    /// Shared view of a whole half. The caller must guarantee no thread
    /// holds a mutable view overlapping this half for the lifetime of
    /// the returned slice.
    ///
    /// # Safety
    /// See above; the pipeline schedule's half-parity argument is the
    /// usual justification.
    #[inline]
    pub unsafe fn half(&self, half: usize) -> &[Complex64] {
        debug_assert!(half < 2);
        let base = (*self.storage.get()).base_ptr();
        core::slice::from_raw_parts(base.add(self.payload_offset(half)), self.half_elems)
    }

    /// Mutable view of `range` within a half.
    ///
    /// # Safety
    /// The caller must guarantee that for the lifetime of the returned
    /// slice no other view (shared or mutable) overlaps
    /// `half·b + range`.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn half_range_mut(
        &self,
        half: usize,
        range: core::ops::Range<usize>,
    ) -> &mut [Complex64] {
        debug_assert!(half < 2);
        debug_assert!(range.end <= self.half_elems);
        let base = (*self.storage.get()).base_ptr();
        core::slice::from_raw_parts_mut(
            base.add(self.payload_offset(half) + range.start),
            range.len(),
        )
    }

    /// Verifies all three canary regions still hold the guard pattern.
    ///
    /// Safe to call concurrently with payload access: canary regions are
    /// disjoint from every well-formed half view, and a *mal*-formed
    /// writer that raced into a guard region is exactly what this check
    /// exists to report.
    pub fn check_canaries(&self) -> bool {
        let mid = mid_elems(self.half_elems);
        let total = 2 * CANARY_ELEMS + mid + 2 * self.half_elems;
        // Safety: reads stay within the allocation and touch only the
        // guard regions (see above).
        unsafe {
            let base = (*self.storage.get()).base_ptr();
            let region_ok = |start: usize, len: usize| {
                core::slice::from_raw_parts(base.add(start), len)
                    .iter()
                    .all(|&c| is_canary(c))
            };
            region_ok(0, CANARY_ELEMS)
                && region_ok(CANARY_ELEMS + self.half_elems, mid)
                && region_ok(total - CANARY_ELEMS, CANARY_ELEMS)
        }
    }

    /// Exclusive access to the full *guarded* storage — canary regions
    /// included (setup/teardown and guard tests only).
    pub fn storage_mut(&mut self) -> &mut [Complex64] {
        self.storage.get_mut().as_mut_slice()
    }
}

/// Splits `0..total` into `parts` near-equal contiguous ranges (the
/// executor's work partitioner; earlier parts get the remainder).
pub fn partition(total: usize, parts: usize) -> Vec<core::ops::Range<usize>> {
    assert!(parts > 0);
    let base = total / parts;
    let rem = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < rem);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, total);
    out
}

/// Rejected [`split_disjoint`] request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferError {
    /// `parts == 0`: nothing to split into.
    ZeroParts { total: usize },
    /// More parts than elements: some share would be empty, breaking
    /// the executor's every-thread-owns-work invariant.
    Oversized { total: usize, parts: usize },
}

impl core::fmt::Display for BufferError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BufferError::ZeroParts { total } => {
                write!(f, "cannot split {total} elements into 0 parts")
            }
            BufferError::Oversized { total, parts } => write!(
                f,
                "cannot split {total} elements into {parts} non-empty parts"
            ),
        }
    }
}

impl std::error::Error for BufferError {}

/// Checked variant of [`partition`]: splits `0..total` into `parts`
/// non-empty near-equal contiguous ranges, or reports why it cannot.
///
/// Unlike `partition` (which tolerates empty shares — some threads
/// simply have no work), this is the API for callers that require every
/// share to be non-empty and want a typed error instead of a panic for
/// `parts == 0` or oversized requests.
pub fn split_disjoint(
    total: usize,
    parts: usize,
) -> Result<Vec<core::ops::Range<usize>>, BufferError> {
    if parts == 0 {
        return Err(BufferError::ZeroParts { total });
    }
    if parts > total {
        return Err(BufferError::Oversized { total, parts });
    }
    Ok(partition(total, parts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halves_are_disjoint_and_sized() {
        let buf = DoubleBuffer::new(128);
        assert_eq!(buf.half_elems(), 128);
        // Safety: exclusive test access.
        unsafe {
            let h0 = buf.half_range_mut(0, 0..128);
            h0[0] = Complex64::new(1.0, 0.0);
            h0[127] = Complex64::new(2.0, 0.0);
        }
        unsafe {
            let h1 = buf.half(1);
            assert_eq!(h1[0], Complex64::ZERO);
            assert_eq!(h1[127], Complex64::ZERO);
            let h0 = buf.half(0);
            assert_eq!(h0[0], Complex64::new(1.0, 0.0));
        }
        // Payload writes at the half boundaries never disturb the guards.
        assert!(buf.check_canaries());
    }

    #[test]
    fn both_halves_are_cacheline_aligned() {
        // Halves whose element count is and is not a multiple of a
        // cacheline; the middle guard's padding must absorb both.
        for b in [64usize, 100, 128, 130] {
            let buf = DoubleBuffer::new(b);
            // Safety: exclusive test access, shared views only.
            unsafe {
                assert_eq!(buf.half(0).as_ptr() as usize % 64, 0, "b={b} half 0");
                assert_eq!(buf.half(1).as_ptr() as usize % 64, 0, "b={b} half 1");
            }
            assert!(buf.check_canaries(), "b={b}");
        }
    }

    #[test]
    fn guarded_storage_includes_canary_regions() {
        let mut buf = DoubleBuffer::new(128);
        // 128 % 4 == 0, so the middle guard is exactly one canary line.
        assert_eq!(buf.storage_mut().len(), 256 + 3 * CANARY_ELEMS);
        assert_eq!(buf.storage_mut().as_ptr() as usize % 64, 0);
    }

    #[test]
    fn clobbered_canary_is_detected() {
        for region_probe in [
            0usize,                        // head guard
            CANARY_ELEMS + 128,            // middle guard, first element
            CANARY_ELEMS + 128 + CANARY_ELEMS + 128, // tail guard
        ] {
            let mut buf = DoubleBuffer::new(128);
            assert!(buf.check_canaries());
            buf.storage_mut()[region_probe] = Complex64::new(0.0, 0.0);
            assert!(!buf.check_canaries(), "probe at {region_probe}");
        }
    }

    #[test]
    fn try_new_matches_new() {
        let buf = DoubleBuffer::try_new(96).unwrap();
        assert_eq!(buf.half_elems(), 96);
        assert!(buf.check_canaries());
    }

    #[test]
    fn partition_covers_exactly() {
        for (total, parts) in [(100usize, 3usize), (7, 7), (8, 3), (5, 1), (0, 2)] {
            let ranges = partition(total, parts);
            assert_eq!(ranges.len(), parts);
            let mut expect = 0;
            for r in &ranges {
                assert_eq!(r.start, expect);
                expect = r.end;
            }
            assert_eq!(expect, total);
            // Near-equal: sizes differ by at most 1.
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn split_disjoint_rejects_degenerate_requests() {
        assert_eq!(split_disjoint(10, 0), Err(BufferError::ZeroParts { total: 10 }));
        assert_eq!(
            split_disjoint(3, 5),
            Err(BufferError::Oversized { total: 3, parts: 5 })
        );
        let ranges = split_disjoint(10, 3).unwrap();
        assert_eq!(ranges.len(), 3);
        assert!(ranges.iter().all(|r| !r.is_empty()));
        assert!(BufferError::ZeroParts { total: 1 }.to_string().contains("0 parts"));
    }
}
