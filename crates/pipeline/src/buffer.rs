//! The LLC-resident shared double buffer (§IV "cache aware buffer
//! allocation").
//!
//! The buffer holds `2·b` complex elements — two halves of `b` — sized
//! by the paper's rule `b = LLC/2` (leaving room for twiddles and
//! per-thread temporaries). Data threads fill one half while compute
//! threads transform the other; the executor hands out disjoint
//! mutable views across threads through a checked unsafe API.

use bwfft_num::{AlignedVec, Complex64};
use core::cell::UnsafeCell;

/// A cacheline-aligned double buffer shared between pipeline threads.
///
/// Interior mutability is deliberate: during a pipeline step several
/// threads hold mutable views into *disjoint* regions, a pattern the
/// borrow checker cannot express across the barrier-synchronized
/// executor loop. All aliasing obligations are concentrated in
/// [`DoubleBuffer::half_range_mut`].
pub struct DoubleBuffer {
    storage: UnsafeCell<AlignedVec<Complex64>>,
    half_elems: usize,
}

// Safety: all concurrent access goes through the unsafe accessors whose
// contracts require disjointness; the executor upholds them via the
// pipeline schedule (data and compute halves never coincide, shares
// within a half are disjoint ranges).
unsafe impl Sync for DoubleBuffer {}

impl DoubleBuffer {
    /// Allocates a zeroed double buffer with halves of `half_elems`.
    pub fn new(half_elems: usize) -> Self {
        assert!(half_elems > 0);
        Self {
            storage: UnsafeCell::new(AlignedVec::zeroed(2 * half_elems)),
            half_elems,
        }
    }

    /// Elements per half (the paper's `b`).
    #[inline]
    pub fn half_elems(&self) -> usize {
        self.half_elems
    }

    /// Shared view of a whole half. The caller must guarantee no thread
    /// holds a mutable view overlapping this half for the lifetime of
    /// the returned slice.
    ///
    /// # Safety
    /// See above; the pipeline schedule's half-parity argument is the
    /// usual justification.
    #[inline]
    pub unsafe fn half(&self, half: usize) -> &[Complex64] {
        debug_assert!(half < 2);
        let v = &*self.storage.get();
        &v.as_slice()[half * self.half_elems..(half + 1) * self.half_elems]
    }

    /// Mutable view of `range` within a half.
    ///
    /// # Safety
    /// The caller must guarantee that for the lifetime of the returned
    /// slice no other view (shared or mutable) overlaps
    /// `half·b + range`.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn half_range_mut(
        &self,
        half: usize,
        range: core::ops::Range<usize>,
    ) -> &mut [Complex64] {
        debug_assert!(half < 2);
        debug_assert!(range.end <= self.half_elems);
        let v = &mut *self.storage.get();
        let base = half * self.half_elems;
        &mut v.as_mut_slice()[base + range.start..base + range.end]
    }

    /// Exclusive access to the full storage (setup/teardown only).
    pub fn storage_mut(&mut self) -> &mut [Complex64] {
        self.storage.get_mut().as_mut_slice()
    }
}

/// Splits `0..total` into `parts` near-equal contiguous ranges (the
/// executor's work partitioner; earlier parts get the remainder).
pub fn partition(total: usize, parts: usize) -> Vec<core::ops::Range<usize>> {
    assert!(parts > 0);
    let base = total / parts;
    let rem = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < rem);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, total);
    out
}

/// Rejected [`split_disjoint`] request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferError {
    /// `parts == 0`: nothing to split into.
    ZeroParts { total: usize },
    /// More parts than elements: some share would be empty, breaking
    /// the executor's every-thread-owns-work invariant.
    Oversized { total: usize, parts: usize },
}

impl core::fmt::Display for BufferError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BufferError::ZeroParts { total } => {
                write!(f, "cannot split {total} elements into 0 parts")
            }
            BufferError::Oversized { total, parts } => write!(
                f,
                "cannot split {total} elements into {parts} non-empty parts"
            ),
        }
    }
}

impl std::error::Error for BufferError {}

/// Checked variant of [`partition`]: splits `0..total` into `parts`
/// non-empty near-equal contiguous ranges, or reports why it cannot.
///
/// Unlike `partition` (which tolerates empty shares — some threads
/// simply have no work), this is the API for callers that require every
/// share to be non-empty and want a typed error instead of a panic for
/// `parts == 0` or oversized requests.
pub fn split_disjoint(
    total: usize,
    parts: usize,
) -> Result<Vec<core::ops::Range<usize>>, BufferError> {
    if parts == 0 {
        return Err(BufferError::ZeroParts { total });
    }
    if parts > total {
        return Err(BufferError::Oversized { total, parts });
    }
    Ok(partition(total, parts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halves_are_disjoint_and_sized() {
        let mut buf = DoubleBuffer::new(128);
        assert_eq!(buf.half_elems(), 128);
        assert_eq!(buf.storage_mut().len(), 256);
        // Safety: exclusive test access.
        unsafe {
            let h0 = buf.half_range_mut(0, 0..128);
            h0[0] = Complex64::new(1.0, 0.0);
        }
        unsafe {
            let h1 = buf.half(1);
            assert_eq!(h1[0], Complex64::ZERO);
            let h0 = buf.half(0);
            assert_eq!(h0[0], Complex64::new(1.0, 0.0));
        }
    }

    #[test]
    fn buffer_is_cacheline_aligned() {
        let mut buf = DoubleBuffer::new(64);
        assert_eq!(buf.storage_mut().as_ptr() as usize % 64, 0);
    }

    #[test]
    fn partition_covers_exactly() {
        for (total, parts) in [(100usize, 3usize), (7, 7), (8, 3), (5, 1), (0, 2)] {
            let ranges = partition(total, parts);
            assert_eq!(ranges.len(), parts);
            let mut expect = 0;
            for r in &ranges {
                assert_eq!(r.start, expect);
                expect = r.end;
            }
            assert_eq!(expect, total);
            // Near-equal: sizes differ by at most 1.
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn split_disjoint_rejects_degenerate_requests() {
        assert_eq!(split_disjoint(10, 0), Err(BufferError::ZeroParts { total: 10 }));
        assert_eq!(
            split_disjoint(3, 5),
            Err(BufferError::Oversized { total: 3, parts: 5 })
        );
        let ranges = split_disjoint(10, 3).unwrap();
        assert_eq!(ranges.len(), 3);
        assert!(ranges.iter().all(|r| !r.is_empty()));
        assert!(BufferError::ZeroParts { total: 1 }.to_string().contains("0 parts"));
    }
}
