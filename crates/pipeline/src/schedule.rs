//! Software-pipeline schedule generation — Table II of the paper.
//!
//! For `iters` blocks, the pipeline runs `iters + 2` steps. At step
//! `i`, the data threads first store block `i−2` (from buffer half
//! `i mod 2`) and then load block `i` (into the same half), while the
//! compute threads transform block `i−1` in the other half. The store
//! must precede the load within a step because they reuse the half.

/// What happens at one pipeline step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineStep {
    /// Step index `i` in `0 .. iters+2`.
    pub step: usize,
    /// Block stored this step (`i − 2`, if in range).
    pub store: Option<usize>,
    /// Block loaded this step (`i`, if in range).
    pub load: Option<usize>,
    /// Block computed this step (`i − 1`, if in range).
    pub compute: Option<usize>,
}

impl PipelineStep {
    /// Which half of the double buffer a block occupies.
    #[inline]
    pub fn half_of(block: usize) -> usize {
        block % 2
    }

    /// The half the data threads touch this step (store + load).
    pub fn data_half(&self) -> Option<usize> {
        self.load
            .or(self.store)
            .map(Self::half_of)
    }

    /// The half the compute threads touch this step.
    pub fn compute_half(&self) -> Option<usize> {
        self.compute.map(Self::half_of)
    }

    /// Phase classification for reporting.
    pub fn phase(&self, iters: usize) -> Phase {
        let _ = iters;
        match (self.store, self.load, self.compute) {
            (None, Some(_), None) | (None, Some(_), Some(_)) => Phase::Prologue,
            (Some(_), Some(_), Some(_)) => Phase::Steady,
            _ => Phase::Epilogue,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    Prologue,
    Steady,
    Epilogue,
}

/// The whole schedule for `iters` blocks.
///
/// ```
/// use bwfft_pipeline::Schedule;
///
/// let s = Schedule::new(4);
/// assert_eq!(s.len(), 6); // prologue + 4 blocks + epilogue drain
/// // Steady state: step 2 stores block 0, loads block 2, computes 1.
/// let step = &s.steps()[2];
/// assert_eq!((step.store, step.load, step.compute),
///            (Some(0), Some(2), Some(1)));
/// ```
#[derive(Clone, Debug)]
pub struct Schedule {
    pub iters: usize,
    steps: Vec<PipelineStep>,
}

impl Schedule {
    pub fn new(iters: usize) -> Self {
        assert!(iters >= 1);
        let mut steps = Vec::with_capacity(iters + 2);
        for i in 0..iters + 2 {
            steps.push(PipelineStep {
                step: i,
                store: i.checked_sub(2).filter(|s| *s < iters),
                load: Some(i).filter(|l| *l < iters),
                compute: i.checked_sub(1).filter(|c| *c < iters),
            });
        }
        Self { iters, steps }
    }

    pub fn steps(&self) -> &[PipelineStep] {
        &self.steps
    }

    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Renders the schedule as a Table II-style text table (used by the
    /// `table2_pipeline` harness).
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} | {:<22} | {:<22} | {:<22} | phase",
            "i", "Store (data threads)", "Load (data threads)", "Compute (compute threads)"
        );
        let _ = writeln!(out, "{}", "-".repeat(102));
        for s in &self.steps {
            let fmt_store = s
                .store
                .map(|b| format!("y = W[b,{}] t[{}]", b, PipelineStep::half_of(b)))
                .unwrap_or_default();
            let fmt_load = s
                .load
                .map(|b| format!("t[{}] = R[b,{}] x", PipelineStep::half_of(b), b))
                .unwrap_or_default();
            let fmt_comp = s
                .compute
                .map(|b| format!("t[{0}] = FFT t[{0}]", PipelineStep::half_of(b)))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{:>6} | {:<22} | {:<22} | {:<22} | {:?}",
                s.step,
                fmt_store,
                fmt_load,
                fmt_comp,
                s.phase(self.iters)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_block_is_loaded_computed_stored_exactly_once() {
        for iters in [1usize, 2, 3, 7, 100] {
            let s = Schedule::new(iters);
            let mut loaded = vec![0usize; iters];
            let mut computed = vec![0usize; iters];
            let mut stored = vec![0usize; iters];
            for step in s.steps() {
                if let Some(b) = step.load {
                    loaded[b] += 1;
                }
                if let Some(b) = step.compute {
                    computed[b] += 1;
                }
                if let Some(b) = step.store {
                    stored[b] += 1;
                }
            }
            assert!(loaded.iter().all(|c| *c == 1), "iters={iters}");
            assert!(computed.iter().all(|c| *c == 1));
            assert!(stored.iter().all(|c| *c == 1));
        }
    }

    #[test]
    fn dependencies_are_respected() {
        // Block b: load at step b, compute at b+1, store at b+2.
        let s = Schedule::new(10);
        for step in s.steps() {
            if let Some(b) = step.load {
                assert_eq!(step.step, b);
            }
            if let Some(b) = step.compute {
                assert_eq!(step.step, b + 1);
            }
            if let Some(b) = step.store {
                assert_eq!(step.step, b + 2);
            }
        }
    }

    #[test]
    fn data_and_compute_touch_different_halves_in_steady_state() {
        let s = Schedule::new(16);
        for step in s.steps() {
            if let (Some(dh), Some(ch)) = (step.data_half(), step.compute_half()) {
                assert_ne!(dh, ch, "step {}", step.step);
            }
        }
    }

    #[test]
    fn store_and_load_share_a_half_with_store_first() {
        // At a steady-state step the stored block (i−2) and the loaded
        // block (i) have the same parity — the half is recycled within
        // the step, which is why the executor orders store before load.
        let s = Schedule::new(16);
        for step in s.steps() {
            if let (Some(st), Some(ld)) = (step.store, step.load) {
                assert_eq!(PipelineStep::half_of(st), PipelineStep::half_of(ld));
            }
        }
    }

    #[test]
    fn table_ii_shape_for_small_run() {
        let s = Schedule::new(4);
        assert_eq!(s.len(), 6);
        // Step 0: pure load (prologue).
        assert_eq!(s.steps()[0].load, Some(0));
        assert_eq!(s.steps()[0].compute, None);
        assert_eq!(s.steps()[0].store, None);
        // Step 1: load 1 + compute 0 (prologue).
        assert_eq!(s.steps()[1].load, Some(1));
        assert_eq!(s.steps()[1].compute, Some(0));
        // Step 2: full steady state.
        assert_eq!(s.steps()[2].store, Some(0));
        assert_eq!(s.steps()[2].load, Some(2));
        assert_eq!(s.steps()[2].compute, Some(1));
        // Last step: pure store (epilogue).
        let last = s.steps().last().unwrap();
        assert_eq!(last.store, Some(3));
        assert_eq!(last.load, None);
        assert_eq!(last.compute, None);
    }

    #[test]
    fn phases_progress_monotonically() {
        let s = Schedule::new(8);
        let phases: Vec<Phase> = s.steps().iter().map(|st| st.phase(8)).collect();
        let first_steady = phases.iter().position(|p| *p == Phase::Steady).unwrap();
        let first_epi = phases.iter().position(|p| *p == Phase::Epilogue).unwrap();
        assert!(first_steady < first_epi);
        assert!(phases[..first_steady]
            .iter()
            .all(|p| *p == Phase::Prologue));
        assert!(phases[first_epi..].iter().all(|p| *p == Phase::Epilogue));
    }

    #[test]
    fn render_table_mentions_all_steps() {
        let s = Schedule::new(3);
        let table = s.render_table();
        assert!(table.contains("W[b,0]"));
        assert!(table.contains("R[b,2]"));
        assert!(table.contains("Prologue") && table.contains("Epilogue"));
    }
}
