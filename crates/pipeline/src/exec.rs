//! The real multithreaded pipeline executor.
//!
//! Runs the Table II schedule with OS threads: `p_d` data threads and
//! `p_c` compute threads iterate the schedule in lockstep, separated by
//! two barriers per step — a data-side barrier between the store and
//! load phases (they recycle the same buffer half) and a global barrier
//! closing the step (the paper's `#pragma omp barrier`).
//!
//! The executor is transform-agnostic: callers provide per-thread
//! load/compute/store callbacks; `bwfft-core` instantiates them with
//! the `R`/`W` matrices and batched FFT kernels, and the tests here use
//! trivial arithmetic to verify the orchestration itself.
//!
//! # Fault model
//!
//! A barrier-synchronized pipeline dies ugly by default: one panicking
//! worker unwinds past its barrier arrivals and every surviving thread
//! deadlocks. This executor therefore:
//!
//! * wraps every Load/Compute/Store callback invocation in
//!   [`std::panic::catch_unwind`];
//! * replaces `std::sync::Barrier` with an abort-aware barrier that
//!   re-checks a shared abort flag while waiting, so when any worker
//!   trips the flag all peers *drain* (exit their step loop) instead of
//!   waiting forever;
//! * optionally arms a per-wait watchdog ([`PipelineConfig::iter_timeout`])
//!   that converts a stalled peer into a typed
//!   [`PipelineError::StageTimeout`];
//! * joins every thread and returns the first failure as a typed
//!   [`PipelineError::WorkerPanicked`] / `StageTimeout` value — the
//!   panic never crosses the library boundary.
//!
//! A truly wedged worker (one that never returns from its callback) is
//! *detected* by peers through the watchdog, but `run_pipeline` still
//! joins it before returning: the executor uses scoped threads, so the
//! typed error is produced as soon as the straggler's callback returns.
//! Injected faults ([`crate::fault::FaultPlan`]) are always finite.

use crate::affinity::{self, PinStatus};
use crate::buffer::{partition, DoubleBuffer};
use crate::cancel::CancelToken;
use crate::error::{ConfigError, IntegrityKind, PipelineError};
use crate::fault::{FaultPhase, FaultPlan};
use crate::roles::Role;
use crate::schedule::{PipelineStep, Schedule};
use bwfft_num::Complex64;
use bwfft_trace::{MarkKind, Phase, ThreadTracer, TraceCollector, TraceRole};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Per-data-thread loader: `(block, offset_in_block, share)` — fill
/// `share` with the block's elements starting at `offset_in_block`.
pub type LoadFn<'a> = Box<dyn FnMut(usize, usize, &mut [Complex64]) + Send + 'a>;

/// Per-data-thread storer: `(block, whole_half)` — write this thread's
/// packet share of the block to the destination array.
pub type StoreFn<'a> = Box<dyn FnMut(usize, &[Complex64]) + Send + 'a>;

/// Per-compute-thread kernel: `(block, offset_in_block, share)` —
/// transform `share` in place.
pub type ComputeFn<'a> = Box<dyn FnMut(usize, usize, &mut [Complex64]) + Send + 'a>;

/// The per-thread callbacks of one pipeline run.
pub struct PipelineCallbacks<'a> {
    pub loaders: Vec<LoadFn<'a>>,
    pub storers: Vec<StoreFn<'a>>,
    pub computes: Vec<ComputeFn<'a>>,
}

/// Execution configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Number of blocks (`knm/b` in the paper).
    pub iters: usize,
    /// Indivisible unit (elements) for partitioning loads across data
    /// threads — typically `μ`.
    pub load_unit: usize,
    /// Indivisible unit (elements) for partitioning compute across
    /// compute threads — the pencil size `m·s`.
    pub compute_unit: usize,
    /// Optional CPU pinning: one CPU id per thread, data threads first
    /// then compute threads.
    pub pin_cpus: Option<Vec<usize>>,
    /// Watchdog: longest a thread may wait at one barrier before the
    /// run is aborted with [`PipelineError::StageTimeout`]. `None`
    /// disables the watchdog (waits are unbounded, as with
    /// `std::sync::Barrier`). Superseded per-wait by
    /// [`adaptive_watchdog`](Self::adaptive_watchdog) when that is set.
    pub iter_timeout: Option<Duration>,
    /// Faults to inject (tests / resilience drills). `None` ≡ no faults.
    pub fault: Option<FaultPlan>,
    /// Pipeline stage index stamped onto recorded trace spans (a
    /// multi-stage FFT runs one pipeline per stage).
    pub stage: usize,
    /// Span/mark sink. `None` (the default) disables tracing: worker
    /// loops then skip every clock read, so the hot path is unchanged.
    pub trace: Option<Arc<TraceCollector>>,
    /// Measured-epoch watchdog: barrier-wait budgets derived from the
    /// slowest *observed* step instead of a caller-guessed constant.
    /// Takes precedence over [`iter_timeout`](Self::iter_timeout).
    pub adaptive_watchdog: Option<AdaptiveWatchdog>,
    /// Integrity guards (canaries, per-block checksums). Disabled by
    /// default: a disabled guard costs nothing on the hot path.
    pub integrity: IntegrityConfig,
    /// Cooperative cancellation: workers poll the token at every step
    /// boundary and abort the run with [`PipelineError::Cancelled`]
    /// when it fires (per-request deadline or explicit drain). `None`
    /// (the default) skips the poll entirely.
    pub cancel: Option<CancelToken>,
}

/// Which integrity guards a pipeline run arms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegrityConfig {
    /// Verify the buffer's canary regions at each handoff barrier; a
    /// clobbered canary aborts the run with
    /// [`PipelineError::Integrity`] of kind
    /// [`IntegrityKind::Canary`].
    pub canaries: bool,
    /// Carry an order-independent per-block checksum load → compute →
    /// store: each phase accumulates its share's checksum and the last
    /// thread to arrive at the next phase compares, so silent buffer
    /// corruption between handoffs aborts the run with
    /// [`IntegrityKind::Checksum`] instead of producing a wrong answer.
    pub checksums: bool,
}

impl IntegrityConfig {
    /// All guards on.
    pub fn full() -> Self {
        IntegrityConfig {
            canaries: true,
            checksums: true,
        }
    }

    /// True when any guard is armed.
    pub fn enabled(self) -> bool {
        self.canaries || self.checksums
    }
}

/// Order-independent checksum of a complex slice: the wrapping sum of
/// every component's bit pattern. Addition commutes, so partial sums
/// over any disjoint cover of a block combine to the same total — each
/// thread checksums only its own share, under the load *or* the compute
/// partition, with no extra synchronization.
/// Four independent accumulators break the loop-carried dependency so
/// the reduction vectorizes; wrapping addition commutes, so the total
/// is identical to the naive fold. This runs once per phase per block —
/// it is the dominant cost of `IntegrityConfig::checksums` and must
/// stay near memory speed.
#[inline]
pub fn block_checksum(xs: &[Complex64]) -> u64 {
    let mut lanes = [0u64; 4];
    let mut chunks = xs.chunks_exact(4);
    for c in &mut chunks {
        for (lane, v) in lanes.iter_mut().zip(c) {
            *lane = lane
                .wrapping_add(v.re.to_bits())
                .wrapping_add(v.im.to_bits());
        }
    }
    let mut sum = lanes
        .iter()
        .fold(0u64, |acc, lane| acc.wrapping_add(*lane));
    for v in chunks.remainder() {
        sum = sum
            .wrapping_add(v.re.to_bits())
            .wrapping_add(v.im.to_bits());
    }
    sum
}

/// One checksum accumulator: partial sums and an arrival count.
#[derive(Default)]
struct ChecksumSlot {
    sum: AtomicU64,
    arrivals: AtomicUsize,
}

impl ChecksumSlot {
    /// Adds a partial checksum; returns the arrival count including this
    /// one. AcqRel ordering makes every earlier arrival's partial sum
    /// visible to the last arriver, which does the comparison.
    fn add(&self, partial: u64) -> usize {
        self.sum.fetch_add(partial, Ordering::AcqRel);
        self.arrivals.fetch_add(1, Ordering::AcqRel) + 1
    }

    fn total(&self) -> u64 {
        self.sum.load(Ordering::Acquire)
    }
}

/// Per-block checksum ledger: one slot per (block, handoff point).
///
/// `loaded[blk]` is accumulated by the data threads as they load,
/// `pre_compute[blk]` by the compute threads just before the kernel
/// (last arriver compares it against `loaded[blk]`), `computed[blk]`
/// just after the kernel, and `pre_store[blk]` by the data threads just
/// before the store (last arriver compares against `computed[blk]`).
/// The pipeline's own barriers order each accumulation phase before its
/// comparison phase, so no extra synchronization is needed.
struct ChecksumLedger {
    loaded: Vec<ChecksumSlot>,
    pre_compute: Vec<ChecksumSlot>,
    computed: Vec<ChecksumSlot>,
    pre_store: Vec<ChecksumSlot>,
}

impl ChecksumLedger {
    fn new(blocks: usize) -> Self {
        let make = || (0..blocks).map(|_| ChecksumSlot::default()).collect();
        ChecksumLedger {
            loaded: make(),
            pre_compute: make(),
            computed: make(),
            pre_store: make(),
        }
    }
}

/// Watchdog policy that scales with measured iteration time.
///
/// Until the first step completes there is no measurement, so waits get
/// the generous `warmup` budget; afterwards each wait may last at most
/// `multiplier ×` the slowest step seen so far, floored at `min` so
/// micro-benchmarks with nanosecond steps don't turn scheduler jitter
/// into spurious [`PipelineError::StageTimeout`]s.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveWatchdog {
    /// Budget multiple of the slowest observed step.
    pub multiplier: f64,
    /// Lower bound on the derived budget.
    pub min: Duration,
    /// Budget used before any step has been measured.
    pub warmup: Duration,
}

impl Default for AdaptiveWatchdog {
    fn default() -> Self {
        AdaptiveWatchdog {
            multiplier: 8.0,
            min: Duration::from_millis(50),
            warmup: Duration::from_secs(5),
        }
    }
}

impl Default for PipelineConfig {
    /// A placeholder config: 1 block, unit partitions, no pinning, no
    /// watchdog, no faults. Callers override `iters` and the units.
    fn default() -> Self {
        PipelineConfig {
            iters: 1,
            load_unit: 1,
            compute_unit: 1,
            pin_cpus: None,
            iter_timeout: None,
            fault: None,
            stage: 0,
            trace: None,
            adaptive_watchdog: None,
            integrity: IntegrityConfig::default(),
            cancel: None,
        }
    }
}

/// What a successful run reports back.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// Blocks processed (the configured `iters`).
    pub blocks: usize,
    /// One pin status per thread (data threads first), empty when no
    /// pinning was requested.
    pub pin_status: Vec<PinStatus>,
    /// Number of pin requests that were not honored.
    pub pin_failures: usize,
}

/// How a barrier wait ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WaitOutcome {
    /// All expected threads arrived; proceed.
    Released,
    /// The shared abort flag was tripped by a peer; drain.
    Aborted,
    /// The watchdog expired before the peers arrived.
    TimedOut,
}

/// First-failure cell shared by all pipeline threads: records the first
/// typed error and flips the abort flag every barrier wait polls.
struct FailureCell {
    aborted: AtomicBool,
    first: Mutex<Option<PipelineError>>,
}

impl FailureCell {
    fn new() -> Self {
        FailureCell {
            aborted: AtomicBool::new(false),
            first: Mutex::new(None),
        }
    }

    #[inline]
    fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Records `err` if it is the first failure and trips the abort
    /// flag either way.
    fn trip(&self, err: PipelineError) {
        let mut guard = lock_tolerant(&self.first);
        guard.get_or_insert(err);
        drop(guard);
        self.aborted.store(true, Ordering::Release);
    }

    fn into_error(self) -> Option<PipelineError> {
        self.first
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-tolerant lock: a peer panicking while holding the lock is
/// exactly the situation this executor must survive.
fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A reusable counting barrier whose waiters poll the shared abort flag
/// and an optional watchdog deadline instead of blocking indefinitely.
///
/// Unlike `std::sync::Barrier`, a wait here can end three ways
/// ([`WaitOutcome`]); after any `Aborted`/`TimedOut` outcome the caller
/// must drain (the barrier is left untouched — no thread reuses it once
/// the run is aborted).
struct AbortableBarrier {
    expected: usize,
    state: Mutex<BarrierState>,
    cvar: Condvar,
}

struct BarrierState {
    count: usize,
    generation: u64,
}

/// How often waiters re-check the abort flag. Pure failure-path
/// latency: on the happy path waiters are woken by the last arrival.
const ABORT_POLL: Duration = Duration::from_millis(2);

impl AbortableBarrier {
    fn new(expected: usize) -> Self {
        AbortableBarrier {
            expected,
            state: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
            }),
            cvar: Condvar::new(),
        }
    }

    fn wait(&self, fail: &FailureCell, timeout: Option<Duration>) -> WaitOutcome {
        if fail.is_aborted() {
            return WaitOutcome::Aborted;
        }
        let mut state = lock_tolerant(&self.state);
        let generation = state.generation;
        state.count += 1;
        if state.count == self.expected {
            state.count = 0;
            state.generation = state.generation.wrapping_add(1);
            drop(state);
            self.cvar.notify_all();
            return WaitOutcome::Released;
        }
        let start = Instant::now();
        loop {
            let (next, _) = self
                .cvar
                .wait_timeout(state, ABORT_POLL)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
            if state.generation != generation {
                return WaitOutcome::Released;
            }
            if fail.is_aborted() {
                return WaitOutcome::Aborted;
            }
            if let Some(t) = timeout {
                if start.elapsed() >= t {
                    return WaitOutcome::TimedOut;
                }
            }
        }
    }
}

/// Renders a caught panic payload for the typed error.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs one contained phase. Returns `true` to continue, `false` when
/// the phase panicked (the failure cell is tripped with the payload).
fn contained_phase(
    fail: &FailureCell,
    role: Role,
    thread: usize,
    iter: usize,
    phase: impl FnOnce(),
) -> bool {
    match catch_unwind(AssertUnwindSafe(phase)) {
        Ok(()) => true,
        Err(payload) => {
            fail.trip(PipelineError::WorkerPanicked {
                role,
                thread,
                iter,
                message: panic_message(payload),
            });
            false
        }
    }
}

/// Prefix of injected-fault panic messages —
/// [`crate::fault::silence_injected_panic_reports`] keys on it.
pub const INJECTED_FAULT_PREFIX: &str = "injected fault";

/// Shared per-run context the worker loops borrow.
struct RunCtx<'r> {
    buffer: &'r DoubleBuffer,
    schedule: &'r Schedule,
    data_barrier: &'r AbortableBarrier,
    global_barrier: &'r AbortableBarrier,
    fail: &'r FailureCell,
    timeout: Option<Duration>,
    fault: &'r FaultPlan,
    stage: usize,
    trace: Option<&'r TraceCollector>,
    watchdog: Option<AdaptiveWatchdog>,
    /// Slowest observed step, ns (0 = nothing measured yet). Feeds the
    /// adaptive watchdog so stall detection uses measured, not assumed,
    /// iteration times.
    epoch_ns: &'r AtomicU64,
    integrity: IntegrityConfig,
    /// Checksum ledger; present iff `integrity.checksums`.
    ledger: Option<&'r ChecksumLedger>,
    /// Data / compute thread counts (checksum arrival quotas).
    p_d: usize,
    p_c: usize,
    /// Cooperative cancellation token; polled at step boundaries.
    cancel: Option<&'r CancelToken>,
}

impl RunCtx<'_> {
    /// Sleeps if a stall fault targets `(role, thread, phase)` at block
    /// `blk`, recording the injection as a trace mark.
    fn maybe_stall(&self, role: Role, thread: usize, blk: usize, phase: FaultPhase) {
        if let Some((iter, dur)) = self.fault.stall_for(role, thread, phase) {
            if iter == blk {
                if let Some(t) = self.trace {
                    t.mark(
                        MarkKind::FaultInjected,
                        format!("stall: {role:?} worker {thread} at block {blk} ({phase:?})"),
                        Some(dur.as_nanos() as f64),
                    );
                }
                std::thread::sleep(dur);
            }
        }
    }

    /// True when a panic fault targets `(role, thread, phase)` at block
    /// `blk`; records the injection as a trace mark when it is about to
    /// fire.
    fn injects_panic(&self, role: Role, thread: usize, blk: usize, phase: FaultPhase) -> bool {
        let fires = self.fault.panic_site_for(role, thread, phase) == Some(blk);
        if fires {
            if let Some(t) = self.trace {
                t.mark(
                    MarkKind::FaultInjected,
                    format!("panic: {role:?} worker {thread} at block {blk} ({phase:?})"),
                    None,
                );
            }
        }
        fires
    }

    /// Silently corrupts one element of `share` if a corruption fault
    /// targets `(role, thread, phase)` at block `blk`. Called *after*
    /// the phase's checksum was accumulated, so the corruption models a
    /// stray write between handoffs: only the next integrity guard (or
    /// nothing, when guards are off) stands between it and the output.
    fn maybe_corrupt(
        &self,
        role: Role,
        thread: usize,
        blk: usize,
        phase: FaultPhase,
        share: &mut [Complex64],
    ) {
        if self.fault.corrupt_for(role, thread, phase) == Some(blk) && !share.is_empty() {
            if let Some(t) = self.trace {
                t.mark(
                    MarkKind::FaultInjected,
                    format!("corrupt: {role:?} worker {thread} at block {blk} ({phase:?})"),
                    None,
                );
            }
            // A deliberately *visible* corruption (O(1) absolute, not a
            // low-bit flip): detectable by the checksum guard exactly,
            // and by energy/reference comparisons when guards are off.
            let v = share[0];
            share[0] = Complex64::new(v.re + 1.0, v.im - 1.0);
        }
    }

    /// Canary sweep at a handoff barrier (thread 0 of the data role
    /// only — one sweep per step is enough and keeps the cost O(1)).
    /// Returns false after tripping the failure cell.
    fn canaries_ok(&self, thread: usize, step: usize) -> bool {
        if !self.integrity.canaries || thread != 0 {
            return true;
        }
        if self.buffer.check_canaries() {
            return true;
        }
        self.fail.trip(PipelineError::Integrity {
            stage: self.stage,
            block: step,
            kind: IntegrityKind::Canary,
        });
        false
    }

    /// Accumulates `partial` into `slot` and, when this call is the last
    /// of `quota` arrivals, compares against `reference`'s total.
    /// Returns false after tripping the failure cell on a mismatch.
    fn checksum_handoff(
        &self,
        slot: &ChecksumSlot,
        reference: &ChecksumSlot,
        quota: usize,
        partial: u64,
        blk: usize,
    ) -> bool {
        if slot.add(partial) == quota && slot.total() != reference.total() {
            self.fail.trip(PipelineError::Integrity {
                stage: self.stage,
                block: blk,
                kind: IntegrityKind::Checksum,
            });
            return false;
        }
        true
    }

    /// Record a completed step duration for the adaptive watchdog.
    fn note_epoch(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.epoch_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// The barrier-wait budget for the next wait: the adaptive policy's
    /// derived budget when armed, else the static `iter_timeout`.
    fn effective_timeout(&self) -> Option<Duration> {
        match self.watchdog {
            Some(w) => {
                let measured = self.epoch_ns.load(Ordering::Relaxed);
                if measured == 0 {
                    Some(w.warmup)
                } else {
                    let scaled = (measured as f64 * w.multiplier.max(1.0)).min(u64::MAX as f64);
                    Some(Duration::from_nanos(scaled as u64).max(w.min))
                }
            }
            None => self.timeout,
        }
    }

    /// Polls the cancellation token at a step boundary. Returns false —
    /// after tripping the failure cell with a typed `Cancelled` error —
    /// when the token has fired; the caller drains like any other
    /// abort. Costs one atomic load per step when a token is present,
    /// nothing when it is not.
    fn cancel_ok(&self, step: usize) -> bool {
        if let Some(reason) = self.cancel.and_then(CancelToken::fired) {
            self.fail.trip(PipelineError::Cancelled { iter: step, reason });
            return false;
        }
        true
    }

    /// Pin the calling thread per config, honoring `deny_pinning`.
    fn pin(&self, pins: &Option<Vec<usize>>, slot: usize) -> Option<PinStatus> {
        let cpu = pins.as_ref().map(|p| p[slot])?;
        Some(if self.fault.deny_pinning {
            PinStatus::Failed { cpu, errno: 0 }
        } else {
            affinity::pin_current_thread(cpu)
        })
    }
}

/// The data-thread worker loop (store, data barrier, load, global
/// barrier per step). Returns when the schedule completes or the run
/// aborts.
fn data_thread_loop(ctx: &RunCtx<'_>, j: usize, load: &mut LoadFn<'_>, store: &mut StoreFn<'_>, load_range: core::ops::Range<usize>) {
    let mut tracer = ThreadTracer::new(ctx.trace, TraceRole::Data, j, ctx.stage);
    for step in ctx.schedule.steps() {
        if ctx.fail.is_aborted() || !ctx.cancel_ok(step.step) {
            return;
        }
        if let Some(blk) = step.store {
            ctx.maybe_stall(Role::Data, j, blk, FaultPhase::Store);
            // Safety: between the previous global barrier and the data
            // barrier below, half `blk % 2` is only read (by data
            // threads); compute threads work on the other half
            // (schedule invariant).
            let half = unsafe { ctx.buffer.half(PipelineStep::half_of(blk)) };
            if let Some(ledger) = ctx.ledger {
                // Last arriver compares against the post-compute sum:
                // corruption after the kernel stops (most of) the block
                // from reaching the output as a silent wrong answer.
                let partial = block_checksum(&half[load_range.clone()]);
                if !ctx.checksum_handoff(
                    &ledger.pre_store[blk],
                    &ledger.computed[blk],
                    ctx.p_d,
                    partial,
                    blk,
                ) {
                    return;
                }
            }
            let inject = ctx.injects_panic(Role::Data, j, blk, FaultPhase::Store);
            let span = tracer.start();
            let ok = contained_phase(ctx.fail, Role::Data, j, blk, || {
                if inject {
                    panic!("{INJECTED_FAULT_PREFIX}: Data worker {j} at iteration {blk} (store)");
                }
                store(blk, half);
            });
            tracer.finish(span, Phase::Store, blk);
            if !ok {
                return;
            }
        }
        let budget = ctx.effective_timeout();
        let span = tracer.start();
        let outcome = ctx.data_barrier.wait(ctx.fail, budget);
        tracer.finish(span, Phase::BarrierData, step.step);
        match outcome {
            WaitOutcome::Released => {}
            WaitOutcome::Aborted => return,
            WaitOutcome::TimedOut => {
                ctx.fail.trip(PipelineError::StageTimeout {
                    role: Role::Data,
                    thread: j,
                    iter: step.step,
                    timeout: budget.unwrap_or_default(),
                });
                return;
            }
        }
        if !ctx.canaries_ok(j, step.step) {
            return;
        }
        if let Some(blk) = step.load {
            ctx.maybe_stall(Role::Data, j, blk, FaultPhase::Load);
            let range = load_range.clone();
            // Safety: load shares are disjoint across data threads; all
            // stores of this half completed at the data barrier; compute
            // is on the other half.
            let share =
                unsafe { ctx.buffer.half_range_mut(PipelineStep::half_of(blk), range.clone()) };
            let inject = ctx.injects_panic(Role::Data, j, blk, FaultPhase::Load);
            let span = tracer.start();
            let ok = contained_phase(ctx.fail, Role::Data, j, blk, || {
                if inject {
                    panic!("{INJECTED_FAULT_PREFIX}: Data worker {j} at iteration {blk}");
                }
                load(blk, range.start, share);
            });
            tracer.finish(span, Phase::Load, blk);
            if !ok {
                return;
            }
            // Safety: reborrow of this thread's own disjoint share (the
            // closure above consumed the first view).
            let share =
                unsafe { ctx.buffer.half_range_mut(PipelineStep::half_of(blk), range.clone()) };
            if let Some(ledger) = ctx.ledger {
                ledger.loaded[blk].add(block_checksum(share));
            }
            ctx.maybe_corrupt(Role::Data, j, blk, FaultPhase::Load, share);
        }
        let budget = ctx.effective_timeout();
        let span = tracer.start();
        let outcome = ctx.global_barrier.wait(ctx.fail, budget);
        tracer.finish(span, Phase::BarrierGlobal, step.step);
        match outcome {
            WaitOutcome::Released => {}
            WaitOutcome::Aborted => return,
            WaitOutcome::TimedOut => {
                ctx.fail.trip(PipelineError::StageTimeout {
                    role: Role::Data,
                    thread: j,
                    iter: step.step,
                    timeout: budget.unwrap_or_default(),
                });
                return;
            }
        }
        if !ctx.canaries_ok(j, step.step) {
            return;
        }
    }
}

/// The compute-thread worker loop (compute, global barrier per step).
fn compute_thread_loop(ctx: &RunCtx<'_>, j: usize, compute: &mut ComputeFn<'_>, compute_range: core::ops::Range<usize>) {
    let mut tracer = ThreadTracer::new(ctx.trace, TraceRole::Compute, j, ctx.stage);
    let adaptive = ctx.watchdog.is_some();
    for step in ctx.schedule.steps() {
        if ctx.fail.is_aborted() || !ctx.cancel_ok(step.step) {
            return;
        }
        // Only compute-active steps feed the watchdog measurement:
        // prologue steps are genuinely short (no kernel work yet) and
        // would otherwise shrink the budget below the steady-state step
        // time. A compute step's duration spans the global barrier, so
        // it approximates the whole pipeline's step time.
        let step_started = if adaptive && step.compute.is_some() {
            Some(Instant::now())
        } else {
            None
        };
        if let Some(blk) = step.compute {
            ctx.maybe_stall(Role::Compute, j, blk, FaultPhase::Compute);
            let range = compute_range.clone();
            // Safety: compute shares are disjoint across compute threads
            // and the compute half is untouched by data threads this
            // step.
            let share =
                unsafe { ctx.buffer.half_range_mut(PipelineStep::half_of(blk), range.clone()) };
            if let Some(ledger) = ctx.ledger {
                // Last arriver compares against the loaders' sum: any
                // corruption between the load handoff and the kernel is
                // caught before its output can be stored.
                let partial = block_checksum(share);
                if !ctx.checksum_handoff(
                    &ledger.pre_compute[blk],
                    &ledger.loaded[blk],
                    ctx.p_c,
                    partial,
                    blk,
                ) {
                    return;
                }
            }
            let inject = ctx.injects_panic(Role::Compute, j, blk, FaultPhase::Compute);
            let span = tracer.start();
            let ok = contained_phase(ctx.fail, Role::Compute, j, blk, || {
                if inject {
                    panic!("{INJECTED_FAULT_PREFIX}: Compute worker {j} at iteration {blk}");
                }
                compute(blk, range.start, share);
            });
            tracer.finish(span, Phase::Compute, blk);
            if !ok {
                return;
            }
            // Safety: reborrow of this thread's own disjoint share.
            let share =
                unsafe { ctx.buffer.half_range_mut(PipelineStep::half_of(blk), range.clone()) };
            if let Some(ledger) = ctx.ledger {
                ledger.computed[blk].add(block_checksum(share));
            }
            ctx.maybe_corrupt(Role::Compute, j, blk, FaultPhase::Compute, share);
        }
        let budget = ctx.effective_timeout();
        let span = tracer.start();
        let outcome = ctx.global_barrier.wait(ctx.fail, budget);
        tracer.finish(span, Phase::BarrierGlobal, step.step);
        match outcome {
            WaitOutcome::Released => {}
            WaitOutcome::Aborted => return,
            WaitOutcome::TimedOut => {
                ctx.fail.trip(PipelineError::StageTimeout {
                    role: Role::Compute,
                    thread: j,
                    iter: step.step,
                    timeout: budget.unwrap_or_default(),
                });
                return;
            }
        }
        if let Some(started) = step_started {
            ctx.note_epoch(started.elapsed());
        }
    }
}

/// Validates the configuration against the callbacks and buffer.
fn validate(
    buffer: &DoubleBuffer,
    cfg: &PipelineConfig,
    callbacks: &PipelineCallbacks<'_>,
) -> Result<(), ConfigError> {
    let b = buffer.half_elems();
    let p_d = callbacks.loaders.len();
    let p_c = callbacks.computes.len();
    if callbacks.storers.len() != p_d {
        return Err(ConfigError::MismatchedRoles {
            loaders: p_d,
            storers: callbacks.storers.len(),
        });
    }
    if p_d == 0 {
        return Err(ConfigError::ZeroThreads { role: Role::Data });
    }
    if p_c == 0 {
        return Err(ConfigError::ZeroThreads { role: Role::Compute });
    }
    if cfg.iters == 0 {
        return Err(ConfigError::ZeroIters);
    }
    if cfg.load_unit == 0 || !b.is_multiple_of(cfg.load_unit) {
        return Err(ConfigError::UnitMismatch {
            what: "load_unit",
            unit: cfg.load_unit,
            half_elems: b,
        });
    }
    if cfg.compute_unit == 0 || !b.is_multiple_of(cfg.compute_unit) {
        return Err(ConfigError::UnitMismatch {
            what: "compute_unit",
            unit: cfg.compute_unit,
            half_elems: b,
        });
    }
    if let Some(pins) = &cfg.pin_cpus {
        if pins.len() != p_d + p_c {
            return Err(ConfigError::PinListMismatch {
                pins: pins.len(),
                threads: p_d + p_c,
            });
        }
    }
    Ok(())
}

/// Runs the software pipeline. `buffer.half_elems()` is the block size
/// `b`; it must be divisible by both units.
///
/// On success, returns a [`PipelineReport`] with per-thread pin
/// statuses. On failure, returns the first typed [`PipelineError`]:
/// configuration problems before any thread starts, contained worker
/// panics and watchdog timeouts after all threads have drained and
/// joined.
pub fn run_pipeline(
    buffer: &DoubleBuffer,
    cfg: &PipelineConfig,
    callbacks: PipelineCallbacks,
) -> Result<PipelineReport, PipelineError> {
    validate(buffer, cfg, &callbacks)?;
    let b = buffer.half_elems();
    let p_d = callbacks.loaders.len();
    let p_c = callbacks.computes.len();

    let schedule = Schedule::new(cfg.iters);
    let load_ranges: Vec<_> = partition(b / cfg.load_unit, p_d)
        .into_iter()
        .map(|r| r.start * cfg.load_unit..r.end * cfg.load_unit)
        .collect();
    let compute_ranges: Vec<_> = partition(b / cfg.compute_unit, p_c)
        .into_iter()
        .map(|r| r.start * cfg.compute_unit..r.end * cfg.compute_unit)
        .collect();

    let fail = FailureCell::new();
    let data_barrier = AbortableBarrier::new(p_d);
    let global_barrier = AbortableBarrier::new(p_d + p_c);
    let empty_fault = FaultPlan::none();
    let epoch_ns = AtomicU64::new(0);
    let ledger = cfg
        .integrity
        .checksums
        .then(|| ChecksumLedger::new(cfg.iters));
    let ctx = RunCtx {
        buffer,
        schedule: &schedule,
        data_barrier: &data_barrier,
        global_barrier: &global_barrier,
        fail: &fail,
        timeout: cfg.iter_timeout,
        fault: cfg.fault.as_ref().unwrap_or(&empty_fault),
        stage: cfg.stage,
        trace: cfg.trace.as_deref(),
        watchdog: cfg.adaptive_watchdog,
        epoch_ns: &epoch_ns,
        integrity: cfg.integrity,
        ledger: ledger.as_ref(),
        p_d,
        p_c,
        cancel: cfg.cancel.as_ref(),
    };
    let ctx_ref = &ctx;
    let pins = cfg.pin_cpus.clone();
    let pin_slots: Mutex<Vec<Option<PinStatus>>> = Mutex::new(vec![None; p_d + p_c]);
    let pin_slots_ref = &pin_slots;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p_d + p_c);
        // Data threads.
        for (j, (mut load, mut store)) in callbacks
            .loaders
            .into_iter()
            .zip(callbacks.storers)
            .enumerate()
        {
            let pins = pins.clone();
            let range = load_ranges[j].clone();
            handles.push((Role::Data, j, scope.spawn(move || {
                if let Some(st) = ctx_ref.pin(&pins, j) {
                    lock_tolerant(pin_slots_ref)[j] = Some(st);
                }
                data_thread_loop(ctx_ref, j, &mut load, &mut store, range);
            })));
        }
        // Compute threads.
        for (j, mut compute) in callbacks.computes.into_iter().enumerate() {
            let pins = pins.clone();
            let range = compute_ranges[j].clone();
            handles.push((Role::Compute, j, scope.spawn(move || {
                if let Some(st) = ctx_ref.pin(&pins, p_d + j) {
                    lock_tolerant(pin_slots_ref)[p_d + j] = Some(st);
                }
                compute_thread_loop(ctx_ref, j, &mut compute, range);
            })));
        }
        for (role, j, h) in handles {
            // Worker panics are contained inside the loops; a join error
            // here means the runtime around them failed — still typed.
            if let Err(payload) = h.join() {
                fail.trip(PipelineError::WorkerPanicked {
                    role,
                    thread: j,
                    iter: 0,
                    message: panic_message(payload),
                });
            }
        }
    });

    let pin_status: Vec<PinStatus> = lock_tolerant(&pin_slots).iter().copied().flatten().collect();
    let pin_failures = affinity::warn_on_failures(&pin_status);

    match fail.into_error() {
        Some(err) => Err(err),
        None => Ok(PipelineReport {
            blocks: cfg.iters,
            pin_status,
            pin_failures,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::silence_injected_panic_reports;
    use bwfft_num::signal::random_complex;
    use bwfft_num::AlignedVec;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// A shared output array the storers write through; ranges are
    /// disjoint so a mutex-free cell would do, but tests prefer safety.
    struct Out(Mutex<Vec<Complex64>>);

    fn run_identity_pipeline(p_d: usize, p_c: usize, blocks: usize, b: usize) {
        run_identity_pipeline_with(p_d, p_c, blocks, b, IntegrityConfig::default());
    }

    fn run_identity_pipeline_with(
        p_d: usize,
        p_c: usize,
        blocks: usize,
        b: usize,
        integrity: IntegrityConfig,
    ) {
        // Pipeline that computes out[block] = 2·x[block] (identity
        // permutation on store) — verifies plumbing and scheduling.
        let n = blocks * b;
        let x = random_complex(n, 99);
        let out = Out(Mutex::new(vec![Complex64::ZERO; n]));
        let buffer = DoubleBuffer::new(b);
        let x_ref = &x;
        let out_ref = &out;

        let loaders: Vec<LoadFn> = (0..p_d)
            .map(|_| {
                Box::new(move |blk: usize, off: usize, share: &mut [Complex64]| {
                    let start = blk * b + off;
                    share.copy_from_slice(&x_ref[start..start + share.len()]);
                }) as LoadFn
            })
            .collect();
        let storers: Vec<StoreFn> = (0..p_d)
            .map(|j| {
                Box::new(move |blk: usize, half: &[Complex64]| {
                    // Thread j writes its contiguous quarter.
                    let ranges = partition(b, p_d);
                    let r = ranges[j].clone();
                    let mut guard = out_ref.0.lock().unwrap_or_else(|e| e.into_inner());
                    guard[blk * b + r.start..blk * b + r.end].copy_from_slice(&half[r]);
                }) as StoreFn
            })
            .collect();
        let computes: Vec<ComputeFn> = (0..p_c)
            .map(|_| {
                Box::new(move |_blk: usize, _off: usize, share: &mut [Complex64]| {
                    for v in share.iter_mut() {
                        *v = *v * 2.0;
                    }
                }) as ComputeFn
            })
            .collect();

        let report = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: blocks,
                integrity,
                ..PipelineConfig::default()
            },
            PipelineCallbacks {
                loaders,
                storers,
                computes,
            },
        )
        .expect("fault-free pipeline must succeed");
        assert_eq!(report.blocks, blocks);
        assert!(report.pin_status.is_empty());

        let got = out.0.into_inner().unwrap_or_else(|e| e.into_inner());
        for (i, (g, e)) in got.iter().zip(&x).enumerate() {
            assert_eq!(*g, *e * 2.0, "element {i}");
        }
    }

    #[test]
    fn pipeline_computes_correctly_1x1() {
        run_identity_pipeline(1, 1, 4, 64);
    }

    #[test]
    fn pipeline_computes_correctly_2x2() {
        run_identity_pipeline(2, 2, 8, 64);
    }

    #[test]
    fn pipeline_computes_correctly_4x4() {
        run_identity_pipeline(4, 4, 6, 96);
    }

    #[test]
    fn pipeline_single_block() {
        run_identity_pipeline(2, 2, 1, 32);
    }

    /// Callbacks that do nothing — scaffolding for orchestration tests.
    fn noop_callbacks<'a>(p_d: usize, p_c: usize) -> PipelineCallbacks<'a> {
        PipelineCallbacks {
            loaders: (0..p_d).map(|_| Box::new(|_, _, _: &mut [Complex64]| {}) as LoadFn).collect(),
            storers: (0..p_d).map(|_| Box::new(|_, _: &[Complex64]| {}) as StoreFn).collect(),
            computes: (0..p_c)
                .map(|_| Box::new(|_, _, _: &mut [Complex64]| {}) as ComputeFn)
                .collect(),
        }
    }

    #[test]
    fn compute_sees_every_block_exactly_once() {
        let b = 32;
        let blocks = 10;
        let buffer = DoubleBuffer::new(b);
        let count = AtomicUsize::new(0);
        let count_ref = &count;
        let seen = Mutex::new(Vec::<usize>::new());
        let seen_ref = &seen;
        run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: blocks,
                ..PipelineConfig::default()
            },
            PipelineCallbacks {
                loaders: vec![Box::new(|_, _, _| {})],
                storers: vec![Box::new(|_, _| {})],
                computes: vec![Box::new(move |blk, _, _| {
                    count_ref.fetch_add(1, Ordering::SeqCst);
                    seen_ref.lock().unwrap_or_else(|e| e.into_inner()).push(blk);
                })],
            },
        )
        .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), blocks);
        let mut blocks_seen = seen.into_inner().unwrap_or_else(|e| e.into_inner());
        blocks_seen.sort_unstable();
        assert_eq!(blocks_seen, (0..blocks).collect::<Vec<_>>());
    }

    #[test]
    fn store_happens_after_compute_of_same_block() {
        // Record orderings via a log.
        let b = 16;
        let blocks = 6;
        let buffer = DoubleBuffer::new(b);
        let log = Mutex::new(Vec::<(char, usize)>::new());
        let log_ref = &log;
        run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: blocks,
                ..PipelineConfig::default()
            },
            PipelineCallbacks {
                loaders: vec![Box::new(move |blk, _, _| {
                    log_ref.lock().unwrap_or_else(|e| e.into_inner()).push(('L', blk));
                })],
                storers: vec![Box::new(move |blk, _| {
                    log_ref.lock().unwrap_or_else(|e| e.into_inner()).push(('S', blk));
                })],
                computes: vec![Box::new(move |blk, _, _| {
                    log_ref.lock().unwrap_or_else(|e| e.into_inner()).push(('C', blk));
                })],
            },
        )
        .unwrap();
        let events = log.into_inner().unwrap_or_else(|e| e.into_inner());
        for blk in 0..blocks {
            let lpos = events.iter().position(|e| *e == ('L', blk)).unwrap();
            let cpos = events.iter().position(|e| *e == ('C', blk)).unwrap();
            let spos = events.iter().position(|e| *e == ('S', blk)).unwrap();
            assert!(lpos < cpos && cpos < spos, "block {blk}: L{lpos} C{cpos} S{spos}");
        }
    }

    #[test]
    fn data_written_by_loader_reaches_computer_intact() {
        // Loader writes a known pattern; compute verifies it before
        // overwriting; store verifies the compute result.
        let b = 64;
        let blocks = 5;
        let buffer = DoubleBuffer::new(b);
        let failures = AtomicUsize::new(0);
        let f = &failures;
        run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: blocks,
                ..PipelineConfig::default()
            },
            PipelineCallbacks {
                loaders: vec![Box::new(move |blk, off, share| {
                    for (i, v) in share.iter_mut().enumerate() {
                        *v = Complex64::new(blk as f64, (off + i) as f64);
                    }
                })],
                storers: vec![Box::new(move |blk, half| {
                    for (i, v) in half.iter().enumerate() {
                        if *v != Complex64::new(blk as f64 + 1.0, i as f64) {
                            f.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })],
                computes: vec![Box::new(move |blk, off, share| {
                    for (i, v) in share.iter_mut().enumerate() {
                        if *v != Complex64::new(blk as f64, (off + i) as f64) {
                            f.fetch_add(1, Ordering::SeqCst);
                        }
                        *v = Complex64::new(blk as f64 + 1.0, (off + i) as f64);
                    }
                })],
            },
        )
        .unwrap();
        assert_eq!(failures.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn pinning_request_does_not_break_execution() {
        let b = 16;
        let buffer = DoubleBuffer::new(b);
        let touched = AtomicUsize::new(0);
        let t = &touched;
        let mut callbacks = noop_callbacks(1, 1);
        callbacks.computes = vec![Box::new(move |_, _, _| {
            t.fetch_add(1, Ordering::SeqCst);
        })];
        let report = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 2,
                pin_cpus: Some(vec![0, 0]),
                ..PipelineConfig::default()
            },
            callbacks,
        )
        .unwrap();
        assert_eq!(touched.load(Ordering::SeqCst), 2);
        // Pinning was requested, so every thread reports a status.
        assert_eq!(report.pin_status.len(), 2);
    }

    #[test]
    fn denied_pinning_is_reported_not_fatal() {
        let buffer = DoubleBuffer::new(16);
        let report = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 2,
                pin_cpus: Some(vec![0, 0]),
                fault: Some(FaultPlan::none().with_denied_pinning()),
                ..PipelineConfig::default()
            },
            noop_callbacks(1, 1),
        )
        .unwrap();
        assert_eq!(report.pin_failures, 2);
        assert!(report.pin_status.iter().all(|s| !s.is_pinned()));
    }

    #[test]
    fn mismatched_role_counts_rejected() {
        let buffer = DoubleBuffer::new(8);
        let err = run_pipeline(
            &buffer,
            &PipelineConfig::default(),
            PipelineCallbacks {
                loaders: vec![Box::new(|_, _, _| {}), Box::new(|_, _, _| {})],
                storers: vec![Box::new(|_, _| {})],
                computes: vec![Box::new(|_, _, _| {})],
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            PipelineError::Config(ConfigError::MismatchedRoles {
                loaders: 2,
                storers: 1
            })
        );
        assert!(err.to_string().contains("one storer per data thread"));
    }

    #[test]
    fn bad_units_and_zero_iters_rejected() {
        let buffer = DoubleBuffer::new(10);
        let err = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 2,
                load_unit: 3, // does not divide 10
                ..PipelineConfig::default()
            },
            noop_callbacks(1, 1),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            PipelineError::Config(ConfigError::UnitMismatch { what: "load_unit", .. })
        ));

        let err = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 0,
                ..PipelineConfig::default()
            },
            noop_callbacks(1, 1),
        )
        .unwrap_err();
        assert_eq!(err, PipelineError::Config(ConfigError::ZeroIters));

        let err = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 1,
                pin_cpus: Some(vec![0]),
                ..PipelineConfig::default()
            },
            noop_callbacks(1, 1),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            PipelineError::Config(ConfigError::PinListMismatch { pins: 1, threads: 2 })
        ));
    }

    #[test]
    fn injected_compute_panic_yields_typed_error_without_deadlock() {
        silence_injected_panic_reports();
        let buffer = DoubleBuffer::new(32);
        let err = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 6,
                fault: Some(FaultPlan::panic_at(Role::Compute, 0, 3)),
                iter_timeout: Some(Duration::from_secs(5)),
                ..PipelineConfig::default()
            },
            noop_callbacks(2, 2),
        )
        .unwrap_err();
        match err {
            PipelineError::WorkerPanicked {
                role,
                thread,
                iter,
                message,
            } => {
                assert_eq!(role, Role::Compute);
                assert_eq!(thread, 0);
                assert_eq!(iter, 3);
                assert!(message.starts_with(INJECTED_FAULT_PREFIX));
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn user_panic_in_storer_is_contained() {
        silence_injected_panic_reports();
        let buffer = DoubleBuffer::new(16);
        let mut callbacks = noop_callbacks(1, 1);
        callbacks.storers = vec![Box::new(|blk, _| {
            if blk == 1 {
                panic!("user store bug on block {blk}");
            }
        })];
        let err = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 4,
                ..PipelineConfig::default()
            },
            callbacks,
        )
        .unwrap_err();
        match err {
            PipelineError::WorkerPanicked { role, iter, message, .. } => {
                assert_eq!(role, Role::Data);
                assert_eq!(iter, 1);
                assert!(message.contains("user store bug"));
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn stall_beyond_watchdog_yields_stage_timeout() {
        let buffer = DoubleBuffer::new(16);
        let err = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 4,
                iter_timeout: Some(Duration::from_millis(40)),
                fault: Some(FaultPlan::stall_at(
                    Role::Compute,
                    0,
                    1,
                    Duration::from_millis(400),
                )),
                ..PipelineConfig::default()
            },
            noop_callbacks(1, 1),
        )
        .unwrap_err();
        assert!(
            matches!(err, PipelineError::StageTimeout { .. }),
            "expected StageTimeout, got {err:?}"
        );
    }

    #[test]
    fn cancelled_token_aborts_before_any_work() {
        let buffer = DoubleBuffer::new(16);
        let token = CancelToken::new();
        token.cancel();
        let touched = AtomicUsize::new(0);
        let t = &touched;
        let mut callbacks = noop_callbacks(1, 1);
        callbacks.computes = vec![Box::new(move |_, _, _| {
            t.fetch_add(1, Ordering::SeqCst);
        })];
        let err = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 4,
                cancel: Some(token),
                ..PipelineConfig::default()
            },
            callbacks,
        )
        .unwrap_err();
        assert_eq!(
            err,
            PipelineError::Cancelled {
                iter: 0,
                reason: crate::cancel::CancelReason::Shutdown
            }
        );
        assert_eq!(touched.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn expired_deadline_yields_deadline_cancellation() {
        let buffer = DoubleBuffer::new(16);
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let err = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 4,
                cancel: Some(token),
                ..PipelineConfig::default()
            },
            noop_callbacks(1, 1),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                PipelineError::Cancelled {
                    reason: crate::cancel::CancelReason::Deadline,
                    ..
                }
            ),
            "expected deadline cancellation, got {err:?}"
        );
    }

    #[test]
    fn mid_run_cancel_drains_all_threads() {
        // A compute callback cancels the run at block 1; every thread
        // must drain (the scope join below would hang otherwise) and
        // the typed error must surface.
        let buffer = DoubleBuffer::new(32);
        let token = CancelToken::new();
        let cancel_from_worker = token.clone();
        let mut callbacks = noop_callbacks(2, 2);
        callbacks.computes = (0..2)
            .map(|_| {
                let tok = cancel_from_worker.clone();
                Box::new(move |blk: usize, _: usize, _: &mut [Complex64]| {
                    if blk == 1 {
                        tok.cancel();
                    }
                }) as ComputeFn
            })
            .collect();
        let err = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 8,
                cancel: Some(token),
                iter_timeout: Some(Duration::from_secs(5)),
                ..PipelineConfig::default()
            },
            callbacks,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                PipelineError::Cancelled {
                    reason: crate::cancel::CancelReason::Shutdown,
                    ..
                }
            ),
            "expected shutdown cancellation, got {err:?}"
        );
    }

    #[test]
    fn stall_within_watchdog_budget_is_harmless() {
        let buffer = DoubleBuffer::new(16);
        run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 3,
                iter_timeout: Some(Duration::from_secs(5)),
                fault: Some(FaultPlan::stall_at(
                    Role::Data,
                    0,
                    1,
                    Duration::from_millis(5),
                )),
                ..PipelineConfig::default()
            },
            noop_callbacks(1, 1),
        )
        .unwrap();
    }

    #[test]
    fn unused_aligned_vec_reexport_compiles() {
        // Keep AlignedVec in the dependency surface tests exercise.
        let v: AlignedVec<Complex64> = AlignedVec::zeroed(4);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn traced_run_records_all_phases_with_stage() {
        use bwfft_trace::TraceEvent;
        let blocks = 4;
        let buffer = DoubleBuffer::new(32);
        let collector = Arc::new(TraceCollector::new());
        run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: blocks,
                stage: 7,
                trace: Some(Arc::clone(&collector)),
                ..PipelineConfig::default()
            },
            noop_callbacks(2, 2),
        )
        .unwrap();
        let events = collector.take_events();
        let spans: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span(s) => Some(s),
                TraceEvent::Mark(_) => None,
            })
            .collect();
        assert!(!spans.is_empty());
        assert!(spans.iter().all(|s| s.stage == 7));
        for phase in [
            Phase::Load,
            Phase::Compute,
            Phase::Store,
            Phase::BarrierData,
            Phase::BarrierGlobal,
        ] {
            assert!(
                spans.iter().any(|s| s.phase == phase),
                "missing {phase:?} spans"
            );
        }
        // Every block gets loaded by both data threads and computed by
        // both compute threads.
        for blk in 0..blocks {
            let loads = spans
                .iter()
                .filter(|s| s.phase == Phase::Load && s.block == blk)
                .count();
            assert_eq!(loads, 2, "block {blk} load spans");
            let computes = spans
                .iter()
                .filter(|s| s.phase == Phase::Compute && s.block == blk)
                .count();
            assert_eq!(computes, 2, "block {blk} compute spans");
        }
        // Role attribution is consistent with the phase.
        assert!(spans
            .iter()
            .all(|s| match s.phase {
                Phase::Load | Phase::Store | Phase::BarrierData => s.role == TraceRole::Data,
                Phase::Compute => s.role == TraceRole::Compute,
                Phase::BarrierGlobal => true,
            }));
    }

    #[test]
    fn untraced_run_leaves_collector_untouched() {
        let buffer = DoubleBuffer::new(16);
        run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 3,
                ..PipelineConfig::default()
            },
            noop_callbacks(1, 1),
        )
        .unwrap();
    }

    #[test]
    fn injected_faults_appear_as_trace_marks() {
        use bwfft_trace::TraceEvent;
        silence_injected_panic_reports();
        let buffer = DoubleBuffer::new(16);
        let collector = Arc::new(TraceCollector::new());
        let err = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 4,
                trace: Some(Arc::clone(&collector)),
                fault: Some(FaultPlan::panic_at(Role::Compute, 0, 2)),
                iter_timeout: Some(Duration::from_secs(5)),
                ..PipelineConfig::default()
            },
            noop_callbacks(1, 1),
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::WorkerPanicked { .. }));
        let events = collector.take_events();
        let mark = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Mark(m) if m.kind == MarkKind::FaultInjected => Some(m),
                _ => None,
            })
            .expect("fault injection must record a FaultInjected mark");
        assert!(
            mark.label.contains("Compute worker 0 at block 2"),
            "mark label: {}",
            mark.label
        );
    }

    #[test]
    fn stall_fault_marks_carry_duration() {
        use bwfft_trace::TraceEvent;
        let buffer = DoubleBuffer::new(16);
        let collector = Arc::new(TraceCollector::new());
        run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 3,
                trace: Some(Arc::clone(&collector)),
                fault: Some(FaultPlan::stall_at(
                    Role::Data,
                    0,
                    1,
                    Duration::from_millis(3),
                )),
                ..PipelineConfig::default()
            },
            noop_callbacks(1, 1),
        )
        .unwrap();
        let events = collector.take_events();
        let mark = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Mark(m) if m.kind == MarkKind::FaultInjected => Some(m),
                _ => None,
            })
            .expect("stall must record a FaultInjected mark");
        assert!(mark.label.starts_with("stall:"), "label: {}", mark.label);
        assert_eq!(mark.value_ns, Some(3e6));
    }

    #[test]
    fn adaptive_watchdog_times_out_stalled_peer() {
        // Fast measured epochs (noop steps) make the derived budget the
        // `min` floor; a 400 ms stall at block 2 then trips the
        // watchdog without any caller-assumed iteration time.
        let buffer = DoubleBuffer::new(16);
        let err = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 6,
                adaptive_watchdog: Some(AdaptiveWatchdog {
                    multiplier: 8.0,
                    min: Duration::from_millis(40),
                    warmup: Duration::from_secs(5),
                }),
                fault: Some(FaultPlan::stall_at(
                    Role::Compute,
                    0,
                    2,
                    Duration::from_millis(400),
                )),
                ..PipelineConfig::default()
            },
            noop_callbacks(1, 1),
        )
        .unwrap_err();
        match err {
            PipelineError::StageTimeout { timeout, .. } => {
                // The reported budget is the measured-epoch derivation,
                // not the warmup: steps are microseconds, so the floor
                // (40 ms) applies.
                assert!(timeout >= Duration::from_millis(40));
                assert!(timeout < Duration::from_secs(5));
            }
            other => panic!("expected StageTimeout, got {other:?}"),
        }
    }

    #[test]
    fn full_integrity_guards_pass_on_fault_free_runs() {
        // The guards must never false-positive: same correctness check
        // as the plain identity runs, with every guard armed.
        run_identity_pipeline_with(1, 1, 4, 64, IntegrityConfig::full());
        run_identity_pipeline_with(2, 2, 8, 64, IntegrityConfig::full());
        run_identity_pipeline_with(4, 3, 6, 96, IntegrityConfig::full());
    }

    #[test]
    fn load_phase_corruption_is_caught_by_checksum_guard() {
        let buffer = DoubleBuffer::new(32);
        let err = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 5,
                integrity: IntegrityConfig {
                    checksums: true,
                    canaries: false,
                },
                fault: Some(FaultPlan::corrupt_at(Role::Data, 0, 1, FaultPhase::Load)),
                iter_timeout: Some(Duration::from_secs(5)),
                ..PipelineConfig::default()
            },
            noop_callbacks(2, 2),
        )
        .unwrap_err();
        assert_eq!(
            err,
            PipelineError::Integrity {
                stage: 0,
                block: 1,
                kind: crate::error::IntegrityKind::Checksum,
            }
        );
    }

    #[test]
    fn compute_phase_corruption_is_caught_before_store() {
        let buffer = DoubleBuffer::new(32);
        let err = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 5,
                integrity: IntegrityConfig::full(),
                fault: Some(FaultPlan::corrupt_at(
                    Role::Compute,
                    0,
                    2,
                    FaultPhase::Compute,
                )),
                iter_timeout: Some(Duration::from_secs(5)),
                ..PipelineConfig::default()
            },
            noop_callbacks(1, 1),
        )
        .unwrap_err();
        assert_eq!(
            err,
            PipelineError::Integrity {
                stage: 0,
                block: 2,
                kind: crate::error::IntegrityKind::Checksum,
            }
        );
    }

    #[test]
    fn corruption_with_guards_off_is_silent() {
        // Documents the hazard the guards exist for: with checksums off
        // the corrupted run completes "successfully".
        let buffer = DoubleBuffer::new(32);
        run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 5,
                fault: Some(FaultPlan::corrupt_at(Role::Data, 0, 1, FaultPhase::Load)),
                ..PipelineConfig::default()
            },
            noop_callbacks(1, 1),
        )
        .unwrap();
    }

    #[test]
    fn clobbered_canary_aborts_run() {
        let mut buffer = DoubleBuffer::new(32);
        // Simulate an out-of-slice write landing in the middle guard.
        let probe = crate::buffer::CANARY_ELEMS + 32;
        buffer.storage_mut()[probe] = Complex64::ZERO;
        let err = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 4,
                integrity: IntegrityConfig {
                    canaries: true,
                    checksums: false,
                },
                iter_timeout: Some(Duration::from_secs(5)),
                ..PipelineConfig::default()
            },
            noop_callbacks(1, 1),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                PipelineError::Integrity {
                    kind: crate::error::IntegrityKind::Canary,
                    ..
                }
            ),
            "expected canary integrity error, got {err:?}"
        );
    }

    #[test]
    fn store_phase_panic_is_contained() {
        silence_injected_panic_reports();
        let buffer = DoubleBuffer::new(16);
        let err = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 4,
                fault: Some(FaultPlan::panic_at_phase(
                    Role::Data,
                    0,
                    1,
                    FaultPhase::Store,
                )),
                iter_timeout: Some(Duration::from_secs(5)),
                ..PipelineConfig::default()
            },
            noop_callbacks(1, 1),
        )
        .unwrap_err();
        match err {
            PipelineError::WorkerPanicked {
                role,
                iter,
                message,
                ..
            } => {
                assert_eq!(role, Role::Data);
                assert_eq!(iter, 1);
                assert!(message.contains("(store)"), "message: {message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn checksum_is_order_independent_over_partitions() {
        let xs = random_complex(64, 7);
        let whole = block_checksum(&xs);
        for parts in [1usize, 2, 3, 5, 64] {
            let split: u64 = partition(64, parts)
                .into_iter()
                .map(|r| block_checksum(&xs[r]))
                .fold(0u64, u64::wrapping_add);
            assert_eq!(split, whole, "parts={parts}");
        }
    }

    #[test]
    fn adaptive_watchdog_scales_with_slow_steps() {
        // Steps that legitimately take ~20 ms must not be killed by the
        // 1 ms floor: the 8× multiplier of the measured epoch dominates.
        let buffer = DoubleBuffer::new(16);
        let mut callbacks = noop_callbacks(1, 1);
        callbacks.computes = vec![Box::new(|_, _, _| {
            std::thread::sleep(Duration::from_millis(20));
        })];
        run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 4,
                adaptive_watchdog: Some(AdaptiveWatchdog {
                    multiplier: 8.0,
                    min: Duration::from_millis(1),
                    warmup: Duration::from_secs(5),
                }),
                ..PipelineConfig::default()
            },
            callbacks,
        )
        .unwrap();
    }
}
