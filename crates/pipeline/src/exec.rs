//! The real multithreaded pipeline executor.
//!
//! Runs the Table II schedule with OS threads: `p_d` data threads and
//! `p_c` compute threads iterate the schedule in lockstep, separated by
//! two barriers per step — a data-side barrier between the store and
//! load phases (they recycle the same buffer half) and a global barrier
//! closing the step (the paper's `#pragma omp barrier`).
//!
//! The executor is transform-agnostic: callers provide per-thread
//! load/compute/store callbacks; `bwfft-core` instantiates them with
//! the `R`/`W` matrices and batched FFT kernels, and the tests here use
//! trivial arithmetic to verify the orchestration itself.

use crate::affinity;
use crate::buffer::{partition, DoubleBuffer};
use crate::schedule::{PipelineStep, Schedule};
use bwfft_num::Complex64;
use std::sync::Barrier;

/// Per-data-thread loader: `(block, offset_in_block, share)` — fill
/// `share` with the block's elements starting at `offset_in_block`.
pub type LoadFn<'a> = Box<dyn FnMut(usize, usize, &mut [Complex64]) + Send + 'a>;

/// Per-data-thread storer: `(block, whole_half)` — write this thread's
/// packet share of the block to the destination array.
pub type StoreFn<'a> = Box<dyn FnMut(usize, &[Complex64]) + Send + 'a>;

/// Per-compute-thread kernel: `(block, offset_in_block, share)` —
/// transform `share` in place.
pub type ComputeFn<'a> = Box<dyn FnMut(usize, usize, &mut [Complex64]) + Send + 'a>;

/// The per-thread callbacks of one pipeline run.
pub struct PipelineCallbacks<'a> {
    pub loaders: Vec<LoadFn<'a>>,
    pub storers: Vec<StoreFn<'a>>,
    pub computes: Vec<ComputeFn<'a>>,
}

/// Execution configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Number of blocks (`knm/b` in the paper).
    pub iters: usize,
    /// Indivisible unit (elements) for partitioning loads across data
    /// threads — typically `μ`.
    pub load_unit: usize,
    /// Indivisible unit (elements) for partitioning compute across
    /// compute threads — the pencil size `m·s`.
    pub compute_unit: usize,
    /// Optional CPU pinning: one CPU id per thread, data threads first
    /// then compute threads.
    pub pin_cpus: Option<Vec<usize>>,
}

/// Runs the software pipeline. `buffer.half_elems()` is the block size
/// `b`; it must be divisible by both units.
pub fn run_pipeline(buffer: &DoubleBuffer, cfg: &PipelineConfig, callbacks: PipelineCallbacks) {
    let b = buffer.half_elems();
    let p_d = callbacks.loaders.len();
    let p_c = callbacks.computes.len();
    assert_eq!(callbacks.storers.len(), p_d, "one storer per data thread");
    assert!(p_d >= 1 && p_c >= 1, "need at least one thread per role");
    assert!(cfg.load_unit >= 1 && b.is_multiple_of(cfg.load_unit));
    assert!(cfg.compute_unit >= 1 && b.is_multiple_of(cfg.compute_unit));
    if let Some(pins) = &cfg.pin_cpus {
        assert_eq!(pins.len(), p_d + p_c, "one CPU per thread");
    }

    let schedule = Schedule::new(cfg.iters);
    let load_ranges: Vec<_> = partition(b / cfg.load_unit, p_d)
        .into_iter()
        .map(|r| r.start * cfg.load_unit..r.end * cfg.load_unit)
        .collect();
    let compute_ranges: Vec<_> = partition(b / cfg.compute_unit, p_c)
        .into_iter()
        .map(|r| r.start * cfg.compute_unit..r.end * cfg.compute_unit)
        .collect();

    let data_barrier = Barrier::new(p_d);
    let global_barrier = Barrier::new(p_d + p_c);
    let schedule_ref = &schedule;
    let data_barrier_ref = &data_barrier;
    let global_barrier_ref = &global_barrier;
    let load_ranges_ref = &load_ranges;
    let compute_ranges_ref = &compute_ranges;
    let pins = cfg.pin_cpus.clone();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        // Data threads.
        for (j, (mut load, mut store)) in callbacks
            .loaders
            .into_iter()
            .zip(callbacks.storers)
            .enumerate()
        {
            let pins = pins.clone();
            handles.push(scope.spawn(move || {
                if let Some(p) = &pins {
                    let _ = affinity::pin_current_thread(p[j]);
                }
                for step in schedule_ref.steps() {
                    if let Some(blk) = step.store {
                        // Safety: between the previous global barrier
                        // and the data barrier below, half `blk % 2` is
                        // only read (by data threads); compute threads
                        // work on the other half (schedule invariant).
                        let half = unsafe { buffer.half(PipelineStep::half_of(blk)) };
                        store(blk, half);
                    }
                    data_barrier_ref.wait();
                    if let Some(blk) = step.load {
                        let range = load_ranges_ref[j].clone();
                        // Safety: load shares are disjoint across data
                        // threads; all stores of this half completed at
                        // the data barrier; compute is on the other half.
                        let share = unsafe {
                            buffer.half_range_mut(PipelineStep::half_of(blk), range.clone())
                        };
                        load(blk, range.start, share);
                    }
                    global_barrier_ref.wait();
                }
            }));
        }
        // Compute threads.
        for (j, mut compute) in callbacks.computes.into_iter().enumerate() {
            let pins = pins.clone();
            handles.push(scope.spawn(move || {
                if let Some(p) = &pins {
                    let _ = affinity::pin_current_thread(p[p_d + j]);
                }
                for step in schedule_ref.steps() {
                    if let Some(blk) = step.compute {
                        let range = compute_ranges_ref[j].clone();
                        // Safety: compute shares are disjoint across
                        // compute threads and the compute half is
                        // untouched by data threads this step.
                        let share = unsafe {
                            buffer.half_range_mut(PipelineStep::half_of(blk), range.clone())
                        };
                        compute(blk, range.start, share);
                    }
                    global_barrier_ref.wait();
                }
            }));
        }
        for h in handles {
            h.join().expect("pipeline thread panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_num::signal::random_complex;
    use bwfft_num::AlignedVec;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// A shared output array the storers write through; ranges are
    /// disjoint so a mutex-free cell would do, but tests prefer safety.
    struct Out(Mutex<Vec<Complex64>>);

    fn run_identity_pipeline(p_d: usize, p_c: usize, blocks: usize, b: usize) {
        // Pipeline that computes out[block] = 2·x[block] (identity
        // permutation on store) — verifies plumbing and scheduling.
        let n = blocks * b;
        let x = random_complex(n, 99);
        let out = Out(Mutex::new(vec![Complex64::ZERO; n]));
        let buffer = DoubleBuffer::new(b);
        let x_ref = &x;
        let out_ref = &out;

        let loaders: Vec<LoadFn> = (0..p_d)
            .map(|_| {
                Box::new(move |blk: usize, off: usize, share: &mut [Complex64]| {
                    let start = blk * b + off;
                    share.copy_from_slice(&x_ref[start..start + share.len()]);
                }) as LoadFn
            })
            .collect();
        let storers: Vec<StoreFn> = (0..p_d)
            .map(|j| {
                Box::new(move |blk: usize, half: &[Complex64]| {
                    // Thread j writes its contiguous quarter.
                    let ranges = partition(b, p_d);
                    let r = ranges[j].clone();
                    let mut guard = out_ref.0.lock().unwrap();
                    guard[blk * b + r.start..blk * b + r.end].copy_from_slice(&half[r]);
                }) as StoreFn
            })
            .collect();
        let computes: Vec<ComputeFn> = (0..p_c)
            .map(|_| {
                Box::new(move |_blk: usize, _off: usize, share: &mut [Complex64]| {
                    for v in share.iter_mut() {
                        *v = *v * 2.0;
                    }
                }) as ComputeFn
            })
            .collect();

        run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: blocks,
                load_unit: 1,
                compute_unit: 1,
                pin_cpus: None,
            },
            PipelineCallbacks {
                loaders,
                storers,
                computes,
            },
        );

        let got = out.0.into_inner().unwrap();
        for (i, (g, e)) in got.iter().zip(&x).enumerate() {
            assert_eq!(*g, *e * 2.0, "element {i}");
        }
    }

    #[test]
    fn pipeline_computes_correctly_1x1() {
        run_identity_pipeline(1, 1, 4, 64);
    }

    #[test]
    fn pipeline_computes_correctly_2x2() {
        run_identity_pipeline(2, 2, 8, 64);
    }

    #[test]
    fn pipeline_computes_correctly_4x4() {
        run_identity_pipeline(4, 4, 6, 96);
    }

    #[test]
    fn pipeline_single_block() {
        run_identity_pipeline(2, 2, 1, 32);
    }

    #[test]
    fn compute_sees_every_block_exactly_once() {
        let b = 32;
        let blocks = 10;
        let buffer = DoubleBuffer::new(b);
        let count = AtomicUsize::new(0);
        let count_ref = &count;
        let seen = Mutex::new(Vec::<usize>::new());
        let seen_ref = &seen;
        run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: blocks,
                load_unit: 1,
                compute_unit: 1,
                pin_cpus: None,
            },
            PipelineCallbacks {
                loaders: vec![Box::new(|_, _, _| {})],
                storers: vec![Box::new(|_, _| {})],
                computes: vec![Box::new(move |blk, _, _| {
                    count_ref.fetch_add(1, Ordering::SeqCst);
                    seen_ref.lock().unwrap().push(blk);
                })],
            },
        );
        assert_eq!(count.load(Ordering::SeqCst), blocks);
        let mut blocks_seen = seen.into_inner().unwrap();
        blocks_seen.sort_unstable();
        assert_eq!(blocks_seen, (0..blocks).collect::<Vec<_>>());
    }

    #[test]
    fn store_happens_after_compute_of_same_block() {
        // Record orderings via a log.
        let b = 16;
        let blocks = 6;
        let buffer = DoubleBuffer::new(b);
        let log = Mutex::new(Vec::<(char, usize)>::new());
        let log_ref = &log;
        run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: blocks,
                load_unit: 1,
                compute_unit: 1,
                pin_cpus: None,
            },
            PipelineCallbacks {
                loaders: vec![Box::new(move |blk, _, _| {
                    log_ref.lock().unwrap().push(('L', blk));
                })],
                storers: vec![Box::new(move |blk, _| {
                    log_ref.lock().unwrap().push(('S', blk));
                })],
                computes: vec![Box::new(move |blk, _, _| {
                    log_ref.lock().unwrap().push(('C', blk));
                })],
            },
        );
        let events = log.into_inner().unwrap();
        for blk in 0..blocks {
            let lpos = events.iter().position(|e| *e == ('L', blk)).unwrap();
            let cpos = events.iter().position(|e| *e == ('C', blk)).unwrap();
            let spos = events.iter().position(|e| *e == ('S', blk)).unwrap();
            assert!(lpos < cpos && cpos < spos, "block {blk}: L{lpos} C{cpos} S{spos}");
        }
    }

    #[test]
    fn data_written_by_loader_reaches_computer_intact() {
        // Loader writes a known pattern; compute verifies it before
        // overwriting; store verifies the compute result.
        let b = 64;
        let blocks = 5;
        let buffer = DoubleBuffer::new(b);
        let failures = AtomicUsize::new(0);
        let f = &failures;
        run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: blocks,
                load_unit: 1,
                compute_unit: 1,
                pin_cpus: None,
            },
            PipelineCallbacks {
                loaders: vec![Box::new(move |blk, off, share| {
                    for (i, v) in share.iter_mut().enumerate() {
                        *v = Complex64::new(blk as f64, (off + i) as f64);
                    }
                })],
                storers: vec![Box::new(move |blk, half| {
                    for (i, v) in half.iter().enumerate() {
                        if *v != Complex64::new(blk as f64 + 1.0, i as f64) {
                            f.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })],
                computes: vec![Box::new(move |blk, off, share| {
                    for (i, v) in share.iter_mut().enumerate() {
                        if *v != Complex64::new(blk as f64, (off + i) as f64) {
                            f.fetch_add(1, Ordering::SeqCst);
                        }
                        *v = Complex64::new(blk as f64 + 1.0, (off + i) as f64);
                    }
                })],
            },
        );
        assert_eq!(failures.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn pinning_request_does_not_break_execution() {
        let b = 16;
        let buffer = DoubleBuffer::new(b);
        let touched = AtomicUsize::new(0);
        let t = &touched;
        run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 2,
                load_unit: 1,
                compute_unit: 1,
                pin_cpus: Some(vec![0, 0]),
            },
            PipelineCallbacks {
                loaders: vec![Box::new(|_, _, _| {})],
                storers: vec![Box::new(|_, _| {})],
                computes: vec![Box::new(move |_, _, _| {
                    t.fetch_add(1, Ordering::SeqCst);
                })],
            },
        );
        assert_eq!(touched.load(Ordering::SeqCst), 2);
    }

    #[test]
    #[should_panic(expected = "one storer per data thread")]
    fn mismatched_role_counts_rejected() {
        let buffer = DoubleBuffer::new(8);
        run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: 1,
                load_unit: 1,
                compute_unit: 1,
                pin_cpus: None,
            },
            PipelineCallbacks {
                loaders: vec![Box::new(|_, _, _| {}), Box::new(|_, _, _| {})],
                storers: vec![Box::new(|_, _| {})],
                computes: vec![Box::new(|_, _, _| {})],
            },
        );
    }

    #[test]
    fn unused_aligned_vec_reexport_compiles() {
        // Keep AlignedVec in the dependency surface tests exercise.
        let v: AlignedVec<Complex64> = AlignedVec::zeroed(4);
        assert_eq!(v.len(), 4);
    }
}
