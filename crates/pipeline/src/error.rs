//! Typed errors of the pipeline layer.
//!
//! The executor never panics across its public boundary: configuration
//! mistakes surface as [`ConfigError`], a contained worker panic as
//! [`PipelineError::WorkerPanicked`], and a watchdog expiry as
//! [`PipelineError::StageTimeout`]. `bwfft-core` converts these into
//! its own error type and the facade into `BwfftError`.

use crate::cancel::CancelReason;
use crate::roles::Role;
use core::time::Duration;

/// Rejected pipeline configuration (the former `assert!`s of
/// `run_pipeline`, as values).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `loaders.len() != storers.len()` — each data thread needs both.
    MismatchedRoles { loaders: usize, storers: usize },
    /// No thread for one of the roles.
    ZeroThreads { role: Role },
    /// Zero pipeline iterations requested.
    ZeroIters,
    /// A partition unit does not divide the buffer half.
    UnitMismatch {
        what: &'static str,
        unit: usize,
        half_elems: usize,
    },
    /// `pin_cpus` length differs from the thread count.
    PinListMismatch { pins: usize, threads: usize },
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::MismatchedRoles { loaders, storers } => write!(
                f,
                "one storer per data thread required ({loaders} loaders, {storers} storers)"
            ),
            ConfigError::ZeroThreads { role } => {
                write!(f, "need at least one {role:?} thread")
            }
            ConfigError::ZeroIters => write!(f, "pipeline needs at least one block"),
            ConfigError::UnitMismatch {
                what,
                unit,
                half_elems,
            } => write!(
                f,
                "{what} = {unit} must be >= 1 and divide the buffer half ({half_elems})"
            ),
            ConfigError::PinListMismatch { pins, threads } => write!(
                f,
                "pin_cpus lists {pins} CPUs for {threads} threads (one CPU per thread)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// What kind of integrity invariant a guard found violated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntegrityKind {
    /// A canary word framing a double-buffer half was overwritten —
    /// some phase wrote outside its slice.
    Canary,
    /// The per-block checksum carried load → compute → store changed
    /// between handoffs — buffer contents were silently corrupted.
    Checksum,
    /// The per-run Parseval/energy-budget invariant failed — the output
    /// spectrum's energy does not match the input's.
    Energy,
}

impl core::fmt::Display for IntegrityKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IntegrityKind::Canary => write!(f, "buffer canary clobbered"),
            IntegrityKind::Checksum => write!(f, "block checksum mismatch"),
            IntegrityKind::Energy => write!(f, "Parseval energy invariant violated"),
        }
    }
}

/// Why a pipeline run failed.
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineError {
    /// The configuration was rejected before any thread started.
    Config(ConfigError),
    /// A worker closure panicked; the run was aborted, all surviving
    /// threads drained, and the panic payload captured here.
    WorkerPanicked {
        role: Role,
        /// Role-local thread index.
        thread: usize,
        /// Pipeline iteration (block index) the worker was executing.
        iter: usize,
        /// Stringified panic payload.
        message: String,
    },
    /// A barrier wait exceeded the configured per-iteration watchdog:
    /// some peer is stalled or wedged.
    StageTimeout {
        role: Role,
        /// Role-local index of the thread whose watchdog fired.
        thread: usize,
        /// Pipeline step index at which the wait timed out.
        iter: usize,
        timeout: Duration,
    },
    /// An integrity guard (canary, checksum, energy invariant) detected
    /// silent data corruption; the run was aborted before the corrupt
    /// block could reach the output.
    Integrity {
        /// Pipeline stage the guard fired in.
        stage: usize,
        /// Block (or step, for canaries) index at the detection point.
        block: usize,
        kind: IntegrityKind,
    },
    /// The run's [`crate::CancelToken`] fired (per-request deadline or
    /// an explicit drain); the workers drained cooperatively at the
    /// next step boundary instead of finishing the schedule.
    Cancelled {
        /// Pipeline step index at which a worker observed the token.
        iter: usize,
        reason: CancelReason,
    },
}

impl From<ConfigError> for PipelineError {
    fn from(e: ConfigError) -> Self {
        PipelineError::Config(e)
    }
}

impl core::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PipelineError::Config(e) => write!(f, "pipeline configuration: {e}"),
            PipelineError::WorkerPanicked {
                role,
                thread,
                iter,
                message,
            } => write!(
                f,
                "{role:?} worker {thread} panicked at pipeline iteration {iter}: {message}"
            ),
            PipelineError::StageTimeout {
                role,
                thread,
                iter,
                timeout,
            } => write!(
                f,
                "{role:?} worker {thread} timed out after {timeout:?} waiting at step {iter} \
                 (a peer is stalled)"
            ),
            PipelineError::Integrity { stage, block, kind } => write!(
                f,
                "integrity guard: {kind} at stage {stage}, block {block}"
            ),
            PipelineError::Cancelled { iter, reason } => {
                write!(f, "run cancelled at step {iter}: {reason}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        let e = PipelineError::Config(ConfigError::MismatchedRoles {
            loaders: 2,
            storers: 1,
        });
        assert!(e.to_string().contains("one storer per data thread"));
        let e = PipelineError::WorkerPanicked {
            role: Role::Compute,
            thread: 1,
            iter: 7,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("iteration 7"));
        assert!(e.to_string().contains("boom"));
        let e = PipelineError::StageTimeout {
            role: Role::Data,
            thread: 0,
            iter: 3,
            timeout: Duration::from_millis(50),
        };
        assert!(e.to_string().contains("timed out"));
        let e = PipelineError::Integrity {
            stage: 1,
            block: 4,
            kind: IntegrityKind::Checksum,
        };
        assert!(e.to_string().contains("checksum mismatch"));
        assert!(e.to_string().contains("stage 1"));
        assert!(IntegrityKind::Canary.to_string().contains("canary"));
        assert!(IntegrityKind::Energy.to_string().contains("Parseval"));
        let e = PipelineError::Cancelled {
            iter: 5,
            reason: CancelReason::Deadline,
        };
        assert!(e.to_string().contains("step 5"));
        assert!(e.to_string().contains("deadline"));
        let e = PipelineError::Cancelled {
            iter: 0,
            reason: CancelReason::Shutdown,
        };
        assert!(e.to_string().contains("shutdown"));
    }

    #[test]
    fn config_error_converts() {
        let e: PipelineError = ConfigError::ZeroThreads { role: Role::Data }.into();
        assert!(matches!(e, PipelineError::Config(_)));
    }
}
