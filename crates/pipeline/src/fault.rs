//! Fault injection for the pipeline executor and the machine simulator.
//!
//! A [`FaultPlan`] describes misbehaviour to inject into a run so the
//! containment machinery (catch_unwind, abort flag, watchdog,
//! degradation policy) can be exercised deterministically from tests
//! and from the CLI. The real executor consumes [`FaultPlan::panic_at`],
//! [`FaultPlan::stall`] and [`FaultPlan::deny_pinning`]; the simulator
//! additionally honours the bandwidth deratings.
//!
//! Faults are keyed by a [`FaultSite`]: role, role-local thread index
//! and pipeline iteration (block index). A `Data` fault fires when the
//! thread loads block `iter`; a `Compute` fault fires when the thread
//! computes block `iter`. Because the Table II schedule has a prologue
//! (loads only), a steady state and an epilogue (stores only), choosing
//! `iter` 0, a middle block or the last block exercises all three
//! phases of the pipeline.

use crate::roles::Role;
use core::time::Duration;

/// One (role, thread, iteration) coordinate in the pipeline schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSite {
    pub role: Role,
    /// Role-local thread index (data thread j or compute thread j).
    pub thread: usize,
    /// Block index whose load (Data) / compute (Compute) triggers the
    /// fault.
    pub iter: usize,
}

/// A finite busy-stall injected before a worker's phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallFault {
    pub site: FaultSite,
    /// How long the worker sleeps before doing its work. With an
    /// `iter_timeout` shorter than this, peers report
    /// `PipelineError::StageTimeout`.
    pub duration: Duration,
}

/// Misbehaviour to inject into a run. `Default` is the empty plan
/// (no faults).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Panic inside the worker closure at this site.
    pub panic_at: Option<FaultSite>,
    /// Sleep inside the worker closure at this site.
    pub stall: Option<StallFault>,
    /// Report every pin request as failed without calling the OS —
    /// drives the pinning-degradation path deterministically.
    pub deny_pinning: bool,
    /// Multiply simulated DRAM bandwidth by this factor in (0, 1].
    /// Ignored by the real executor.
    pub dram_derate: Option<f64>,
    /// Multiply simulated inter-socket link bandwidth by this factor
    /// in (0, 1]. Ignored by the real executor.
    pub link_derate: Option<f64>,
}

impl FaultPlan {
    /// Empty plan; alias for `Default::default()` that reads better at
    /// call sites.
    pub fn none() -> Self {
        Self::default()
    }

    /// Plan with a single injected panic.
    pub fn panic_at(role: Role, thread: usize, iter: usize) -> Self {
        FaultPlan {
            panic_at: Some(FaultSite { role, thread, iter }),
            ..Self::default()
        }
    }

    /// Plan with a single injected stall.
    pub fn stall_at(role: Role, thread: usize, iter: usize, duration: Duration) -> Self {
        FaultPlan {
            stall: Some(StallFault {
                site: FaultSite { role, thread, iter },
                duration,
            }),
            ..Self::default()
        }
    }

    /// Builder-style: deny pinning on top of the existing plan.
    pub fn with_denied_pinning(mut self) -> Self {
        self.deny_pinning = true;
        self
    }

    /// True when the plan injects nothing the real executor reacts to
    /// and no deratings.
    pub fn is_empty(&self) -> bool {
        self.panic_at.is_none()
            && self.stall.is_none()
            && !self.deny_pinning
            && self.dram_derate.is_none()
            && self.link_derate.is_none()
    }

    /// The panic site if it matches `(role, thread)`, for the executor's
    /// per-thread fast check.
    pub(crate) fn panic_site_for(&self, role: Role, thread: usize) -> Option<usize> {
        self.panic_at
            .filter(|s| s.role == role && s.thread == thread)
            .map(|s| s.iter)
    }

    /// The stall (iter, duration) if it matches `(role, thread)`.
    pub(crate) fn stall_for(&self, role: Role, thread: usize) -> Option<(usize, Duration)> {
        self.stall
            .filter(|s| s.site.role == role && s.site.thread == thread)
            .map(|s| (s.site.iter, s.duration))
    }
}

/// Installs (once per process) a panic hook that suppresses the stderr
/// report for panics whose message starts with
/// [`crate::exec::INJECTED_FAULT_PREFIX`]. Injected faults are caught
/// by the executor and surfaced as typed errors; the default hook's
/// "thread panicked at ..." line would be pure noise for them. All
/// other panics are reported through the previously installed hook.
///
/// Intended for fault-injection tests and CLI fault drills.
pub fn silence_injected_panic_reports() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.starts_with(crate::exec::INJECTED_FAULT_PREFIX) {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::panic_at(Role::Data, 0, 0).is_empty());
        assert!(!FaultPlan::none().with_denied_pinning().is_empty());
    }

    #[test]
    fn site_matching_is_role_and_thread_scoped() {
        let p = FaultPlan::panic_at(Role::Compute, 1, 5);
        assert_eq!(p.panic_site_for(Role::Compute, 1), Some(5));
        assert_eq!(p.panic_site_for(Role::Compute, 0), None);
        assert_eq!(p.panic_site_for(Role::Data, 1), None);

        let s = FaultPlan::stall_at(Role::Data, 0, 2, Duration::from_millis(10));
        assert_eq!(
            s.stall_for(Role::Data, 0),
            Some((2, Duration::from_millis(10)))
        );
        assert_eq!(s.stall_for(Role::Compute, 0), None);
    }
}
