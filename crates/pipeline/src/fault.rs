//! Fault injection for the pipeline executor and the machine simulator.
//!
//! A [`FaultPlan`] describes misbehaviour to inject into a run so the
//! containment machinery (catch_unwind, abort flag, watchdog, integrity
//! guards, degradation policy) can be exercised deterministically from
//! tests and from the CLI. The real executor consumes
//! [`FaultPlan::panic_at`], [`FaultPlan::stall`],
//! [`FaultPlan::corrupt_at`] and [`FaultPlan::deny_pinning`]; the
//! allocation budget [`FaultPlan::fail_alloc_over`] is honoured by the
//! core executors' buffer allocations; the simulator additionally
//! honours the bandwidth deratings.
//!
//! Faults are keyed by a [`FaultSite`]: role, role-local thread index,
//! pipeline iteration (block index), and the [`FaultPhase`] within the
//! step. The fault matrix is symmetric over all three phases: a `Data`
//! fault can fire during the load *or* the store/writeback of block
//! `iter`, a `Compute` fault during its kernel. Because the Table II
//! schedule has a prologue (loads only), a steady state and an epilogue
//! (stores only), choosing `iter` 0, a middle block or the last block
//! exercises all three regions of the schedule.

use crate::roles::Role;
use core::time::Duration;

/// Which phase of a pipeline step a fault targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPhase {
    /// The data thread's load of block `iter`.
    Load,
    /// The compute thread's kernel on block `iter`.
    Compute,
    /// The data thread's store/writeback of block `iter`.
    Store,
}

impl FaultPhase {
    /// The conventional phase of a role's "natural" fault, used by the
    /// phase-agnostic constructors: data threads fault on load, compute
    /// threads on compute.
    pub fn default_for(role: Role) -> Self {
        match role {
            Role::Data => FaultPhase::Load,
            Role::Compute => FaultPhase::Compute,
        }
    }
}

/// One (role, thread, iteration, phase) coordinate in the pipeline
/// schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSite {
    pub role: Role,
    /// Role-local thread index (data thread j or compute thread j).
    pub thread: usize,
    /// Block index whose `phase` triggers the fault.
    pub iter: usize,
    /// The phase within the step.
    pub phase: FaultPhase,
}

impl FaultSite {
    /// Site with the role's conventional phase (Data → Load,
    /// Compute → Compute).
    pub fn new(role: Role, thread: usize, iter: usize) -> Self {
        FaultSite {
            role,
            thread,
            iter,
            phase: FaultPhase::default_for(role),
        }
    }

    /// Fully phase-qualified site.
    pub fn at_phase(role: Role, thread: usize, iter: usize, phase: FaultPhase) -> Self {
        FaultSite {
            role,
            thread,
            iter,
            phase,
        }
    }
}

/// A finite busy-stall injected before a worker's phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallFault {
    pub site: FaultSite,
    /// How long the worker sleeps before doing its work. With an
    /// `iter_timeout` shorter than this, peers report
    /// `PipelineError::StageTimeout`.
    pub duration: Duration,
}

/// Misbehaviour to inject into a run. `Default` is the empty plan
/// (no faults).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Panic inside the worker closure at this site.
    pub panic_at: Option<FaultSite>,
    /// Sleep inside the worker closure at this site.
    pub stall: Option<StallFault>,
    /// Silently corrupt one buffer element *after* the site's phase has
    /// completed (and after any integrity checksum was accumulated), so
    /// the guard at the next handoff — not the fault itself — must
    /// catch it. Only `Load` and `Compute` phases corrupt buffer state
    /// the pipeline can still detect; a `Store`-phase site is accepted
    /// but corrupts nothing (output-side corruption is the soak
    /// harness's reference comparison's job).
    pub corrupt_at: Option<FaultSite>,
    /// Report every pin request as failed without calling the OS —
    /// drives the pinning-degradation path deterministically.
    pub deny_pinning: bool,
    /// Deny any single buffer allocation larger than this many bytes —
    /// drives the OOM-recovery path (typed `AllocError`, plan shrink)
    /// deterministically. Honoured by the core executors' allocation
    /// sites, not by the OS allocator.
    pub fail_alloc_over: Option<usize>,
    /// Multiply simulated DRAM bandwidth by this factor in (0, 1].
    /// Ignored by the real executor.
    pub dram_derate: Option<f64>,
    /// Multiply simulated inter-socket link bandwidth by this factor
    /// in (0, 1]. Ignored by the real executor.
    pub link_derate: Option<f64>,
}

impl FaultPlan {
    /// Empty plan; alias for `Default::default()` that reads better at
    /// call sites.
    pub fn none() -> Self {
        Self::default()
    }

    /// Plan with a single injected panic at the role's conventional
    /// phase.
    pub fn panic_at(role: Role, thread: usize, iter: usize) -> Self {
        FaultPlan {
            panic_at: Some(FaultSite::new(role, thread, iter)),
            ..Self::default()
        }
    }

    /// Plan with a single injected panic at an explicit phase.
    pub fn panic_at_phase(role: Role, thread: usize, iter: usize, phase: FaultPhase) -> Self {
        FaultPlan {
            panic_at: Some(FaultSite::at_phase(role, thread, iter, phase)),
            ..Self::default()
        }
    }

    /// Plan with a single injected stall at the role's conventional
    /// phase.
    pub fn stall_at(role: Role, thread: usize, iter: usize, duration: Duration) -> Self {
        FaultPlan {
            stall: Some(StallFault {
                site: FaultSite::new(role, thread, iter),
                duration,
            }),
            ..Self::default()
        }
    }

    /// Plan with a single injected stall at an explicit phase.
    pub fn stall_at_phase(
        role: Role,
        thread: usize,
        iter: usize,
        phase: FaultPhase,
        duration: Duration,
    ) -> Self {
        FaultPlan {
            stall: Some(StallFault {
                site: FaultSite::at_phase(role, thread, iter, phase),
                duration,
            }),
            ..Self::default()
        }
    }

    /// Plan with a single silent corruption after the site's phase.
    pub fn corrupt_at(role: Role, thread: usize, iter: usize, phase: FaultPhase) -> Self {
        FaultPlan {
            corrupt_at: Some(FaultSite::at_phase(role, thread, iter, phase)),
            ..Self::default()
        }
    }

    /// Builder-style: deny pinning on top of the existing plan.
    pub fn with_denied_pinning(mut self) -> Self {
        self.deny_pinning = true;
        self
    }

    /// Builder-style: deny allocations above `bytes` on top of the
    /// existing plan.
    pub fn with_alloc_budget(mut self, bytes: usize) -> Self {
        self.fail_alloc_over = Some(bytes);
        self
    }

    /// True when the plan injects nothing the real executor reacts to
    /// and no deratings.
    pub fn is_empty(&self) -> bool {
        self.panic_at.is_none()
            && self.stall.is_none()
            && self.corrupt_at.is_none()
            && !self.deny_pinning
            && self.fail_alloc_over.is_none()
            && self.dram_derate.is_none()
            && self.link_derate.is_none()
    }

    /// The panic site's iter if it matches `(role, thread, phase)`, for
    /// the executor's per-thread fast check.
    pub(crate) fn panic_site_for(&self, role: Role, thread: usize, phase: FaultPhase) -> Option<usize> {
        self.panic_at
            .filter(|s| s.role == role && s.thread == thread && s.phase == phase)
            .map(|s| s.iter)
    }

    /// The stall (iter, duration) if it matches `(role, thread, phase)`.
    pub(crate) fn stall_for(
        &self,
        role: Role,
        thread: usize,
        phase: FaultPhase,
    ) -> Option<(usize, Duration)> {
        self.stall
            .filter(|s| s.site.role == role && s.site.thread == thread && s.site.phase == phase)
            .map(|s| (s.site.iter, s.duration))
    }

    /// The corruption site's iter if it matches `(role, thread, phase)`.
    pub(crate) fn corrupt_for(&self, role: Role, thread: usize, phase: FaultPhase) -> Option<usize> {
        self.corrupt_at
            .filter(|s| s.role == role && s.thread == thread && s.phase == phase)
            .map(|s| s.iter)
    }
}

/// Installs (once per process) a panic hook that suppresses the stderr
/// report for panics whose message starts with
/// [`crate::exec::INJECTED_FAULT_PREFIX`]. Injected faults are caught
/// by the executor and surfaced as typed errors; the default hook's
/// "thread panicked at ..." line would be pure noise for them. All
/// other panics are reported through the previously installed hook.
///
/// Intended for fault-injection tests and CLI fault drills.
pub fn silence_injected_panic_reports() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.starts_with(crate::exec::INJECTED_FAULT_PREFIX) {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::panic_at(Role::Data, 0, 0).is_empty());
        assert!(!FaultPlan::none().with_denied_pinning().is_empty());
        assert!(!FaultPlan::none().with_alloc_budget(1024).is_empty());
        assert!(!FaultPlan::corrupt_at(Role::Data, 0, 0, FaultPhase::Load).is_empty());
    }

    #[test]
    fn site_matching_is_role_thread_and_phase_scoped() {
        let p = FaultPlan::panic_at(Role::Compute, 1, 5);
        assert_eq!(p.panic_site_for(Role::Compute, 1, FaultPhase::Compute), Some(5));
        assert_eq!(p.panic_site_for(Role::Compute, 0, FaultPhase::Compute), None);
        assert_eq!(p.panic_site_for(Role::Data, 1, FaultPhase::Load), None);

        let s = FaultPlan::stall_at(Role::Data, 0, 2, Duration::from_millis(10));
        assert_eq!(
            s.stall_for(Role::Data, 0, FaultPhase::Load),
            Some((2, Duration::from_millis(10)))
        );
        assert_eq!(s.stall_for(Role::Data, 0, FaultPhase::Store), None);
        assert_eq!(s.stall_for(Role::Compute, 0, FaultPhase::Compute), None);
    }

    #[test]
    fn store_phase_sites_are_distinct_from_load_sites() {
        let p = FaultPlan::panic_at_phase(Role::Data, 0, 3, FaultPhase::Store);
        assert_eq!(p.panic_site_for(Role::Data, 0, FaultPhase::Store), Some(3));
        assert_eq!(p.panic_site_for(Role::Data, 0, FaultPhase::Load), None);

        let s = FaultPlan::stall_at_phase(
            Role::Data,
            1,
            2,
            FaultPhase::Store,
            Duration::from_millis(7),
        );
        assert_eq!(
            s.stall_for(Role::Data, 1, FaultPhase::Store),
            Some((2, Duration::from_millis(7)))
        );
        assert_eq!(s.stall_for(Role::Data, 1, FaultPhase::Load), None);
    }

    #[test]
    fn corruption_sites_match_by_phase() {
        let p = FaultPlan::corrupt_at(Role::Compute, 0, 1, FaultPhase::Compute);
        assert_eq!(p.corrupt_for(Role::Compute, 0, FaultPhase::Compute), Some(1));
        assert_eq!(p.corrupt_for(Role::Data, 0, FaultPhase::Load), None);
    }

    #[test]
    fn default_phases_follow_roles() {
        assert_eq!(FaultPhase::default_for(Role::Data), FaultPhase::Load);
        assert_eq!(FaultPhase::default_for(Role::Compute), FaultPhase::Compute);
        assert_eq!(
            FaultSite::new(Role::Data, 0, 0).phase,
            FaultPhase::Load
        );
    }
}
