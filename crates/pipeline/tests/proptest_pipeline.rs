//! Property-based tests of the software pipeline: the Table II
//! schedule invariants at arbitrary iteration counts, the work
//! partitioner, and full executor runs with randomized configurations.

use bwfft_num::Complex64;
use bwfft_pipeline::buffer::{partition, DoubleBuffer};
use bwfft_pipeline::exec::{ComputeFn, LoadFn, PipelineCallbacks, PipelineConfig, StoreFn};
use bwfft_pipeline::{run_pipeline, PipelineStep, Schedule};
use proptest::prelude::*;
use std::sync::Mutex;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn schedule_invariants(iters in 1usize..200) {
        let s = Schedule::new(iters);
        prop_assert_eq!(s.len(), iters + 2);
        let mut loaded = vec![false; iters];
        let mut computed = vec![false; iters];
        let mut stored = vec![false; iters];
        for step in s.steps() {
            if let Some(b) = step.load {
                prop_assert!(!loaded[b]);
                loaded[b] = true;
            }
            if let Some(b) = step.compute {
                // Computed exactly one step after its load.
                prop_assert!(loaded[b] && !computed[b]);
                prop_assert_eq!(step.step, b + 1);
                computed[b] = true;
            }
            if let Some(b) = step.store {
                prop_assert!(computed[b] && !stored[b]);
                prop_assert_eq!(step.step, b + 2);
                stored[b] = true;
            }
            // Data and compute never share a half within a step.
            if let (Some(dh), Some(ch)) = (step.data_half(), step.compute_half()) {
                prop_assert_ne!(dh, ch);
            }
        }
        prop_assert!(stored.iter().all(|s| *s));
    }

    #[test]
    fn half_parity_is_consistent(iters in 1usize..100) {
        let s = Schedule::new(iters);
        for step in s.steps() {
            if let Some(b) = step.load {
                prop_assert_eq!(PipelineStep::half_of(b), b % 2);
            }
        }
    }

    #[test]
    fn partition_properties(total in 0usize..10_000, parts in 1usize..16) {
        let ranges = partition(total, parts);
        prop_assert_eq!(ranges.len(), parts);
        let mut cursor = 0;
        for r in &ranges {
            prop_assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, total);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn executor_runs_identity_for_random_configs(
        p_d in 1usize..4,
        p_c in 1usize..4,
        blocks in 1usize..8,
        b_log in 4u32..8,
        seed in 0u64..100,
    ) {
        let b = 1usize << b_log;
        let n = blocks * b;
        let x = bwfft_num::signal::random_complex(n, seed);
        let out = Mutex::new(vec![Complex64::ZERO; n]);
        let buffer = DoubleBuffer::new(b);
        let x_ref = &x;
        let out_ref = &out;
        let loaders: Vec<LoadFn> = (0..p_d)
            .map(|_| {
                Box::new(move |blk: usize, off: usize, share: &mut [Complex64]| {
                    let start = blk * b + off;
                    share.copy_from_slice(&x_ref[start..start + share.len()]);
                }) as LoadFn
            })
            .collect();
        let storers: Vec<StoreFn> = (0..p_d)
            .map(|j| {
                Box::new(move |blk: usize, half: &[Complex64]| {
                    let r = partition(b, p_d)[j].clone();
                    let mut g = out_ref.lock().unwrap_or_else(|e| e.into_inner());
                    g[blk * b + r.start..blk * b + r.end].copy_from_slice(&half[r]);
                }) as StoreFn
            })
            .collect();
        let computes: Vec<ComputeFn> = (0..p_c)
            .map(|_| {
                Box::new(move |_b: usize, _o: usize, share: &mut [Complex64]| {
                    for v in share.iter_mut() {
                        *v = v.conj();
                    }
                }) as ComputeFn
            })
            .collect();
        let report = run_pipeline(
            &buffer,
            &PipelineConfig {
                iters: blocks,
                ..PipelineConfig::default()
            },
            PipelineCallbacks { loaders, storers, computes },
        );
        prop_assert!(report.is_ok());
        let got = out.into_inner().unwrap_or_else(|e| e.into_inner());
        for (g, e) in got.iter().zip(&x) {
            prop_assert_eq!(*g, e.conj());
        }
    }

    #[test]
    fn split_disjoint_never_panics_and_types_errors(
        total in 0usize..10_000,
        parts in 0usize..32,
    ) {
        use bwfft_pipeline::buffer::{split_disjoint, BufferError};
        match split_disjoint(total, parts) {
            Ok(ranges) => {
                // Only valid requests succeed, with non-empty exact cover.
                prop_assert!(parts >= 1 && parts <= total);
                prop_assert_eq!(ranges.len(), parts);
                prop_assert!(ranges.iter().all(|r| !r.is_empty()));
                let mut cursor = 0;
                for r in &ranges {
                    prop_assert_eq!(r.start, cursor);
                    cursor = r.end;
                }
                prop_assert_eq!(cursor, total);
            }
            Err(BufferError::ZeroParts { total: t }) => {
                prop_assert_eq!(parts, 0);
                prop_assert_eq!(t, total);
            }
            Err(BufferError::Oversized { total: t, parts: p }) => {
                prop_assert!(parts > total);
                prop_assert_eq!((t, p), (total, parts));
            }
        }
    }
}
