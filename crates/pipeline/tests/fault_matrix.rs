//! Fault-containment matrix for the real pipeline executor.
//!
//! Injects a worker panic or stall at every (role × iteration)
//! coordinate of a small run — iteration 0 is triggered during the
//! schedule's prologue, the middle blocks during steady state, and the
//! last block's store during the epilogue — and asserts that every run
//! terminates with the matching typed error instead of deadlocking.
//! The whole matrix runs under a generous watchdog so a regression
//! shows up as a test failure, not a hung CI job.

use bwfft_num::Complex64;
use bwfft_pipeline::exec::{ComputeFn, LoadFn, PipelineCallbacks, PipelineConfig, StoreFn};
use bwfft_pipeline::fault::silence_injected_panic_reports;
use bwfft_pipeline::{run_pipeline, DoubleBuffer, FaultPlan, PipelineError, Role};
use std::time::{Duration, Instant};

const B: usize = 32;
const BLOCKS: usize = 5;

fn callbacks<'a>(p_d: usize, p_c: usize) -> PipelineCallbacks<'a> {
    // Real work (copy/scale) so contained panics interrupt actual
    // buffer traffic, not empty closures.
    PipelineCallbacks {
        loaders: (0..p_d)
            .map(|_| {
                Box::new(|blk: usize, off: usize, share: &mut [Complex64]| {
                    for (i, v) in share.iter_mut().enumerate() {
                        *v = Complex64::new(blk as f64, (off + i) as f64);
                    }
                }) as LoadFn
            })
            .collect(),
        storers: (0..p_d)
            .map(|_| Box::new(|_blk: usize, _half: &[Complex64]| {}) as StoreFn)
            .collect(),
        computes: (0..p_c)
            .map(|_| {
                Box::new(|_blk: usize, _off: usize, share: &mut [Complex64]| {
                    for v in share.iter_mut() {
                        *v = *v * 2.0;
                    }
                }) as ComputeFn
            })
            .collect(),
    }
}

/// Hard upper bound on any single faulty run; far above the watchdog
/// (1s) but far below a CI timeout, so a deadlock regression fails
/// loudly and quickly.
const RUN_DEADLINE: Duration = Duration::from_secs(30);

#[allow(clippy::expect_used)] // test helper; only #[test] fns get the blanket allowance
fn run_with_fault(p_d: usize, p_c: usize, fault: FaultPlan) -> PipelineError {
    let buffer = DoubleBuffer::new(B);
    let start = Instant::now();
    let result = run_pipeline(
        &buffer,
        &PipelineConfig {
            iters: BLOCKS,
            iter_timeout: Some(Duration::from_secs(1)),
            fault: Some(fault.clone()),
            ..PipelineConfig::default()
        },
        callbacks(p_d, p_c),
    );
    assert!(
        start.elapsed() < RUN_DEADLINE,
        "faulty run {fault:?} took {:?} — drain is broken",
        start.elapsed()
    );
    result.expect_err("injected fault must fail the run")
}

#[test]
fn panic_matrix_every_iteration_and_role_terminates_with_typed_error() {
    silence_injected_panic_reports();
    for (p_d, p_c) in [(1usize, 1usize), (2, 2)] {
        for role in [Role::Data, Role::Compute] {
            for iter in 0..BLOCKS {
                // iter 0 fires in the prologue (first load / first
                // compute), BLOCKS-1 in the drain steps.
                for thread in 0..if role == Role::Data { p_d } else { p_c } {
                    let err = run_with_fault(p_d, p_c, FaultPlan::panic_at(role, thread, iter));
                    match err {
                        PipelineError::WorkerPanicked {
                            role: r,
                            thread: t,
                            iter: i,
                            ..
                        } => {
                            assert_eq!((r, t, i), (role, thread, iter), "site mismatch");
                        }
                        other => panic!(
                            "p_d={p_d} p_c={p_c} {role:?}/{thread}@{iter}: \
                             expected WorkerPanicked, got {other:?}"
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn stall_matrix_trips_watchdog_into_stage_timeout() {
    silence_injected_panic_reports();
    // A 3s stall against a 1s watchdog: peers must report StageTimeout.
    // One steady-state and one prologue site per role keeps wall-clock
    // bounded (each run still sleeps out its stall before joining).
    for (role, iter) in [
        (Role::Data, 0),
        (Role::Data, 2),
        (Role::Compute, 0),
        (Role::Compute, 2),
    ] {
        let err = run_with_fault(
            1,
            1,
            FaultPlan::stall_at(role, 0, iter, Duration::from_secs(3)),
        );
        assert!(
            matches!(err, PipelineError::StageTimeout { .. }),
            "{role:?}@{iter}: expected StageTimeout, got {err:?}"
        );
    }
}

#[test]
fn faulty_run_leaves_executor_reusable() {
    silence_injected_panic_reports();
    // A contained failure must not poison process-global state: a
    // fresh fault-free run right after succeeds.
    let _ = run_with_fault(2, 2, FaultPlan::panic_at(Role::Compute, 1, 2));
    let buffer = DoubleBuffer::new(B);
    let report = run_pipeline(
        &buffer,
        &PipelineConfig {
            iters: BLOCKS,
            ..PipelineConfig::default()
        },
        callbacks(2, 2),
    )
    .expect("fault-free run after a contained failure");
    assert_eq!(report.blocks, BLOCKS);
}
