//! Property tests for the statistics engine (DESIGN.md §9).
//!
//! The properties are the contracts the rest of the harness builds on:
//!
//! * `summarize` never panics and never returns an empty kept-set —
//!   MAD rejection keeps the median by construction;
//! * the bootstrap interval always brackets the median
//!   (`ci_lo ≤ median ≤ ci_hi`), for any sample, seed and confidence;
//! * the whole pipeline is deterministic: same sample + same config ⇒
//!   identical summary, bit for bit;
//! * degenerate samples (`N = 1`, all-equal) degrade to a zero-width
//!   interval instead of panicking or erroring.

use bwfft_bench::stats::{
    bootstrap_ci, median, reject_outliers, summarize, StatsConfig, StatsError,
};
use proptest::prelude::*;

/// Positive, finite, benchmark-plausible times in nanoseconds.
fn times() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1.0f64..1e12, 1..64)
}

proptest! {
    #[test]
    fn mad_rejection_never_empties_and_keeps_the_median(
        sample in times(),
        k in 0.0f64..10.0,
    ) {
        let kept = reject_outliers(&sample, k);
        prop_assert!(!kept.is_empty(), "rejection emptied a {}-point sample", sample.len());
        prop_assert!(kept.len() <= sample.len());
        // Every kept point is an actual sample point.
        for x in &kept {
            prop_assert!(sample.contains(x));
        }
        // For any useful threshold (k·1.4826 ≥ 1) the middle of the
        // sample survives: every point's deviation from the median is
        // at least that of the middle point(s), so MAD already covers
        // them. (Below that, only the non-emptiness fallback holds.)
        if k * 1.4826 >= 1.0 {
            let med = median(&sample);
            let lo = kept.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = kept.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(lo <= med && med <= hi, "kept [{lo}, {hi}] excludes median {med}");
        }
    }

    #[test]
    fn bootstrap_ci_brackets_the_median(
        sample in times(),
        seed in any::<u64>(),
        resamples in 0usize..300,
        confidence in 0.5f64..0.999,
    ) {
        let cfg = StatsConfig { seed, resamples, confidence, ..StatsConfig::default() };
        let med = median(&sample);
        let (lo, hi) = bootstrap_ci(&sample, &cfg);
        prop_assert!(lo.is_finite() && hi.is_finite());
        prop_assert!(lo <= med && med <= hi, "CI [{lo}, {hi}] excludes median {med}");
    }

    #[test]
    fn summarize_is_total_and_deterministic(sample in times(), seed in any::<u64>()) {
        let cfg = StatsConfig { seed, ..StatsConfig::default() };
        let a = summarize(&sample, &cfg).unwrap();
        let b = summarize(&sample, &cfg).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.n_raw, sample.len());
        prop_assert!(a.n_kept >= 1 && a.n_kept <= a.n_raw);
        prop_assert!(a.ci_lo_ns <= a.median_ns && a.median_ns <= a.ci_hi_ns);
        prop_assert!(a.min_ns <= a.median_ns && a.median_ns <= a.max_ns);
        prop_assert!(a.ci_halfwidth_pct() >= 0.0);
    }

    #[test]
    fn degenerate_all_equal_samples_are_zero_width(v in 1.0f64..1e12, n in 1usize..32) {
        let sample = vec![v; n];
        let s = summarize(&sample, &StatsConfig::default()).unwrap();
        prop_assert_eq!(s.median_ns, v);
        prop_assert_eq!((s.ci_lo_ns, s.ci_hi_ns), (v, v));
        prop_assert_eq!(s.rejected(), 0);
    }
}

#[test]
fn empty_and_non_finite_are_errors_not_panics() {
    let cfg = StatsConfig::default();
    assert_eq!(summarize(&[], &cfg), Err(StatsError::EmptySample));
    assert_eq!(
        summarize(&[1.0, f64::NAN, 2.0], &cfg),
        Err(StatsError::NonFinite)
    );
    assert_eq!(
        summarize(&[f64::NEG_INFINITY], &cfg),
        Err(StatsError::NonFinite)
    );
}
