//! Schema tests for the `bwfft-bench/1` record: an exact byte-level
//! snapshot of a pinned report, lossless round-trips over arbitrary
//! reports, and version rejection. Any change to the emitted bytes
//! must be deliberate — bump the `/N` suffix and update DESIGN.md §9.

use bwfft_bench::record::{
    from_json, to_json, BenchJsonError, BenchReport, OocMetrics, RealMetrics, ServeMetrics,
    StageMetric, SuiteResult, SCHEMA_VERSION,
};
use bwfft_bench::stats::SampleSummary;
use bwfft_tuner::HostFingerprint;
use proptest::prelude::*;

fn pinned_report() -> BenchReport {
    BenchReport {
        schema: SCHEMA_VERSION.to_string(),
        git_rev: "abc1234".to_string(),
        suite_kind: "fast".to_string(),
        seed: 42,
        fingerprint: HostFingerprint {
            cpus: 1,
            pin_works: false,
            llc_bytes: 8 << 20,
        },
        anchor_machine: "Intel Kaby Lake 7700K".to_string(),
        stream_gbs: 35.8,
        suites: vec![SuiteResult {
            key: "fig9:64x64:pipelined".to_string(),
            label: "64x64".to_string(),
            executor: "pipelined".to_string(),
            p_d: 1,
            p_c: 1,
            buffer_elems: 256,
            warmup: 2,
            stats: SampleSummary {
                n_raw: 5,
                n_kept: 4,
                median_ns: 123456.5,
                ci_lo_ns: 120000.0,
                ci_hi_ns: 130000.25,
                min_ns: 119000.0,
                max_ns: 131000.0,
                mad_ns: 2500.0,
            },
            gflops: 1.9921875,
            stages: vec![
                StageMetric {
                    stage: 0,
                    overlap_fraction: 0.875,
                    achieved_gbs: Some(10.5),
                    percent_of_stream: Some(29.329_608_938_547_487),
                },
                StageMetric {
                    stage: 1,
                    overlap_fraction: 0.0,
                    achieved_gbs: None,
                    percent_of_stream: None,
                },
            ],
            serve: None,
            ooc: None,
            real: None,
        }],
    }
}

/// The exact bytes `to_json` must produce for [`pinned_report`]. This
/// is the schema contract: field order, float formatting (shortest
/// round-trip), exact integers, `null` for absent options.
const SNAPSHOT: &str = "{\"schema\":\"bwfft-bench/1\",\"git_rev\":\"abc1234\",\"suite_kind\":\"fast\",\"seed\":42,\"host\":{\"cpus\":1,\"pin_works\":false,\"llc_bytes\":8388608},\"anchor_machine\":\"Intel Kaby Lake 7700K\",\"stream_gbs\":35.8,\"suites\":[{\"key\":\"fig9:64x64:pipelined\",\"label\":\"64x64\",\"executor\":\"pipelined\",\"p_d\":1,\"p_c\":1,\"buffer_elems\":256,\"warmup\":2,\"reps\":5,\"kept\":4,\"median_ns\":123456.5,\"ci_lo_ns\":120000.0,\"ci_hi_ns\":130000.25,\"min_ns\":119000.0,\"max_ns\":131000.0,\"mad_ns\":2500.0,\"gflops\":1.9921875,\"stages\":[{\"stage\":0,\"overlap_fraction\":0.875,\"achieved_gbs\":10.5,\"percent_of_stream\":29.329608938547487},{\"stage\":1,\"overlap_fraction\":0.0,\"achieved_gbs\":null,\"percent_of_stream\":null}]}]}";

#[test]
fn schema_snapshot_is_byte_exact() {
    assert_eq!(SCHEMA_VERSION, "bwfft-bench/1");
    let json = to_json(&pinned_report());
    assert_eq!(json, SNAPSHOT);
    assert!(!json.contains('\n'), "BENCH records must stay single-line");
    // And the snapshot parses back to the identical report.
    assert_eq!(from_json(SNAPSHOT).unwrap(), pinned_report());
}

#[test]
fn real_column_snapshot_presence_and_absence() {
    // Absence: the pinned snapshot above carries no "real" key, so a
    // pre-real consumer of bwfft-bench/1 sees byte-identical output.
    assert!(!SNAPSHOT.contains("\"real\""));
    // Presence: the same report with the column filled emits the real
    // object between the row scalars and the stages array, and it
    // must be exactly these bytes (n = 16384 packed vs complex).
    let mut rep = pinned_report();
    rep.suites[0].real = Some(RealMetrics {
        packed_bytes: 262_160,
        complex_bytes: 524_288,
        bytes_per_elem: 16.000_976_562_5,
        complex_bytes_per_elem: 32.0,
        effective_gbs: 2.5,
        complex_median_ns: 234567.0,
    });
    let expected = SNAPSHOT.replace(
        ",\"stages\":[",
        ",\"real\":{\"packed_bytes\":262160,\"complex_bytes\":524288,\
         \"bytes_per_elem\":16.0009765625,\"complex_bytes_per_elem\":32.0,\
         \"effective_gbs\":2.5,\"complex_median_ns\":234567.0},\"stages\":[",
    );
    let json = to_json(&rep);
    assert_eq!(json, expected);
    assert_eq!(from_json(&json).unwrap(), rep);
}

#[test]
fn ooc_resume_column_snapshot_presence_and_absence() {
    // Absence: a fresh (non-resumed) ooc row must emit exactly the
    // pre-crash-safe bytes — no `resumed_bytes`/`reverified_blocks`
    // keys — so existing baselines and consumers are untouched.
    let mut rep = pinned_report();
    rep.suites[0].ooc = Some(OocMetrics {
        storage_gbs: 3.25,
        bytes_read: 1_310_720,
        bytes_written: 1_310_720,
        io_ns: 456_789,
        retries: 1,
        serial_fallbacks: 0,
        faults_hit: 1,
        resumed_bytes: 0,
        reverified_blocks: 0,
    });
    let absent = SNAPSHOT.replace(
        ",\"stages\":[",
        ",\"ooc\":{\"bytes_read\":1310720,\"bytes_written\":1310720,\
         \"io_ns\":456789,\"retries\":1,\"serial_fallbacks\":0,\
         \"faults_hit\":1,\"storage_gbs\":3.25},\"stages\":[",
    );
    let json = to_json(&rep);
    assert_eq!(json, absent);
    assert_eq!(from_json(&json).unwrap(), rep);

    // Presence: a resumed row emits the pair between `faults_hit` and
    // `storage_gbs`, byte-exact.
    if let Some(m) = &mut rep.suites[0].ooc {
        m.resumed_bytes = 344_064;
        m.reverified_blocks = 38;
    }
    let present = absent.replace(
        ",\"storage_gbs\":3.25",
        ",\"resumed_bytes\":344064,\"reverified_blocks\":38,\"storage_gbs\":3.25",
    );
    let json = to_json(&rep);
    assert_eq!(json, present);
    assert_eq!(from_json(&json).unwrap(), rep);
}

#[test]
fn other_versions_are_rejected_not_misread() {
    let altered = SNAPSHOT.replace("bwfft-bench/1", "bwfft-bench/999");
    match from_json(&altered) {
        Err(BenchJsonError::Version { found }) => assert_eq!(found, "bwfft-bench/999"),
        other => panic!("expected version rejection, got {other:?}"),
    }
}

/// Strategy for one stage metric with awkward-but-finite floats
/// (`None` options exercised via the paired booleans — the vendored
/// proptest shim has no `prop::option`).
fn stage_strategy() -> impl Strategy<Value = StageMetric> {
    (
        0usize..4,
        0.0f64..1.0,
        (any::<bool>(), 0.0f64..1e3),
        (any::<bool>(), 0.0f64..200.0),
    )
        .prop_map(|(stage, overlap_fraction, gbs, pct)| StageMetric {
            stage,
            overlap_fraction,
            achieved_gbs: gbs.0.then_some(gbs.1),
            percent_of_stream: pct.0.then_some(pct.1),
        })
}

/// Service-mode columns with finite floats; presence toggled by the
/// paired boolean (no `prop::option` in the vendored shim).
fn serve_strategy() -> impl Strategy<Value = Option<ServeMetrics>> {
    (any::<bool>(), 1.0f64..1e6, 1.0f64..1e9, any::<u32>(), 0u32..8).prop_map(
        |(present, rps, p50, counts, trips)| {
            present.then(|| ServeMetrics {
                requests_per_sec: rps,
                p50_ns: p50,
                p99_ns: p50 * 3.5,
                submitted: u64::from(counts),
                completed: u64::from(counts / 2),
                rejected: u64::from(counts % 7),
                deadline_exceeded: u64::from(counts % 3),
                failed: u64::from(counts % 2),
                degraded: u64::from(counts % 5),
                breaker_trips: u64::from(trips),
                plan_cache_hits: u64::from(counts / 3),
                plan_cache_misses: u64::from(counts % 11),
            })
        },
    )
}

/// Real-transform columns with finite floats; presence toggled by the
/// paired boolean (no `prop::option` in the vendored shim). The
/// generated rows respect the §13 invariant the compare gate checks:
/// packed bytes/element strictly below the complex path's.
fn real_strategy() -> impl Strategy<Value = Option<RealMetrics>> {
    (any::<bool>(), 8u32..1 << 24, 1.0f64..1e9).prop_map(|(present, n, median)| {
        present.then(|| {
            let n = u64::from(n);
            let packed = 8 * n + 16 * (n / 2 + 1);
            let complex = 32 * n;
            RealMetrics {
                packed_bytes: packed,
                complex_bytes: complex,
                bytes_per_elem: packed as f64 / n as f64,
                complex_bytes_per_elem: complex as f64 / n as f64,
                effective_gbs: packed as f64 / median,
                complex_median_ns: median * 1.75,
            }
        })
    })
}

/// Out-of-core columns with finite floats; presence toggled by the
/// paired boolean (no `prop::option` in the vendored shim).
fn ooc_strategy() -> impl Strategy<Value = Option<OocMetrics>> {
    (
        any::<bool>(),
        0.1f64..100.0,
        any::<u32>(),
        0u32..4,
        (any::<bool>(), any::<u32>(), 0u32..128),
    )
        .prop_map(|(present, gbs, bytes, faults, resume)| {
            present.then(|| OocMetrics {
                storage_gbs: gbs,
                bytes_read: u64::from(bytes) * 5,
                bytes_written: u64::from(bytes) * 5,
                io_ns: u64::from(bytes) * 17,
                retries: u64::from(faults),
                serial_fallbacks: 0,
                faults_hit: u64::from(faults),
                // Toggled so the round-trip exercises both the
                // omitted-pair and emitted-pair encodings. `max(1)`
                // keeps the "present" arm genuinely present (an
                // all-zero pair is encoded as absent by design).
                resumed_bytes: if resume.0 {
                    u64::from(resume.1).max(1)
                } else {
                    0
                },
                reverified_blocks: if resume.0 { u64::from(resume.2) } else { 0 },
            })
        })
}

fn suite_strategy() -> impl Strategy<Value = SuiteResult> {
    (
        any::<u32>(),
        1usize..=8,
        prop::collection::vec(1.0f64..1e12, 1..6),
        prop::collection::vec(stage_strategy(), 0..4),
        (serve_strategy(), ooc_strategy(), real_strategy()),
    )
        .prop_map(|(key_id, threads, times, stages, (serve, ooc, real))| {
            let key = format!("fig9:{}x{}:pipelined", key_id % 512, key_id % 256);
            let n = times.len();
            let med = times[n / 2];
            SuiteResult {
                label: key.clone(),
                key,
                executor: "pipelined".to_string(),
                p_d: threads,
                p_c: threads,
                buffer_elems: 1 << 10,
                warmup: 2,
                stats: SampleSummary {
                    n_raw: n,
                    n_kept: n,
                    median_ns: med,
                    ci_lo_ns: med * 0.9,
                    ci_hi_ns: med * 1.1,
                    min_ns: med * 0.8,
                    max_ns: med * 1.2,
                    mad_ns: med * 0.05,
                },
                gflops: 1e3 / med,
                stages,
                serve,
                ooc,
                real,
            }
        })
}

proptest! {
    #[test]
    fn arbitrary_reports_round_trip_losslessly(
        rev_bits in any::<u32>(),
        seed in any::<u64>(),
        cpus in 1usize..256,
        pin_works in any::<bool>(),
        llc_bytes in 0usize..(1 << 30),
        stream_gbs in 1.0f64..200.0,
        suites in prop::collection::vec(suite_strategy(), 0..5),
    ) {
        let rep = BenchReport {
            schema: SCHEMA_VERSION.to_string(),
            git_rev: format!("{:07x}", rev_bits & 0x0fff_ffff),
            suite_kind: "fast".to_string(),
            seed,
            fingerprint: HostFingerprint { cpus, pin_works, llc_bytes },
            anchor_machine: "machine \"quoted\" µ✓".to_string(),
            stream_gbs,
            suites,
        };
        let json = to_json(&rep);
        let back = from_json(&json).map_err(|e| TestCaseError::Fail(format!("parse: {e}")))?;
        prop_assert_eq!(&back, &rep);
        // Idempotence: serializing the parsed report is byte-identical.
        prop_assert_eq!(to_json(&back), json);
    }
}
