//! Host microbenchmarks of the data-movement kernels: cacheline-blocked
//! vs element-wise reshapes, and temporal vs non-temporal streaming
//! copies — the §III-A/§IV mechanisms at kernel scale.

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use bwfft_kernels::simd::copy_nt;
use bwfft_kernels::transpose::{rotate_blocked, transpose_blocked};
use bwfft_num::signal::random_complex;
use bwfft_num::{AlignedVec, Complex64};

fn bench_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpose");
    for dim in [64usize, 256] {
        let total = dim * dim * 4;
        let x = random_complex(total, 4);
        group.throughput(Throughput::Bytes((total * 16) as u64));
        group.bench_with_input(BenchmarkId::new("blocked_mu4", dim), &dim, |b, _| {
            let src = AlignedVec::from_slice(&x);
            let mut dst = AlignedVec::<Complex64>::zeroed(total);
            b.iter(|| transpose_blocked(&src, &mut dst, dim, dim, 4));
        });
        group.bench_with_input(BenchmarkId::new("elementwise", dim), &dim, |b, _| {
            let src = AlignedVec::from_slice(&x);
            let mut dst = AlignedVec::<Complex64>::zeroed(total);
            b.iter(|| transpose_blocked(&src, &mut dst, dim * 2, dim * 2, 1));
        });
    }
    group.finish();
}

fn bench_rotation(c: &mut Criterion) {
    let mut group = c.benchmark_group("rotation");
    let (k, n, m) = (32usize, 32, 32);
    let total = k * n * m * 4;
    let x = random_complex(total, 5);
    group.throughput(Throughput::Bytes((total * 16) as u64));
    group.bench_function("blocked_mu4", |b| {
        let src = AlignedVec::from_slice(&x);
        let mut dst = AlignedVec::<Complex64>::zeroed(total);
        b.iter(|| rotate_blocked(&src, &mut dst, k, n, m, 4));
    });
    group.bench_function("elementwise", |b| {
        let src = AlignedVec::from_slice(&x);
        let mut dst = AlignedVec::<Complex64>::zeroed(total);
        b.iter(|| rotate_blocked(&src, &mut dst, k, n, m * 4, 1));
    });
    group.finish();
}

fn bench_streaming_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("copy");
    let total = 1usize << 20; // 16 MiB — past the LLC on most hosts
    let x = random_complex(total, 6);
    group.throughput(Throughput::Bytes((total * 16) as u64));
    group.bench_function("temporal", |b| {
        let src = AlignedVec::from_slice(&x);
        let mut dst = AlignedVec::<Complex64>::zeroed(total);
        b.iter(|| dst.copy_from_slice(&src));
    });
    group.bench_function("non_temporal", |b| {
        let src = AlignedVec::from_slice(&x);
        let mut dst = AlignedVec::<Complex64>::zeroed(total);
        b.iter(|| copy_nt(&src, &mut dst));
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_transpose, bench_rotation, bench_streaming_copy
}
criterion_main!(benches);
