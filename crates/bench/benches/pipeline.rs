//! Host microbenchmark of the pipeline executor's orchestration
//! overhead: an empty-work pipeline isolates the barrier and
//! scheduling cost per step (the `sync_ns` parameter of the
//! simulator).

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bwfft_num::Complex64;
use bwfft_pipeline::exec::{ComputeFn, LoadFn, PipelineCallbacks, PipelineConfig, StoreFn};
use bwfft_pipeline::{run_pipeline, DoubleBuffer};

fn bench_pipeline_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_overhead");
    for (p_d, p_c) in [(1usize, 1usize), (2, 2)] {
        group.bench_with_input(
            BenchmarkId::new("empty_steps", format!("{p_d}d{p_c}c")),
            &(p_d, p_c),
            |b, &(p_d, p_c)| {
                let buffer = DoubleBuffer::new(64);
                b.iter(|| {
                    let loaders: Vec<LoadFn> =
                        (0..p_d).map(|_| Box::new(|_, _, _: &mut [Complex64]| {}) as LoadFn).collect();
                    let storers: Vec<StoreFn> =
                        (0..p_d).map(|_| Box::new(|_, _: &[Complex64]| {}) as StoreFn).collect();
                    let computes: Vec<ComputeFn> =
                        (0..p_c).map(|_| Box::new(|_, _, _: &mut [Complex64]| {}) as ComputeFn).collect();
                    let report = run_pipeline(
                        &buffer,
                        &PipelineConfig {
                            iters: 16,
                            load_unit: 1,
                            compute_unit: 1,
                            pin_cpus: None,
                            ..PipelineConfig::default()
                        },
                        PipelineCallbacks {
                            loaders,
                            storers,
                            computes,
                        },
                    );
                    assert!(report.is_ok());
                });
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1000))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_pipeline_overhead
}
criterion_main!(benches);
