//! Host microbenchmark of whole multidimensional transforms at sizes
//! the build host can hold: the double-buffered implementation against
//! the pencil–pencil baseline. On a many-core host the gap widens with
//! the soft-DMA overlap; the figure-level comparisons on the paper's
//! machines come from the simulator harnesses.

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use bwfft_baselines::reference_impl::pencil_fft_3d;
use bwfft_core::{exec_real, Dims, FftPlan};
use bwfft_kernels::Direction;
use bwfft_num::signal::random_complex;
use bwfft_num::{AlignedVec, Complex64};

fn bench_3d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft3d_host");
    for dim in [32usize, 64] {
        let total = dim * dim * dim;
        let x = random_complex(total, 7);
        let flops = (5.0 * total as f64 * (total as f64).log2()) as u64;
        group.throughput(Throughput::Elements(flops));
        group.bench_with_input(
            BenchmarkId::new("double_buffered", dim),
            &dim,
            |b, &dim| {
                let plan = FftPlan::builder(Dims::d3(dim, dim, dim))
                    .buffer_elems((dim * dim * dim / 8).max(1024))
                    .threads(1, 1)
                    .build()
                    .unwrap();
                let mut data = AlignedVec::from_slice(&x);
                let mut work = AlignedVec::<Complex64>::zeroed(total);
                b.iter(|| exec_real::execute(&plan, &mut data, &mut work));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fused_no_overlap", dim),
            &dim,
            |b, &dim| {
                let plan = FftPlan::builder(Dims::d3(dim, dim, dim))
                    .buffer_elems((dim * dim * dim / 8).max(1024))
                    .threads(1, 1)
                    .build()
                    .unwrap();
                let mut data = AlignedVec::from_slice(&x);
                let mut work = AlignedVec::<Complex64>::zeroed(total);
                b.iter(|| exec_real::execute_fused(&plan, &mut data, &mut work));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pencil_pencil", dim),
            &dim,
            |b, &dim| {
                let mut data = AlignedVec::from_slice(&x);
                b.iter(|| pencil_fft_3d(&mut data, dim, dim, dim, Direction::Forward));
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_3d
}
criterion_main!(benches);
