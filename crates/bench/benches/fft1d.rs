//! Host microbenchmarks of the 1D kernels: Stockham vs radix-2, plain
//! vs block-interleaved layout, and the batched pencil forms. These
//! measure real wall-clock on the build host (kernel-level numbers are
//! meaningful even on one core; whole-transform figures come from the
//! simulator harnesses).

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use bwfft_kernels::batch::BatchFft;
use bwfft_kernels::bluestein::Bluestein;
use bwfft_kernels::layout::{stockham_block_format, to_block_format};
use bwfft_kernels::radix2::fft_radix2_tables;
use bwfft_kernels::radix4::{stockham_radix4_strided, Radix4Twiddles};
use bwfft_kernels::stockham::stockham_strided;
use bwfft_kernels::twiddle::StockhamTwiddles;
use bwfft_kernels::Direction;
use bwfft_num::signal::random_complex;
use bwfft_num::{AlignedVec, Complex64};

fn pseudo_flops(n: usize) -> u64 {
    (5.0 * n as f64 * (n as f64).log2()) as u64
}

fn bench_fft1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft1d");
    for lg in [8usize, 10, 12, 14] {
        let n = 1usize << lg;
        let x = random_complex(n, 1);
        group.throughput(Throughput::Elements(pseudo_flops(n)));
        let tw = StockhamTwiddles::new(n, Direction::Forward);
        group.bench_with_input(BenchmarkId::new("stockham", n), &n, |b, _| {
            let mut data = AlignedVec::from_slice(&x);
            let mut scratch = AlignedVec::<Complex64>::zeroed(n);
            b.iter(|| stockham_strided(&mut data, &mut scratch, n, 1, &tw));
        });
        group.bench_with_input(BenchmarkId::new("radix2_bitrev", n), &n, |b, _| {
            let mut data = AlignedVec::from_slice(&x);
            b.iter(|| fft_radix2_tables(&mut data, &tw));
        });
        let tw4 = Radix4Twiddles::new(n, Direction::Forward);
        group.bench_with_input(BenchmarkId::new("radix4_stockham", n), &n, |b, _| {
            let mut data = AlignedVec::from_slice(&x);
            let mut scratch = AlignedVec::<Complex64>::zeroed(n);
            b.iter(|| stockham_radix4_strided(&mut data, &mut scratch, n, 1, &tw4));
        });
    }
    group.finish();
}

fn bench_bluestein(c: &mut Criterion) {
    // Arbitrary-size transforms: the chirp-z premium over a pow2 FFT
    // of comparable size.
    let mut group = c.benchmark_group("bluestein");
    for n in [1000usize, 1009, 4096] {
        let x = random_complex(n, 8);
        group.throughput(Throughput::Elements(pseudo_flops(n)));
        group.bench_with_input(BenchmarkId::new("any_size", n), &n, |b, &n| {
            let mut plan = Bluestein::new(n, Direction::Forward);
            let mut data = x.clone();
            b.iter(|| plan.run(&mut data));
        });
    }
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    // The compute task of one pipeline block: I_{b/m} ⊗ DFT_m.
    let mut group = c.benchmark_group("batch_pencils");
    let b = 1usize << 17; // the paper's example buffer
    for m in [256usize, 512, 2048] {
        let x = random_complex(b, 2);
        group.throughput(Throughput::Elements(
            (b / m) as u64 * pseudo_flops(m),
        ));
        group.bench_with_input(BenchmarkId::new("contiguous", m), &m, |bch, _| {
            let mut kernel = BatchFft::new(m, 1, Direction::Forward);
            let mut buf = AlignedVec::from_slice(&x);
            bch.iter(|| kernel.run(&mut buf));
        });
        group.bench_with_input(BenchmarkId::new("mu_lanes", m), &m, |bch, _| {
            let mut kernel = BatchFft::new(m, 4, Direction::Forward);
            let mut buf = AlignedVec::from_slice(&x);
            bch.iter(|| kernel.run(&mut buf));
        });
    }
    group.finish();
}

fn bench_layouts(c: &mut Criterion) {
    // Interleaved vs block-interleaved compute (§IV cache-aware FFT).
    let mut group = c.benchmark_group("layout");
    let (n, s) = (512usize, 8usize);
    let x = random_complex(n * s, 3);
    let tw = StockhamTwiddles::new(n, Direction::Forward);
    group.bench_function("interleaved", |b| {
        let mut data = AlignedVec::from_slice(&x);
        let mut scratch = AlignedVec::<Complex64>::zeroed(n * s);
        b.iter(|| stockham_strided(&mut data, &mut scratch, n, s, &tw));
    });
    group.bench_function("block_interleaved", |b| {
        let mut blocked = vec![0.0f64; 2 * n * s];
        to_block_format(&x, &mut blocked);
        let mut data = AlignedVec::from_slice(&blocked);
        let mut scratch = AlignedVec::<f64>::zeroed(2 * n * s);
        b.iter(|| stockham_block_format(&mut data, &mut scratch, n, s, &tw));
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fft1d, bench_batch, bench_layouts, bench_bluestein
}
criterion_main!(benches);
