//! Measured (wall-clock) benchmark runs of the real executors.
//!
//! One place owns the warmup/measure/trace loop that the figure
//! binaries used to copy-paste: fill the input deterministically from
//! a seed, warm the caches, time `reps` untraced repetitions (the
//! collector off — the hot path stays clock-free), then run one final
//! *traced* repetition to attribute the time to stages (overlap
//! fraction, achieved GB/s, % of STREAM). Timing and tracing are
//! separate reps on purpose: the trace rep pays for span recording and
//! must not contaminate the sample.

use bwfft_core::exec_real::{execute_with, ExecConfig};
use bwfft_core::{profile, CoreError, FftPlan};
use bwfft_num::{signal, AlignedVec, Complex64};
use bwfft_pipeline::IntegrityConfig;
use bwfft_trace::{TraceCollector, TraceReport};
use std::sync::Arc;
use std::time::Instant;

/// Repetition counts and input seed for one measured case.
#[derive(Clone, Debug)]
pub struct MeasureConfig {
    /// Untimed cache-warming repetitions.
    pub warmup: usize,
    /// Timed repetitions (the statistics sample).
    pub reps: usize,
    /// Seed of the deterministic input signal; the same seed yields the
    /// same input, element for element, across runs and machines.
    pub seed: u64,
    /// Arm the steady-state integrity guards (buffer canaries,
    /// per-block checksums) in the timed repetitions. Used to measure
    /// the guards' overhead against a plain record. The whole-run
    /// Parseval check is excluded: it is a per-run verification like
    /// `--verify`, not an always-on guard, and its two fixed full-array
    /// passes would swamp the per-block cost on small suite shapes.
    pub integrity: bool,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            warmup: 2,
            reps: 5,
            seed: 42,
            integrity: false,
        }
    }
}

/// What one measured case produced: the raw timing sample plus the
/// traced rep's per-stage attribution.
#[derive(Clone, Debug)]
pub struct Measured {
    /// Wall time of each timed repetition, nanoseconds.
    pub times_ns: Vec<f64>,
    /// Stage-attributed profile of the extra traced repetition.
    pub trace: TraceReport,
    /// Executor that actually ran (the plan may have degraded).
    pub executor: String,
}

/// Runs `plan` per [`MeasureConfig`] and returns the timing sample and
/// a traced-rep profile. `stream_gbs` anchors the %-of-achievable
/// column of the trace (pass the reference machine's STREAM figure, or
/// `None` to omit the roofline).
pub fn measure_plan(
    plan: &FftPlan,
    cfg: &MeasureConfig,
    stream_gbs: Option<f64>,
) -> Result<Measured, CoreError> {
    let total = plan.dims.total();
    let input = signal::random_complex(total, cfg.seed);
    let mut data = AlignedVec::from_slice(&input);
    let mut work = AlignedVec::<Complex64>::zeroed(total);
    let untraced = ExecConfig {
        integrity: if cfg.integrity {
            IntegrityConfig::full()
        } else {
            IntegrityConfig::default()
        },
        ..ExecConfig::default()
    };

    for _ in 0..cfg.warmup {
        data.copy_from_slice(&input);
        execute_with(plan, &mut data, &mut work, &untraced)?;
    }

    let mut times_ns = Vec::with_capacity(cfg.reps);
    let mut executor = String::new();
    for _ in 0..cfg.reps {
        // The transform is in place, so each rep restores the input
        // outside the timed region — input-for-input reproducible.
        data.copy_from_slice(&input);
        let t0 = Instant::now();
        let report = execute_with(plan, &mut data, &mut work, &untraced)?;
        times_ns.push(t0.elapsed().as_nanos() as f64);
        executor = executor_label(&report.executor);
    }

    let (trace, traced_executor) = trace_once(plan, stream_gbs, cfg.seed)?;
    if executor.is_empty() {
        executor = traced_executor;
    }
    Ok(Measured {
        times_ns,
        trace,
        executor,
    })
}

/// Measures `plan` twice per timed iteration — one plain rep and one
/// with the integrity guards armed — and returns both samples as
/// `(plain, guarded)`. Interleaving at the rep level means slow
/// machine drift (thermal throttling, background load) biases both
/// samples equally, so the pair supports a much tighter overhead
/// threshold than two back-to-back [`measure_plan`] runs, which on a
/// shared machine drift apart by more than the guards cost.
/// `cfg.integrity` is ignored: the guarded side always runs
/// [`IntegrityConfig::full`], the plain side never does.
pub fn measure_plan_paired(
    plan: &FftPlan,
    cfg: &MeasureConfig,
    stream_gbs: Option<f64>,
) -> Result<(Measured, Measured), CoreError> {
    let total = plan.dims.total();
    let input = signal::random_complex(total, cfg.seed);
    let mut data = AlignedVec::from_slice(&input);
    let mut work = AlignedVec::<Complex64>::zeroed(total);
    let plain = ExecConfig::default();
    let guarded = ExecConfig {
        integrity: IntegrityConfig::full(),
        ..ExecConfig::default()
    };

    for _ in 0..cfg.warmup {
        data.copy_from_slice(&input);
        execute_with(plan, &mut data, &mut work, &plain)?;
        data.copy_from_slice(&input);
        execute_with(plan, &mut data, &mut work, &guarded)?;
    }

    let mut plain_ns = Vec::with_capacity(cfg.reps);
    let mut guarded_ns = Vec::with_capacity(cfg.reps);
    let mut executor = String::new();
    for rep in 0..cfg.reps {
        // Alternate which side goes first so neither sample
        // systematically inherits the other's cache/scheduler state.
        let order: [(&ExecConfig, &mut Vec<f64>); 2] = if rep.is_multiple_of(2) {
            [(&plain, &mut plain_ns), (&guarded, &mut guarded_ns)]
        } else {
            [(&guarded, &mut guarded_ns), (&plain, &mut plain_ns)]
        };
        for (exec_cfg, times) in order {
            data.copy_from_slice(&input);
            let t0 = Instant::now();
            let report = execute_with(plan, &mut data, &mut work, exec_cfg)?;
            times.push(t0.elapsed().as_nanos() as f64);
            executor = executor_label(&report.executor);
        }
    }

    let (trace, traced_executor) = trace_once(plan, stream_gbs, cfg.seed)?;
    if executor.is_empty() {
        executor = traced_executor;
    }
    Ok((
        Measured {
            times_ns: plain_ns,
            trace: trace.clone(),
            executor: executor.clone(),
        },
        Measured {
            times_ns: guarded_ns,
            trace,
            executor,
        },
    ))
}

/// Runs `plan` once with tracing enabled and aggregates the spans into
/// a [`TraceReport`]. This is the single traced-run helper the
/// `overlap_profile` binary and the bench suite share.
pub fn trace_once(
    plan: &FftPlan,
    stream_gbs: Option<f64>,
    seed: u64,
) -> Result<(TraceReport, String), CoreError> {
    let total = plan.dims.total();
    let mut data = AlignedVec::from_slice(&signal::random_complex(total, seed));
    let mut work = AlignedVec::<Complex64>::zeroed(total);
    let collector = Arc::new(TraceCollector::new());
    let cfg = ExecConfig {
        trace: Some(Arc::clone(&collector)),
        ..ExecConfig::default()
    };
    let report = execute_with(plan, &mut data, &mut work, &cfg)?;
    let executor = executor_label(&report.executor);
    let trace = profile::profile_report(&collector, plan, &executor, stream_gbs);
    Ok((trace, executor))
}

/// Lower-case executor label used in trace/bench records
/// (`"pipelined"`, `"fused"`).
pub fn executor_label(kind: &bwfft_core::ExecutorKind) -> String {
    format!("{kind:?}").to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_core::Dims;

    #[test]
    fn measure_produces_sample_and_trace() {
        let plan = FftPlan::builder(Dims::d2(16, 32))
            .threads(1, 1)
            .build()
            .unwrap();
        let m = measure_plan(
            &plan,
            &MeasureConfig {
                warmup: 1,
                reps: 3,
                seed: 7,
                ..MeasureConfig::default()
            },
            Some(40.0),
        )
        .unwrap();
        assert_eq!(m.times_ns.len(), 3);
        assert!(m.times_ns.iter().all(|t| *t > 0.0));
        assert_eq!(m.trace.stages.len(), 2);
        assert_eq!(m.executor, "pipelined");
    }

    #[test]
    fn integrity_armed_measurement_succeeds() {
        // Guards on: the timed reps run with canaries + checksums +
        // Parseval, and a clean plan must never trip them.
        let plan = FftPlan::builder(Dims::d2(16, 32))
            .threads(1, 1)
            .build()
            .unwrap();
        let m = measure_plan(
            &plan,
            &MeasureConfig {
                warmup: 1,
                reps: 2,
                seed: 7,
                integrity: true,
            },
            None,
        )
        .unwrap();
        assert_eq!(m.times_ns.len(), 2);
    }

    #[test]
    fn paired_measurement_yields_matched_samples() {
        // Both sides of the pair must carry one time per rep and agree
        // on the executor — they timed the exact same plan.
        let plan = FftPlan::builder(Dims::d2(16, 32))
            .threads(1, 1)
            .build()
            .unwrap();
        let (plain, guarded) = measure_plan_paired(
            &plan,
            &MeasureConfig {
                warmup: 1,
                reps: 3,
                seed: 7,
                integrity: false,
            },
            None,
        )
        .unwrap();
        assert_eq!(plain.times_ns.len(), 3);
        assert_eq!(guarded.times_ns.len(), 3);
        assert!(plain.times_ns.iter().all(|t| *t > 0.0));
        assert!(guarded.times_ns.iter().all(|t| *t > 0.0));
        assert_eq!(plain.executor, guarded.executor);
    }

    #[test]
    fn trace_once_is_stage_complete() {
        let plan = FftPlan::builder(Dims::d3(8, 8, 16))
            .threads(1, 1)
            .build()
            .unwrap();
        let (trace, executor) = trace_once(&plan, None, 1).unwrap();
        assert_eq!(trace.stages.len(), 3);
        assert_eq!(executor, "pipelined");
        assert!(trace.total_wall_ns > 0);
    }
}
