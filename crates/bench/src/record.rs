//! The `bwfft-bench/1` record: one machine-readable performance point
//! on the repo's trajectory.
//!
//! Every `bwfft-cli bench` run serializes a [`BenchReport`] into
//! `BENCH_<gitrev>.json`. The record is self-describing enough that a
//! regression found by comparing two of them is *attributable*: it
//! carries the git revision, the host fingerprint it was measured on,
//! the seed, the reference-machine roofline, and — per suite — the
//! plan parameters, the robust timing summary, and the traced rep's
//! per-stage overlap/bandwidth metrics.
//!
//! The JSON is hand-rolled over [`bwfft_trace::value`] (the same
//! dependency-free layer `bwfft-trace/1` uses); floats round-trip
//! exactly, `u64` stays exact, and [`from_json`]`(`[`to_json`]`(r)) ==
//! r` (snapshot- and round-trip-tested in `tests/schema_bench.rs`).

use crate::stats::SampleSummary;
use bwfft_trace::value::{self, parse_document, push_escaped, push_f64, push_opt_f64, Value};
use bwfft_tuner::HostFingerprint;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Current schema tag. Bump the `/N` suffix on any breaking field
/// change; the snapshot test in `tests/schema_bench.rs` pins it.
pub const SCHEMA_VERSION: &str = "bwfft-bench/1";

/// Per-stage attribution copied from the traced rep, so a regression
/// names the stage that lost overlap or bandwidth.
#[derive(Clone, Debug, PartialEq)]
pub struct StageMetric {
    pub stage: usize,
    /// Compute/transfer overlap fraction in `[0, 1]`.
    pub overlap_fraction: f64,
    /// Measured bandwidth of the stage, GB/s (None when unknown).
    pub achieved_gbs: Option<f64>,
    /// `100 · achieved / STREAM` against the anchor machine.
    pub percent_of_stream: Option<f64>,
}

/// Service-mode columns: what an open-loop `bwfft-cli bench --suite
/// serve` run measured. Latency percentiles are over completed
/// requests, submission to completion; the outcome counts are the
/// drained [`ServeReport`](bwfft_serve::ServeReport)'s accounting, so
/// `submitted == completed + deadline_exceeded + failed` in any record
/// this crate writes.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeMetrics {
    /// Completed requests per wall-clock second of the driver run.
    pub requests_per_sec: f64,
    /// Median completed-request latency, ns.
    pub p50_ns: f64,
    /// 99th-percentile completed-request latency, ns (nearest-rank).
    pub p99_ns: f64,
    pub submitted: u64,
    pub completed: u64,
    /// Shed at admission, all reasons.
    pub rejected: u64,
    pub deadline_exceeded: u64,
    pub failed: u64,
    /// Completions produced below the pipelined tier (fused or
    /// reference).
    pub degraded: u64,
    /// Downward breaker transitions during the run.
    pub breaker_trips: u64,
    /// Shared plan-cache hits across the run (requests that skipped
    /// plan construction). Zero in records written before the service
    /// routed through the cache.
    pub plan_cache_hits: u64,
    /// Shared plan-cache misses (first-arrival plan builds).
    pub plan_cache_misses: u64,
}

/// Out-of-core columns: what a streamed storage-tier run measured.
/// Byte counts cover all five four-step stages (each reads and writes
/// the full payload once); `io_ns` is time spent inside positioned
/// read/write calls summed over the soft-DMA threads.
#[derive(Clone, Debug, PartialEq)]
pub struct OocMetrics {
    /// End-to-end storage throughput, GB/s: (read + written) / wall.
    pub storage_gbs: f64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub io_ns: u64,
    /// Pipelined attempts beyond the first, summed over stages.
    pub retries: u64,
    /// Stages that fell through to the serial tier.
    pub serial_fallbacks: u64,
    /// Injected storage faults absorbed by the retry ladder.
    pub faults_hit: u64,
    /// Bytes moved while replaying a crashed run from its checkpoint
    /// journal (resume-mode read + write traffic). Zero for fresh
    /// runs, and omitted from the emitted record together with
    /// `reverified_blocks` when both are zero, so pre-crash-safe
    /// documents stay byte-identical.
    pub resumed_bytes: u64,
    /// Journaled block checksums re-verified against the scratch
    /// stores before a resume was trusted.
    pub reverified_blocks: u64,
}

/// Real-transform columns: how the packed half-spectrum path
/// (`r2c:*` rows) or the fused spectral convolution (`conv:*` rows)
/// compares against the complex path for the same logical transform,
/// measured back to back on the same input in the same rep loop.
#[derive(Clone, Debug, PartialEq)]
pub struct RealMetrics {
    /// Bytes one real-path pass moves (reals + packed bins).
    pub packed_bytes: u64,
    /// Bytes the complex path moves for the same logical transform.
    pub complex_bytes: u64,
    /// `packed_bytes / N` — the acceptance number; must sit below
    /// `complex_bytes_per_elem` (§13's ~2× win).
    pub bytes_per_elem: f64,
    /// `complex_bytes / N` for the baseline run in the same loop.
    pub complex_bytes_per_elem: f64,
    /// `packed_bytes / median_ns` — effective GB/s of the real path.
    pub effective_gbs: f64,
    /// Median of the same-size complex-path baseline, for the ratio.
    pub complex_median_ns: f64,
}

/// One suite case's result.
#[derive(Clone, Debug, PartialEq)]
pub struct SuiteResult {
    /// Stable pairing key (see [`crate::suite`]).
    pub key: String,
    /// Problem label, e.g. `"128x128"`.
    pub label: String,
    /// Executor that ran (`"pipelined"` / `"fused"`).
    pub executor: String,
    /// Data/compute thread split.
    pub p_d: usize,
    pub p_c: usize,
    /// Buffer half-size in elements the plan actually used.
    pub buffer_elems: usize,
    /// Untimed warmup reps that preceded the sample.
    pub warmup: usize,
    /// Robust timing summary of the timed reps.
    pub stats: SampleSummary,
    /// Pseudo-Gflop/s at the median (`5·N·log2(N) / median`).
    pub gflops: f64,
    pub stages: Vec<StageMetric>,
    /// Service-mode columns; `None` for ordinary executor suites.
    /// Optional and additive, so pre-serve `bwfft-bench/1` documents
    /// (including the checked-in seed baseline) still parse.
    pub serve: Option<ServeMetrics>,
    /// Out-of-core columns; `None` for every in-memory suite. Optional
    /// and additive like `serve`, so older documents still parse and
    /// non-ooc rows emit nothing.
    pub ooc: Option<OocMetrics>,
    /// Real-transform columns; `None` for every complex-path suite.
    /// Optional and additive like `serve`/`ooc`, so older documents
    /// still parse and non-real rows emit nothing.
    pub real: Option<RealMetrics>,
}

/// A complete benchmark record — the unit of the perf trajectory.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Always [`SCHEMA_VERSION`] when built by this crate.
    pub schema: String,
    /// Git revision the binary was built from (`"seed"`, `"a1b2c3d"`,
    /// `"unknown"`).
    pub git_rev: String,
    /// Which canonical suite ran (`"smoke"`, `"fast"`, `"full"`).
    pub suite_kind: String,
    /// Input-signal seed: same seed ⇒ same input, element for element.
    pub seed: u64,
    /// Host the numbers were measured on.
    pub fingerprint: HostFingerprint,
    /// Machine preset anchoring the %-of-STREAM roofline.
    pub anchor_machine: String,
    /// That preset's STREAM bandwidth, GB/s.
    pub stream_gbs: f64,
    pub suites: Vec<SuiteResult>,
}

/// JSON import failure for `bwfft-bench/1` documents.
#[derive(Clone, Debug, PartialEq)]
pub enum BenchJsonError {
    Syntax { offset: usize, message: String },
    Schema(String),
    Version { found: String },
}

impl fmt::Display for BenchJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchJsonError::Syntax { offset, message } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            BenchJsonError::Schema(m) => write!(f, "JSON does not match bench schema: {m}"),
            BenchJsonError::Version { found } => write!(
                f,
                "unsupported bench schema {found:?} (expected {SCHEMA_VERSION:?})"
            ),
        }
    }
}

impl std::error::Error for BenchJsonError {}

/// Loading a BENCH file: I/O and schema failures, typed.
#[derive(Debug)]
pub enum BenchFileError {
    Io { path: String, error: std::io::Error },
    Json { path: String, error: BenchJsonError },
}

impl fmt::Display for BenchFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchFileError::Io { path, error } => write!(f, "{path}: {error}"),
            BenchFileError::Json { path, error } => write!(f, "{path}: {error}"),
        }
    }
}

impl std::error::Error for BenchFileError {}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

/// Serialize a report to a compact single-line JSON document.
pub fn to_json(report: &BenchReport) -> String {
    let mut out = String::with_capacity(512 + report.suites.len() * 512);
    out.push_str("{\"schema\":");
    push_escaped(&mut out, &report.schema);
    out.push_str(",\"git_rev\":");
    push_escaped(&mut out, &report.git_rev);
    out.push_str(",\"suite_kind\":");
    push_escaped(&mut out, &report.suite_kind);
    out.push_str(&format!(",\"seed\":{}", report.seed));
    out.push_str(&format!(
        ",\"host\":{{\"cpus\":{},\"pin_works\":{},\"llc_bytes\":{}}}",
        report.fingerprint.cpus, report.fingerprint.pin_works, report.fingerprint.llc_bytes
    ));
    out.push_str(",\"anchor_machine\":");
    push_escaped(&mut out, &report.anchor_machine);
    out.push_str(",\"stream_gbs\":");
    push_f64(&mut out, report.stream_gbs);
    out.push_str(",\"suites\":[");
    for (i, s) in report.suites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"key\":");
        push_escaped(&mut out, &s.key);
        out.push_str(",\"label\":");
        push_escaped(&mut out, &s.label);
        out.push_str(",\"executor\":");
        push_escaped(&mut out, &s.executor);
        out.push_str(&format!(
            ",\"p_d\":{},\"p_c\":{},\"buffer_elems\":{},\"warmup\":{}",
            s.p_d, s.p_c, s.buffer_elems, s.warmup
        ));
        out.push_str(&format!(
            ",\"reps\":{},\"kept\":{}",
            s.stats.n_raw, s.stats.n_kept
        ));
        for (name, v) in [
            ("median_ns", s.stats.median_ns),
            ("ci_lo_ns", s.stats.ci_lo_ns),
            ("ci_hi_ns", s.stats.ci_hi_ns),
            ("min_ns", s.stats.min_ns),
            ("max_ns", s.stats.max_ns),
            ("mad_ns", s.stats.mad_ns),
            ("gflops", s.gflops),
        ] {
            out.push_str(&format!(",\"{name}\":"));
            push_f64(&mut out, v);
        }
        if let Some(m) = &s.serve {
            out.push_str(&format!(
                ",\"serve\":{{\"submitted\":{},\"completed\":{},\"rejected\":{},\
                 \"deadline_exceeded\":{},\"failed\":{},\"degraded\":{},\
                 \"breaker_trips\":{},\"plan_cache_hits\":{},\"plan_cache_misses\":{}",
                m.submitted,
                m.completed,
                m.rejected,
                m.deadline_exceeded,
                m.failed,
                m.degraded,
                m.breaker_trips,
                m.plan_cache_hits,
                m.plan_cache_misses
            ));
            for (name, v) in [
                ("requests_per_sec", m.requests_per_sec),
                ("p50_ns", m.p50_ns),
                ("p99_ns", m.p99_ns),
            ] {
                out.push_str(&format!(",\"{name}\":"));
                push_f64(&mut out, v);
            }
            out.push('}');
        }
        if let Some(m) = &s.ooc {
            out.push_str(&format!(
                ",\"ooc\":{{\"bytes_read\":{},\"bytes_written\":{},\"io_ns\":{},\
                 \"retries\":{},\"serial_fallbacks\":{},\"faults_hit\":{}",
                m.bytes_read,
                m.bytes_written,
                m.io_ns,
                m.retries,
                m.serial_fallbacks,
                m.faults_hit
            ));
            // Resume columns only appear when a resume actually
            // happened, so fresh-run rows (and the seed baseline)
            // keep their pre-crash-safe bytes.
            if m.resumed_bytes != 0 || m.reverified_blocks != 0 {
                out.push_str(&format!(
                    ",\"resumed_bytes\":{},\"reverified_blocks\":{}",
                    m.resumed_bytes, m.reverified_blocks
                ));
            }
            out.push_str(",\"storage_gbs\":");
            push_f64(&mut out, m.storage_gbs);
            out.push('}');
        }
        if let Some(m) = &s.real {
            out.push_str(&format!(
                ",\"real\":{{\"packed_bytes\":{},\"complex_bytes\":{}",
                m.packed_bytes, m.complex_bytes
            ));
            for (name, v) in [
                ("bytes_per_elem", m.bytes_per_elem),
                ("complex_bytes_per_elem", m.complex_bytes_per_elem),
                ("effective_gbs", m.effective_gbs),
                ("complex_median_ns", m.complex_median_ns),
            ] {
                out.push_str(&format!(",\"{name}\":"));
                push_f64(&mut out, v);
            }
            out.push('}');
        }
        out.push_str(",\"stages\":[");
        for (j, st) in s.stages.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stage\":{},\"overlap_fraction\":",
                st.stage
            ));
            push_f64(&mut out, st.overlap_fraction);
            out.push_str(",\"achieved_gbs\":");
            push_opt_f64(&mut out, st.achieved_gbs);
            out.push_str(",\"percent_of_stream\":");
            push_opt_f64(&mut out, st.percent_of_stream);
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn get<'v>(obj: &'v BTreeMap<String, Value>, key: &str) -> Result<&'v Value, BenchJsonError> {
    obj.get(key)
        .ok_or_else(|| BenchJsonError::Schema(format!("missing field {key:?}")))
}

fn as_str(v: &Value, key: &str) -> Result<String, BenchJsonError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| BenchJsonError::Schema(format!("{key:?} must be a string")))
}

fn as_u64(v: &Value, key: &str) -> Result<u64, BenchJsonError> {
    v.as_u64()
        .ok_or_else(|| BenchJsonError::Schema(format!("{key:?} must be a non-negative integer")))
}

fn as_usize(v: &Value, key: &str) -> Result<usize, BenchJsonError> {
    v.as_usize()
        .ok_or_else(|| BenchJsonError::Schema(format!("{key:?} out of range")))
}

fn as_bool(v: &Value, key: &str) -> Result<bool, BenchJsonError> {
    v.as_bool()
        .ok_or_else(|| BenchJsonError::Schema(format!("{key:?} must be a boolean")))
}

fn as_f64(v: &Value, key: &str) -> Result<f64, BenchJsonError> {
    v.as_f64()
        .ok_or_else(|| BenchJsonError::Schema(format!("{key:?} must be a number")))
}

fn as_opt_f64(v: &Value, key: &str) -> Result<Option<f64>, BenchJsonError> {
    v.as_opt_f64()
        .ok_or_else(|| BenchJsonError::Schema(format!("{key:?} must be number or null")))
}

fn as_obj<'v>(v: &'v Value, key: &str) -> Result<&'v BTreeMap<String, Value>, BenchJsonError> {
    v.as_obj()
        .ok_or_else(|| BenchJsonError::Schema(format!("{key:?} must be an object")))
}

fn as_arr<'v>(v: &'v Value, key: &str) -> Result<&'v [Value], BenchJsonError> {
    v.as_arr()
        .ok_or_else(|| BenchJsonError::Schema(format!("{key:?} must be an array")))
}

/// Parse a document produced by [`to_json`] back into a
/// [`BenchReport`]. Rejects documents carrying a different
/// [`SCHEMA_VERSION`].
pub fn from_json(src: &str) -> Result<BenchReport, BenchJsonError> {
    let root = parse_document(src).map_err(|value::ParseError { offset, message }| {
        BenchJsonError::Syntax { offset, message }
    })?;
    let obj = as_obj(&root, "<root>")?;

    let schema = as_str(get(obj, "schema")?, "schema")?;
    if schema != SCHEMA_VERSION {
        return Err(BenchJsonError::Version { found: schema });
    }

    let host = as_obj(get(obj, "host")?, "host")?;
    let fingerprint = HostFingerprint {
        cpus: as_usize(get(host, "cpus")?, "cpus")?,
        pin_works: as_bool(get(host, "pin_works")?, "pin_works")?,
        llc_bytes: as_usize(get(host, "llc_bytes")?, "llc_bytes")?,
    };

    let suites = as_arr(get(obj, "suites")?, "suites")?
        .iter()
        .map(|v| {
            let s = as_obj(v, "suites[]")?;
            let stages = as_arr(get(s, "stages")?, "stages")?
                .iter()
                .map(|v| {
                    let st = as_obj(v, "stages[]")?;
                    Ok(StageMetric {
                        stage: as_usize(get(st, "stage")?, "stage")?,
                        overlap_fraction: as_f64(
                            get(st, "overlap_fraction")?,
                            "overlap_fraction",
                        )?,
                        achieved_gbs: as_opt_f64(get(st, "achieved_gbs")?, "achieved_gbs")?,
                        percent_of_stream: as_opt_f64(
                            get(st, "percent_of_stream")?,
                            "percent_of_stream",
                        )?,
                    })
                })
                .collect::<Result<Vec<_>, BenchJsonError>>()?;
            Ok(SuiteResult {
                key: as_str(get(s, "key")?, "key")?,
                label: as_str(get(s, "label")?, "label")?,
                executor: as_str(get(s, "executor")?, "executor")?,
                p_d: as_usize(get(s, "p_d")?, "p_d")?,
                p_c: as_usize(get(s, "p_c")?, "p_c")?,
                buffer_elems: as_usize(get(s, "buffer_elems")?, "buffer_elems")?,
                warmup: as_usize(get(s, "warmup")?, "warmup")?,
                stats: SampleSummary {
                    n_raw: as_usize(get(s, "reps")?, "reps")?,
                    n_kept: as_usize(get(s, "kept")?, "kept")?,
                    median_ns: as_f64(get(s, "median_ns")?, "median_ns")?,
                    ci_lo_ns: as_f64(get(s, "ci_lo_ns")?, "ci_lo_ns")?,
                    ci_hi_ns: as_f64(get(s, "ci_hi_ns")?, "ci_hi_ns")?,
                    min_ns: as_f64(get(s, "min_ns")?, "min_ns")?,
                    max_ns: as_f64(get(s, "max_ns")?, "max_ns")?,
                    mad_ns: as_f64(get(s, "mad_ns")?, "mad_ns")?,
                },
                gflops: as_f64(get(s, "gflops")?, "gflops")?,
                stages,
                // Optional: documents written before service-mode
                // suites existed simply lack the field.
                serve: match s.get("serve") {
                    None => None,
                    Some(v) => {
                        let m = as_obj(v, "serve")?;
                        Some(ServeMetrics {
                            requests_per_sec: as_f64(
                                get(m, "requests_per_sec")?,
                                "requests_per_sec",
                            )?,
                            p50_ns: as_f64(get(m, "p50_ns")?, "p50_ns")?,
                            p99_ns: as_f64(get(m, "p99_ns")?, "p99_ns")?,
                            submitted: as_u64(get(m, "submitted")?, "submitted")?,
                            completed: as_u64(get(m, "completed")?, "completed")?,
                            rejected: as_u64(get(m, "rejected")?, "rejected")?,
                            deadline_exceeded: as_u64(
                                get(m, "deadline_exceeded")?,
                                "deadline_exceeded",
                            )?,
                            failed: as_u64(get(m, "failed")?, "failed")?,
                            degraded: as_u64(get(m, "degraded")?, "degraded")?,
                            breaker_trips: as_u64(
                                get(m, "breaker_trips")?,
                                "breaker_trips",
                            )?,
                            // Lenient: records written before the
                            // service routed through the plan cache
                            // carry no counters; read them as zero.
                            plan_cache_hits: match m.get("plan_cache_hits") {
                                None => 0,
                                Some(v) => as_u64(v, "plan_cache_hits")?,
                            },
                            plan_cache_misses: match m.get("plan_cache_misses") {
                                None => 0,
                                Some(v) => as_u64(v, "plan_cache_misses")?,
                            },
                        })
                    }
                },
                ooc: match s.get("ooc") {
                    None => None,
                    Some(v) => {
                        let m = as_obj(v, "ooc")?;
                        Some(OocMetrics {
                            storage_gbs: as_f64(get(m, "storage_gbs")?, "storage_gbs")?,
                            bytes_read: as_u64(get(m, "bytes_read")?, "bytes_read")?,
                            bytes_written: as_u64(get(m, "bytes_written")?, "bytes_written")?,
                            io_ns: as_u64(get(m, "io_ns")?, "io_ns")?,
                            retries: as_u64(get(m, "retries")?, "retries")?,
                            serial_fallbacks: as_u64(
                                get(m, "serial_fallbacks")?,
                                "serial_fallbacks",
                            )?,
                            faults_hit: as_u64(get(m, "faults_hit")?, "faults_hit")?,
                            // Lenient: rows written before the
                            // crash-safe tier (or fresh runs, which
                            // omit the pair) read as zero.
                            resumed_bytes: match m.get("resumed_bytes") {
                                None => 0,
                                Some(v) => as_u64(v, "resumed_bytes")?,
                            },
                            reverified_blocks: match m.get("reverified_blocks") {
                                None => 0,
                                Some(v) => as_u64(v, "reverified_blocks")?,
                            },
                        })
                    }
                },
                real: match s.get("real") {
                    None => None,
                    Some(v) => {
                        let m = as_obj(v, "real")?;
                        Some(RealMetrics {
                            packed_bytes: as_u64(get(m, "packed_bytes")?, "packed_bytes")?,
                            complex_bytes: as_u64(get(m, "complex_bytes")?, "complex_bytes")?,
                            bytes_per_elem: as_f64(
                                get(m, "bytes_per_elem")?,
                                "bytes_per_elem",
                            )?,
                            complex_bytes_per_elem: as_f64(
                                get(m, "complex_bytes_per_elem")?,
                                "complex_bytes_per_elem",
                            )?,
                            effective_gbs: as_f64(get(m, "effective_gbs")?, "effective_gbs")?,
                            complex_median_ns: as_f64(
                                get(m, "complex_median_ns")?,
                                "complex_median_ns",
                            )?,
                        })
                    }
                },
            })
        })
        .collect::<Result<Vec<_>, BenchJsonError>>()?;

    Ok(BenchReport {
        schema,
        git_rev: as_str(get(obj, "git_rev")?, "git_rev")?,
        suite_kind: as_str(get(obj, "suite_kind")?, "suite_kind")?,
        seed: as_u64(get(obj, "seed")?, "seed")?,
        fingerprint,
        anchor_machine: as_str(get(obj, "anchor_machine")?, "anchor_machine")?,
        stream_gbs: as_f64(get(obj, "stream_gbs")?, "stream_gbs")?,
        suites,
    })
}

// ---------------------------------------------------------------------------
// Files and naming
// ---------------------------------------------------------------------------

/// Writes the report (single line + trailing newline) to `path`.
pub fn write_file(path: &Path, report: &BenchReport) -> Result<(), BenchFileError> {
    let mut body = to_json(report);
    body.push('\n');
    std::fs::write(path, body).map_err(|error| BenchFileError::Io {
        path: path.display().to_string(),
        error,
    })
}

/// Reads and parses a `BENCH_*.json` file.
pub fn read_file(path: &Path) -> Result<BenchReport, BenchFileError> {
    let body = std::fs::read_to_string(path).map_err(|error| BenchFileError::Io {
        path: path.display().to_string(),
        error,
    })?;
    from_json(body.trim_end()).map_err(|error| BenchFileError::Json {
        path: path.display().to_string(),
        error,
    })
}

/// The conventional trajectory filename for a revision.
pub fn bench_filename(git_rev: &str) -> String {
    format!("BENCH_{git_rev}.json")
}

/// Best-effort short git revision: `BWFFT_GIT_REV` env override first
/// (used to pin the checked-in baseline to `"seed"`), then
/// `git rev-parse --short HEAD`, else `"unknown"`.
pub fn detect_git_rev() -> String {
    if let Ok(rev) = std::env::var("BWFFT_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_report() -> BenchReport {
        BenchReport {
            schema: SCHEMA_VERSION.to_string(),
            git_rev: "abc1234".to_string(),
            suite_kind: "fast".to_string(),
            seed: 42,
            fingerprint: HostFingerprint {
                cpus: 1,
                pin_works: false,
                llc_bytes: 8 << 20,
            },
            anchor_machine: "Intel Kaby Lake 7700K".to_string(),
            stream_gbs: 35.8,
            suites: vec![SuiteResult {
                key: "fig9:64x64:pipelined".to_string(),
                label: "64x64".to_string(),
                executor: "pipelined".to_string(),
                p_d: 1,
                p_c: 1,
                buffer_elems: 256,
                warmup: 2,
                stats: crate::stats::SampleSummary {
                    n_raw: 5,
                    n_kept: 4,
                    median_ns: 123456.5,
                    ci_lo_ns: 120000.0,
                    ci_hi_ns: 130000.25,
                    min_ns: 119000.0,
                    max_ns: 131000.0,
                    mad_ns: 2500.0,
                },
                gflops: 1.9921875,
                stages: vec![
                    StageMetric {
                        stage: 0,
                        overlap_fraction: 0.875,
                        achieved_gbs: Some(10.5),
                        percent_of_stream: Some(29.329_608_938_547_486),
                    },
                    StageMetric {
                        stage: 1,
                        overlap_fraction: 0.0,
                        achieved_gbs: None,
                        percent_of_stream: None,
                    },
                ],
                serve: None,
                ooc: None,
                real: None,
            }],
        }
    }

    #[test]
    fn round_trip_exact() {
        let rep = sample_report();
        let back = from_json(&to_json(&rep)).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn serve_metrics_round_trip_and_stay_optional() {
        let mut rep = sample_report();
        rep.suite_kind = "serve".to_string();
        rep.suites[0].key = "serve:16x32:w2".to_string();
        rep.suites[0].executor = "serve".to_string();
        rep.suites[0].serve = Some(ServeMetrics {
            requests_per_sec: 1234.5,
            p50_ns: 80_000.0,
            p99_ns: 250_000.5,
            submitted: 64,
            completed: 60,
            rejected: 3,
            deadline_exceeded: 2,
            failed: 2,
            degraded: 5,
            breaker_trips: 1,
            plan_cache_hits: 58,
            plan_cache_misses: 2,
        });
        let json = to_json(&rep);
        assert!(json.contains("\"serve\":{"));
        assert!(json.contains("\"plan_cache_hits\":58"));
        assert!(json.contains("\"p99_ns\":"));
        assert!(json.contains("\"requests_per_sec\":"));
        let back = from_json(&json).unwrap();
        assert_eq!(back, rep);
        // A plain suite row emits no serve object at all, so pre-serve
        // consumers of bwfft-bench/1 never see the new field.
        let plain = to_json(&sample_report());
        assert!(!plain.contains("\"serve\""));
    }

    #[test]
    fn serve_object_with_missing_field_is_a_schema_error() {
        let mut rep = sample_report();
        rep.suites[0].serve = Some(ServeMetrics {
            requests_per_sec: 1.0,
            p50_ns: 1.0,
            p99_ns: 1.0,
            submitted: 1,
            completed: 1,
            rejected: 0,
            deadline_exceeded: 0,
            failed: 0,
            degraded: 0,
            breaker_trips: 0,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
        });
        let json = to_json(&rep).replace("\"p99_ns\"", "\"p99_typo\"");
        assert!(matches!(from_json(&json), Err(BenchJsonError::Schema(_))));
    }

    #[test]
    fn serve_without_plan_cache_counters_parses_as_zero() {
        // Pre-cache serve records lack the counters entirely; they must
        // load with both read as zero, not fail the schema.
        let mut rep = sample_report();
        rep.suites[0].serve = Some(ServeMetrics {
            requests_per_sec: 1.0,
            p50_ns: 1.0,
            p99_ns: 1.0,
            submitted: 4,
            completed: 4,
            rejected: 0,
            deadline_exceeded: 0,
            failed: 0,
            degraded: 0,
            breaker_trips: 0,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
        });
        let json = to_json(&rep)
            .replace(",\"plan_cache_hits\":0,\"plan_cache_misses\":0", "");
        let back = from_json(&json).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn ooc_metrics_round_trip_and_stay_optional() {
        let mut rep = sample_report();
        rep.suites[0].key = "ooc:n16384".to_string();
        rep.suites[0].executor = "ooc".to_string();
        rep.suites[0].ooc = Some(OocMetrics {
            storage_gbs: 3.25,
            bytes_read: 1_310_720,
            bytes_written: 1_310_720,
            io_ns: 456_789,
            retries: 1,
            serial_fallbacks: 0,
            faults_hit: 1,
            resumed_bytes: 0,
            reverified_blocks: 0,
        });
        let json = to_json(&rep);
        assert!(json.contains("\"ooc\":{"));
        assert!(json.contains("\"storage_gbs\":"));
        // Fresh runs carry no resume traffic, so the pair is omitted
        // and pre-crash-safe consumers see unchanged bytes.
        assert!(!json.contains("resumed_bytes"));
        let back = from_json(&json).unwrap();
        assert_eq!(back, rep);
        // A resumed run emits the pair and round-trips losslessly.
        let mut resumed = rep.clone();
        if let Some(m) = &mut resumed.suites[0].ooc {
            m.resumed_bytes = 655_360;
            m.reverified_blocks = 48;
        }
        let rjson = to_json(&resumed);
        assert!(rjson.contains("\"resumed_bytes\":655360,\"reverified_blocks\":48"));
        assert_eq!(from_json(&rjson).unwrap(), resumed);
        // Plain rows emit no ooc object, so the seed baseline and every
        // pre-ooc consumer of bwfft-bench/1 are untouched.
        let plain = to_json(&sample_report());
        assert!(!plain.contains("\"ooc\""));
        // A missing field inside an emitted ooc object is still a
        // schema error — the leniency is only for the absent column.
        let bad = json.replace("\"faults_hit\"", "\"faults_typo\"");
        assert!(matches!(from_json(&bad), Err(BenchJsonError::Schema(_))));
    }

    #[test]
    fn real_metrics_round_trip_and_stay_optional() {
        let mut rep = sample_report();
        rep.suites[0].key = "r2c:n16384".to_string();
        rep.suites[0].executor = "realfft".to_string();
        rep.suites[0].real = Some(RealMetrics {
            packed_bytes: 262_160,
            complex_bytes: 524_288,
            bytes_per_elem: 16.000_976_562_5,
            complex_bytes_per_elem: 32.0,
            effective_gbs: 2.125,
            complex_median_ns: 234_567.0,
        });
        let json = to_json(&rep);
        assert!(json.contains("\"real\":{"));
        assert!(json.contains("\"bytes_per_elem\":"));
        let back = from_json(&json).unwrap();
        assert_eq!(back, rep);
        // Plain rows emit no real object, so the seed baseline and
        // every pre-real consumer of bwfft-bench/1 are untouched.
        let plain = to_json(&sample_report());
        assert!(!plain.contains("\"real\""));
        // A missing field inside an emitted real object is still a
        // schema error — the leniency is only for the absent column.
        let bad = json.replace("\"effective_gbs\"", "\"effective_typo\"");
        assert!(matches!(from_json(&bad), Err(BenchJsonError::Schema(_))));
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let json = to_json(&sample_report()).replace(SCHEMA_VERSION, "bwfft-bench/999");
        match from_json(&json) {
            Err(BenchJsonError::Version { found }) => assert_eq!(found, "bwfft-bench/999"),
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(matches!(from_json(""), Err(BenchJsonError::Syntax { .. })));
        assert!(matches!(from_json("{"), Err(BenchJsonError::Syntax { .. })));
        assert!(matches!(from_json("[]"), Err(BenchJsonError::Schema(_))));
        assert!(matches!(
            from_json("{\"schema\":\"bwfft-bench/1\"}"),
            Err(BenchJsonError::Schema(_))
        ));
    }

    #[test]
    fn file_round_trip_and_typed_io_errors() {
        let dir = std::env::temp_dir().join("bwfft-bench-record-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(bench_filename("abc1234"));
        let rep = sample_report();
        write_file(&path, &rep).unwrap();
        assert_eq!(read_file(&path).unwrap(), rep);
        let missing = dir.join("BENCH_missing.json");
        assert!(matches!(
            read_file(&missing),
            Err(BenchFileError::Io { .. })
        ));
        std::fs::write(dir.join("garbage.json"), "nope").unwrap();
        assert!(matches!(
            read_file(&dir.join("garbage.json")),
            Err(BenchFileError::Json { .. })
        ));
    }

    #[test]
    fn git_rev_env_override_wins() {
        // Can't mutate the process env safely in parallel tests; just
        // check the fallback path produces *something* non-empty.
        assert!(!detect_git_rev().is_empty());
        assert_eq!(bench_filename("seed"), "BENCH_seed.json");
    }
}
