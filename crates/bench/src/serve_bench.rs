//! Open-loop latency driver for `bwfft-serve` (DESIGN.md §11).
//!
//! A closed-loop driver (submit, wait, submit) can never overload the
//! service it measures — the arrival rate adapts to the completion
//! rate, so queues stay empty and the tail looks flat. This driver is
//! **open-loop**: requests are submitted on a fixed inter-arrival
//! schedule (or as one burst with [`ServeBenchConfig::arrival`] zero)
//! regardless of how far behind the workers are. Overload then shows
//! up exactly where the serve contract says it must: as typed
//! admission rejections, deadline misses, and breaker degradation —
//! all of which are counted into the record, not averaged away.
//!
//! The output feeds the `bwfft-bench/1` schema's service columns
//! ([`ServeMetrics`]): requests/sec over the drained run, p50/p99
//! completed-request latency (nearest-rank percentiles over the raw
//! sample), and the full outcome accounting from the drained
//! [`ServeReport`].

use crate::record::{BenchReport, ServeMetrics, SuiteResult};
use crate::stats::{self, StatsConfig};
use crate::HarnessError;
use bwfft_core::Dims;
use bwfft_metrics::{FlightRecorder, Registry};
use bwfft_num::signal::random_complex;
use bwfft_serve::{FftRequest, FftServer, RequestOutcome, ServeConfig, ServeError, ServeReport};
use bwfft_tuner::HostFingerprint;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One open-loop run's shape and load profile.
#[derive(Clone, Debug)]
pub struct ServeBenchConfig {
    pub dims: Dims,
    pub buffer_elems: usize,
    /// `(p_d, p_c)` per request.
    pub threads: (usize, usize),
    /// Total submissions (admitted or not).
    pub requests: usize,
    /// Inter-arrival gap; `Duration::ZERO` submits one burst.
    pub arrival: Duration,
    pub workers: usize,
    pub queue_capacity: usize,
    pub byte_budget: Option<usize>,
    /// Per-request deadline, if any.
    pub deadline: Option<Duration>,
    pub seed: u64,
    /// Metrics registry handed to the server (scraped via
    /// `FftServer::stats` just before the drain). `None` measures the
    /// metrics-off side of an overhead pair.
    pub metrics: Option<Arc<Registry>>,
    /// Flight recorder handed to the server.
    pub flight: Option<Arc<FlightRecorder>>,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            dims: Dims::d2(16, 32),
            buffer_elems: 128,
            threads: (1, 1),
            requests: 32,
            arrival: Duration::ZERO,
            workers: 2,
            queue_capacity: 16,
            byte_budget: None,
            deadline: None,
            seed: 42,
            metrics: None,
            flight: None,
        }
    }
}

/// Everything one run produced: the schema columns, the drained
/// server report, and the raw completed-latency sample (sorted
/// ascending, nanoseconds) for statistical post-processing.
#[derive(Clone, Debug)]
pub struct ServeBenchResult {
    pub metrics: ServeMetrics,
    pub report: ServeReport,
    pub latencies_ns: Vec<f64>,
    pub elapsed: Duration,
}

/// Nearest-rank percentile of an ascending-sorted sample (`p` in
/// percent). Empty samples report 0.0 — an all-rejected run has no
/// latency distribution, and the outcome counts carry the story.
pub fn percentile(sorted_ns: &[f64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted_ns.len() as f64).ceil() as usize;
    sorted_ns[rank.saturating_sub(1).min(sorted_ns.len() - 1)]
}

/// Runs the open-loop schedule against a fresh server and drains it.
///
/// Rejections are an expected measurement outcome, not an error —
/// only *usage* errors (a malformed descriptor, which means the bench
/// config itself is wrong) abort the run.
pub fn run_open_loop(cfg: &ServeBenchConfig) -> Result<ServeBenchResult, ServeError> {
    let mut server = FftServer::start(ServeConfig {
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity,
        byte_budget: cfg.byte_budget,
        default_deadline: cfg.deadline,
        metrics: cfg.metrics.clone(),
        flight: cfg.flight.clone(),
        ..ServeConfig::default()
    });
    let total = cfg.dims.total();
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(cfg.requests);
    for i in 0..cfg.requests {
        let req = FftRequest::new(cfg.dims, random_complex(total, cfg.seed + i as u64))
            .buffer_elems(cfg.buffer_elems)
            .threads(cfg.threads.0, cfg.threads.1);
        match server.submit(req) {
            Ok(t) => tickets.push(t),
            // Shed load is the phenomenon under measurement; the
            // server has already counted it by reason.
            Err(ServeError::Rejected { .. }) => {}
            Err(usage) => return Err(usage),
        }
        if !cfg.arrival.is_zero() && i + 1 < cfg.requests {
            std::thread::sleep(cfg.arrival);
        }
    }
    if cfg.metrics.is_some() {
        // One scrape before the drain syncs pool and plan-cache
        // counters into the registry (the phase histograms and outcome
        // counters update live from the workers).
        let _ = server.stats();
    }
    let report = server.shutdown();
    let mut latencies_ns: Vec<f64> = Vec::with_capacity(tickets.len());
    for t in tickets {
        if let RequestOutcome::Completed { latency, .. } = t.wait() {
            latencies_ns.push(latency.as_nanos() as f64);
        }
    }
    let elapsed = started.elapsed();
    latencies_ns.sort_by(f64::total_cmp);
    let secs = elapsed.as_secs_f64();
    let metrics = ServeMetrics {
        requests_per_sec: if secs > 0.0 {
            report.completed as f64 / secs
        } else {
            0.0
        },
        p50_ns: percentile(&latencies_ns, 50.0),
        p99_ns: percentile(&latencies_ns, 99.0),
        submitted: report.submitted,
        completed: report.completed,
        rejected: report.rejected.total(),
        deadline_exceeded: report.deadline_exceeded,
        failed: report.failed,
        // Completions below the pipelined tier: fused + reference.
        degraded: report.tier_completed[1] + report.tier_completed[2],
        // Downward transitions; BreakerLevel orders Normal < … < Open.
        breaker_trips: report
            .breaker_transitions
            .iter()
            .filter(|t| t.to > t.from)
            .count() as u64,
        plan_cache_hits: report.plan_cache.hits,
        plan_cache_misses: report.plan_cache.misses,
    };
    Ok(ServeBenchResult {
        metrics,
        report,
        latencies_ns,
        elapsed,
    })
}

/// Runs one open-loop case and folds it into a single-suite
/// `bwfft-bench/1` record (suite kind `"serve"`), so the ordinary
/// `compare` gate — median CI separation plus the p99 threshold —
/// applies to service latency exactly as it does to executor time.
pub fn run_serve_suite(
    cfg: &ServeBenchConfig,
    stats_cfg: &StatsConfig,
) -> Result<BenchReport, HarnessError> {
    let key = format!("serve:{}:w{}", cfg.dims.label(), cfg.workers);
    let run = run_open_loop(cfg).map_err(|error| HarnessError::Serve {
        key: key.clone(),
        error,
    })?;
    let summary =
        stats::summarize(&run.latencies_ns, stats_cfg).map_err(|error| HarnessError::Stats {
            key: key.clone(),
            error,
        })?;
    let gflops = if summary.median_ns > 0.0 {
        bwfft_core::metrics::pseudo_flops(cfg.dims.total()) / summary.median_ns
    } else {
        0.0
    };
    let suite = SuiteResult {
        key,
        label: cfg.dims.label(),
        executor: "serve".to_string(),
        p_d: cfg.threads.0,
        p_c: cfg.threads.1,
        buffer_elems: cfg.buffer_elems,
        warmup: 0,
        stats: summary,
        gflops,
        stages: Vec::new(),
        serve: Some(run.metrics),
        ooc: None,
        real: None,
    };
    Ok(BenchReport {
        schema: crate::record::SCHEMA_VERSION.to_string(),
        git_rev: crate::record::detect_git_rev(),
        suite_kind: "serve".to_string(),
        seed: cfg.seed,
        fingerprint: HostFingerprint::detect(),
        anchor_machine: "serve-local".to_string(),
        stream_gbs: 0.0,
        suites: vec![suite],
    })
}

/// Runs the serve suite twice on identical schedules — metrics off,
/// then metrics on (registry + flight recorder armed) — and returns
/// `(off, on)`. Gating `on` against `off` with the ordinary compare
/// threshold is the instrumentation-overhead contract: the whole
/// observability layer must cost less than the gate's percentage on
/// the median service latency.
pub fn run_serve_suite_paired(
    cfg: &ServeBenchConfig,
    stats_cfg: &StatsConfig,
) -> Result<(BenchReport, BenchReport), HarnessError> {
    let off_cfg = ServeBenchConfig {
        metrics: None,
        flight: None,
        ..cfg.clone()
    };
    // A discarded warmup pass absorbs one-time costs (plan search,
    // allocator growth, page faults) that would otherwise be billed
    // entirely to whichever half runs first and swamp the ~0.1%
    // instrument cost this pair exists to measure.
    let _ = run_serve_suite(&off_cfg, stats_cfg)?;
    let off = run_serve_suite(&off_cfg, stats_cfg)?;
    let on_cfg = ServeBenchConfig {
        metrics: Some(Arc::new(Registry::new())),
        flight: Some(FlightRecorder::new(16)),
        ..cfg.clone()
    };
    let on = run_serve_suite(&on_cfg, stats_cfg)?;
    Ok((off, on))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 50.0), 2.0);
        assert_eq!(percentile(&s, 99.0), 4.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn burst_run_accounts_for_every_request() {
        let cfg = ServeBenchConfig {
            requests: 12,
            workers: 2,
            queue_capacity: 4,
            ..ServeBenchConfig::default()
        };
        let run = run_open_loop(&cfg).unwrap();
        assert!(run.report.holds(), "unbalanced: {:?}", run.report);
        assert_eq!(
            run.report.submitted + run.metrics.rejected,
            cfg.requests as u64
        );
        assert_eq!(run.latencies_ns.len() as u64, run.report.completed);
        assert!(run.latencies_ns.windows(2).all(|w| w[0] <= w[1]));
        // Every submission resolves its plan before admission, and all
        // share one shape: exactly one build, the rest are cache hits.
        assert_eq!(run.metrics.plan_cache_misses, 1);
        assert_eq!(run.metrics.plan_cache_hits, cfg.requests as u64 - 1);
        if run.report.completed > 0 {
            assert!(run.metrics.p50_ns > 0.0);
            assert!(run.metrics.p99_ns >= run.metrics.p50_ns);
            assert!(run.metrics.requests_per_sec > 0.0);
        }
    }

    #[test]
    fn paced_run_with_room_completes_everything() {
        // Generous capacity and a gentle schedule: nothing sheds.
        let cfg = ServeBenchConfig {
            requests: 6,
            arrival: Duration::from_micros(200),
            workers: 2,
            queue_capacity: 16,
            ..ServeBenchConfig::default()
        };
        let run = run_open_loop(&cfg).unwrap();
        assert_eq!(run.metrics.rejected, 0);
        assert_eq!(run.metrics.completed, 6);
        assert_eq!(run.metrics.failed, 0);
    }

    #[test]
    fn serve_suite_record_round_trips_with_metrics() {
        let cfg = ServeBenchConfig {
            requests: 8,
            ..ServeBenchConfig::default()
        };
        let rep = run_serve_suite(&cfg, &StatsConfig::default()).unwrap();
        assert_eq!(rep.suite_kind, "serve");
        assert_eq!(rep.suites.len(), 1);
        let m = rep.suites[0].serve.as_ref().unwrap();
        assert_eq!(
            m.submitted,
            m.completed + m.deadline_exceeded + m.failed
        );
        let back = crate::record::from_json(&crate::record::to_json(&rep)).unwrap();
        assert_eq!(back, rep);
    }
}
