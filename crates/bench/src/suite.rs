//! The canonical benchmark suite behind `BENCH_*.json`.
//!
//! A curated, *stable* set of cases derived from the paper's artifacts
//! — the fig. 9 2D sweep, the fig. 1 3D cube family, and the table 2
//! buffer-size ablation — scaled down so the whole suite runs in
//! seconds on the 1-core CI VM. Each case carries a stable `key`
//! (`fig9:128x128:pipelined`, …): the compare gate pairs suites across
//! BENCH files by this key, so renaming a key is a schema-level event
//! (the pairing silently drops, and the gate reports it as unpaired).
//!
//! Every shape runs through **both executors** — the pipelined
//! double-buffer path and the fused serial counterfactual — because a
//! regression that hits only one of them localizes the fault (overlap
//! machinery vs. kernels).

use bwfft_core::{Dims, ExecutorKind, FftPlan, PlanError};

/// How much of the canonical suite to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SuiteKind {
    /// Two tiny cases; CI smoke (`verify.sh`) only.
    Smoke,
    /// The default trajectory suite (~10 cases, seconds of runtime).
    Fast,
    /// Fast plus larger shapes; for quiet machines.
    Full,
}

impl SuiteKind {
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "smoke" => Some(SuiteKind::Smoke),
            "fast" => Some(SuiteKind::Fast),
            "full" => Some(SuiteKind::Full),
            _ => None,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            SuiteKind::Smoke => "smoke",
            SuiteKind::Fast => "fast",
            SuiteKind::Full => "full",
        }
    }
}

/// One benchmark case: a shape, an executor, and plan parameters.
#[derive(Clone, Debug)]
pub struct SuiteCase {
    /// Stable pairing key, e.g. `"fig9:128x128:pipelined"`.
    pub key: String,
    pub dims: Dims,
    pub executor: ExecutorKind,
    /// Data/compute thread split.
    pub p_d: usize,
    pub p_c: usize,
    /// Buffer half-size in elements; `None` uses the planner default.
    pub buffer_elems: Option<usize>,
}

/// Compact dims token for keys: `"64x64"`, `"16x16x32"` (no
/// dimensionality prefix — [`Dims::label`] is for humans).
fn dims_token(dims: Dims) -> String {
    match dims {
        Dims::Two { n, m } => format!("{n}x{m}"),
        Dims::Three { k, n, m } => format!("{k}x{n}x{m}"),
    }
}

impl SuiteCase {
    fn new(family: &str, dims: Dims, executor: ExecutorKind) -> Self {
        let exec = match executor {
            ExecutorKind::Pipelined => "pipelined",
            ExecutorKind::Fused => "fused",
        };
        SuiteCase {
            key: format!("{family}:{}:{exec}", dims_token(dims)),
            dims,
            executor,
            p_d: 1,
            p_c: 1,
            buffer_elems: None,
        }
    }

    fn with_buffer(mut self, b: usize) -> Self {
        self.buffer_elems = Some(b);
        self.key = format!("{}:b{b}", self.key);
        self
    }

    /// Builds the plan this case describes (including the executor
    /// override for fused counterfactuals).
    pub fn build_plan(&self) -> Result<FftPlan, PlanError> {
        let mut builder = FftPlan::builder(self.dims).threads(self.p_d, self.p_c);
        if let Some(b) = self.buffer_elems {
            builder = builder.buffer_elems(b);
        }
        let mut plan = builder.build()?;
        plan.executor = self.executor;
        Ok(plan)
    }
}

/// The canonical case list for a suite size.
pub fn suite(kind: SuiteKind) -> Vec<SuiteCase> {
    use ExecutorKind::{Fused, Pipelined};
    let mut cases = vec![
        // Smoke: one tiny shape through both executors.
        SuiteCase::new("fig9", Dims::d2(64, 64), Pipelined),
        SuiteCase::new("fig9", Dims::d2(64, 64), Fused),
    ];
    if kind == SuiteKind::Smoke {
        return cases;
    }
    // Fig. 9 family: 2D sweep (paper: 1024x512 … 8192x8192, scaled
    // ~1/64 per axis for the VM), pipelined, plus one fused twin.
    cases.extend([
        SuiteCase::new("fig9", Dims::d2(128, 64), Pipelined),
        SuiteCase::new("fig9", Dims::d2(128, 128), Pipelined),
        SuiteCase::new("fig9", Dims::d2(256, 128), Pipelined),
        SuiteCase::new("fig9", Dims::d2(128, 128), Fused),
    ]);
    // Fig. 1 family: 3D cubes (paper: 512³/1024³ mixes).
    cases.extend([
        SuiteCase::new("fig1", Dims::d3(16, 16, 32), Pipelined),
        SuiteCase::new("fig1", Dims::d3(32, 32, 32), Pipelined),
        SuiteCase::new("fig1", Dims::d3(32, 32, 32), Fused),
    ]);
    // Table 2 family: same shape, two buffer sizes — the double-buffer
    // size ablation (paper: b = LLC/2 vs. smaller).
    cases.extend([
        SuiteCase::new("table2", Dims::d2(128, 128), Pipelined).with_buffer(1 << 10),
        SuiteCase::new("table2", Dims::d2(128, 128), Pipelined).with_buffer(1 << 12),
    ]);
    if kind == SuiteKind::Full {
        cases.extend([
            SuiteCase::new("fig9", Dims::d2(512, 256), Pipelined),
            SuiteCase::new("fig9", Dims::d2(512, 512), Pipelined),
            SuiteCase::new("fig1", Dims::d3(64, 32, 32), Pipelined),
            SuiteCase::new("fig1", Dims::d3(64, 64, 64), Pipelined),
        ]);
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn keys_are_unique_and_stable() {
        for kind in [SuiteKind::Smoke, SuiteKind::Fast, SuiteKind::Full] {
            let cases = suite(kind);
            let keys: HashSet<&str> = cases.iter().map(|c| c.key.as_str()).collect();
            assert_eq!(keys.len(), cases.len(), "duplicate keys in {kind:?}");
        }
        // The pairing contract: these exact keys are in every suite.
        let smoke = suite(SuiteKind::Smoke);
        assert_eq!(smoke[0].key, "fig9:64x64:pipelined");
        assert_eq!(smoke[1].key, "fig9:64x64:fused");
    }

    #[test]
    fn smoke_is_a_prefix_of_fast_is_a_prefix_of_full() {
        let smoke = suite(SuiteKind::Smoke);
        let fast = suite(SuiteKind::Fast);
        let full = suite(SuiteKind::Full);
        assert!(smoke.len() < fast.len() && fast.len() < full.len());
        for (a, b) in smoke.iter().zip(&fast) {
            assert_eq!(a.key, b.key);
        }
        for (a, b) in fast.iter().zip(&full) {
            assert_eq!(a.key, b.key);
        }
    }

    #[test]
    fn every_case_plans() {
        for case in suite(SuiteKind::Full) {
            let plan = case.build_plan().unwrap_or_else(|e| {
                panic!("case {} failed to plan: {e}", case.key);
            });
            assert_eq!(plan.executor, case.executor);
        }
    }

    #[test]
    fn suite_kind_parses() {
        assert_eq!(SuiteKind::parse("fast"), Some(SuiteKind::Fast));
        assert_eq!(SuiteKind::parse("smoke"), Some(SuiteKind::Smoke));
        assert_eq!(SuiteKind::parse("full"), Some(SuiteKind::Full));
        assert_eq!(SuiteKind::parse("medium"), None);
    }
}
