//! Shared harness utilities for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index) and prints an aligned text
//! table with the same rows/series the paper plots. Absolute numbers
//! are *model* numbers from the machine simulator; the reproduction
//! contract is the shape: who wins, by what factor, where crossovers
//! fall. EXPERIMENTS.md records paper-vs-measured for each artifact.

use bwfft_baselines::{simulate_baseline, BaselineKind};
use bwfft_core::exec_sim::{simulate, SimOptions};
use bwfft_core::{Dims, FftPlan};
use bwfft_machine::stats::PerfReport;
use bwfft_machine::MachineSpec;

/// The 3D size sweep of Figs. 1 and 11 (all exponent combinations of
/// `2^9` and `2^10` per dimension), in the paper's label order.
pub fn fig1_sizes() -> Vec<(usize, usize, usize)> {
    let e = [9usize, 10];
    let mut out = Vec::new();
    for k in e {
        for n in e {
            for m in e {
                out.push((1 << k, 1 << n, 1 << m));
            }
        }
    }
    out
}

/// The large 3D sizes of Fig. 10 (up to 2048³ — 128 GiB of complex
/// doubles, the paper's largest problem).
pub fn fig10_sizes() -> Vec<(usize, usize, usize)> {
    let e = [10usize, 11];
    let mut out = Vec::new();
    for k in e {
        for n in e {
            for m in e {
                out.push((1 << k, 1 << n, 1 << m));
            }
        }
    }
    out
}

/// The 2D size sweep of Fig. 9.
pub fn fig9_sizes() -> Vec<(usize, usize)> {
    vec![
        (1024, 512),
        (1024, 1024),
        (2048, 1024),
        (2048, 2048),
        (4096, 2048),
        (4096, 4096),
        (8192, 4096),
        (8192, 8192),
    ]
}

/// Plans the double-buffered FFT the way the paper configures it for a
/// machine: `b = LLC/2`, half the threads data / half compute, one
/// plan socket per machine socket.
pub fn paper_plan(dims: Dims, spec: &MachineSpec, sockets: usize) -> FftPlan {
    let p = spec.total_threads() * sockets / spec.sockets;
    FftPlan::builder(dims)
        .buffer_elems(spec.default_buffer_elems())
        .threads(p / 2, p / 2)
        .sockets(sockets)
        .build()
        .unwrap_or_else(|e| panic!("planning {} on {}: {e}", dims.label(), spec.name))
}

/// Simulates our implementation with default options.
pub fn run_ours(dims: Dims, spec: &MachineSpec, sockets: usize) -> PerfReport {
    let plan = paper_plan(dims, spec, sockets);
    simulate(&plan, spec, &SimOptions::default()).unwrap().report
}

/// One row of a comparison table.
pub struct Row {
    pub label: String,
    pub peak_gflops: f64,
    pub entries: Vec<(String, PerfReport)>,
}

/// Prints a comparison table in the paper's style: Gflop/s and percent
/// of the STREAM-bound achievable peak per implementation.
pub fn print_comparison(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    if rows.is_empty() {
        return;
    }
    print!("{:<18} {:>10}", "size", "peak GF/s");
    for (name, _) in &rows[0].entries {
        print!(" | {name:>22}");
    }
    println!();
    let width = 30 + rows[0].entries.len() * 25;
    println!("{}", "-".repeat(width));
    for row in rows {
        print!("{:<18} {:>10.2}", row.label, row.peak_gflops);
        for (_, rep) in &row.entries {
            print!(" | {:>12.2} ({:>5.1}%)", rep.gflops(), rep.percent_of_peak());
        }
        println!();
    }
}

/// Convenience: the three implementations of the single-socket 3D
/// comparison plots (ours, MKL-like, FFTW-like-or-slab).
pub fn compare_3d(
    spec: &MachineSpec,
    sizes: &[(usize, usize, usize)],
    fftw_kind: BaselineKind,
) -> Vec<Row> {
    sizes
        .iter()
        .map(|&(k, n, m)| {
            let dims = Dims::d3(k, n, m);
            let ours = run_ours(dims, spec, spec.sockets);
            let mkl = simulate_baseline(BaselineKind::MklLike, dims, spec);
            let fftw = simulate_baseline(fftw_kind, dims, spec);
            Row {
                label: format!("{k}x{n}x{m}"),
                peak_gflops: ours.achievable_peak_gflops,
                entries: vec![
                    ("Double-buffer (ours)".into(), ours),
                    ("MKL-like".into(), mkl),
                    (fftw_kind.label().into(), fftw),
                ],
            }
        })
        .collect()
}

/// Geometric-mean speedup of `ours` over each comparator in a row set.
pub fn geomean_speedups(rows: &[Row]) -> Vec<(String, f64)> {
    if rows.is_empty() {
        return Vec::new();
    }
    let ncomp = rows[0].entries.len() - 1;
    let mut out = Vec::new();
    for c in 0..ncomp {
        let mut log_sum = 0.0;
        for row in rows {
            let ours = row.entries[0].1.time_ns;
            let other = row.entries[c + 1].1.time_ns;
            log_sum += (other / ours).ln();
        }
        out.push((
            rows[0].entries[c + 1].0.clone(),
            (log_sum / rows.len() as f64).exp(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_machine::presets;

    #[test]
    fn fig1_has_eight_sizes() {
        let s = fig1_sizes();
        assert_eq!(s.len(), 8);
        assert!(s.contains(&(512, 512, 512)));
        assert!(s.contains(&(1024, 1024, 1024)));
    }

    #[test]
    fn paper_plan_uses_half_threads_each_way() {
        let spec = presets::kaby_lake_7700k();
        let p = paper_plan(Dims::d3(512, 512, 512), &spec, 1);
        assert_eq!(p.p_d, 4);
        assert_eq!(p.p_c, 4);
        assert_eq!(p.buffer_elems, spec.default_buffer_elems());
    }

    #[test]
    fn geomean_of_identical_rows_is_ratio() {
        let spec = presets::kaby_lake_7700k();
        let rows = compare_3d(&spec, &[(256, 256, 256)], BaselineKind::FftwLike);
        let sp = geomean_speedups(&rows);
        assert_eq!(sp.len(), 2);
        assert!(sp.iter().all(|(_, v)| *v > 1.0), "{sp:?}");
    }
}
