//! `bwfft-bench` — the statistical benchmark harness and the shared
//! utilities behind the figure/table regeneration binaries.
//!
//! Two layers live here:
//!
//! * **The measured harness** (DESIGN.md §9): [`stats`] (MAD outlier
//!   rejection, median, bootstrap CIs), [`measure`] (the
//!   warmup/time/trace loop over the real executors), [`suite`] (the
//!   canonical paper-derived case list), [`record`] (the versioned
//!   `bwfft-bench/1` JSON schema written to `BENCH_<gitrev>.json`),
//!   and [`compare`] (the regression gate pairing two BENCH files).
//!   [`run_suite`] ties them together; `bwfft-cli bench` and
//!   `scripts/perf_gate.sh` drive it.
//! * **Model-figure helpers**: every binary in `src/bin/` regenerates
//!   one table or figure of the paper (see DESIGN.md §4 for the index)
//!   and prints an aligned text table with the same rows/series the
//!   paper plots. Absolute numbers are *model* numbers from the
//!   machine simulator; the reproduction contract is the shape: who
//!   wins, by what factor, where crossovers fall. EXPERIMENTS.md
//!   records paper-vs-measured for each artifact.

pub mod compare;
pub mod measure;
pub mod record;
pub mod serve_bench;
pub mod stats;
pub mod suite;

use bwfft_baselines::{simulate_baseline, BaselineKind};
use bwfft_core::exec_sim::{simulate, SimOptions};
use bwfft_core::{Dims, FftPlan};
use bwfft_machine::stats::PerfReport;
use bwfft_machine::MachineSpec;
use bwfft_tuner::HostFingerprint;
use std::fmt;

use measure::{measure_plan, measure_plan_paired, Measured, MeasureConfig};
use record::{BenchReport, StageMetric, SuiteResult};
use stats::StatsConfig;
use suite::{suite, SuiteCase, SuiteKind};

/// Why a suite run could not produce a record. Each variant names the
/// suite key so a CI failure is attributable without a backtrace.
#[derive(Debug)]
pub enum HarnessError {
    Plan { key: String, error: bwfft_core::PlanError },
    Exec { key: String, error: bwfft_core::CoreError },
    Stats { key: String, error: stats::StatsError },
    Serve { key: String, error: bwfft_serve::ServeError },
    Ooc { key: String, error: bwfft_ooc::OocError },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Plan { key, error } => write!(f, "suite {key}: planning failed: {error}"),
            HarnessError::Exec { key, error } => write!(f, "suite {key}: execution failed: {error}"),
            HarnessError::Stats { key, error } => write!(f, "suite {key}: statistics failed: {error}"),
            HarnessError::Serve { key, error } => write!(f, "suite {key}: serving failed: {error}"),
            HarnessError::Ooc { key, error } => {
                write!(f, "suite {key}: out-of-core run failed: {error}")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

/// Runs the canonical suite and assembles the versioned record.
/// `anchor` supplies the STREAM roofline the per-stage
/// `percent_of_stream` column is computed against; `progress` (when
/// true) prints one line per case as it completes.
pub fn run_suite(
    kind: SuiteKind,
    measure_cfg: &MeasureConfig,
    stats_cfg: &StatsConfig,
    anchor: &MachineSpec,
    progress: bool,
) -> Result<BenchReport, HarnessError> {
    let stream_gbs = anchor.total_dram_bw_gbs();
    let mut suites = Vec::new();
    for case in suite(kind) {
        let plan = case.build_plan().map_err(|error| HarnessError::Plan {
            key: case.key.clone(),
            error,
        })?;
        let measured =
            measure_plan(&plan, measure_cfg, Some(stream_gbs)).map_err(|error| {
                HarnessError::Exec {
                    key: case.key.clone(),
                    error,
                }
            })?;
        let result = suite_result(&case, &plan, measured, measure_cfg, stats_cfg)?;
        if progress {
            println!(
                "  {:<34} median {:>10.3} ms  ±{:>4.1}%  {:>6.2} GF/s  ({} reps, {} rejected)",
                case.key,
                result.stats.median_ns / 1e6,
                result.stats.ci_halfwidth_pct(),
                result.gflops,
                result.stats.n_raw,
                result.stats.rejected()
            );
        }
        suites.push(result);
    }
    // The storage tier rides along on the trajectory suites (not smoke:
    // verify.sh has its own ooc smoke, and not the paired integrity
    // run, whose gate pairs in-memory reps only). The rows are new keys
    // (`ooc:*`), which the compare gate treats as unpaired — additive,
    // never a regression against pre-ooc baselines.
    if matches!(kind, SuiteKind::Fast | SuiteKind::Full) {
        for case in ooc_suite_cases(kind) {
            let result = ooc_suite_result(&case, measure_cfg, stats_cfg)?;
            if progress {
                println!(
                    "  {:<34} median {:>10.3} ms  ±{:>4.1}%  {:>6.2} GB/s storage  ({} reps)",
                    case.key,
                    result.stats.median_ns / 1e6,
                    result.stats.ci_halfwidth_pct(),
                    result.ooc.as_ref().map_or(0.0, |m| m.storage_gbs),
                    result.stats.n_raw
                );
            }
            suites.push(result);
        }
        // Real-transform rows ride along the same way: new keys
        // (`r2c:*`, `conv:*`) the compare gate treats as unpaired, so
        // they are additive against pre-real baselines. The `real`
        // column carries the acceptance number — packed bytes/element
        // must sit below the complex path's measured in the same loop.
        for case in real_suite_cases(kind) {
            let result = real_suite_result(&case, measure_cfg, stats_cfg)?;
            if progress {
                let (bpe, cbpe) = result
                    .real
                    .as_ref()
                    .map_or((0.0, 0.0), |m| (m.bytes_per_elem, m.complex_bytes_per_elem));
                println!(
                    "  {:<34} median {:>10.3} ms  ±{:>4.1}%  {:>5.1} vs {:>5.1} B/elem  ({} reps)",
                    case.key,
                    result.stats.median_ns / 1e6,
                    result.stats.ci_halfwidth_pct(),
                    bpe,
                    cbpe,
                    result.stats.n_raw
                );
            }
            suites.push(result);
        }
    }
    Ok(assemble_report(kind, measure_cfg, anchor, stream_gbs, suites))
}

/// One storage-tier trajectory case: a 1D size streamed under a budget
/// a quarter of its payload, so every stage really blocks.
struct OocSuiteCase {
    key: String,
    n: usize,
    budget_bytes: usize,
}

fn ooc_suite_cases(kind: SuiteKind) -> Vec<OocSuiteCase> {
    let mut sizes = vec![1usize << 14];
    if matches!(kind, SuiteKind::Full) {
        sizes.push(1 << 16);
    }
    sizes
        .into_iter()
        .map(|n| OocSuiteCase {
            key: format!("ooc:n{n}"),
            n,
            budget_bytes: n * 16 / 4,
        })
        .collect()
}

/// Measures one out-of-core case: warmup runs untimed, then `reps`
/// timed end-to-end runs (stream + oracle each rep), summarized like
/// any other suite row. The traced stage columns stay empty — storage
/// attribution lives in the `ooc` column instead.
fn ooc_suite_result(
    case: &OocSuiteCase,
    measure_cfg: &MeasureConfig,
    stats_cfg: &StatsConfig,
) -> Result<SuiteResult, HarnessError> {
    let cfg = bwfft_ooc::OocConfig {
        budget_bytes: case.budget_bytes,
        ..bwfft_ooc::OocConfig::default()
    };
    let oracle_cfg = bwfft_ooc::OracleConfig::default();
    let run = || {
        bwfft_ooc::run_generated(case.n, measure_cfg.seed, &cfg, &oracle_cfg).map_err(|error| {
            HarnessError::Ooc {
                key: case.key.clone(),
                error,
            }
        })
    };
    for _ in 0..measure_cfg.warmup {
        run()?;
    }
    let mut times_ns = Vec::with_capacity(measure_cfg.reps);
    let mut last = run()?;
    times_ns.push(last.report.wall_ns as f64);
    for _ in 1..measure_cfg.reps {
        last = run()?;
        times_ns.push(last.report.wall_ns as f64);
    }
    let summary = stats::summarize(&times_ns, stats_cfg).map_err(|error| HarnessError::Stats {
        key: case.key.clone(),
        error,
    })?;
    let gflops = if summary.median_ns > 0.0 {
        5.0 * case.n as f64 * (case.n as f64).log2() / summary.median_ns
    } else {
        0.0
    };
    Ok(SuiteResult {
        key: case.key.clone(),
        label: format!("n{}", case.n),
        executor: "ooc".to_string(),
        p_d: last.plan.p_d,
        p_c: last.plan.p_c,
        buffer_elems: last.plan.half_elems,
        warmup: measure_cfg.warmup,
        stats: summary,
        gflops,
        stages: Vec::new(),
        serve: None,
        ooc: Some(record::OocMetrics {
            storage_gbs: last.report.storage_gbs(),
            bytes_read: last.report.bytes_read,
            bytes_written: last.report.bytes_written,
            io_ns: last.report.io_ns,
            retries: last.report.retries as u64,
            serial_fallbacks: last.report.serial_fallbacks as u64,
            faults_hit: last.report.faults_hit as u64,
            resumed_bytes: last.report.resumed_bytes,
            reverified_blocks: last.report.reverified_blocks,
        }),
        real: None,
    })
}

/// One real-transform trajectory case: a 1D size run through the
/// packed half-spectrum path (`conv == false`) or the fused spectral
/// convolution (`conv == true`), against the same-size complex path
/// timed back to back in the same rep loop.
struct RealSuiteCase {
    key: String,
    n: usize,
    conv: bool,
}

fn real_suite_cases(kind: SuiteKind) -> Vec<RealSuiteCase> {
    let mut sizes = vec![1usize << 14];
    if matches!(kind, SuiteKind::Full) {
        sizes.push(1 << 16);
    }
    let mut out = Vec::new();
    for n in sizes {
        out.push(RealSuiteCase {
            key: format!("r2c:n{n}"),
            n,
            conv: false,
        });
        out.push(RealSuiteCase {
            key: format!("conv:n{n}"),
            n,
            conv: true,
        });
    }
    out
}

/// Measures one real-transform case. Each timed rep runs the real
/// path and the same-size complex path back to back on the same
/// input, so the `real` column's ratio has machine drift cancelled
/// out. Byte counts follow the array-I/O model (DESIGN.md §13): what
/// each path reads and writes at its boundary, not internal transform
/// traffic — `r2c` moves `8n` real bytes in and `16·(n/2+1)` packed
/// bytes out where the complex path moves `16n` in and `16n` out; the
/// fused convolution never materializes the product spectrum where
/// the complex pipeline writes and re-reads both full spectra.
fn real_suite_result(
    case: &RealSuiteCase,
    measure_cfg: &MeasureConfig,
    stats_cfg: &StatsConfig,
) -> Result<SuiteResult, HarnessError> {
    use bwfft_kernels::plan1d::Fft1d;
    use bwfft_kernels::realfft::{RealFft1d, SpectralConv1d};
    use bwfft_kernels::Direction;
    use bwfft_num::Complex64;

    let n = case.n;
    let half = n / 2 + 1;
    let mut rng = bwfft_num::signal::SplitMix64::new(measure_cfg.seed);
    let x: Vec<f64> = (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
    let kernel: Vec<f64> = (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
    let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();

    let mut real_plan = RealFft1d::new(n);
    let mut conv_plan = SpectralConv1d::new(&kernel);
    let mut fwd = Fft1d::new(n, Direction::Forward);
    let mut inv = Fft1d::new(n, Direction::Inverse);
    let mut spec = vec![Complex64::ZERO; half];
    let mut buf_r = vec![0.0f64; n];
    let mut buf_c = vec![Complex64::ZERO; n];
    let mut gspec = xc.clone();
    fwd.run(&mut gspec);

    // One matched rep: (real-path ns, complex-path ns).
    let mut rep = |real_plan: &mut RealFft1d, conv_plan: &mut SpectralConv1d| {
        let real_ns = if case.conv {
            buf_r.copy_from_slice(&x);
            let t = std::time::Instant::now();
            conv_plan.run(&mut buf_r);
            t.elapsed().as_nanos() as f64
        } else {
            let t = std::time::Instant::now();
            real_plan.r2c(&x, &mut spec);
            t.elapsed().as_nanos() as f64
        };
        let complex_ns = if case.conv {
            buf_c.copy_from_slice(&xc);
            let t = std::time::Instant::now();
            fwd.run(&mut buf_c);
            for (a, b) in buf_c.iter_mut().zip(&gspec) {
                *a *= *b;
            }
            inv.run_normalized(&mut buf_c);
            t.elapsed().as_nanos() as f64
        } else {
            buf_c.copy_from_slice(&xc);
            let t = std::time::Instant::now();
            fwd.run(&mut buf_c);
            t.elapsed().as_nanos() as f64
        };
        (real_ns, complex_ns)
    };
    for _ in 0..measure_cfg.warmup {
        rep(&mut real_plan, &mut conv_plan);
    }
    let mut real_ns = Vec::with_capacity(measure_cfg.reps);
    let mut complex_ns = Vec::with_capacity(measure_cfg.reps);
    for _ in 0..measure_cfg.reps {
        let (r, c) = rep(&mut real_plan, &mut conv_plan);
        real_ns.push(r);
        complex_ns.push(c);
    }
    let summary = stats::summarize(&real_ns, stats_cfg).map_err(|error| HarnessError::Stats {
        key: case.key.clone(),
        error,
    })?;
    let complex_summary =
        stats::summarize(&complex_ns, stats_cfg).map_err(|error| HarnessError::Stats {
            key: case.key.clone(),
            error,
        })?;

    let (packed_bytes, complex_bytes) = if case.conv {
        // Fused: x in, result out, kernel spectrum in; the product
        // spectrum is never materialized. Complex pipeline: x in,
        // spectrum out, kernel spectrum in, product out, product in,
        // result out.
        (
            (8 * n + 8 * n + 16 * half) as u64,
            (16 * n as u64) * 6,
        )
    } else {
        ((8 * n + 16 * half) as u64, 32 * n as u64)
    };
    let median_ns = summary.median_ns;
    let gflops = if median_ns > 0.0 {
        5.0 * n as f64 * (n as f64).log2() / median_ns
    } else {
        0.0
    };
    Ok(SuiteResult {
        key: case.key.clone(),
        label: format!("n{n}"),
        executor: "realfft".to_string(),
        p_d: 0,
        p_c: 1,
        buffer_elems: 0,
        warmup: measure_cfg.warmup,
        stats: summary,
        gflops,
        stages: Vec::new(),
        serve: None,
        ooc: None,
        real: Some(record::RealMetrics {
            packed_bytes,
            complex_bytes,
            bytes_per_elem: packed_bytes as f64 / n as f64,
            complex_bytes_per_elem: complex_bytes as f64 / n as f64,
            effective_gbs: if median_ns > 0.0 {
                packed_bytes as f64 / median_ns
            } else {
                0.0
            },
            complex_median_ns: complex_summary.median_ns,
        }),
    })
}

/// Runs the canonical suite with rep-level paired measurement (see
/// [`measure_plan_paired`]) and returns both records as
/// `(plain, guarded)`. This is what the integrity-overhead gate runs:
/// comparing the pair with the ordinary regression gate asserts the
/// guards' cost with machine drift cancelled out.
pub fn run_suite_paired(
    kind: SuiteKind,
    measure_cfg: &MeasureConfig,
    stats_cfg: &StatsConfig,
    anchor: &MachineSpec,
    progress: bool,
) -> Result<(BenchReport, BenchReport), HarnessError> {
    let stream_gbs = anchor.total_dram_bw_gbs();
    let mut plain_suites = Vec::new();
    let mut guarded_suites = Vec::new();
    for case in suite(kind) {
        let plan = case.build_plan().map_err(|error| HarnessError::Plan {
            key: case.key.clone(),
            error,
        })?;
        let (plain, guarded) = measure_plan_paired(&plan, measure_cfg, Some(stream_gbs))
            .map_err(|error| HarnessError::Exec {
                key: case.key.clone(),
                error,
            })?;
        let plain = suite_result(&case, &plan, plain, measure_cfg, stats_cfg)?;
        let guarded = suite_result(&case, &plan, guarded, measure_cfg, stats_cfg)?;
        if progress {
            let delta = if plain.stats.median_ns > 0.0 {
                (guarded.stats.median_ns - plain.stats.median_ns) / plain.stats.median_ns * 100.0
            } else {
                0.0
            };
            println!(
                "  {:<34} plain {:>10.3} ms  guarded {:>10.3} ms  ({:+.1}%)",
                case.key,
                plain.stats.median_ns / 1e6,
                guarded.stats.median_ns / 1e6,
                delta
            );
        }
        plain_suites.push(plain);
        guarded_suites.push(guarded);
    }
    Ok((
        assemble_report(kind, measure_cfg, anchor, stream_gbs, plain_suites),
        assemble_report(kind, measure_cfg, anchor, stream_gbs, guarded_suites),
    ))
}

/// Folds one case's measurement into the record row the BENCH schema
/// stores — shared by the plain and paired suite runners.
fn suite_result(
    case: &SuiteCase,
    plan: &FftPlan,
    measured: Measured,
    measure_cfg: &MeasureConfig,
    stats_cfg: &StatsConfig,
) -> Result<SuiteResult, HarnessError> {
    let summary = stats::summarize(&measured.times_ns, stats_cfg).map_err(|error| {
        HarnessError::Stats {
            key: case.key.clone(),
            error,
        }
    })?;
    let gflops = if summary.median_ns > 0.0 {
        plan.pseudo_flops() / summary.median_ns
    } else {
        0.0
    };
    Ok(SuiteResult {
        key: case.key.clone(),
        label: case.dims.label(),
        executor: measured.executor,
        p_d: plan.p_d,
        p_c: plan.p_c,
        buffer_elems: plan.buffer_elems,
        warmup: measure_cfg.warmup,
        stats: summary,
        gflops,
        stages: measured
            .trace
            .stages
            .iter()
            .map(|s| StageMetric {
                stage: s.stage,
                overlap_fraction: s.overlap_fraction,
                achieved_gbs: s.achieved_gbs,
                percent_of_stream: s.percent_of_achievable,
            })
            .collect(),
        serve: None,
        ooc: None,
        real: None,
    })
}

fn assemble_report(
    kind: SuiteKind,
    measure_cfg: &MeasureConfig,
    anchor: &MachineSpec,
    stream_gbs: f64,
    suites: Vec<SuiteResult>,
) -> BenchReport {
    BenchReport {
        schema: record::SCHEMA_VERSION.to_string(),
        git_rev: record::detect_git_rev(),
        suite_kind: kind.label().to_string(),
        seed: measure_cfg.seed,
        fingerprint: HostFingerprint::detect(),
        anchor_machine: anchor.name.to_string(),
        stream_gbs,
        suites,
    }
}

/// The 3D size sweep of Figs. 1 and 11 (all exponent combinations of
/// `2^9` and `2^10` per dimension), in the paper's label order.
pub fn fig1_sizes() -> Vec<(usize, usize, usize)> {
    let e = [9usize, 10];
    let mut out = Vec::new();
    for k in e {
        for n in e {
            for m in e {
                out.push((1 << k, 1 << n, 1 << m));
            }
        }
    }
    out
}

/// The large 3D sizes of Fig. 10 (up to 2048³ — 128 GiB of complex
/// doubles, the paper's largest problem).
pub fn fig10_sizes() -> Vec<(usize, usize, usize)> {
    let e = [10usize, 11];
    let mut out = Vec::new();
    for k in e {
        for n in e {
            for m in e {
                out.push((1 << k, 1 << n, 1 << m));
            }
        }
    }
    out
}

/// The 2D size sweep of Fig. 9.
pub fn fig9_sizes() -> Vec<(usize, usize)> {
    vec![
        (1024, 512),
        (1024, 1024),
        (2048, 1024),
        (2048, 2048),
        (4096, 2048),
        (4096, 4096),
        (8192, 4096),
        (8192, 8192),
    ]
}

/// Plans the double-buffered FFT the way the paper configures it for a
/// machine: `b = LLC/2`, half the threads data / half compute, one
/// plan socket per machine socket.
pub fn paper_plan(dims: Dims, spec: &MachineSpec, sockets: usize) -> FftPlan {
    let p = spec.total_threads() * sockets / spec.sockets;
    FftPlan::builder(dims)
        .buffer_elems(spec.default_buffer_elems())
        .threads(p / 2, p / 2)
        .sockets(sockets)
        .build()
        .unwrap_or_else(|e| panic!("planning {} on {}: {e}", dims.label(), spec.name))
}

/// Simulates our implementation with default options. Panics on
/// simulation failure — like [`paper_plan`], this is figure-binary
/// convenience, not library API.
#[allow(clippy::unwrap_used)]
pub fn run_ours(dims: Dims, spec: &MachineSpec, sockets: usize) -> PerfReport {
    let plan = paper_plan(dims, spec, sockets);
    simulate(&plan, spec, &SimOptions::default()).unwrap().report
}

/// One row of a comparison table.
pub struct Row {
    pub label: String,
    pub peak_gflops: f64,
    pub entries: Vec<(String, PerfReport)>,
}

/// Prints a comparison table in the paper's style: Gflop/s and percent
/// of the STREAM-bound achievable peak per implementation.
pub fn print_comparison(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    if rows.is_empty() {
        return;
    }
    print!("{:<18} {:>10}", "size", "peak GF/s");
    for (name, _) in &rows[0].entries {
        print!(" | {name:>22}");
    }
    println!();
    let width = 30 + rows[0].entries.len() * 25;
    println!("{}", "-".repeat(width));
    for row in rows {
        print!("{:<18} {:>10.2}", row.label, row.peak_gflops);
        for (_, rep) in &row.entries {
            print!(" | {:>12.2} ({:>5.1}%)", rep.gflops(), rep.percent_of_peak());
        }
        println!();
    }
}

/// Convenience: the three implementations of the single-socket 3D
/// comparison plots (ours, MKL-like, FFTW-like-or-slab).
pub fn compare_3d(
    spec: &MachineSpec,
    sizes: &[(usize, usize, usize)],
    fftw_kind: BaselineKind,
) -> Vec<Row> {
    sizes
        .iter()
        .map(|&(k, n, m)| {
            let dims = Dims::d3(k, n, m);
            let ours = run_ours(dims, spec, spec.sockets);
            let mkl = simulate_baseline(BaselineKind::MklLike, dims, spec);
            let fftw = simulate_baseline(fftw_kind, dims, spec);
            Row {
                label: format!("{k}x{n}x{m}"),
                peak_gflops: ours.achievable_peak_gflops,
                entries: vec![
                    ("Double-buffer (ours)".into(), ours),
                    ("MKL-like".into(), mkl),
                    (fftw_kind.label().into(), fftw),
                ],
            }
        })
        .collect()
}

/// 2D analogue of [`compare_3d`]: the row set of Fig. 9.
pub fn compare_2d(
    spec: &MachineSpec,
    sizes: &[(usize, usize)],
    fftw_kind: BaselineKind,
) -> Vec<Row> {
    sizes
        .iter()
        .map(|&(n, m)| {
            let dims = Dims::d2(n, m);
            let ours = run_ours(dims, spec, spec.sockets);
            let mkl = simulate_baseline(BaselineKind::MklLike, dims, spec);
            let fftw = simulate_baseline(fftw_kind, dims, spec);
            Row {
                label: format!("{n}x{m}"),
                peak_gflops: ours.achievable_peak_gflops,
                entries: vec![
                    ("Double-buffer (ours)".into(), ours),
                    ("MKL-like".into(), mkl),
                    (fftw_kind.label().into(), fftw),
                ],
            }
        })
        .collect()
}

/// Mean percent-of-achievable-peak of one column of a row set (column
/// 0 is "ours") — the headline number Figs. 1/9 quote.
pub fn mean_percent_of_peak(rows: &[Row], entry: usize) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter()
        .map(|r| r.entries[entry].1.percent_of_peak())
        .sum::<f64>()
        / rows.len() as f64
}

/// One row of the STREAM calibration table (§V): measured triad
/// bandwidth and the achievable 3D peak it implies for a 512³ problem.
pub struct StreamRow {
    pub name: &'static str,
    pub triad_gbs: f64,
    pub per_socket_gbs: f64,
    pub peak3d_gflops: f64,
}

/// Calibrates one machine preset with the STREAM triad and derives the
/// §V roofline number the figures are normalized by.
pub fn stream_row(spec: &MachineSpec) -> StreamRow {
    let r = bwfft_machine::stream::stream_triad(spec, 1 << 24);
    StreamRow {
        name: spec.name,
        triad_gbs: r.triad_gbs,
        per_socket_gbs: r.per_socket_gbs,
        peak3d_gflops: bwfft_core::metrics::achievable_peak_gflops(1 << 27, 3, r.triad_gbs),
    }
}

/// Geometric-mean speedup of `ours` over each comparator in a row set.
pub fn geomean_speedups(rows: &[Row]) -> Vec<(String, f64)> {
    if rows.is_empty() {
        return Vec::new();
    }
    let ncomp = rows[0].entries.len() - 1;
    let mut out = Vec::new();
    for c in 0..ncomp {
        let mut log_sum = 0.0;
        for row in rows {
            let ours = row.entries[0].1.time_ns;
            let other = row.entries[c + 1].1.time_ns;
            log_sum += (other / ours).ln();
        }
        out.push((
            rows[0].entries[c + 1].0.clone(),
            (log_sum / rows.len() as f64).exp(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwfft_machine::presets;

    #[test]
    fn fig1_has_eight_sizes() {
        let s = fig1_sizes();
        assert_eq!(s.len(), 8);
        assert!(s.contains(&(512, 512, 512)));
        assert!(s.contains(&(1024, 1024, 1024)));
    }

    #[test]
    fn paper_plan_uses_half_threads_each_way() {
        let spec = presets::kaby_lake_7700k();
        let p = paper_plan(Dims::d3(512, 512, 512), &spec, 1);
        assert_eq!(p.p_d, 4);
        assert_eq!(p.p_c, 4);
        assert_eq!(p.buffer_elems, spec.default_buffer_elems());
    }

    #[test]
    fn geomean_of_identical_rows_is_ratio() {
        let spec = presets::kaby_lake_7700k();
        let rows = compare_3d(&spec, &[(256, 256, 256)], BaselineKind::FftwLike);
        let sp = geomean_speedups(&rows);
        assert_eq!(sp.len(), 2);
        assert!(sp.iter().all(|(_, v)| *v > 1.0), "{sp:?}");
    }
}
