//! The statistics engine behind every `BENCH_*.json` number.
//!
//! Benchmark samples on a shared VM are contaminated: scheduler
//! preemption, cold caches on the first reps, the occasional 10×
//! outlier. The paper's quantitative argument (80–90% of STREAM peak)
//! only survives if the summary statistic is robust to that noise, so
//! the pipeline is:
//!
//! 1. **MAD outlier rejection** — compute the sample median and the
//!    median absolute deviation; drop points farther than
//!    `k · 1.4826 · MAD` from the median (1.4826 makes MAD comparable
//!    to a standard deviation under normality; `k = 3.5` by default).
//!    The median itself is always within threshold, so rejection can
//!    never empty a sample. A zero MAD (all-equal or majority-equal
//!    samples) disables rejection entirely.
//! 2. **Median** — the point estimate. Means are hostage to the very
//!    outliers step 1 exists to contain.
//! 3. **Bootstrap confidence interval** — percentile bootstrap over
//!    `resamples` resamples-with-replacement of the kept sample,
//!    driven by a deterministic [`SplitMix64`] stream so the same
//!    sample and seed always yield the same interval. The interval is
//!    widened to include the median, so `ci_lo ≤ median ≤ ci_hi` holds
//!    by construction (property-tested).
//!
//! Degenerate inputs (`N = 1`, all-equal) produce a zero-width
//! interval rather than a panic; empty or non-finite samples are typed
//! errors. Nothing in this module panics on any input.

use bwfft_num::signal::SplitMix64;
use std::fmt;

/// Knobs for [`summarize`]. The defaults are what `bwfft-cli bench`
/// records into `BENCH_*.json`.
#[derive(Clone, Debug)]
pub struct StatsConfig {
    /// MAD rejection threshold in (normal-consistent) sigma units.
    pub mad_k: f64,
    /// Bootstrap resample count.
    pub resamples: usize,
    /// Two-sided confidence level of the bootstrap interval.
    pub confidence: f64,
    /// Seed of the deterministic bootstrap resampling stream.
    pub seed: u64,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig {
            mad_k: 3.5,
            resamples: 200,
            confidence: 0.95,
            seed: 0x000B_0075_7249,
        }
    }
}

/// Why a sample could not be summarized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StatsError {
    /// No data points at all.
    EmptySample,
    /// At least one point was NaN or infinite.
    NonFinite,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptySample => write!(f, "cannot summarize an empty sample"),
            StatsError::NonFinite => write!(f, "sample contains non-finite values"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Robust summary of one benchmark sample (times in nanoseconds, but
/// the math is unit-agnostic).
#[derive(Clone, Debug, PartialEq)]
pub struct SampleSummary {
    /// Points measured.
    pub n_raw: usize,
    /// Points surviving MAD rejection.
    pub n_kept: usize,
    /// Median of the kept points.
    pub median_ns: f64,
    /// Bootstrap confidence interval, widened to contain the median.
    pub ci_lo_ns: f64,
    pub ci_hi_ns: f64,
    /// Extremes of the kept points.
    pub min_ns: f64,
    pub max_ns: f64,
    /// Raw (unscaled) median absolute deviation of the raw sample.
    pub mad_ns: f64,
}

impl SampleSummary {
    /// Points rejected as outliers.
    pub fn rejected(&self) -> usize {
        self.n_raw - self.n_kept
    }

    /// Half-width of the confidence interval relative to the median,
    /// in percent — the "noise bar" the compare gate reasons about.
    pub fn ci_halfwidth_pct(&self) -> f64 {
        if self.median_ns > 0.0 {
            100.0 * (self.ci_hi_ns - self.ci_lo_ns) / (2.0 * self.median_ns)
        } else {
            0.0
        }
    }
}

/// Median of an already-sorted slice; 0.0 for an empty one (callers
/// guard emptiness — this keeps the helper total).
fn median_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Median of an unsorted slice (copies and sorts).
pub fn median(sample: &[f64]) -> f64 {
    let mut v = sample.to_vec();
    v.sort_unstable_by(f64::total_cmp);
    median_sorted(&v)
}

/// Raw median absolute deviation around the sample median.
pub fn mad(sample: &[f64]) -> f64 {
    let med = median(sample);
    let devs: Vec<f64> = sample.iter().map(|x| (x - med).abs()).collect();
    median(&devs)
}

/// MAD outlier rejection: keeps points within `k · 1.4826 · MAD` of
/// the median. Returns the kept points in input order.
///
/// Invariants (property-tested in `tests/proptest_stats.rs`):
/// * never returns an empty vector for a non-empty input — the median
///   is at distance ≤ MAD-threshold from itself;
/// * a zero MAD keeps everything (degenerate majority-equal samples
///   must not reject the honest minority).
pub fn reject_outliers(sample: &[f64], k: f64) -> Vec<f64> {
    let m = mad(sample);
    if m == 0.0 || !m.is_finite() || sample.len() < 3 {
        return sample.to_vec();
    }
    let med = median(sample);
    let threshold = k * 1.4826 * m;
    let kept: Vec<f64> = sample
        .iter()
        .copied()
        .filter(|x| (x - med).abs() <= threshold)
        .collect();
    if kept.is_empty() {
        // Unreachable for finite k ≥ 0 (the median always survives),
        // but the guarantee must not depend on that argument.
        sample.to_vec()
    } else {
        kept
    }
}

/// Percentile (nearest-rank, `q` in `[0, 1]`) of a sorted slice.
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Percentile-bootstrap confidence interval of the median, widened to
/// contain the sample median. Deterministic for a given seed.
pub fn bootstrap_ci(sample: &[f64], cfg: &StatsConfig) -> (f64, f64) {
    let med = median(sample);
    if sample.len() < 2 || cfg.resamples == 0 {
        return (med, med);
    }
    let mut rng = SplitMix64::new(cfg.seed);
    let mut medians = Vec::with_capacity(cfg.resamples);
    let mut resample = vec![0.0; sample.len()];
    for _ in 0..cfg.resamples {
        for slot in resample.iter_mut() {
            let idx = (rng.next_u64() % sample.len() as u64) as usize;
            *slot = sample[idx];
        }
        medians.push(median(&resample));
    }
    medians.sort_unstable_by(f64::total_cmp);
    let alpha = (1.0 - cfg.confidence.clamp(0.0, 1.0)) / 2.0;
    let lo = percentile_sorted(&medians, alpha);
    let hi = percentile_sorted(&medians, 1.0 - alpha);
    // Percentile bootstrap of a median can land strictly on one side of
    // the sample median for tiny/skewed samples; the interval is a
    // statement about the point estimate, so make it bracket it.
    (lo.min(med), hi.max(med))
}

/// Full pipeline: validate → MAD-reject → median → bootstrap CI.
pub fn summarize(sample: &[f64], cfg: &StatsConfig) -> Result<SampleSummary, StatsError> {
    if sample.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if sample.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFinite);
    }
    let kept = reject_outliers(sample, cfg.mad_k);
    let mut sorted = kept.clone();
    sorted.sort_unstable_by(f64::total_cmp);
    let med = median_sorted(&sorted);
    let (ci_lo, ci_hi) = bootstrap_ci(&kept, cfg);
    Ok(SampleSummary {
        n_raw: sample.len(),
        n_kept: kept.len(),
        median_ns: med,
        ci_lo_ns: ci_lo,
        ci_hi_ns: ci_hi,
        min_ns: sorted[0],
        max_ns: sorted[sorted.len() - 1],
        mad_ns: mad(sample),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_nonfinite_are_typed_errors() {
        let cfg = StatsConfig::default();
        assert_eq!(summarize(&[], &cfg), Err(StatsError::EmptySample));
        assert_eq!(summarize(&[1.0, f64::NAN], &cfg), Err(StatsError::NonFinite));
        assert_eq!(
            summarize(&[f64::INFINITY], &cfg),
            Err(StatsError::NonFinite)
        );
    }

    #[test]
    fn single_point_is_a_zero_width_interval() {
        let s = summarize(&[42.0], &StatsConfig::default()).unwrap();
        assert_eq!(s.median_ns, 42.0);
        assert_eq!((s.ci_lo_ns, s.ci_hi_ns), (42.0, 42.0));
        assert_eq!(s.n_kept, 1);
        assert_eq!(s.ci_halfwidth_pct(), 0.0);
    }

    #[test]
    fn all_equal_sample_does_not_reject_or_panic() {
        let s = summarize(&[7.0; 16], &StatsConfig::default()).unwrap();
        assert_eq!(s.median_ns, 7.0);
        assert_eq!(s.rejected(), 0);
        assert_eq!((s.ci_lo_ns, s.ci_hi_ns), (7.0, 7.0));
    }

    #[test]
    fn gross_outlier_is_rejected() {
        let mut sample = vec![100.0; 19];
        // Perturb slightly so MAD is nonzero.
        for (i, x) in sample.iter_mut().enumerate() {
            *x += (i as f64) * 0.1;
        }
        sample.push(10_000.0);
        let s = summarize(&sample, &StatsConfig::default()).unwrap();
        assert_eq!(s.rejected(), 1);
        assert!(s.max_ns < 200.0, "outlier must not survive: {}", s.max_ns);
    }

    #[test]
    fn bootstrap_is_deterministic_and_brackets_median() {
        let sample: Vec<f64> = (0..25).map(|i| 100.0 + (i * 37 % 11) as f64).collect();
        let cfg = StatsConfig::default();
        let a = summarize(&sample, &cfg).unwrap();
        let b = summarize(&sample, &cfg).unwrap();
        assert_eq!(a, b);
        assert!(a.ci_lo_ns <= a.median_ns && a.median_ns <= a.ci_hi_ns);
        let mut cfg2 = cfg.clone();
        cfg2.seed ^= 1;
        let c = summarize(&sample, &cfg2).unwrap();
        assert!(c.ci_lo_ns <= c.median_ns && c.median_ns <= c.ci_hi_ns);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
