//! The regression gate: two `BENCH_*.json` files in, a verdict out.
//!
//! Suites are paired by their stable `key`. A pair is a **regression**
//! only when both of these hold (so noise alone can't fail CI):
//!
//! 1. the current median is more than `threshold_pct` slower than the
//!    baseline median, and
//! 2. the bootstrap confidence intervals are disjoint
//!    (`cur.ci_lo > base.ci_hi`) — the slowdown is statistically
//!    resolvable at the recorded rep count.
//!
//! Improvements are the mirror image. Every regression is
//! *attributed*: the stage whose %-of-STREAM (or, absent bandwidth
//! data, overlap fraction) dropped the most is named, so "fig9:128x128
//! got 30% slower" reads as "stage 1 lost its overlap".
//!
//! Keys present on only one side are reported as unpaired, never
//! silently dropped; a host-fingerprint mismatch between the files is
//! flagged (cross-machine comparisons are allowed — CI compares
//! against a checked-in VM baseline — but the verdict says so).

use crate::record::{BenchReport, SuiteResult};
use bwfft_trace::value::{push_escaped, push_f64};
use std::collections::BTreeMap;
use std::fmt;

/// Gate sensitivity.
#[derive(Clone, Debug)]
pub struct GateConfig {
    /// Median slowdown (percent) below which a pair is never flagged.
    pub threshold_pct: f64,
    /// Skip the serve p99 tail rule and gate the median alone. The
    /// tail of one open-loop run is a point estimate with no CI, so
    /// gates whose claim is about the *median* (the metrics overhead
    /// pair) opt out of it rather than flake on scheduler outliers.
    pub median_only: bool,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            threshold_pct: 5.0,
            median_only: false,
        }
    }
}

/// Classification of one paired suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    Regression,
    Improvement,
    Unchanged,
}

impl Verdict {
    fn token(self) -> &'static str {
        match self {
            Verdict::Regression => "regression",
            Verdict::Improvement => "improvement",
            Verdict::Unchanged => "unchanged",
        }
    }
}

/// The stage a regression is attributed to.
#[derive(Clone, Debug, PartialEq)]
pub struct StageDelta {
    pub stage: usize,
    /// Baseline → current overlap fraction.
    pub base_overlap: f64,
    pub cur_overlap: f64,
    /// Baseline → current % of STREAM, when both records carry it.
    pub base_percent: Option<f64>,
    pub cur_percent: Option<f64>,
}

impl fmt::Display for StageDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage {}", self.stage)?;
        if let (Some(b), Some(c)) = (self.base_percent, self.cur_percent) {
            write!(f, " ({b:.1}% → {c:.1}% of STREAM")?;
        } else {
            write!(
                f,
                " (overlap {:.2} → {:.2}",
                self.base_overlap, self.cur_overlap
            )?;
        }
        write!(f, ")")
    }
}

/// One paired suite's comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct PairDelta {
    pub key: String,
    pub base_median_ns: f64,
    pub cur_median_ns: f64,
    /// Positive = slower than baseline, percent.
    pub delta_pct: f64,
    /// Whether the confidence intervals are disjoint.
    pub ci_separated: bool,
    pub verdict: Verdict,
    /// For regressions: the stage that lost the most ground.
    pub worst_stage: Option<StageDelta>,
    /// Service suites only: tail-latency delta (positive = slower),
    /// gated like the median. Percentiles carry no bootstrap interval,
    /// so the p99 check is threshold-only.
    pub serve_p99_delta_pct: Option<f64>,
}

/// The full comparison — what the gate renders, serializes and exits on.
#[derive(Clone, Debug, PartialEq)]
pub struct CompareReport {
    pub baseline_rev: String,
    pub current_rev: String,
    pub threshold_pct: f64,
    /// The two files were measured on different hosts.
    pub host_mismatch: bool,
    pub pairs: Vec<PairDelta>,
    /// Keys present only in the baseline / only in the current run.
    pub unpaired_base: Vec<String>,
    pub unpaired_cur: Vec<String>,
}

impl CompareReport {
    pub fn regressions(&self) -> impl Iterator<Item = &PairDelta> {
        self.pairs
            .iter()
            .filter(|p| p.verdict == Verdict::Regression)
    }

    pub fn regression_count(&self) -> usize {
        self.regressions().count()
    }

    /// The gate passes when no paired suite regressed.
    pub fn gate_passes(&self) -> bool {
        self.regression_count() == 0
    }

    /// One-line summary naming each regressed suite and stage — the
    /// text a failing CI run leads with.
    pub fn failure_summary(&self) -> String {
        let items: Vec<String> = self
            .regressions()
            .map(|p| {
                let stage = p
                    .worst_stage
                    .as_ref()
                    .map(|s| format!(", {s}"))
                    .unwrap_or_default();
                let p99 = p
                    .serve_p99_delta_pct
                    .filter(|d| *d > self.threshold_pct)
                    .map(|d| format!(", p99 {d:+.1}%"))
                    .unwrap_or_default();
                format!("{} +{:.1}%{p99}{stage}", p.key, p.delta_pct)
            })
            .collect();
        format!(
            "{} regression(s) beyond {:.1}%: {}",
            self.regression_count(),
            self.threshold_pct,
            items.join("; ")
        )
    }
}

/// Attribution: the stage of `cur` that lost the most vs. `base`,
/// preferring the %-of-STREAM column, falling back to overlap.
fn worst_stage(base: &SuiteResult, cur: &SuiteResult) -> Option<StageDelta> {
    let mut worst: Option<(f64, StageDelta)> = None;
    for b in &base.stages {
        let Some(c) = cur.stages.iter().find(|c| c.stage == b.stage) else {
            continue;
        };
        let drop = match (b.percent_of_stream, c.percent_of_stream) {
            (Some(bp), Some(cp)) => bp - cp,
            _ => (b.overlap_fraction - c.overlap_fraction) * 100.0,
        };
        let delta = StageDelta {
            stage: b.stage,
            base_overlap: b.overlap_fraction,
            cur_overlap: c.overlap_fraction,
            base_percent: b.percent_of_stream,
            cur_percent: c.percent_of_stream,
        };
        if worst.as_ref().is_none_or(|(w, _)| drop > *w) {
            worst = Some((drop, delta));
        }
    }
    worst.map(|(_, d)| d)
}

/// Pairs the suites of two reports by key and classifies each pair.
pub fn compare(base: &BenchReport, cur: &BenchReport, cfg: &GateConfig) -> CompareReport {
    let base_by_key: BTreeMap<&str, &SuiteResult> =
        base.suites.iter().map(|s| (s.key.as_str(), s)).collect();
    let cur_by_key: BTreeMap<&str, &SuiteResult> =
        cur.suites.iter().map(|s| (s.key.as_str(), s)).collect();

    let mut pairs = Vec::new();
    for (key, b) in &base_by_key {
        let Some(c) = cur_by_key.get(key) else {
            continue;
        };
        let delta_pct = if b.stats.median_ns > 0.0 {
            100.0 * (c.stats.median_ns - b.stats.median_ns) / b.stats.median_ns
        } else {
            0.0
        };
        let slower_separated = c.stats.ci_lo_ns > b.stats.ci_hi_ns;
        let faster_separated = c.stats.ci_hi_ns < b.stats.ci_lo_ns;
        // Service suites additionally gate the p99 tail: a single
        // point estimate with no CI, so threshold-only.
        let serve_p99_delta_pct = match (&b.serve, &c.serve) {
            (Some(bm), Some(cm)) if bm.p99_ns > 0.0 => {
                Some(100.0 * (cm.p99_ns - bm.p99_ns) / bm.p99_ns)
            }
            _ => None,
        };
        let p99_regressed = !cfg.median_only
            && serve_p99_delta_pct.is_some_and(|d| d > cfg.threshold_pct);
        let verdict = if (delta_pct > cfg.threshold_pct && slower_separated) || p99_regressed {
            Verdict::Regression
        } else if delta_pct < -cfg.threshold_pct && faster_separated {
            Verdict::Improvement
        } else {
            Verdict::Unchanged
        };
        pairs.push(PairDelta {
            key: (*key).to_string(),
            base_median_ns: b.stats.median_ns,
            cur_median_ns: c.stats.median_ns,
            delta_pct,
            ci_separated: slower_separated || faster_separated,
            verdict,
            worst_stage: (verdict == Verdict::Regression).then(|| worst_stage(b, c)).flatten(),
            serve_p99_delta_pct,
        });
    }
    CompareReport {
        baseline_rev: base.git_rev.clone(),
        current_rev: cur.git_rev.clone(),
        threshold_pct: cfg.threshold_pct,
        host_mismatch: base.fingerprint != cur.fingerprint,
        pairs,
        unpaired_base: base
            .suites
            .iter()
            .filter(|s| !cur_by_key.contains_key(s.key.as_str()))
            .map(|s| s.key.clone())
            .collect(),
        unpaired_cur: cur
            .suites
            .iter()
            .filter(|s| !base_by_key.contains_key(s.key.as_str()))
            .map(|s| s.key.clone())
            .collect(),
    }
}

/// Human diff table (the `Display` sink of the gate).
impl fmt::Display for CompareReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== bench compare: {} (baseline) vs {} (current), threshold {:.1}% ===",
            self.baseline_rev, self.current_rev, self.threshold_pct
        )?;
        if self.host_mismatch {
            writeln!(
                f,
                "warning: host fingerprints differ — absolute times are not comparable machines"
            )?;
        }
        writeln!(
            f,
            "{:<34} {:>12} {:>12} {:>8}  verdict",
            "suite", "base ms", "cur ms", "delta"
        )?;
        writeln!(f, "{}", "-".repeat(88))?;
        for p in &self.pairs {
            let mut stage = p
                .worst_stage
                .as_ref()
                .map(|s| format!(" ← {s}"))
                .unwrap_or_default();
            if let Some(d) = p.serve_p99_delta_pct {
                stage.push_str(&format!(" [p99 {d:+.1}%]"));
            }
            writeln!(
                f,
                "{:<34} {:>12.3} {:>12.3} {:>+7.1}%  {}{}",
                p.key,
                p.base_median_ns / 1e6,
                p.cur_median_ns / 1e6,
                p.delta_pct,
                p.verdict.token(),
                stage
            )?;
        }
        for key in &self.unpaired_base {
            writeln!(f, "{key:<34} {:>12} (only in baseline)", "-")?;
        }
        for key in &self.unpaired_cur {
            writeln!(f, "{key:<34} {:>12} (only in current)", "-")?;
        }
        write!(
            f,
            "{} paired, {} regression(s), {} improvement(s)",
            self.pairs.len(),
            self.regression_count(),
            self.pairs
                .iter()
                .filter(|p| p.verdict == Verdict::Improvement)
                .count()
        )
    }
}

/// Machine-readable verdict (`bwfft-bench-verdict/1`), emitted as the
/// last stdout line of `bwfft-cli bench --compare` by contract.
pub fn verdict_json(report: &CompareReport) -> String {
    let mut out = String::with_capacity(256 + report.pairs.len() * 128);
    out.push_str("{\"schema\":\"bwfft-bench-verdict/1\",\"baseline_rev\":");
    push_escaped(&mut out, &report.baseline_rev);
    out.push_str(",\"current_rev\":");
    push_escaped(&mut out, &report.current_rev);
    out.push_str(",\"threshold_pct\":");
    push_f64(&mut out, report.threshold_pct);
    out.push_str(&format!(
        ",\"host_mismatch\":{},\"gate_passes\":{},\"pairs\":[",
        report.host_mismatch,
        report.gate_passes()
    ));
    for (i, p) in report.pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"key\":");
        push_escaped(&mut out, &p.key);
        out.push_str(",\"base_median_ns\":");
        push_f64(&mut out, p.base_median_ns);
        out.push_str(",\"cur_median_ns\":");
        push_f64(&mut out, p.cur_median_ns);
        out.push_str(",\"delta_pct\":");
        push_f64(&mut out, p.delta_pct);
        out.push_str(&format!(
            ",\"ci_separated\":{},\"verdict\":\"{}\",\"worst_stage\":",
            p.ci_separated,
            p.verdict.token()
        ));
        match &p.worst_stage {
            Some(s) => out.push_str(&format!("{}", s.stage)),
            None => out.push_str("null"),
        }
        out.push_str(",\"serve_p99_delta_pct\":");
        match p.serve_p99_delta_pct {
            Some(d) => push_f64(&mut out, d),
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push_str("],\"unpaired\":[");
    for (i, key) in report
        .unpaired_base
        .iter()
        .chain(&report.unpaired_cur)
        .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        push_escaped(&mut out, key);
    }
    out.push_str("]}");
    out
}

/// Derates a report in place: times `factor`× slower, stage bandwidth
/// and overlap scaled down accordingly. This exists so the gate can be
/// demonstrated (and CI-smoke-tested) without building a slower
/// binary: `bwfft-cli bench --derate 2 --compare <own baseline>` must
/// fail, naming every suite.
pub fn derate(report: &mut BenchReport, factor: f64) {
    let factor = factor.max(1.0);
    for s in &mut report.suites {
        s.stats.median_ns *= factor;
        s.stats.ci_lo_ns *= factor;
        s.stats.ci_hi_ns *= factor;
        s.stats.min_ns *= factor;
        s.stats.max_ns *= factor;
        s.stats.mad_ns *= factor;
        s.gflops /= factor;
        if let Some(m) = &mut s.serve {
            m.p50_ns *= factor;
            m.p99_ns *= factor;
            m.requests_per_sec /= factor;
        }
        for st in &mut s.stages {
            st.overlap_fraction /= factor;
            st.achieved_gbs = st.achieved_gbs.map(|v| v / factor);
            st.percent_of_stream = st.percent_of_stream.map(|v| v / factor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ServeMetrics, StageMetric, SuiteResult, SCHEMA_VERSION};
    use crate::stats::SampleSummary;
    use bwfft_tuner::HostFingerprint;

    fn suite_result(key: &str, median: f64, width: f64) -> SuiteResult {
        SuiteResult {
            key: key.to_string(),
            label: "64x64".to_string(),
            executor: "pipelined".to_string(),
            p_d: 1,
            p_c: 1,
            buffer_elems: 256,
            warmup: 1,
            stats: SampleSummary {
                n_raw: 5,
                n_kept: 5,
                median_ns: median,
                ci_lo_ns: median - width,
                ci_hi_ns: median + width,
                min_ns: median - width,
                max_ns: median + width,
                mad_ns: width,
            },
            gflops: 1.0,
            stages: vec![
                StageMetric {
                    stage: 0,
                    overlap_fraction: 0.9,
                    achieved_gbs: Some(10.0),
                    percent_of_stream: Some(50.0),
                },
                StageMetric {
                    stage: 1,
                    overlap_fraction: 0.8,
                    achieved_gbs: Some(8.0),
                    percent_of_stream: Some(40.0),
                },
            ],
            serve: None,
            ooc: None,
            real: None,
        }
    }

    /// A service suite: tight latency CI plus serve columns.
    fn serve_suite(key: &str, median: f64, p99: f64) -> SuiteResult {
        let mut s = suite_result(key, median, median * 0.01);
        s.executor = "serve".to_string();
        s.stages.clear();
        s.serve = Some(ServeMetrics {
            requests_per_sec: 1e9 / median,
            p50_ns: median,
            p99_ns: p99,
            submitted: 32,
            completed: 30,
            rejected: 1,
            deadline_exceeded: 1,
            failed: 0,
            degraded: 2,
            breaker_trips: 0,
            plan_cache_hits: 28,
            plan_cache_misses: 4,
        });
        s
    }

    fn report(rev: &str, suites: Vec<SuiteResult>) -> BenchReport {
        BenchReport {
            schema: SCHEMA_VERSION.to_string(),
            git_rev: rev.to_string(),
            suite_kind: "fast".to_string(),
            seed: 42,
            fingerprint: HostFingerprint {
                cpus: 1,
                pin_works: false,
                llc_bytes: 0,
            },
            anchor_machine: "test".to_string(),
            stream_gbs: 20.0,
            suites,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let base = report("a", vec![suite_result("k1", 1e6, 1e4)]);
        let cmp = compare(&base, &base, &GateConfig::default());
        assert!(cmp.gate_passes());
        assert!(!cmp.host_mismatch);
        assert_eq!(cmp.pairs[0].verdict, Verdict::Unchanged);
    }

    #[test]
    fn derated_run_regresses_with_stage_attribution() {
        let base = report("a", vec![suite_result("k1", 1e6, 1e4)]);
        let mut cur = report("b", vec![suite_result("k1", 1e6, 1e4)]);
        derate(&mut cur, 2.0);
        let cmp = compare(&base, &cur, &GateConfig::default());
        assert!(!cmp.gate_passes());
        let p = &cmp.pairs[0];
        assert_eq!(p.verdict, Verdict::Regression);
        assert!((p.delta_pct - 100.0).abs() < 1e-9);
        // Stage 0 had the higher %-of-stream, so halving both makes it
        // the biggest absolute loser.
        assert_eq!(p.worst_stage.as_ref().unwrap().stage, 0);
        let summary = cmp.failure_summary();
        assert!(summary.contains("k1"), "{summary}");
        assert!(summary.contains("stage 0"), "{summary}");
    }

    #[test]
    fn noise_within_overlapping_cis_never_regresses() {
        // 8% slower but wide, overlapping intervals → unchanged.
        let base = report("a", vec![suite_result("k1", 1.00e6, 1e5)]);
        let cur = report("b", vec![suite_result("k1", 1.08e6, 1e5)]);
        let cmp = compare(&base, &cur, &GateConfig::default());
        assert_eq!(cmp.pairs[0].verdict, Verdict::Unchanged);
        assert!(!cmp.pairs[0].ci_separated);
    }

    #[test]
    fn improvement_is_classified() {
        let base = report("a", vec![suite_result("k1", 2e6, 1e3)]);
        let cur = report("b", vec![suite_result("k1", 1e6, 1e3)]);
        let cmp = compare(&base, &cur, &GateConfig::default());
        assert_eq!(cmp.pairs[0].verdict, Verdict::Improvement);
        assert!(cmp.gate_passes());
    }

    #[test]
    fn unpaired_suites_are_reported_not_dropped() {
        let base = report(
            "a",
            vec![suite_result("k1", 1e6, 1e3), suite_result("gone", 1e6, 1e3)],
        );
        let cur = report(
            "b",
            vec![suite_result("k1", 1e6, 1e3), suite_result("new", 1e6, 1e3)],
        );
        let cmp = compare(&base, &cur, &GateConfig::default());
        assert_eq!(cmp.pairs.len(), 1);
        assert_eq!(cmp.unpaired_base, vec!["gone".to_string()]);
        assert_eq!(cmp.unpaired_cur, vec!["new".to_string()]);
    }

    #[test]
    fn host_mismatch_is_flagged() {
        let base = report("a", vec![suite_result("k1", 1e6, 1e3)]);
        let mut cur = base.clone();
        cur.fingerprint.cpus = 8;
        let cmp = compare(&base, &cur, &GateConfig::default());
        assert!(cmp.host_mismatch);
        assert!(format!("{cmp}").contains("host fingerprints differ"));
    }

    #[test]
    fn verdict_json_is_parseable_and_complete() {
        let base = report("a", vec![suite_result("k1", 1e6, 1e4)]);
        let mut cur = base.clone();
        derate(&mut cur, 3.0);
        let cmp = compare(&base, &cur, &GateConfig::default());
        let json = verdict_json(&cmp);
        let v = bwfft_trace::value::parse_document(&json).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(
            obj["schema"].as_str(),
            Some("bwfft-bench-verdict/1")
        );
        assert_eq!(obj["gate_passes"].as_bool(), Some(false));
        let pairs = obj["pairs"].as_arr().unwrap();
        assert_eq!(pairs[0].as_obj().unwrap()["verdict"].as_str(), Some("regression"));
    }

    #[test]
    fn serve_p99_regression_is_gated_without_ci() {
        // Median unchanged (same tight CI), but the p99 tail blew out
        // 40%: the pair must regress on the tail alone.
        let base = report("a", vec![serve_suite("serve:k", 1e6, 2e6)]);
        let cur = report("b", vec![serve_suite("serve:k", 1e6, 2.8e6)]);
        let cmp = compare(&base, &cur, &GateConfig::default());
        let p = &cmp.pairs[0];
        assert_eq!(p.verdict, Verdict::Regression);
        assert!((p.serve_p99_delta_pct.unwrap() - 40.0).abs() < 1e-9);
        assert!(!cmp.gate_passes());
        let summary = cmp.failure_summary();
        assert!(summary.contains("p99 +40.0%"), "{summary}");
        // And the machine verdict carries the tail delta.
        let json = verdict_json(&cmp);
        let v = bwfft_trace::value::parse_document(&json).unwrap();
        let pairs = v.as_obj().unwrap()["pairs"].as_arr().unwrap();
        let d = pairs[0].as_obj().unwrap()["serve_p99_delta_pct"]
            .as_f64()
            .unwrap();
        assert!((d - 40.0).abs() < 1e-9);
    }

    #[test]
    fn serve_p99_within_threshold_passes() {
        let base = report("a", vec![serve_suite("serve:k", 1e6, 2e6)]);
        let cur = report("b", vec![serve_suite("serve:k", 1e6, 2.08e6)]);
        let cmp = compare(&base, &cur, &GateConfig::default());
        assert_eq!(cmp.pairs[0].verdict, Verdict::Unchanged);
        assert!(cmp.gate_passes());
        // Ordinary suites (no serve columns) carry a null delta.
        let plain = report("a", vec![suite_result("k1", 1e6, 1e4)]);
        let cmp = compare(&plain, &plain, &GateConfig::default());
        assert_eq!(cmp.pairs[0].serve_p99_delta_pct, None);
    }

    #[test]
    fn derate_scales_serve_columns() {
        let mut rep = report("a", vec![serve_suite("serve:k", 1e6, 2e6)]);
        let before = rep.suites[0].serve.clone().unwrap();
        derate(&mut rep, 2.0);
        let after = rep.suites[0].serve.clone().unwrap();
        assert!((after.p50_ns - before.p50_ns * 2.0).abs() < 1e-9);
        assert!((after.p99_ns - before.p99_ns * 2.0).abs() < 1e-9);
        assert!((after.requests_per_sec - before.requests_per_sec / 2.0).abs() < 1e-9);
        // A derated serve run must therefore fail its own baseline.
        let base = report("a", vec![serve_suite("serve:k", 1e6, 2e6)]);
        assert!(!compare(&base, &rep, &GateConfig::default()).gate_passes());
    }

    #[test]
    fn display_renders_every_row() {
        let base = report("a", vec![suite_result("k1", 1e6, 1e3)]);
        let mut cur = base.clone();
        derate(&mut cur, 2.0);
        let text = format!("{}", compare(&base, &cur, &GateConfig::default()));
        assert!(text.contains("k1"));
        assert!(text.contains("regression"));
        assert!(text.contains("stage 0"));
    }
}
