//! Figure 11 (bottom-left): socket scaling on the Intel Haswell
//! 2667v3 — fixed problem sizes, 1 socket vs 2 sockets.
//!
//! Paper reference values: ≈1.7× average speedup from the second
//! socket; QPI-crossing writes and thread-role conflicts keep it from
//! 2×.

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use bwfft_bench::run_ours;
use bwfft_core::Dims;
use bwfft_machine::presets;

fn main() {
    let spec = presets::haswell_2667v3_2s();
    println!("\n=== Fig. 11c — 3D FFT socket scaling, Intel Haswell 2667v3 ===");
    println!(
        "{:<18} {:>14} {:>14} {:>10}",
        "size", "1 socket GF/s", "2 sockets GF/s", "speedup"
    );
    println!("{}", "-".repeat(60));
    let sizes = [
        (1024usize, 1024usize, 1024usize),
        (1024, 1024, 2048),
        (1024, 2048, 2048),
        (2048, 2048, 2048),
    ];
    let mut log_sum = 0.0;
    for (k, n, m) in sizes {
        let dims = Dims::d3(k, n, m);
        let one = run_ours(dims, &spec, 1);
        let two = run_ours(dims, &spec, 2);
        let speedup = one.time_ns / two.time_ns;
        log_sum += speedup.ln();
        println!(
            "{:<18} {:>14.2} {:>14.2} {:>9.2}x",
            format!("{k}x{n}x{m}"),
            one.gflops(),
            two.gflops(),
            speedup
        );
    }
    println!(
        "\ngeomean speedup: {:.2}x (paper: ~1.7x average)",
        (log_sum / sizes.len() as f64).exp()
    );
}
