//! Figure 11 (top-left): 3D FFT Gflop/s on the Intel Haswell 4770K.
//!
//! Paper reference values: ours ≈30 Gflop/s average, ≈2× MKL/FFTW,
//! ≈92% of achievable peak.

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use bwfft_baselines::BaselineKind;
use bwfft_bench::{compare_3d, fig1_sizes, geomean_speedups, print_comparison};
use bwfft_machine::presets;

fn main() {
    let spec = presets::haswell_4770k();
    let rows = compare_3d(&spec, &fig1_sizes(), BaselineKind::FftwLike);
    print_comparison(
        "Fig. 11a — 3D FFT, Intel Haswell 4770K (3.5 GHz, 4C/8T, AVX, 20 GB/s STREAM)",
        &rows,
    );
    let avg: f64 = rows
        .iter()
        .map(|r| r.entries[0].1.gflops())
        .sum::<f64>()
        / rows.len() as f64;
    println!("\naverage of ours: {avg:.1} Gflop/s (paper: ~30 Gflop/s at ~92% of peak)");
    for (name, s) in geomean_speedups(&rows) {
        println!("geomean speedup vs {name}: {s:.2}x (paper: ~2x)");
    }
}
