//! Table III: the dual-socket write matrices `W¹, W², W³`.
//!
//! Prints the structure of the three NUMA stage permutations (local
//! rotation + cross-socket redistribution), verifies each is a
//! permutation, and reports the cross-link traffic fraction of each
//! stage — the quantity behind Fig. 8's "stage 1 writes locally,
//! stages 2 and 3 write across the sockets".

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use bwfft_spl::dataflow::write_bursts;
use bwfft_spl::dense::to_dense;
use bwfft_spl::gather_scatter::{fft3d_numa_stage_perms, StagePerm, WriteMatrix};

fn remote_fraction(perm: &StagePerm, total: usize, sk: usize, b: usize) -> f64 {
    let per_socket = total / sk;
    let mut remote = 0usize;
    let mut all = 0usize;
    // Sample one block per socket.
    let blocks = total / b;
    for blk in [0, blocks / sk] {
        let src_socket = blk * b / per_socket;
        let w = WriteMatrix::new(*perm, b, blk);
        for burst in write_bursts(&w, true) {
            all += burst.len;
            if burst.start / per_socket != src_socket {
                remote += burst.len;
            }
        }
    }
    remote as f64 / all as f64
}

fn main() {
    let (k, n, m, mu, sk) = (16usize, 16, 32, 4, 2);
    let total = k * n * m;
    let b = 256;
    println!("\n=== Table III — dual-socket write matrices (k={k}, n={n}, m={m}, mu={mu}, sockets={sk}) ===\n");
    let names = [
        "W1 = (I_sk (x) K^{n,k/sk}_{m/mu} (x) I_mu) S",
        "W2 = (L^{sk*nm/mu}_{nm/mu} (x) I_{k*mu/sk}) (I_sk (x) K (x) I_mu) S",
        "W3 = (L^{sk*k}_k (x) I_{mn/sk}) (I_sk (x) K (x) I_mu) S",
    ];
    for (i, perm) in fft3d_numa_stage_perms(k, n, m, mu, sk).iter().enumerate() {
        let dense = to_dense(&perm.as_formula());
        let rf = remote_fraction(perm, total, sk, b);
        println!("{}", names[i]);
        println!(
            "    permutation: {} | cross-socket write fraction: {:.0}%",
            dense.is_permutation(),
            100.0 * rf
        );
    }
    println!("\npaper (Fig. 8): stage 1 writes locally; stages 2 and 3 write across the QPI/HT link");
    println!("with sk = 1 all three matrices reduce to the single-socket rotations (tested).");
}
