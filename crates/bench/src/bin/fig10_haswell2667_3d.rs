//! Figure 10: 3D FFT Gflop/s on the two-socket Intel Haswell 2667v3
//! (slab–pencil NUMA decomposition, writes crossing the QPI link in
//! stages 2–3 per Fig. 8 / Table III).
//!
//! Paper reference values: ours outperforms MKL/FFTW by 1.2×–1.6×;
//! with the QPI-crossing traffic we run within 20–30% of the
//! achievable peak.

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use bwfft_baselines::{simulate_baseline, BaselineKind};
use bwfft_bench::{fig10_sizes, geomean_speedups, print_comparison, run_ours, Row};
use bwfft_core::Dims;
use bwfft_machine::presets;

fn main() {
    let spec = presets::haswell_2667v3_2s();
    let rows: Vec<Row> = fig10_sizes()
        .into_iter()
        .map(|(k, n, m)| {
            let dims = Dims::d3(k, n, m);
            let ours = run_ours(dims, &spec, 2);
            let mkl = simulate_baseline(BaselineKind::MklLike, dims, &spec);
            let fftw = simulate_baseline(BaselineKind::FftwLike, dims, &spec);
            Row {
                label: format!("{k}x{n}x{m}"),
                peak_gflops: ours.achievable_peak_gflops,
                entries: vec![
                    ("Double-buffer (ours)".into(), ours),
                    ("MKL-like".into(), mkl),
                    ("FFTW-like".into(), fftw),
                ],
            }
        })
        .collect();
    print_comparison(
        "Fig. 10 — 3D FFT, 2-socket Intel Haswell 2667v3 (16T, 85 GB/s STREAM, QPI 16 GB/s; up to 2048^3 = 128 GiB)",
        &rows,
    );
    println!();
    for (name, s) in geomean_speedups(&rows) {
        println!("geomean speedup vs {name}: {s:.2}x (paper: 1.2x-1.6x)");
    }
}
