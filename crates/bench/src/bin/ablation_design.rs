//! Ablation of the §IV design choices, on the Kaby Lake preset at
//! 512³:
//!
//! 1. non-temporal vs temporal stores (read-for-ownership cost);
//! 2. cacheline-blocked (`⊗ I_μ`) vs element-wise reshape;
//! 3. the data/compute thread split `p_d : p_c`;
//! 4. buffer size vs the paper's `b = LLC/2` rule;
//! 5. NOP-mitigated vs raw hyperthread port contention.


#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary, not library code
use bwfft_core::exec_sim::{simulate, SimOptions};
use bwfft_core::{Dims, FftPlan};
use bwfft_machine::presets;

fn main() {
    let spec = presets::kaby_lake_7700k();
    let dims = Dims::d3(512, 512, 512);
    let b = spec.default_buffer_elems();

    let base_plan = FftPlan::builder(dims)
        .buffer_elems(b)
        .threads(4, 4)
        .build()
        .unwrap();
    let base = simulate(&base_plan, &spec, &SimOptions::default()).unwrap().report;
    println!("\n=== Ablation of design choices — 512^3 on Kaby Lake 7700K ===\n");
    println!(
        "{:<44} {:>10} {:>8} {:>9}",
        "configuration", "Gflop/s", "% peak", "slowdown"
    );
    println!("{}", "-".repeat(75));
    let report = |label: &str, r: &bwfft_machine::stats::PerfReport| {
        println!(
            "{:<44} {:>10.2} {:>7.1}% {:>8.2}x",
            label,
            r.gflops(),
            r.percent_of_peak(),
            r.time_ns / base.time_ns
        );
    };
    report("baseline (NT stores, mu-blocked, 4+4, LLC/2)", &base);

    // 1. Temporal stores.
    let tmp = simulate(
        &base_plan,
        &spec,
        &SimOptions {
            non_temporal: false,
            ..Default::default()
        },
    )
    .unwrap()
    .report;
    report("temporal stores (RFO + writeback)", &tmp);

    // 2. Element-wise reshape (μ = 1).
    let mu1_plan = FftPlan::builder(dims)
        .buffer_elems(b)
        .threads(4, 4)
        .mu(1)
        .build()
        .unwrap();
    let mu1 = simulate(&mu1_plan, &spec, &SimOptions::default()).unwrap().report;
    report("element-wise rotation (mu = 1)", &mu1);

    // 3. Thread split sweep.
    for (pd, pc) in [(2usize, 6usize), (6, 2), (1, 7), (4, 4)] {
        let plan = FftPlan::builder(dims)
            .buffer_elems(b)
            .threads(pd, pc)
            .build()
            .unwrap();
        let r = simulate(&plan, &spec, &SimOptions::default()).unwrap().report;
        report(&format!("thread split p_d={pd}, p_c={pc}"), &r);
    }

    // 4. Buffer-size sweep around LLC/2.
    for shift in [-2i32, -1, 1] {
        let bb = if shift < 0 { b >> (-shift) } else { b << shift };
        let plan = FftPlan::builder(dims)
            .buffer_elems(bb)
            .threads(4, 4)
            .build()
            .unwrap();
        let r = simulate(&plan, &spec, &SimOptions::default()).unwrap().report;
        report(
            &format!("buffer = {} KiB (LLC/2 = {} KiB)", bb * 16 / 1024, b * 16 / 1024),
            &r,
        );
    }

    // 5. No overlap at all: every thread loads, computes, stores
    //    sequentially (the counterfactual for the paper's core claim).
    let no_overlap =
        bwfft_core::exec_sim::simulate_no_overlap(&base_plan, &spec, &SimOptions::default())
            .unwrap()
            .report;
    report("no compute/transfer overlap (fused threads)", &no_overlap);

    // 6. No NOP mitigation for the paired data threads.
    let raw = simulate(
        &base_plan,
        &spec,
        &SimOptions {
            nop_mitigation: false,
            ..Default::default()
        },
    )
    .unwrap()
    .report;
    report("no NOP interleave (raw port contention)", &raw);

    println!("\npaper (section IV): each mechanism above is one of the interference mitigations;");
    println!("the baseline configuration should dominate or tie every ablated variant.");
}

