//! Extension ablation: 2 MiB huge pages vs 4 KiB pages for the 2D FFT
//! TLB dropoff (§V leaves large-pencil 2D as future work; huge pages
//! are the obvious system-level mitigation — 512× the TLB reach).


#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary, not library code
use bwfft_core::exec_sim::{simulate, SimOptions};
use bwfft_core::{Dims, FftPlan};
use bwfft_machine::presets;

fn main() {
    let base = presets::kaby_lake_7700k();
    let mut huge = base.clone();
    huge.page_bytes = 2 * 1024 * 1024;
    huge.tlb_entries = 1536; // modern STLBs hold 2M entries too

    println!("\n=== Extension ablation — huge pages vs the 2D TLB dropoff (Kaby Lake) ===\n");
    println!(
        "{:<16} {:>14} {:>14} {:>10}",
        "2D size", "4K pages %", "2M pages %", "recovered"
    );
    println!("{}", "-".repeat(58));
    for (n, m) in [(1024usize, 1024usize), (2048, 2048), (4096, 4096), (8192, 8192)] {
        let plan = FftPlan::builder(Dims::d2(n, m))
            .buffer_elems(base.default_buffer_elems())
            .threads(4, 4)
            .build()
            .unwrap();
        let small = simulate(&plan, &base, &SimOptions::default()).unwrap().report;
        let big = simulate(&plan, &huge, &SimOptions::default()).unwrap().report;
        println!(
            "{:<16} {:>13.1}% {:>13.1}% {:>9.1}pt",
            format!("{n}x{m}"),
            small.percent_of_peak(),
            big.percent_of_peak(),
            big.percent_of_peak() - small.percent_of_peak()
        );
    }
    println!("\nhuge pages should recover most of the large-size dropoff of Fig. 9 —");
    println!("evidence that the paper's TLB explanation is the operative mechanism.");
}

