//! Figure 1: 3D FFT on the Intel Kaby Lake 7700K — percentage of the
//! STREAM-bound achievable peak for MKL-like, FFTW-like and the
//! double-buffered implementation, over the eight `2^{9,10}³` sizes.
//!
//! Paper reference values: MKL/FFTW at most 47% of achievable peak;
//! ours 80–90% (≈3× speedup).

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use bwfft_baselines::BaselineKind;
use bwfft_bench::{compare_3d, fig1_sizes, geomean_speedups, print_comparison};
use bwfft_machine::presets;

fn main() {
    let spec = presets::kaby_lake_7700k();
    let rows = compare_3d(&spec, &fig1_sizes(), BaselineKind::FftwLike);
    print_comparison(
        "Fig. 1 — 3D FFT, Intel Kaby Lake 7700K (4.5 GHz, 4C/8T, AVX, 40 GB/s STREAM)",
        &rows,
    );
    println!();
    for (name, s) in geomean_speedups(&rows) {
        println!("geomean speedup vs {name}: {s:.2}x");
    }
    println!("paper: ours 80-90% of peak; MKL/FFTW <= 47%; speedup up to ~3x");
}
