//! Overlap made visible: an ASCII Gantt chart of one pipeline stage's
//! resources — the Table II schedule as the simulator actually plays
//! it, DRAM streaming concurrent with the compute cores, prologue and
//! epilogue at the edges.


#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary, not library code
use bwfft_machine::{Engine, ThreadProg};
use bwfft_pipeline::Schedule;

const WIDTH: usize = 96;

fn gantt_row(name: &str, intervals: &[(f64, f64)], total: f64) {
    let mut row = vec![b'.'; WIDTH];
    for (s, e) in intervals {
        let a = ((s / total) * WIDTH as f64) as usize;
        let b = (((e / total) * WIDTH as f64).ceil() as usize).min(WIDTH);
        for c in row.iter_mut().take(b).skip(a) {
            *c = b'#';
        }
    }
    println!("{:<10} |{}|", name, String::from_utf8(row).unwrap());
}

fn main() {
    // A compact stage: 8 blocks, 2 data threads streaming against one
    // DRAM channel, 2 compute threads on their own cores. Numbers are
    // scaled so compute ≈ 60% of the data time (Kaby-Lake-like ratio).
    let iters = 8;
    let mut engine = Engine::new();
    engine.record_timeline(true);
    let dram = engine.add_resource("dram", 40.0);
    let core0 = engine.add_resource("core0", 110.0);
    let core1 = engine.add_resource("core1", 110.0);
    engine.set_barrier(0, 4);
    engine.set_barrier(1, 2);

    let schedule = Schedule::new(iters);
    let mut progs = Vec::new();
    for _ in 0..2 {
        let mut p = ThreadProg::new();
        for step in schedule.steps() {
            if step.store.is_some() {
                p.use_res(dram, 2_500.0); // bytes
            }
            p.barrier(1);
            if step.load.is_some() {
                p.use_res(dram, 2_000.0);
            }
            p.barrier(0);
        }
        progs.push(p);
    }
    for core in [core0, core1] {
        let mut p = ThreadProg::new();
        for step in schedule.steps() {
            if step.compute.is_some() {
                p.use_res(core, 7_500.0); // flops
            }
            p.barrier(0);
        }
        progs.push(p);
    }
    let stats = engine.run(progs);

    println!("\n=== Pipeline stage timeline — {} blocks, 2 data + 2 compute threads ===\n", iters);
    println!(
        "time:      0 {:>width$.1} us",
        stats.total_ns / 1e3,
        width = WIDTH - 2
    );
    gantt_row("dram", &stats.timeline[dram], stats.total_ns);
    gantt_row("core0", &stats.timeline[core0], stats.total_ns);
    gantt_row("core1", &stats.timeline[core1], stats.total_ns);
    println!();
    println!(
        "dram busy {:.0}% of the run; cores busy {:.0}% — the paper's overlap:",
        100.0 * stats.utilization(dram),
        100.0 * stats.utilization(core0),
    );
    println!("memory streams continuously while compute fills the shadow of each block;");
    println!("only the prologue (left edge) and epilogue (right edge) leave a resource idle.");
    assert!(stats.utilization(dram) > 0.8, "steady state must keep DRAM busy");
}

