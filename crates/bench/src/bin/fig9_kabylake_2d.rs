//! Figure 9: 2D FFT on the Intel Kaby Lake 7700K.
//!
//! Paper reference values: ours ≈74% of achievable peak on average,
//! MKL/FFTW ≈50%; ours degrades at small sizes (few pipeline
//! iterations) and at large pencil sizes (TLB amortization lost).

use bwfft_baselines::{simulate_baseline, BaselineKind};
use bwfft_bench::{fig9_sizes, print_comparison, run_ours, Row};
use bwfft_core::Dims;
use bwfft_machine::presets;

fn main() {
    let spec = presets::kaby_lake_7700k();
    let rows: Vec<Row> = fig9_sizes()
        .into_iter()
        .map(|(n, m)| {
            let dims = Dims::d2(n, m);
            let ours = run_ours(dims, &spec, 1);
            let mkl = simulate_baseline(BaselineKind::MklLike, dims, &spec);
            let fftw = simulate_baseline(BaselineKind::FftwLike, dims, &spec);
            Row {
                label: format!("{n}x{m}"),
                peak_gflops: ours.achievable_peak_gflops,
                entries: vec![
                    ("Double-buffer (ours)".into(), ours),
                    ("MKL-like".into(), mkl),
                    ("FFTW-like".into(), fftw),
                ],
            }
        })
        .collect();
    print_comparison(
        "Fig. 9 — 2D FFT, Intel Kaby Lake 7700K (b = LLC/2 = 256Ki complex elements)",
        &rows,
    );
    let avg: f64 = rows
        .iter()
        .map(|r| r.entries[0].1.percent_of_peak())
        .sum::<f64>()
        / rows.len() as f64;
    println!("\naverage of ours: {avg:.1}% of achievable peak (paper: ~74%)");
    println!("paper: utilization drops at the largest pencils (TLB) — check the last rows");
}
