//! Figure 9: 2D FFT on the Intel Kaby Lake 7700K.
//!
//! Paper reference values: ours ≈74% of achievable peak on average,
//! MKL/FFTW ≈50%; ours degrades at small sizes (few pipeline
//! iterations) and at large pencil sizes (TLB amortization lost).

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use bwfft_baselines::BaselineKind;
use bwfft_bench::{compare_2d, fig9_sizes, mean_percent_of_peak, print_comparison};
use bwfft_machine::presets;

fn main() {
    let spec = presets::kaby_lake_7700k();
    let rows = compare_2d(&spec, &fig9_sizes(), BaselineKind::FftwLike);
    print_comparison(
        "Fig. 9 — 2D FFT, Intel Kaby Lake 7700K (b = LLC/2 = 256Ki complex elements)",
        &rows,
    );
    let avg = mean_percent_of_peak(&rows, 0);
    println!("\naverage of ours: {avg:.1}% of achievable peak (paper: ~74%)");
    println!("paper: utilization drops at the largest pencils (TLB) — check the last rows");
}
