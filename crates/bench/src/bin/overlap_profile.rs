//! Overlap accounting, measured and modeled side by side.
//!
//! The soft-DMA argument (§IV) is that data movement hides behind
//! compute. This harness traces the same shape three ways and prints
//! each one's per-stage overlap fraction and achieved bandwidth:
//!
//! 1. the real pipelined executor on this host,
//! 2. the real fused (serial) executor — the no-overlap counterfactual,
//! 3. the simulated pipelined run on the Kaby Lake preset.
//!
//! A healthy pipelined run shows a high overlap fraction where the
//! fused run shows zero; the simulated column shows what the model
//! believes the overlap *should* be at the preset's bandwidth.
//!
//! The real runs go through [`bwfft_bench::measure::trace_once`] — the
//! same traced-rep helper `bwfft-cli bench` attributes stages with.

#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary, not library code
use bwfft_bench::measure::trace_once;
use bwfft_core::exec_sim::{simulate, SimOptions};
use bwfft_core::{profile, Dims, ExecutorKind, FftPlan};
use bwfft_machine::presets;
use bwfft_trace::TraceCollector;
use std::sync::Arc;

fn main() {
    let dims = Dims::d2(1024, 1024);
    let spec = presets::kaby_lake_7700k();
    let bw = spec.total_dram_bw_gbs();
    println!("\n=== Overlap profile — {} , roofline {bw:.1} GB/s ===", dims.label());

    let pipelined = FftPlan::builder(dims)
        .buffer_elems(1 << 15)
        .threads(2, 2)
        .build()
        .unwrap();
    println!("\n--- real, pipelined (2 data + 2 compute threads) ---");
    println!("{}", trace_once(&pipelined, Some(bw), 11).unwrap().0);

    let mut fused = pipelined.clone();
    fused.executor = ExecutorKind::Fused;
    println!("--- real, fused (serial counterfactual: overlap must be 0) ---");
    println!("{}", trace_once(&fused, Some(bw), 11).unwrap().0);

    let collector = Arc::new(TraceCollector::new());
    let sim_plan = FftPlan::builder(dims)
        .buffer_elems(spec.default_buffer_elems())
        .threads(4, 4)
        .build()
        .unwrap();
    let opts = SimOptions {
        trace: Some(Arc::clone(&collector)),
        ..SimOptions::default()
    };
    simulate(&sim_plan, &spec, &opts).unwrap();
    println!("--- modeled, pipelined on {} ---", spec.name);
    println!(
        "{}",
        profile::profile_report(&collector, &sim_plan, "simulated", Some(bw))
    );
}
