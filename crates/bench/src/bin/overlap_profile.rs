//! Overlap accounting, measured and modeled side by side.
//!
//! The soft-DMA argument (§IV) is that data movement hides behind
//! compute. This harness traces the same shape three ways and prints
//! each one's per-stage overlap fraction and achieved bandwidth:
//!
//! 1. the real pipelined executor on this host,
//! 2. the real fused (serial) executor — the no-overlap counterfactual,
//! 3. the simulated pipelined run on the Kaby Lake preset.
//!
//! A healthy pipelined run shows a high overlap fraction where the
//! fused run shows zero; the simulated column shows what the model
//! believes the overlap *should* be at the preset's bandwidth.

#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary, not library code
use bwfft_core::exec_real::{execute_with, ExecConfig};
use bwfft_core::exec_sim::{simulate, SimOptions};
use bwfft_core::{profile, Dims, ExecutorKind, FftPlan};
use bwfft_machine::presets;
use bwfft_num::{signal, AlignedVec, Complex64};
use bwfft_trace::{TraceCollector, TraceReport};
use std::sync::Arc;

fn traced_real(plan: &FftPlan, executor: &str, bw: f64) -> TraceReport {
    let total = plan.dims.total();
    let mut data = AlignedVec::from_slice(&signal::random_complex(total, 11));
    let mut work = AlignedVec::<Complex64>::zeroed(total);
    let collector = Arc::new(TraceCollector::new());
    let cfg = ExecConfig {
        trace: Some(Arc::clone(&collector)),
        ..Default::default()
    };
    execute_with(plan, &mut data, &mut work, &cfg).unwrap();
    profile::profile_report(&collector, plan, executor, Some(bw))
}

fn main() {
    let dims = Dims::d2(1024, 1024);
    let spec = presets::kaby_lake_7700k();
    let bw = spec.total_dram_bw_gbs();
    println!("\n=== Overlap profile — {} , roofline {bw:.1} GB/s ===", dims.label());

    let pipelined = FftPlan::builder(dims)
        .buffer_elems(1 << 15)
        .threads(2, 2)
        .build()
        .unwrap();
    println!("\n--- real, pipelined (2 data + 2 compute threads) ---");
    println!("{}", traced_real(&pipelined, "pipelined", bw));

    let mut fused = pipelined.clone();
    fused.executor = ExecutorKind::Fused;
    println!("--- real, fused (serial counterfactual: overlap must be 0) ---");
    println!("{}", traced_real(&fused, "fused", bw));

    let collector = Arc::new(TraceCollector::new());
    let sim_plan = FftPlan::builder(dims)
        .buffer_elems(spec.default_buffer_elems())
        .threads(4, 4)
        .build()
        .unwrap();
    let opts = SimOptions {
        trace: Some(Arc::clone(&collector)),
        ..SimOptions::default()
    };
    simulate(&sim_plan, &spec, &opts).unwrap();
    println!("--- modeled, pipelined on {} ---", spec.name);
    println!(
        "{}",
        profile::profile_report(&collector, &sim_plan, "simulated", Some(bw))
    );
}
