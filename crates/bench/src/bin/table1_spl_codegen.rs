//! Table I: the matrix-formula → code mapping of SPL.
//!
//! Each construct is demonstrated by applying the interpreter to a
//! numbered vector and printing the resulting data movement, then
//! verified against its dense operator (the unit tests in `bwfft-spl`
//! run the same checks mechanically).

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use bwfft_num::Complex64;
use bwfft_spl::dense::to_dense;
use bwfft_spl::Formula;

fn show(name: &str, code: &str, f: &Formula) {
    let n = f.cols();
    let x: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.0)).collect();
    let y = f.apply_vec(&x);
    let ints: Vec<i64> = y.iter().map(|c| c.re.round() as i64).collect();
    let dense = to_dense(f);
    println!("{name:<22} {code}");
    println!("{:<22} input  x = 0..{n}", "");
    println!("{:<22} output y = {ints:?}", "");
    println!(
        "{:<22} dense: {}x{} matrix, permutation = {}\n",
        "",
        dense.rows,
        dense.cols,
        dense.is_permutation()
    );
}

fn main() {
    println!("\n=== Table I — from matrix formulas to code ===\n");
    show(
        "y = (A.B) x",
        "t = B x; y = A t",
        &Formula::compose(vec![
            Formula::stride_l(2, 3),
            Formula::stride_l(3, 2),
        ]),
    );
    show(
        "y = (I_m (x) B_n) x",
        "for i in 0..m: y[i*n..] = B x[i*n..]",
        &Formula::tensor(Formula::identity(3), Formula::stride_l(2, 2)),
    );
    show(
        "y = (A_m (x) I_n) x",
        "for i in 0..n: y[i:n:..] = A x[i:n:..]",
        &Formula::tensor(Formula::stride_l(2, 2), Formula::identity(3)),
    );
    let diag: Vec<Complex64> = (0..6).map(|i| Complex64::new((i % 3) as f64, 0.0)).collect();
    show(
        "y = D x",
        "for i: y[i] = D[i,i]*x[i]",
        &Formula::diag(diag),
    );
    show(
        "y = L^{mn}_m x",
        "for i in 0..m, j in 0..n: y[i+m*j] = x[n*i+j]",
        &Formula::stride_l(3, 4),
    );
    show(
        "y = (L^{mn}_m (x) I_k) x",
        "packet version: k-element moves",
        &Formula::tensor(Formula::stride_l(2, 3), Formula::identity(2)),
    );
    println!("all constructs verified against dense operators (see bwfft-spl tests `table1_*`)");
}
