//! STREAM calibration (§V "Performance metric"): the achievable
//! bandwidth of each machine preset, from which every figure's
//! achievable-peak roofline is derived.

use bwfft_core::metrics::achievable_peak_gflops;
use bwfft_machine::stream::stream_triad;
use bwfft_machine::{presets, MachineSpec};

fn show(spec: &MachineSpec) {
    let r = stream_triad(spec, 1 << 24);
    let peak3d = achievable_peak_gflops(1 << 27, 3, r.triad_gbs);
    println!(
        "{:<36} triad {:>6.1} GB/s ({:>5.1}/socket)  P_io(512^3, 3D) = {:>6.2} Gflop/s",
        spec.name, r.triad_gbs, r.per_socket_gbs, peak3d
    );
}

fn main() {
    println!("\n=== STREAM calibration of the five machine presets (paper §V setup) ===\n");
    for spec in presets::all() {
        show(&spec);
    }
    println!("\npaper-quoted STREAM bandwidths: 20 / 40 / 12 GB/s (1-socket), 85 / 20 GB/s (2-socket)");
}
