//! STREAM calibration (§V "Performance metric"): the achievable
//! bandwidth of each machine preset, from which every figure's
//! achievable-peak roofline is derived.

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use bwfft_bench::stream_row;
use bwfft_machine::presets;

fn main() {
    println!("\n=== STREAM calibration of the five machine presets (paper §V setup) ===\n");
    for spec in presets::all() {
        let r = stream_row(&spec);
        println!(
            "{:<36} triad {:>6.1} GB/s ({:>5.1}/socket)  P_io(512^3, 3D) = {:>6.2} Gflop/s",
            r.name, r.triad_gbs, r.per_socket_gbs, r.peak3d_gflops
        );
    }
    println!("\npaper-quoted STREAM bandwidths: 20 / 40 / 12 GB/s (1-socket), 85 / 20 GB/s (2-socket)");
}
