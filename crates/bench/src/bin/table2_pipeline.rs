//! Table II: the software-pipeline schedule — prologue, steady state
//! and epilogue of `I_{knm/b} ⊗ (W_{b,i} · FFT · R_{b,i})` with the
//! double-buffer parity `t[i mod 2]`.

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use bwfft_pipeline::Schedule;

fn main() {
    // The paper's running example: b = 131072, m = 512, n = 512,
    // k = 512 gives iter = knm/b = 1024; print a digestible 8-block
    // schedule (the structure is identical, only the steady state is
    // longer).
    println!("\n=== Table II — software-pipelined double buffering (8-block excerpt) ===\n");
    let schedule = Schedule::new(8);
    print!("{}", schedule.render_table());
    println!(
        "\nfull-size example from the paper: k=n=m=512, b=131072 -> iter = knm/b = {}",
        512usize * 512 * 512 / 131072
    );
}
