//! §IV interference study, at cacheline resolution: what the data
//! threads' streams do to the compute threads' cached working set.
//!
//! The compute threads keep the shared buffer half, twiddle tables and
//! per-thread scratch hot across pipeline iterations; the data threads
//! stream whole blocks in and out every iteration. With temporal
//! accesses the streams wash the LLC; with non-temporal accesses
//! (§IV's prescription) the working set survives. This binary replays
//! one steady-state pipeline iteration against the inclusive hierarchy
//! model and reports residency.

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use bwfft_machine::hierarchy::Hierarchy;
use bwfft_machine::presets;

fn working_set_addrs(base: u64, bytes: u64) -> Vec<u64> {
    (0..bytes).step_by(64).map(|off| base + off).collect()
}

fn main() {
    let spec = presets::kaby_lake_7700k();
    let b_bytes = (spec.default_buffer_elems() * 16) as u64; // one buffer half
    let ws = working_set_addrs(1 << 40, b_bytes); // compute half + twiddles
    println!("\n=== §IV interference — streams vs the LLC-resident compute set (Kaby Lake) ===\n");
    println!("compute working set: {} KiB (buffer half at LLC/4)", b_bytes / 1024);
    println!(
        "data-thread traffic per iteration: 2 × {} KiB (load stream + store scatter)\n",
        b_bytes / 1024
    );
    println!(
        "{:<44} {:>18} {:>14}",
        "data-thread access flavour", "LLC residency", "verdict"
    );
    println!("{}", "-".repeat(80));
    for (label, non_temporal) in [
        ("temporal loads/stores (naive)", false),
        ("non-temporal loads/stores (paper §IV)", true),
    ] {
        let mut h = Hierarchy::from_spec(&spec);
        // Warm the compute working set.
        for &a in &ws {
            h.access(a, false, false);
        }
        // Four steady-state iterations of data-thread traffic, each on
        // a fresh block region (the streams never revisit addresses):
        // stream a block in, scatter a block out.
        for iter in 0..4u64 {
            let load_base = (1 << 41) + iter * 4 * b_bytes;
            let store_base = (1 << 42) + iter * 512 * b_bytes;
            for off in (0..b_bytes).step_by(64) {
                h.access(load_base + off, false, non_temporal);
            }
            for off in (0..b_bytes).step_by(64) {
                // Scattered cacheline stores at large strides.
                h.access(store_base + off * 128, true, non_temporal);
            }
        }
        let res = h.residency(h.num_levels() - 1, ws.iter().copied());
        let verdict = if res > 0.9 {
            "working set intact"
        } else {
            "working set evicted"
        };
        println!("{:<44} {:>17.1}% {:>14}", label, res * 100.0, verdict);
    }
    println!("\npaper §IV: only the R/W matrices may touch memory non-temporally; everything");
    println!("temporal the data threads do competes with the compute threads for cache.");
}
