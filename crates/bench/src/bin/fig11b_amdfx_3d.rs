//! Figure 11 (top-right): 3D FFT Gflop/s on the AMD FX-8350 (SSE).
//!
//! Paper reference values: ours ≈1.6× over FFTW — the gap is smaller
//! than on Intel because FFTW's slab–pencil plan suits AMD's larger
//! caches (§V). The comparison therefore uses the slab–pencil
//! baseline.

#![allow(clippy::unwrap_used, clippy::expect_used)] // throwaway driver code, not library
use bwfft_baselines::BaselineKind;
use bwfft_bench::{compare_3d, fig1_sizes, geomean_speedups, print_comparison};
use bwfft_machine::presets;

fn main() {
    let spec = presets::amd_fx_8350();
    let rows = compare_3d(&spec, &fig1_sizes(), BaselineKind::SlabPencil);
    print_comparison(
        "Fig. 11b — 3D FFT, AMD FX-8350 (4.0 GHz, 8 threads, SSE, 12 GB/s STREAM)",
        &rows,
    );
    println!();
    for (name, s) in geomean_speedups(&rows) {
        println!("geomean speedup vs {name}: {s:.2}x (paper: ~1.6x vs FFTW slab-pencil)");
    }
}
