//! Extension experiment (beyond the paper): large 1D FFTs via the
//! four-step decomposition on the double-buffered machinery, compared
//! with 2D transforms of equal volume.
//!
//! Expected shape: natural-order 1D pays a third round trip (the
//! decimation pass, with element-granular writes); decimated-input 1D
//! matches the 2D bandwidth profile.


#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary, not library code
use bwfft_core::exec_sim::SimOptions;
use bwfft_core::fft1d::{simulate_fft1d, Fft1dLargePlan};
use bwfft_core::{Dims, FftPlan};
use bwfft_machine::presets;

fn main() {
    let spec = presets::kaby_lake_7700k();
    let opts = SimOptions::default();
    println!("\n=== Extension — four-step 1D FFT on the Kaby Lake 7700K ===\n");
    println!(
        "{:<26} {:>10} {:>10} {:>8} {:>12}",
        "transform", "Gflop/s", "% peak", "stages", "ms"
    );
    println!("{}", "-".repeat(72));
    for lg in [22usize, 24, 26] {
        let n1 = 1usize << (lg / 2);
        let n2 = 1usize << (lg - lg / 2);
        let full = Fft1dLargePlan::new(n1, n2)
            .buffer_elems(spec.default_buffer_elems())
            .threads(4, 4);
        let (rep, stages) = simulate_fft1d(&full, &spec, &opts).unwrap();
        println!(
            "{:<26} {:>10.2} {:>9.1}% {:>8} {:>12.2}",
            format!("1D 2^{lg} natural"),
            rep.gflops(),
            rep.percent_of_peak(),
            stages.len(),
            rep.time_ns / 1e6
        );
        let dec = Fft1dLargePlan::new(n1, n2)
            .buffer_elems(spec.default_buffer_elems())
            .threads(4, 4)
            .decimated_input();
        let (rep, stages) = simulate_fft1d(&dec, &spec, &opts).unwrap();
        println!(
            "{:<26} {:>10.2} {:>9.1}% {:>8} {:>12.2}",
            format!("1D 2^{lg} decimated-in"),
            rep.gflops(),
            rep.percent_of_peak(),
            stages.len(),
            rep.time_ns / 1e6
        );
        let plan2d = FftPlan::builder(Dims::d2(n1, n2))
            .buffer_elems(spec.default_buffer_elems())
            .threads(4, 4)
            .build()
            .unwrap();
        let rep = bwfft_core::exec_sim::simulate(&plan2d, &spec, &opts).unwrap().report;
        println!(
            "{:<26} {:>10.2} {:>9.1}% {:>8} {:>12.2}",
            format!("2D {n1}x{n2}"),
            rep.gflops(),
            rep.percent_of_peak(),
            2,
            rep.time_ns / 1e6
        );
        println!();
    }
    println!("the decimation pass is the price of natural-order input; FFTW's and MKL's large-1D");
    println!("plans pay the same extra reshuffle (or expose 'advanced' strided interfaces).");
}

