//! Ablation of the autotuner: on every §V machine preset, compare the
//! default-knob plan (builder defaults: `b = LLC/2`, half-and-half
//! thread split, μ = 4, NT stores, pipelined executor) against the
//! plan the tuner's model-phase search picks, both scored with the
//! discrete-event machine model at 256³.
//!
//! The search can only win or tie — it considers the default point.
//! The interesting output is *where* it wins (e.g. hosts whose LLC
//! makes a smaller buffer better) and which knob moved.

#![allow(clippy::unwrap_used, clippy::expect_used)] // demo binary, not library code
use bwfft_core::exec_sim::{simulate, simulate_no_overlap, SimOptions};
use bwfft_core::{Dims, ExecutorKind, FftPlan};
use bwfft_machine::presets;
use bwfft_tuner::{Tuner, TunerOptions};

fn main() {
    // 64^3 keeps the full sweep (5 machines x ~400 candidates, each
    // model-simulated) under a minute; the knob rankings match the
    // larger shapes because the stage structure is the same.
    let dims = Dims::d3(64, 64, 64);
    println!("\n=== Tuned vs default plans — {} (model-scored) ===\n", dims.label());
    println!(
        "{:<30} {:>12} {:>12} {:>8}  tuned knobs",
        "machine", "default ms", "tuned ms", "speedup"
    );
    println!("{}", "-".repeat(110));

    for spec in presets::all() {
        let p = spec.total_threads();
        // b = LLC/2, capped so a problem smaller than the LLC still
        // pipelines (at least 4 double-buffer iterations).
        let b = spec.default_buffer_elems().min(dims.total() / 4);
        let default_plan = FftPlan::builder(dims)
            .buffer_elems(b)
            .threads(p / 2, p - p / 2)
            .build()
            .unwrap();
        let default_ns = simulate(&default_plan, &spec, &SimOptions::default())
            .unwrap()
            .report
            .time_ns;

        let tuner = Tuner::new(TunerOptions {
            model_only: true,
            ..TunerOptions::for_model(spec.clone())
        });
        let rec = tuner.tune(dims, bwfft_kernels::Direction::Forward).unwrap();
        let tuned_plan = rec.build_plan().unwrap();
        // Re-score the winner with the *full* simulation (the search
        // itself extrapolates from a few iterations).
        let opts = SimOptions {
            non_temporal: rec.non_temporal,
            ..SimOptions::default()
        };
        let tuned_ns = match rec.executor {
            ExecutorKind::Pipelined => simulate(&tuned_plan, &spec, &opts),
            ExecutorKind::Fused => simulate_no_overlap(&tuned_plan, &spec, &opts),
        }
        .unwrap()
        .report
        .time_ns;

        println!(
            "{:<30} {:>12.2} {:>12.2} {:>7.2}x  mu={} b={} split={}+{} nt={} {:?}",
            spec.name,
            default_ns / 1e6,
            tuned_ns / 1e6,
            default_ns / tuned_ns,
            rec.mu,
            rec.buffer_elems,
            rec.p_d,
            rec.p_c,
            u8::from(rec.non_temporal),
            rec.executor,
        );
    }

    println!("\nthe tuner's search space contains the paper's recommended configuration, so");
    println!("`tuned` should never lose to `default`; gaps show where the b = LLC/2 and");
    println!("half-split heuristics leave model-predicted time on the table.");
}
